"""Trace replay: weight-aware routing vs queue-depth routing.

Beyond the paper's protocol: the fleet is driven by a *replayed*
arrival log — the synthetic production trace bridged through
``ArrivalLog.from_trace`` and seeded-bootstrapped to a simulatable
rate — instead of a synthetic arrival process. Request weights in the
replayed stream are heavy-tailed (the trace's clipped token-count
mixture), which is exactly the regime where queue-depth routing (JSQ)
mistakes a pod queueing one 4k-token elephant for a pod queueing one
20-token lookup. The weight-aware router isolates the heavy tail onto
a dedicated pod tier, so the p95 TTFT — dominated by light requests
stuck behind elephants under JSQ — must improve at equal pod count.

Also pinned: replay determinism. The same log replayed twice produces
identical fleet results, which is what makes replayed-trace sweeps
(elastic recommendation, router comparisons) controlled experiments.
"""

from benchmarks.conftest import BENCH_SEED, smoke, write_report
from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.simulation import ROUTERS, ArrivalLog, ReplayTraffic
from repro.utils.tables import format_table

LLM = "Llama-2-13b"
PROFILE = "1xA100-80GB"
PODS = 4
REPLAY_RATE_PER_S = 6.0  # bootstrap target rate: keeps 4 pods loaded
DURATION_S = smoke(240.0, 60.0)
BOOTSTRAP_SEED = 17


def test_trace_replay_routing(benchmark, traces, generator, results_dir):
    log = ArrivalLog.from_trace(traces).bootstrap(
        int(REPLAY_RATE_PER_S * DURATION_S),
        rng=BOOTSTRAP_SEED,
        rate_per_s=REPLAY_RATE_PER_S,
    )
    deployment = Deployment(
        llm=get_llm(LLM),
        profile=parse_profile(PROFILE),
        n_pods=PODS,
        max_batch_weight=20_000,
        generator=generator,
        seed=BENCH_SEED,
    )

    def run_router(name):
        return deployment.simulate(
            ReplayTraffic(log),
            duration_s=DURATION_S,
            router=ROUTERS[name](),
            stream_label="bench-replay",
        )

    def run():
        return {
            name: run_router(name)
            for name in ("round-robin", "join-shortest-queue", "least-loaded",
                         "weight-aware")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, res in results.items():
        res.verify_conservation()
        rows.append(
            [
                name,
                res.arrivals,
                res.requests_completed,
                res.throughput_tokens_per_s,
                res.ttft.median_s,
                res.ttft.p95_s,
                res.ttft.p99_s,
            ]
        )
    report = format_table(
        ["router", "arrivals", "done", "tok/s", "ttft p50", "ttft p95",
         "ttft p99"],
        rows,
        floatfmt=".3f",
        title=(
            f"Replayed-trace routing: {PODS}x {PROFILE} {LLM}, "
            f"{len(log)} bootstrapped arrivals at {REPLAY_RATE_PER_S}/s, "
            f"{DURATION_S:.0f}s:"
        ),
    )
    write_report(results_dir, "trace_replay.txt", report)

    # The replayed arrival process is identical regardless of router.
    assert len({res.arrivals for res in results.values()}) == 1
    # Weight-aware routing must beat queue-depth routing on the TTFT
    # tail under the heavy-tailed replayed trace, at equal pod count.
    # Hard assertion (holds in smoke mode too): this is the point of
    # carrying request weight from the trace into the router.
    wa = results["weight-aware"].ttft.p95_s
    jsq = results["join-shortest-queue"].ttft.p95_s
    assert wa < jsq, f"weight-aware p95 {wa:.3f}s !< JSQ p95 {jsq:.3f}s"

    # Replay determinism: the same log replayed twice is bit-identical.
    again = run_router("weight-aware")
    first = results["weight-aware"]
    assert again.arrivals == first.arrivals
    assert again.requests_completed == first.requests_completed
    assert again.tokens_generated == first.tokens_generated
    assert again.ttft.p95_s == first.ttft.p95_s
    assert again.itl.median_s == first.itl.median_s
