"""Cross-validation of the inference-server simulator.

Not a paper artifact — this benchmark validates the substitution at the
heart of the reproduction (DESIGN.md): the discrete-event engine and the
closed-form steady-state estimator are two independent derivations from
the same roofline assumptions, and must agree on throughput and ITL
within a factor of two across LLMs, GPU profiles and load levels.
"""

from benchmarks.conftest import BENCH_SEED, write_report
from repro.characterization import BatchWeightTuner, run_load_test
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine, SteadyStateEstimator
from repro.models import get_llm
from repro.utils.rng import spawn_seed
from repro.utils.tables import format_table

CASES = [
    ("Llama-2-13b", "1xA100-40GB"),
    ("google/flan-t5-xxl", "1xH100-80GB"),
    ("Llama-2-7b", "2xA10-24GB"),
    ("bigcode/starcoder", "2xA100-40GB"),
]
USERS = (4, 32, 128)


def test_simulator_vs_steady_state(benchmark, generator, results_dir):
    def run():
        rows = []
        for llm_name, prof_name in CASES:
            llm = get_llm(llm_name)
            profile = parse_profile(prof_name)
            tuned = BatchWeightTuner(llm, profile).tune()
            assert tuned.feasible, (llm_name, prof_name)
            est = SteadyStateEstimator(
                llm, profile, tuned.max_batch_weight, generator, seed=BENCH_SEED
            )
            for users in USERS:
                seed = spawn_seed(BENCH_SEED, "simval", llm_name, prof_name, users)
                engine = ContinuousBatchingEngine(
                    llm, profile, max_batch_weight=tuned.max_batch_weight, seed=seed
                )
                sim = run_load_test(
                    engine, generator, users, duration_s=60.0, warmup_s=10.0, seed=seed
                )
                ana = est.estimate(users)
                rows.append(
                    [
                        f"{llm_name.split('/')[-1]}@{prof_name}",
                        users,
                        sim.throughput_tokens_per_s,
                        ana.throughput_tokens_per_s,
                        sim.itl_median_s * 1e3,
                        ana.itl_s * 1e3,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    ratios = []
    for row in rows:
        _, _, sim_t, ana_t, sim_i, ana_i = row
        ratios.append(ana_t / sim_t)
        assert 0.4 < ana_t / sim_t < 2.5, f"throughput disagreement: {row}"
        assert 0.4 < ana_i / sim_i < 2.5, f"ITL disagreement: {row}"

    report = format_table(
        ["case", "users", "tput sim", "tput analytic", "ITL sim (ms)",
         "ITL analytic (ms)"],
        rows,
        floatfmt=".1f",
        title=(
            "Simulator validation — event engine vs closed-form steady state "
            "(all within 2.5x; two independent derivations of the same roofline)"
        ),
    )
    write_report(results_dir, "simulator_validation.txt", report)
