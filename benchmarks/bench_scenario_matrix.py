"""Scenario-matrix benchmark: the curated library, end to end, gated.

Every scenario in the top-level ``scenarios/`` directory is loaded,
run, conservation-checked and scored against the ``expectations:``
block it declares — all hard-asserted, smoke and full scale alike (the
curated scenarios are already sized to run in seconds, so smoke mode
changes nothing about them). Scenarios that declare
``fast_oracle_parity`` are additionally replayed through the oracle
stepper and must match the fast path bit for bit.

The run writes ``BENCH_scenario_matrix.json`` (uploaded as a CI
artifact) with per-scenario pass/fail, every expectation check and the
headline metrics, plus one rendered sample HTML report
(``BENCH_scenario_report.html``) proving the report pipeline works on a
real library result.
"""

import json
import os

from benchmarks.conftest import write_report
from repro.report import render_report
from repro.simulation import evaluate_expectations, list_scenarios, load_by_name

#: The scenario whose rendered report ships as the sample CI artifact —
#: a chaos run, so the artifact shows fault annotations, not just the
#: happy path.
SAMPLE_REPORT_SCENARIO = "pod-crash-recovery"

PARITY_FIELDS = (
    "arrivals",
    "admitted",
    "shed",
    "requests_completed",
    "completed_total",
    "lost",
    "requeued",
    "tokens_generated",
)


def _run_one(name):
    spec = load_by_name(name)
    result = spec.run(keep_samples=True)
    result.verify_conservation()
    report = evaluate_expectations(spec, result)
    entry = {
        "passed": report.passed,
        "checks": [
            {
                "name": check.name,
                "bound": check.bound,
                "observed": check.observed,
                "passed": check.passed,
            }
            for check in report.checks
        ],
        "summary": result.summary(),
    }
    parity = bool((spec.expectations or {}).get("fast_oracle_parity"))
    if parity:
        oracle = spec.run(keep_samples=True, fast=False)
        mismatches = [
            field
            for field in PARITY_FIELDS
            if getattr_chain(result, field) != getattr_chain(oracle, field)
        ]
        if result.kind == "fleet" and result.ttft.p95_s != oracle.ttft.p95_s:
            mismatches.append("ttft.p95_s")
        entry["fast_oracle_parity"] = {"mismatches": mismatches}
    return spec, result, report, entry


def getattr_chain(result, field):
    if result.kind == "cluster":
        return sum(getattr(r, field) for r in result.results.values())
    return getattr(result, field)


def test_scenario_matrix(benchmark, results_dir):
    names = list_scenarios()
    assert names, "the scenarios/ library is empty"

    def run():
        matrix = {}
        sample_html = None
        for name in names:
            spec, result, report, entry = _run_one(name)
            matrix[name] = entry
            if name == SAMPLE_REPORT_SCENARIO:
                slo_s = (
                    spec.slo_ttft_ms / 1e3
                    if spec.slo_ttft_ms is not None and result.kind == "fleet"
                    else None
                )
                payload = (
                    result.to_dict(slo_p95_ttft_s=slo_s)
                    if result.kind == "fleet"
                    else result.to_dict()
                )
                sample_html = render_report(
                    payload, title=f"Scenario: {name}"
                )
        return matrix, sample_html

    matrix, sample_html = benchmark.pedantic(run, rounds=1, iterations=1)

    write_report(
        results_dir,
        "BENCH_scenario_matrix.json",
        json.dumps({"scenarios": matrix}, indent=2),
    )
    if sample_html is not None:
        path = os.path.join(results_dir, "BENCH_scenario_report.html")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(sample_html)
        print(f"[sample report written to {path}]")

    # Hard gates: every curated scenario passes every bound it declares,
    # no check is silently skipped, and every declared parity holds.
    failures = {
        name: [c["name"] for c in entry["checks"] if c["passed"] is not True]
        for name, entry in matrix.items()
        if not entry["passed"]
        or any(c["passed"] is not True for c in entry["checks"])
    }
    assert not failures, f"scenario expectations failed: {failures}"
    parity_breaks = {
        name: entry["fast_oracle_parity"]["mismatches"]
        for name, entry in matrix.items()
        if entry.get("fast_oracle_parity", {}).get("mismatches")
    }
    assert not parity_breaks, f"fast/oracle divergence: {parity_breaks}"
    assert sample_html is not None and "http" not in sample_html
