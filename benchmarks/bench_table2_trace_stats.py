"""Table II: characteristics of the production traces.

Our trace collection is synthetic (the paper's 17.3M-request IBM traces
are proprietary — see DESIGN.md), so the claim reproduced here is the
*structure*: months-long collection window, thousands of users, 24 LLMs
spanning 3B-176B parameters, clipped token ranges (input 1-4093,
output 1-1500), client batch sizes 1-5 and a long tail of additional
request parameters.
"""

from benchmarks.conftest import write_report
from repro.utils.tables import format_table


def test_table2_trace_characteristics(benchmark, traces, results_dir):
    summary = benchmark.pedantic(traces.summary, rounds=1, iterations=1)

    assert 5.0 <= summary["time_period_months"] <= 6.0
    assert summary["n_llms"] == 24
    assert summary["n_users"] > 1000
    assert summary["input_tokens_range"][0] >= 1
    assert summary["input_tokens_range"][1] <= 4093
    assert summary["output_tokens_range"][1] <= 1500
    assert summary["batch_size_range"] == (1, 5)
    assert summary["n_additional_params"] >= 20

    rows = [
        ["Time period", f"{summary['time_period_months']:.1f} months (paper: 5.5)"],
        ["Number of requests", f"{summary['n_requests']:,} (paper: 17.3M; scaled down)"],
        ["Number of users", f"{summary['n_users']:,} (paper: ~2500)"],
        ["Number of LLMs", f"{summary['n_llms']} with 3B-176B params (paper: same)"],
        [
            "Range of tokens",
            f"input {summary['input_tokens_range']}, "
            f"output {summary['output_tokens_range']} "
            "(paper: 1-4093 / 1-1500)",
        ],
        ["Batch sizes", f"{summary['batch_size_range']} (paper: 1-5)"],
        [
            "Additional parameters",
            f"{summary['n_additional_params']} (paper: 33)",
        ],
    ]
    report = format_table(
        ["characteristic", "value"],
        rows,
        title="Table II — synthetic production-trace characteristics:",
    )
    write_report(results_dir, "table2_trace_stats.txt", report)
