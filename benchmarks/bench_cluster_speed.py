"""Cluster/sweep fast-path speed gate: heap cluster frontier + cached arrivals.

PR 6's fast core made a *single fleet* fast; the cluster loop above it
still paid three O(tenants) scans per simulated event, and the elastic
sweep regenerated its seeded arrival stream per candidate. This gate
enforces both halves of the cluster-scale fast path's contract, exactly
as ``bench_core_speed.py`` does for the fleet core:

1. the heap-driven cluster loop (``ClusterSimulator(fast=True)``, the
   default) is *bit-identical* to the retained O(tenants)-scan oracle
   loop — per-tenant results, latency distributions, and the inventory
   event stream — on a many-tenant contended cluster, with and without
   a chaos/fault schedule (same-instant fault collisions included);
2. the fast loop clears a hard wall-clock speedup over the oracle plus
   an events/sec floor (both fleets run the PR 6 fast core, so the
   ratio isolates the cluster loop itself);
3. the cached-arrival recommender sweep is byte-identical to the
   ``traffic_factory``-fresh sweep, clears a candidates/sec floor, and
   every cost-lower-bound prune is logged and reported — no silently
   dropped candidates.

Timings use min-of-N interleaved repeats so a background hiccup on the
CI machine hits both paths equally. The speedup widens with tenant
count (the oracle's scans are O(tenants) per event), so the gate runs a
deliberately wide cluster. Smoke mode keeps every bit-identity and
accounting assertion at full strength and only relaxes the timing
floors — a 2-core CI runner proves correctness, not throughput.

Emits ``BENCH_cluster_speed.json`` with the measured rates and config.
"""

import json
import os
import time

from benchmarks.conftest import BENCH_SEED, smoke
from repro.cluster import Deployment
from repro.hardware import aws_like_pricing, parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.recommendation import (
    CostObjective,
    ElasticCandidate,
    ElasticRecommender,
    LinearSLOPenalty,
)
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    ClusterInventory,
    ClusterSimulator,
    FaultInjector,
    FaultSpec,
    FleetSimulator,
    LeastLoadedRouter,
    PoissonTraffic,
    RequestSource,
    TenantGroup,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-40GB")
WEIGHT = 20_000

TENANTS = smoke(96, 16)
DURATION_S = smoke(45.0, 20.0)
CHAOS_TENANTS = smoke(32, 8)
CHAOS_DURATION_S = smoke(30.0, 15.0)
REPEATS = 2

SWEEP_DURATION_S = smoke(45.0, 15.0)
SWEEP_RATE = 8.0
SWEEP_SLO_S = 30.0

#: Hard floors. Full scale was measured at ~4.5x and ~36k events/s on a
#: warm machine (the oracle pays ~3 O(tenants) scans per event, so the
#: ratio grows with the tenant count); the gates leave headroom for
#: slower hardware while still catching an accidental return to the
#: linear scans. Smoke floors only prove the fast path is not
#: pathologically slower than the oracle.
MIN_SPEEDUP = smoke(3.0, 1.1)
MIN_EVENTS_PER_S = smoke(12_000.0, 2_000.0)
MIN_CANDIDATES_PER_S = smoke(8.0, 1.0)

#: Per-tenant FleetResult fields that must match exactly.
EXACT_FIELDS = (
    "time_s", "arrivals", "requests_completed", "tokens_generated",
    "throughput_tokens_per_s", "admitted", "shed", "deferrals",
    "completed_total", "in_flight_end", "pod_seconds", "lost", "requeued",
)


def _build_cluster(generator, fast_cluster, tenants, with_faults=False):
    """A contended many-tenant cluster; only the cluster loop varies.

    Every tenant runs the PR 6 fast fleet core in both modes — the gate
    measures the cluster loop, not the engine. Capacity covers 1.5 pods
    per tenant against per-tenant autoscaler caps of 3, so scale-ups
    contend for the inventory and grants/denials interleave tenants.
    """
    groups = []
    for i in range(tenants):
        name = f"tenant-{i:02d}"

        def factory(serial, i=i):
            return ContinuousBatchingEngine(
                LLM, PROFILE, max_batch_weight=WEIGHT,
                seed=spawn_seed(BENCH_SEED, "pod", i, serial), fast=True,
            )

        faults = None
        if with_faults and i % 5 == 0:
            # Same-instant collisions across tenants (every faulted
            # tenant crashes at t/3) and within one tenant (tenant 0
            # double-crashes) — the tie-break cases the cluster
            # frontier's heap keys must replicate bit-for-bit.
            specs = [
                FaultSpec(
                    kind="crash", time_s=CHAOS_DURATION_S / 3.0,
                    restart_delay_s=5.0,
                )
            ]
            if i == 0:
                specs.append(
                    FaultSpec(
                        kind="crash", time_s=CHAOS_DURATION_S / 3.0,
                        restart_delay_s=5.0,
                    )
                )
            else:
                specs.append(
                    FaultSpec(
                        kind="slowdown",
                        time_s=CHAOS_DURATION_S / 2.0,
                        duration_s=CHAOS_DURATION_S / 4.0,
                        factor=2.5,
                    )
                )
            faults = FaultInjector(specs, seed=BENCH_SEED + i)
        source = RequestSource(
            generator, derive_rng(BENCH_SEED, "bench-cluster", name), WEIGHT
        )
        fleet = FleetSimulator(
            [factory(0)],
            PoissonTraffic(
                2.0 + 0.25 * (i % 8),
                rng=derive_rng(BENCH_SEED, "bench-traffic", name),
            ),
            LeastLoadedRouter(),
            source,
            autoscaler=Autoscaler(
                ThresholdPolicy(slo_p95_ttft_s=1.0),
                AutoscaleConfig(
                    decision_interval_s=10.0, max_pods=3,
                    cold_start_s=5.0, metrics_window_s=20.0,
                ),
            ),
            pod_factory=factory,
            faults=faults,
        )
        groups.append(TenantGroup(name, fleet, PROFILE.name))
    inventory = ClusterInventory(
        capacity={PROFILE.gpu.name: tenants + tenants // 2}
    )
    return ClusterSimulator(groups, inventory, fast=fast_cluster)


def _assert_cluster_parity(fast, oracle, context):
    assert fast.tenants == oracle.tenants, context
    assert fast.sim_events == oracle.sim_events, context
    assert fast.end_provisioned == oracle.end_provisioned, context
    for name in fast.tenants:
        mine, ref = fast.results[name], oracle.results[name]
        for field in EXACT_FIELDS:
            fast_value = getattr(mine, field)
            oracle_value = getattr(ref, field)
            assert fast_value == oracle_value, (
                f"{context}: cluster fast path diverged from oracle on "
                f"{name}.{field}: {fast_value!r} != {oracle_value!r}"
            )
        for dist in ("ttft", "itl", "e2e"):
            assert getattr(mine, dist) == getattr(ref, dist), (
                f"{context}: {name} diverged on the {dist} distribution"
            )
        assert mine.scale_events == ref.scale_events, context
        assert mine.fault_events == ref.fault_events, context
    assert [
        (e.time_s, e.gpu, e.delta, e.tenant, e.reason) for e in fast.events
    ] == [
        (e.time_s, e.gpu, e.delta, e.tenant, e.reason) for e in oracle.events
    ], f"{context}: inventory event streams diverged"


def _recommender(generator, cache_arrivals):
    deployment = Deployment(
        llm=LLM, profile=PROFILE, n_pods=1, max_batch_weight=WEIGHT,
        generator=generator, seed=BENCH_SEED,
    )
    return ElasticRecommender(
        deployment,
        lambda: PoissonTraffic(
            SWEEP_RATE, rng=derive_rng(BENCH_SEED, "bench-sweep")
        ),
        CostObjective(
            aws_like_pricing(),
            LinearSLOPenalty(SWEEP_SLO_S, penalty_per_hour=100.0),
        ),
        slo_p95_ttft_s=SWEEP_SLO_S,
        duration_s=SWEEP_DURATION_S,
        decision_interval_s=10.0,
        cold_start_s=5.0,
        metrics_window_s=20.0,
        cache_arrivals=cache_arrivals,
    )


def _sweep_candidates():
    rungs = [ElasticCandidate("static", n, n) for n in (1, 2, 3, 4)]
    adaptive = [
        ElasticCandidate(
            "threshold", 1, cap,
            (lambda slo: lambda: ThresholdPolicy(slo_p95_ttft_s=slo))(0.5 * cap),
        )
        for cap in (3, 4, 5, 6)
    ]
    return rungs + adaptive


def test_cluster_speed_gate(generator, results_dir, caplog):
    # --- many-tenant contended cluster: speed + parity ----------------------
    wall_fast = wall_oracle = float("inf")
    res_fast = res_oracle = None
    for _ in range(REPEATS):
        sim = _build_cluster(generator, True, TENANTS)
        t0 = time.perf_counter()
        res_fast = sim.run(duration_s=DURATION_S)
        wall_fast = min(wall_fast, time.perf_counter() - t0)
        sim = _build_cluster(generator, False, TENANTS)
        t0 = time.perf_counter()
        res_oracle = sim.run(duration_s=DURATION_S)
        wall_oracle = min(wall_oracle, time.perf_counter() - t0)
    _assert_cluster_parity(res_fast, res_oracle, "contended")
    res_fast.verify_conservation()

    speedup = wall_oracle / wall_fast
    events_per_s = res_fast.sim_events / wall_fast
    assert res_fast.sim_events > 0
    assert speedup >= MIN_SPEEDUP, (
        f"cluster fast path speedup {speedup:.2f}x < floor "
        f"{MIN_SPEEDUP:.1f}x over {TENANTS} tenants "
        f"(fast {wall_fast:.3f}s vs oracle {wall_oracle:.3f}s)"
    )
    assert events_per_s >= MIN_EVENTS_PER_S, (
        f"cluster fast path too slow: {events_per_s:,.0f} events/s "
        f"< floor {MIN_EVENTS_PER_S:,.0f}"
    )

    # --- chaos variant: parity only, full strength in every mode ------------
    chaos_fast = _build_cluster(
        generator, True, CHAOS_TENANTS, with_faults=True
    ).run(duration_s=CHAOS_DURATION_S)
    chaos_oracle = _build_cluster(
        generator, False, CHAOS_TENANTS, with_faults=True
    ).run(duration_s=CHAOS_DURATION_S)
    _assert_cluster_parity(chaos_fast, chaos_oracle, "chaos")
    assert any(
        chaos_fast.results[name].fault_events for name in chaos_fast.tenants
    ), "chaos schedule never fired — the parity check proved nothing"

    # --- cached-arrival sweep: byte identity + throughput floor -------------
    candidates = _sweep_candidates()
    cached_recommender = _recommender(generator, cache_arrivals=True)
    t0 = time.perf_counter()
    cached_points = cached_recommender.evaluate_many(candidates)
    wall_sweep = time.perf_counter() - t0
    fresh_points = _recommender(generator, cache_arrivals=False).evaluate_many(
        candidates
    )
    cached_json = json.dumps(
        [p.as_dict() for p in cached_points], sort_keys=True
    )
    fresh_json = json.dumps(
        [p.as_dict() for p in fresh_points], sort_keys=True
    )
    assert cached_json == fresh_json, (
        "cached-arrival sweep is not byte-identical to the "
        "traffic_factory-fresh sweep"
    )
    candidates_per_s = len(candidates) / wall_sweep
    assert candidates_per_s >= MIN_CANDIDATES_PER_S, (
        f"cached sweep too slow: {candidates_per_s:.2f} candidates/s "
        f"< floor {MIN_CANDIDATES_PER_S:.1f}"
    )

    # --- pruning: every skipped candidate is logged and reported ------------
    # Prune against a static[1] incumbent: min_pods=1 adaptives survive
    # (their floor ties the incumbent's bill), the min_pods=40 candidate
    # is provably dominated and must be skipped, logged, and reported.
    dominated = ElasticCandidate(
        "threshold", 40, 48, lambda: ThresholdPolicy(slo_p95_ttft_s=1.0)
    )
    prune_candidates = [c for c in candidates if c.min_pods == 1] + [dominated]
    with caplog.at_level("INFO", logger="repro.recommendation.elastic"):
        rec = _recommender(generator, cache_arrivals=True).recommend(
            candidates=prune_candidates, static_pods=1, prune=True
        )
    assert rec.static.meets_slo, "prune gate needs an SLO-meeting incumbent"
    assert [p.label for p in rec.pruned] == [dominated.label]
    prune_logs = [
        r for r in caplog.records if r.message.startswith("pruned candidate")
    ]
    assert len(prune_logs) == len(rec.pruned), "a prune went unlogged"
    # Accounting: ladder + evaluated + pruned covers every candidate.
    assert len(rec.curve) + len(rec.pruned) == 1 + len(prune_candidates)

    payload = {
        "config": {
            "llm": LLM.name,
            "profile": PROFILE.name,
            "tenants": TENANTS,
            "chaos_tenants": CHAOS_TENANTS,
            "duration_s": DURATION_S,
            "chaos_duration_s": CHAOS_DURATION_S,
            "repeats": REPEATS,
            "sweep_candidates": len(candidates),
            "sweep_duration_s": SWEEP_DURATION_S,
            "seed": BENCH_SEED,
            "smoke": smoke(False, True),
        },
        "cluster": {
            "sim_events": res_fast.sim_events,
            "wall_fast_s": wall_fast,
            "wall_oracle_s": wall_oracle,
            "speedup": speedup,
            "events_per_second": events_per_s,
            "bit_identical": True,
            "chaos_bit_identical": True,
        },
        "sweep": {
            "wall_cached_s": wall_sweep,
            "candidates_per_second": candidates_per_s,
            "cached_byte_identical": True,
            "pruned": [p.as_dict() for p in rec.pruned],
        },
        "floors": {
            "speedup": MIN_SPEEDUP,
            "events_per_second": MIN_EVENTS_PER_S,
            "candidates_per_second": MIN_CANDIDATES_PER_S,
        },
    }
    path = os.path.join(results_dir, "BENCH_cluster_speed.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"\ncluster fast: {wall_fast:.3f}s ({events_per_s:,.0f} events/s)  "
        f"oracle: {wall_oracle:.3f}s  speedup: {speedup:.2f}x  "
        f"sweep: {candidates_per_s:.1f} cands/s"
        f"\n[report written to {path}]"
    )
