"""Router-policy comparison under bursty fleet traffic.

Beyond the paper's protocol: a 4-pod Llama-2-13b deployment on one
shared virtual clock is driven by 2-state MMPP on/off bursts, and the
three front-end routing policies are compared on throughput and tail
latency. Load-aware policies (least-loaded by committed batch weight,
join-shortest-queue) should hold p95 TTFT well below blind round-robin
when bursts land while some pods are still draining backlog.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, write_report
from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.simulation import ROUTERS, BurstyTraffic
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

LLM = "Llama-2-13b"
PROFILE = "1xA100-80GB"
PODS = 4
BURST_RATE = 10.0  # arrivals/s during ON bursts
MEAN_ON_S = 15.0
MEAN_OFF_S = 30.0
DURATION_S = 240.0


def test_fleet_routing_policies(benchmark, generator, results_dir):
    deployment = Deployment(
        llm=get_llm(LLM),
        profile=parse_profile(PROFILE),
        n_pods=PODS,
        max_batch_weight=20_000,
        generator=generator,
        seed=BENCH_SEED,
    )

    def run():
        results = {}
        for name, router_cls in sorted(ROUTERS.items()):
            traffic = BurstyTraffic(
                BURST_RATE,
                rng=derive_rng(BENCH_SEED, "bench-bursty"),
                mean_on_s=MEAN_ON_S,
                mean_off_s=MEAN_OFF_S,
            )
            results[name] = deployment.simulate(
                traffic,
                duration_s=DURATION_S,
                router=router_cls(),
                stream_label="bench-routing",
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, res in sorted(results.items()):
        rows.append(
            [
                name,
                res.arrivals,
                res.requests_completed,
                res.throughput_tokens_per_s,
                res.ttft.median_s,
                res.ttft.p95_s,
                res.ttft.p99_s,
                res.itl.p95_s,
            ]
        )
    report = format_table(
        ["router", "arrivals", "done", "tok/s", "ttft p50", "ttft p95",
         "ttft p99", "itl p95"],
        rows,
        floatfmt=".3f",
        title=(
            f"Routing policies: {PODS}x {PROFILE} {LLM}, MMPP bursts "
            f"({BURST_RATE}/s on, {MEAN_ON_S}s/{MEAN_OFF_S}s duty), "
            f"{DURATION_S:.0f}s:"
        ),
    )
    write_report(results_dir, "fleet_routing.txt", report)

    # Identical arrival process (same seed) regardless of routing policy.
    arrivals = {res.arrivals for res in results.values()}
    assert len(arrivals) == 1
    for res in results.values():
        assert res.requests_completed > 0
        assert np.isfinite(res.ttft.p95_s)
    # Load-aware routing should not lose to blind round-robin on tails.
    rr = results["round-robin"]
    best_aware = min(
        results["least-loaded"].ttft.p95_s,
        results["join-shortest-queue"].ttft.p95_s,
    )
    assert best_aware <= rr.ttft.p95_s * 1.10
