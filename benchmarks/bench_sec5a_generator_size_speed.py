"""§V-A size and sampling-speed comparison: generator vs trace replay.

Paper claims: (a) the joint-bin collection is extremely sparse (46.5k
non-empty bins vs 10.7e9 theoretically possible); (b) the generator is
far smaller than the traces it models (<1MB vs 1.6GB); (c) sampling from
the generator is ~35x faster than drawing raw requests from the traces
(22ms vs 770ms per 1000 requests); (d) generating 1000 requests takes
less than a typical single-token ITL.
"""

import time

from benchmarks.conftest import write_report
from repro.utils.tables import format_table
from repro.workload import TraceReplaySampler


def test_sec5a_generator_size_and_speed(benchmark, traces, generator, results_dir):
    model = generator.model
    replay = TraceReplaySampler(traces)

    # (a) sparsity.
    assert model.n_nonempty_bins < 1e-4 * model.n_theoretical_bins

    # (b) storage.
    assert generator.nbytes() < 0.5 * replay.nbytes()

    # (c) speed: columnar sampling (the generator's native path) vs
    # materializing raw requests from the trace store.
    def sample_generator():
        return model.sample(1000, rng=0)

    def sample_replay():
        return replay.sample_requests(1000, rng=0)

    benchmark.pedantic(sample_generator, rounds=20, iterations=1)
    t0 = time.perf_counter()
    reps = 5
    for _ in range(reps):
        sample_replay()
    replay_ms = (time.perf_counter() - t0) / reps * 1e3

    t0 = time.perf_counter()
    for _ in range(20):
        sample_generator()
    gen_ms = (time.perf_counter() - t0) / 20 * 1e3

    speedup = replay_ms / max(gen_ms, 1e-9)
    assert speedup > 5, f"generator should be much faster, got {speedup:.1f}x"
    # (d) 1000 requests in less than a typical ITL (~20ms+).
    assert gen_ms < 20.0

    rows = [
        ["non-empty joint bins", f"{model.n_nonempty_bins:,}"],
        ["theoretical bins", f"{model.n_theoretical_bins:.3g} (paper: 46.5k of 10.7e9)"],
        ["sparsity", f"{model.sparsity:.2e}"],
        ["generator size", f"{generator.nbytes() / 1e6:.2f} MB (paper: <1MB)"],
        ["trace-store size", f"{replay.nbytes() / 1e6:.1f} MB (paper: 1.6GB @17.3M reqs)"],
        ["sample 1000 (generator)", f"{gen_ms:.2f} ms (paper: 22ms)"],
        ["sample 1000 (trace replay)", f"{replay_ms:.1f} ms (paper: 770ms)"],
        ["speedup", f"{speedup:.1f}x (paper: 35x)"],
    ]
    report = format_table(
        ["quantity", "value"],
        rows,
        title="Sec V-A — workload-generator size and sampling speed:",
    )
    write_report(results_dir, "sec5a_generator_size_speed.txt", report)
