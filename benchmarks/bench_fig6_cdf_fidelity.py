"""Fig 6: marginal CDFs — empirical traces vs workload generator.

Paper claim: the generator preserves the marginal distributions of
parameters with both very high cardinality (input tokens) and low
cardinality (client batch size), plus mixed ones (temperature, which
has a large point mass at zero from greedy decoding).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, write_report
from repro.analysis import compare_marginals
from repro.utils.tables import format_table

PARAMS = ("input_tokens", "batch_size", "temperature")


def test_fig6_marginal_cdfs(benchmark, traces, generator, results_dir):
    comparisons = benchmark.pedantic(
        lambda: compare_marginals(
            traces, generator, params=PARAMS, n_samples=100_000, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )

    for c in comparisons.values():
        assert c.ks_distance < 0.05, f"{c.param}: KS {c.ks_distance:.3f} too large"

    # Render each CDF at a few quantile points, as the Fig 6 curves would.
    lines = []
    for c in comparisons.values():
        qs = np.linspace(0, len(c.grid) - 1, 7).astype(int)
        rows = [
            [f"{c.grid[i]:.3g}", c.cdf_trace[i], c.cdf_generated[i]] for i in qs
        ]
        lines.append(
            format_table(
                ["value", "CDF traces", "CDF generator"],
                rows,
                floatfmt=".3f",
                title=f"{c.param} (KS distance {c.ks_distance:.4f}):",
            )
        )
    report = "Fig 6 — marginal CDF fidelity (paper: curves overlap)\n\n" + "\n\n".join(
        lines
    )
    write_report(results_dir, "fig6_cdf_fidelity.txt", report)
