"""Chaos benchmarks: the simulator's fault layer under hard invariants.

Beyond the paper's protocol: LLM-Pilot's recommendations are only
trustworthy if the simulated fleet stays honest when pods die. Three
headline claims, each hard-asserted (smoke and full scale alike):

1. **Conservation under crashes.** Across seeds and crash modes every
   admitted request is accounted for — completed, still in flight, or
   explicitly lost — and requeued work re-enters the ledger exactly
   once.
2. **Bounded recovery after zone loss.** A threshold autoscaler facing
   a correlated zone outage re-converges: windowed p95 TTFT re-enters
   the SLO within a bounded recovery time.
3. **Admission isolates the blast radius.** When one tenant's zone
   burns, SLO-aware admission keeps the quiet neighbor's p95 within
   bound on the shared inventory.

The run writes ``BENCH_chaos.json`` (uploaded as a CI artifact) with
the measured recovery times, attainment and conservation ledgers.
"""

import json

from benchmarks.conftest import smoke, write_report
from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.simulation import (
    AdmissionController,
    Autoscaler,
    AutoscaleConfig,
    ClusterInventory,
    ClusterSimulator,
    FaultInjector,
    FaultSpec,
    LeastLoadedRouter,
    PoissonTraffic,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = "Llama-2-7b"
PROFILE = "1xA10-24GB"
MAX_BATCH_WEIGHT = 12_000
DURATION_S = smoke(240.0, 40.0)
WINDOW_S = smoke(10.0, 4.0)
SLO_P95_TTFT_S = 2.0

#: Aggregated across the three tests below; each rewrites the artifact
#: so a mid-suite failure still leaves the completed sections on disk.
_REPORT: dict = {"mode": "smoke" if DURATION_S < 240.0 else "full"}


def _flush_report(results_dir):
    write_report(
        results_dir, "BENCH_chaos.json", json.dumps(_REPORT, indent=2)
    )


def _deployment(generator, seed=0, n_pods=3, n_zones=1):
    return Deployment(
        llm=get_llm(LLM),
        profile=parse_profile(PROFILE),
        n_pods=n_pods,
        max_batch_weight=MAX_BATCH_WEIGHT,
        generator=generator,
        seed=seed,
        n_zones=n_zones,
    )


def test_conservation_under_crashes(benchmark, generator, results_dir):
    """Claim 1: no request leaks through a crash, any seed, any mode."""
    seeds = range(smoke(6, 3))

    def run():
        results = []
        for seed in seeds:
            faults = FaultInjector(
                [
                    FaultSpec(
                        kind="crash",
                        time_s=DURATION_S * 0.25,
                        mode="requeue",
                        restart_delay_s=DURATION_S * 0.1,
                    ),
                    FaultSpec(
                        kind="crash", time_s=DURATION_S * 0.5, mode="lose"
                    ),
                ],
                seed=spawn_seed(seed, "bench-chaos", "conservation"),
            )
            res = _deployment(generator, seed=seed).simulate(
                PoissonTraffic(3.0, rng=derive_rng(seed, "bench-chaos")),
                duration_s=DURATION_S,
                faults=faults,
            )
            results.append((seed, res))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    runs = []
    for seed, res in results:
        # The ledger must balance exactly — conservation is the product.
        res.verify_conservation()
        assert res.admitted + res.shed == res.arrivals, seed
        assert (
            res.completed_total + res.in_flight_end + res.lost == res.admitted
        ), seed
        crashes = [e for e in res.fault_events if e.kind == "crash"]
        assert len(crashes) == 2, seed
        assert res.requeued == sum(e.requeued for e in crashes), seed
        assert res.lost == sum(e.lost for e in crashes), seed
        runs.append(
            {
                "seed": seed,
                "arrivals": res.arrivals,
                "admitted": res.admitted,
                "completed": res.completed_total,
                "in_flight_end": res.in_flight_end,
                "requeued": res.requeued,
                "lost": res.lost,
            }
        )
    _REPORT["conservation"] = {"n_seeds": len(runs), "runs": runs}
    _flush_report(results_dir)


def test_autoscaler_reconverges_after_zone_loss(
    benchmark, generator, results_dir
):
    """Claim 2: zone loss degrades, the autoscaler recovers in bound."""
    outage_t = DURATION_S * 0.3
    recovery_bound_s = DURATION_S * 0.5

    def run():
        faults = FaultInjector(
            [
                FaultSpec(
                    kind="zone-outage",
                    time_s=outage_t,
                    zone="zone-1",
                    mode="requeue",
                    restart_delay_s=DURATION_S * 0.15,
                )
            ],
            seed=spawn_seed(0, "bench-chaos", "zone-loss"),
        )
        autoscaler = Autoscaler(
            ThresholdPolicy(slo_p95_ttft_s=SLO_P95_TTFT_S),
            AutoscaleConfig(
                decision_interval_s=smoke(10.0, 4.0),
                max_pods=9,
                cold_start_s=smoke(5.0, 2.0),
                metrics_window_s=smoke(20.0, 8.0),
            ),
        )
        return _deployment(generator, n_pods=6, n_zones=3).simulate(
            PoissonTraffic(3.0, rng=derive_rng(0, "bench-chaos-zone")),
            duration_s=DURATION_S,
            faults=faults,
            autoscaler=autoscaler,
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)

    res.verify_conservation()
    # Every pod the outage killed was in zone-1; how many there were
    # depends on where the autoscaler had taken the fleet by then.
    outages = [e for e in res.fault_events if e.kind == "zone-outage"]
    assert outages, [e.kind for e in res.fault_events]
    assert {e.zone for e in outages} == {"zone-1"}
    assert res.lost == 0  # requeue mode: degraded, never lossy
    recovery = res.recovery_time_s(SLO_P95_TTFT_S, window_s=WINDOW_S)
    # The autoscaler must actually re-converge, and within bound.
    assert recovery is not None
    assert recovery <= recovery_bound_s, recovery
    attainment = res.degraded_slo_attainment(SLO_P95_TTFT_S, window_s=WINDOW_S)
    assert attainment is not None and 0.0 <= attainment <= 1.0
    _REPORT["zone_loss"] = {
        "outage_time_s": outage_t,
        "pods_killed": len(outages),
        "requeued": res.requeued,
        "recovery_time_s": recovery,
        "recovery_bound_s": recovery_bound_s,
        "degraded_slo_attainment": attainment,
    }
    _flush_report(results_dir)


def test_admission_shields_quiet_tenant_from_zone_burn(
    benchmark, generator, results_dir
):
    """Claim 3: a neighbor's zone outage stays inside its blast radius."""
    burn_t = DURATION_S * 0.3
    quiet_bound_s = SLO_P95_TTFT_S

    def run():
        deployment = _deployment(generator, n_pods=2, n_zones=2)
        quiet = deployment.tenant_group(
            "quiet",
            PoissonTraffic(1.0, rng=derive_rng(0, "bench-chaos", "quiet")),
            router=AdmissionController(
                LeastLoadedRouter(),
                slo_p95_ttft_s=SLO_P95_TTFT_S,
                window_s=smoke(20.0, 8.0),
                mode="shed",
            ),
            slo_p95_ttft_s=SLO_P95_TTFT_S,
        )
        noisy = deployment.tenant_group(
            "noisy",
            PoissonTraffic(4.0, rng=derive_rng(0, "bench-chaos", "noisy")),
            autoscaler=Autoscaler(
                ThresholdPolicy(slo_p95_ttft_s=SLO_P95_TTFT_S),
                AutoscaleConfig(
                    decision_interval_s=smoke(10.0, 4.0),
                    max_pods=4,
                    cold_start_s=smoke(5.0, 2.0),
                    metrics_window_s=smoke(20.0, 8.0),
                ),
            ),
            slo_p95_ttft_s=SLO_P95_TTFT_S,
            faults=FaultInjector(
                [
                    FaultSpec(
                        kind="zone-outage",
                        time_s=burn_t,
                        zone="zone-0",
                        mode="requeue",
                        restart_delay_s=DURATION_S * 0.2,
                    )
                ],
                seed=spawn_seed(0, "bench-chaos", "burn"),
            ),
        )
        gpu = parse_profile(PROFILE).gpu.name
        inventory = ClusterInventory(capacity={gpu: 6})
        return ClusterSimulator([quiet, noisy], inventory).run(DURATION_S)

    res = benchmark.pedantic(run, rounds=1, iterations=1)

    res.verify_conservation()
    quiet_res = res.results["quiet"]
    noisy_res = res.results["noisy"]
    # The outage hit the noisy tenant and only the noisy tenant.
    assert {t for t, _ in res.fault_events()} == {"noisy"}
    assert noisy_res.requeued > 0
    assert quiet_res.lost == 0 and quiet_res.requeued == 0
    assert not quiet_res.fault_events
    # Admission keeps the quiet tenant's served tail within bound while
    # the neighbor's zone burns on the shared inventory.
    assert quiet_res.ttft.p95_s <= quiet_bound_s, quiet_res.ttft.p95_s
    noisy_recovery = res.recovery_time_s("noisy", window_s=WINDOW_S)
    _REPORT["noisy_zone_burn"] = {
        "burn_time_s": burn_t,
        "quiet_p95_ttft_s": quiet_res.ttft.p95_s,
        "quiet_bound_s": quiet_bound_s,
        "quiet_shed": quiet_res.shed,
        "noisy_requeued": noisy_res.requeued,
        "noisy_recovery_time_s": noisy_recovery,
    }
    _flush_report(results_dir)
