"""§III-A importance study: RF latency regression on the traces.

Paper claims: the RF achieves R^2 ~ 0.93 predicting per-request latency
from the request parameters, and the MDI importance ranks the number of
output tokens first, followed by input tokens, batch size and the
token-sampling parameters.
"""

from benchmarks.conftest import BENCH_SEED, write_report
from repro.analysis import latency_importance_study
from repro.utils.tables import format_table

SAMPLING_PARAMS = {"decoding_method", "temperature", "top_k", "top_p", "num_beams"}


def test_sec3a_latency_importance(benchmark, traces, results_dir):
    result = benchmark.pedantic(
        lambda: latency_importance_study(
            traces, n_estimators=30, max_rows=30_000, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )

    assert result.r2 > 0.9, f"paper reports R^2 ~ 0.93, got {result.r2:.3f}"
    ranking = result.ranking()
    # Output tokens dominate (max_new_tokens is its near-duplicate proxy).
    assert ranking[0] in ("output_tokens", "max_new_tokens")
    imp = result.importances
    # Token counts and batch size beat every nuisance flag.
    nuisance_max = max(
        v
        for k, v in imp.items()
        if k not in ("output_tokens", "max_new_tokens", "input_tokens",
                     "batch_size", "llm_index", "num_beams", "decoding_method")
        and k not in SAMPLING_PARAMS
    )
    assert imp["output_tokens"] > 10 * nuisance_max
    assert imp["batch_size"] > nuisance_max
    assert imp["input_tokens"] > nuisance_max

    rows = [[k, v] for k, v in sorted(imp.items(), key=lambda kv: -kv[1])[:12]]
    report = format_table(
        ["parameter", "MDI importance"],
        rows,
        floatfmt=".4f",
        title=(
            "Sec III-A — RF latency model on traces "
            f"(paper: R^2 ~ 0.93, output > input > batch > sampling; "
            f"measured R^2 = {result.r2:.3f})"
        ),
    )
    write_report(results_dir, "sec3a_importance.txt", report)
