"""Fig 7: TTFT / ITL vs throughput, and ITL vs throughput-per-dollar.

Paper setting: google/flan-t5-xxl across all feasible GPU profiles,
1..128 users. Claims reproduced:

* TTFT grows with the number of concurrent users (prefill is
  compute-bound) and jumps for weak GPUs at high load (queueing);
* ITL stays near-flat until memory saturates, then grows while
  throughput stops improving; profiles with more memory saturate later
  and reach higher throughput at lower ITL;
* H100 profiles win on absolute throughput, but A100/T4 profiles win
  on throughput per dollar (Fig 7c).
"""

import numpy as np

from benchmarks.conftest import fidelity_assert, write_report
from repro.hardware import aws_like_pricing, parse_profile
from repro.utils.tables import format_table

LLM = "google/flan-t5-xxl"


def test_fig7_latency_throughput_tradeoffs(benchmark, full_dataset, results_dir):
    pricing = aws_like_pricing()
    ds = benchmark.pedantic(
        lambda: full_dataset.filter(llm=LLM), rounds=1, iterations=1
    )
    profiles = ds.profiles()
    assert profiles, "flan-t5-xxl must be feasible somewhere"

    lines = []
    peak = {}
    for prof in profiles:
        users, ttft = ds.series(LLM, prof, "ttft_median_s")
        _, itl = ds.series(LLM, prof, "itl_median_s")
        _, tput = ds.series(LLM, prof, "throughput_tokens_per_s")
        cost = pricing.pod_cost(parse_profile(prof))
        peak[prof] = (float(tput.max()), float(tput.max()) / cost, float(itl[0]))

        # Fig 7a/b shape checks per profile: TTFT grows with load (small
        # relative + absolute noise tolerance at light load).
        fidelity_assert(
            np.all(np.diff(ttft) > -(0.25 * np.abs(ttft[:-1]) + 0.05)), prof
        )
        fidelity_assert(
            itl[-1] >= itl[0] * 0.95, f"{prof}: ITL should not improve with load"
        )

        rows = [
            [int(u), t, i * 1e3, p, p / cost]
            for u, t, i, p in zip(users, ttft, itl, tput)
        ]
        lines.append(
            format_table(
                ["users", "TTFT (s)", "ITL (ms)", "tokens/s", "tokens/s per $"],
                rows,
                floatfmt=".2f",
                title=f"{prof} (pod cost ${cost:.2f}/h):",
            )
        )

    # Fig 7c ordering claims.
    h100_peak = max(v[0] for p, v in peak.items() if "H100" in p)
    fidelity_assert(
        h100_peak == max(v[0] for v in peak.values()),
        "H100 must reach the highest absolute throughput",
    )
    h100_per_dollar = max(v[1] for p, v in peak.items() if "H100" in p)
    cheap_per_dollar = max(
        v[1] for p, v in peak.items() if ("T4" in p or "A100" in p)
    )
    fidelity_assert(
        cheap_per_dollar > h100_per_dollar,
        "A100/T4 profiles must beat H100 on throughput per dollar",
    )
    # The fastest single-user ITL belongs to an H100 profile (highest
    # memory bandwidth; tensor-parallel H100 variants divide the traffic).
    best_itl_profile = min(peak, key=lambda p: peak[p][2])
    fidelity_assert("H100" in best_itl_profile, best_itl_profile)

    report = (
        f"Fig 7 — {LLM} across GPU profiles "
        "(paper: H100 best absolute; A100/T4 best per dollar)\n\n"
        + "\n\n".join(lines)
    )
    write_report(results_dir, "fig7_tradeoffs.txt", report)
