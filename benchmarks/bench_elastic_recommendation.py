"""Elastic recommendation vs the paper's peak-sized static answer.

Beyond the paper's protocol: Eq. (2) sizes a deployment once, for the
peak. The elastic recommender instead sweeps (policy, min_pods,
max_pods) candidates through the fleet simulator under the same diurnal
traffic and scores each with the cost objective (pod-second bill + SLO
penalty). At full scale the chosen adaptive config must beat the
peak-sized static fleet on cost at equal-or-better p95 SLO attainment —
the whole point of exploiting elasticity.

The second experiment closes the cluster loop: on the noisy-neighbor
contention scenario the feedback scheduler re-schedules/right-sizes the
tenants whose scale-ups the inventory keeps rejecting, and the
denied/clipped event rate must fall across iterations until the
co-simulation runs clean.
"""

from benchmarks.conftest import BENCH_SEED, fidelity_assert, smoke, write_report
from repro.cluster import Deployment, FeedbackScheduler, TenantRequest
from repro.hardware import aws_like_pricing, parse_profile
from repro.models import get_llm
from repro.recommendation import CostObjective, ElasticRecommender, LinearSLOPenalty
from repro.recommendation.recommender import ProfileAssessment
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    BurstyTraffic,
    DiurnalTraffic,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

LLM = "Llama-2-13b"
PROFILE = "1xA100-80GB"
MAX_BATCH_WEIGHT = 20_000
PEAK_PODS = 4  # the paper-style static answer, sized for the diurnal crest
DURATION_S = smoke(480.0, 120.0)
PERIOD_S = smoke(240.0, 120.0)
BASE_RATE = 3.0
AMPLITUDE = 0.8
SLO_P95_TTFT_S = 15.0  # end-to-end target incl. scale-up transients
PENALTY_PER_HOUR = 200.0

FEEDBACK_DURATION_S = smoke(300.0, 60.0)
FEEDBACK_CAPACITY = 4


def _deployment(generator):
    return Deployment(
        llm=get_llm(LLM),
        profile=parse_profile(PROFILE),
        n_pods=1,
        max_batch_weight=MAX_BATCH_WEIGHT,
        generator=generator,
        seed=BENCH_SEED,
    )


def test_elastic_beats_peak_static(benchmark, generator, results_dir):
    objective = CostObjective(
        pricing=aws_like_pricing(),
        penalty=LinearSLOPenalty(
            slo_p95_ttft_s=SLO_P95_TTFT_S, penalty_per_hour=PENALTY_PER_HOUR
        ),
    )
    recommender = ElasticRecommender(
        _deployment(generator),
        lambda: DiurnalTraffic(
            BASE_RATE,
            rng=derive_rng(BENCH_SEED, "bench-elastic"),
            amplitude=AMPLITUDE,
            period_s=PERIOD_S,
        ),
        objective,
        slo_p95_ttft_s=SLO_P95_TTFT_S,
        duration_s=DURATION_S,
        metrics_window_s=20.0,
        stream_label="elastic-bench",
    )

    def run():
        return recommender.recommend(static_pods=PEAK_PODS)

    rec = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [p.label, p.pod_hours, p.compute_cost, p.slo_penalty, p.total_cost,
         p.p95_ttft_s, "yes" if p.meets_slo else "NO", p.scale_events]
        for p in rec.curve
    ]
    report = format_table(
        ["config", "pod-h", "compute $", "penalty $", "total $",
         "ttft p95", "slo", "events"],
        rows,
        floatfmt=".3f",
        title=(
            f"Elastic sweep for {LLM} on {PROFILE} ({DURATION_S:.0f}s diurnal, "
            f"SLO p95 TTFT <= {SLO_P95_TTFT_S:.0f}s, static peak "
            f"{PEAK_PODS} pods):\nchosen {rec.chosen.label}, saves "
            f"${rec.savings:.3f} ({rec.savings_fraction:.0%}) vs static"
        ),
    )
    write_report(results_dir, "elastic_recommendation.txt", report)

    # Structural invariants, any scale: the baseline is on the curve and
    # every candidate conserved its requests (checked inside evaluate()).
    assert rec.static in rec.curve
    assert rec.chosen in rec.curve
    assert all(p.pod_hours >= 0 for p in rec.curve)
    # The paper-shape claim: the chosen elastic config is adaptive, holds
    # the SLO like the peak-sized static fleet does, and bills fewer
    # dollars — strictly positive savings at equal-or-better attainment.
    fidelity_assert(rec.static.meets_slo, rec.static.p95_ttft_s)
    fidelity_assert(rec.chosen.meets_slo, rec.chosen.p95_ttft_s)
    fidelity_assert(rec.chosen.policy != "static", rec.chosen.label)
    fidelity_assert(
        rec.chosen.compute_cost < rec.static.compute_cost,
        (rec.chosen.compute_cost, rec.static.compute_cost),
    )
    fidelity_assert(rec.savings > 0, rec.savings)


def _feedback_inputs(generator):
    profile = parse_profile(PROFILE)
    pod_cost = aws_like_pricing().pod_cost(profile)

    def option(n_pods):
        return ProfileAssessment(
            profile=profile.name, umax=10, n_pods=n_pods,
            pod_cost=pod_cost, total_cost=pod_cost * n_pods,
        )

    def scaler(max_pods):
        return Autoscaler(
            ThresholdPolicy(slo_p95_ttft_s=2.0),
            AutoscaleConfig(
                decision_interval_s=10.0, max_pods=max_pods,
                cold_start_s=5.0, metrics_window_s=20.0,
            ),
        )

    requests = [
        TenantRequest("quiet", (option(1),)),
        TenantRequest("noisy", (option(1),)),
    ]
    deployments = {name: _deployment(generator) for name in ("quiet", "noisy")}
    factories = {
        "quiet": lambda: DiurnalTraffic(
            2.0,
            rng=derive_rng(BENCH_SEED, "bench-feedback", "quiet"),
            amplitude=0.8,
            period_s=smoke(240.0, 60.0),
        ),
        "noisy": lambda: BurstyTraffic(
            8.0,
            rng=derive_rng(BENCH_SEED, "bench-feedback", "noisy"),
            mean_on_s=30.0,
            mean_off_s=30.0,
        ),
    }
    autoscalers = {"quiet": scaler(3), "noisy": scaler(6)}
    return requests, deployments, factories, autoscalers


def test_feedback_scheduler_reduces_contention(benchmark, generator, results_dir):
    requests, deployments, factories, autoscalers = _feedback_inputs(generator)
    scheduler = FeedbackScheduler(
        capacity={parse_profile(PROFILE).gpu.name: FEEDBACK_CAPACITY},
        duration_s=FEEDBACK_DURATION_S,
        max_iterations=4,
    )

    def run():
        return scheduler.run(
            requests, deployments, factories, autoscalers=autoscalers
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for i, it in enumerate(outcome.iterations):
        for p in it.placements:
            rows.append(
                [
                    i,
                    p.tenant,
                    p.n_pods,
                    it.contended[p.tenant],
                    it.result.results[p.tenant].ttft.p95_s,
                    it.adjustments.get(p.tenant, "-"),
                ]
            )
    report = format_table(
        ["iter", "tenant", "pods", "denied/clipped", "ttft p95", "adjustment"],
        rows,
        floatfmt=".2f",
        title=(
            f"Feedback scheduling on {FEEDBACK_CAPACITY}x "
            f"{parse_profile(PROFILE).gpu.name} ({FEEDBACK_DURATION_S:.0f}s "
            f"per iteration; contended rate/min {outcome.contended_rates()}, "
            f"converged={outcome.converged}):"
        ),
    )
    write_report(results_dir, "feedback_scheduling.txt", report)

    rates = outcome.contended_rates()
    # Hard invariants at any scale: conservation checked inside run();
    # rates are non-negative and the trajectory never grows.
    assert all(r >= 0 for r in rates)
    assert all(b <= a for a, b in zip(rates, rates[1:]))
    if outcome.converged:
        assert outcome.contended_totals()[-1] == 0
    # Paper-shape claims: the first packing actually contends, and the
    # feedback loop strictly reduces the denied/clipped rate.
    fidelity_assert(rates[0] > 0, rates)
    fidelity_assert(len(rates) > 1 and rates[-1] < rates[0], rates)
    fidelity_assert(outcome.converged, rates)
