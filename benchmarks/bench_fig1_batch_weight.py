"""Fig 1: median end-to-end latency vs maximum batch weight.

Paper setting: bigcode/starcoder on one A100, 128 concurrent users.
Claim to reproduce: latency improves as the maximum batch weight grows;
the largest weight achieves roughly 2.8x lower end-to-end latency than
the smallest.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, write_report
from repro.characterization import BatchWeightTuner, run_load_test
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.utils.rng import spawn_seed
from repro.utils.tables import format_table

LLM = "bigcode/starcoder"
PROFILE = "1xA100-40GB"
USERS = 128
#: Batch weights as multiples of the workload's largest request weight.
#: Starcoder's multi-query attention makes the memory-limited maximum
#: enormous, so the sweep spans the *binding* region the paper's Fig 1
#: explores: from barely-one-request up to (capped at) the tuned maximum.
MULTIPLIERS = (1, 2, 4, 8, 16)


def test_fig1_latency_vs_batch_weight(benchmark, generator, results_dir):
    llm = get_llm(LLM)
    profile = parse_profile(PROFILE)
    tuned = BatchWeightTuner(llm, profile).tune()
    assert tuned.feasible
    floor = generator.max_request_weight()

    def run():
        rows = []
        for mult in MULTIPLIERS:
            weight = min(floor * mult, tuned.max_batch_weight)
            seed = spawn_seed(BENCH_SEED, "fig1", mult)
            engine = ContinuousBatchingEngine(
                llm, profile, max_batch_weight=weight, seed=seed
            )
            # Long window + warmup: at the smallest weights a request's
            # queue+process cycle spans minutes, and a short window would
            # only observe the lucky early completions.
            res = run_load_test(
                engine,
                generator,
                concurrent_users=USERS,
                duration_s=900.0,
                warmup_s=60.0,
                seed=seed,
            )
            rows.append((weight, res.e2e_median_s, res.throughput_tokens_per_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    weights = [r[0] for r in rows]
    latencies = [r[1] for r in rows]
    assert all(np.isfinite(latencies)), "every weight must produce completions"
    # Larger batch weight => better median e2e latency (paper: ~2.8x
    # between the extremes; we assert a substantial monotone-ish gain).
    ratio = latencies[0] / latencies[-1]
    assert weights == sorted(weights)
    assert ratio > 1.5, f"largest weight should be much faster, got {ratio:.2f}x"

    table = format_table(
        ["max batch weight", "median e2e latency (s)", "tokens/s"],
        rows,
        floatfmt=".2f",
        title=(
            f"Fig 1 — {LLM} on {PROFILE}, {USERS} users "
            f"(paper: largest weight ~2.8x lower latency; measured {ratio:.2f}x)"
        ),
    )
    write_report(results_dir, "fig1_batch_weight.txt", table)
