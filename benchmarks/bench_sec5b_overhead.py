"""§V-B characterization overhead estimate.

Paper claim: collecting a dataset of the paper's size takes about 8
hours on the cluster — roughly 5h of batch-weight tuning (~30min/LLM)
plus 3h of load testing (~20min/LLM), parallelized over GPU profiles.
We replay the same accounting over the simulated campaign.
"""

from benchmarks.conftest import fidelity_assert, write_report
from repro.utils.tables import format_table


def test_sec5b_characterization_overhead(benchmark, full_outcome, results_dir):
    outcome = benchmark.pedantic(lambda: full_outcome, rounds=1, iterations=1)

    total_h = outcome.total_overhead_s / 3600.0
    serial_h = outcome.serial_overhead_s / 3600.0
    fidelity_assert(
        1.0 < total_h < 24.0, f"parallel overhead {total_h:.1f}h implausible"
    )
    assert serial_h > total_h
    assert len(outcome.tuned_weights) >= 60  # feasible pairs characterized

    rows = [
        ["feasible (LLM, profile) pairs", f"{len(outcome.tuned_weights)}"],
        ["measurements collected", f"{len(outcome.dataset)}"],
        [
            "overhead, parallelized over GPU profiles",
            f"{total_h:.1f} h (paper: ~8h)",
        ],
        ["overhead, fully serial", f"{serial_h:.1f} h"],
    ]
    per_profile = sorted(
        outcome.overhead_by_profile_s.items(), key=lambda kv: -kv[1]
    )[:5]
    for name, seconds in per_profile:
        rows.append([f"  busiest profile: {name}", f"{seconds / 3600:.1f} h"])
    report = format_table(
        ["quantity", "value"],
        rows,
        title="Sec V-B — characterization overhead accounting:",
    )
    write_report(results_dir, "sec5b_overhead.txt", report)
