"""Autoscaling policies vs. a statically peak-sized fleet.

Beyond the paper's protocol: the paper recommends one fixed pod count
per tenant, which under time-varying traffic must be sized for the
*peak*. Here a Llama-2-13b deployment faces a diurnal day/night cycle
and 2-state MMPP bursts, and the three adaptive policies (reactive
threshold on windowed p95 TTFT, HPA-style target utilization, and
predictive arrival-rate extrapolation) are compared against that
peak-sized static fleet on tail latency and the pod-seconds actually
billed. Each adaptive policy should hold the p95 TTFT SLO while
provisioning well below peak through the trough; the no-op policy must
remain seed-for-seed identical to the static fleet.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, fidelity_assert, smoke, write_report
from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    BurstyTraffic,
    DiurnalTraffic,
    NoOpPolicy,
    PredictivePolicy,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

LLM = "Llama-2-13b"
PROFILE = "1xA100-80GB"
MAX_BATCH_WEIGHT = 20_000
PEAK_PODS = 4  # static fleet sized for the diurnal crest
MAX_PODS = 6
BASE_RATE = 3.0  # diurnal mean arrivals/s (crest 5.4/s, trough 0.6/s)
AMPLITUDE = 0.8
PERIOD_S = smoke(240.0, 120.0)
DURATION_S = smoke(480.0, 120.0)
BURST_RATE = 8.0
SLO_P95_TTFT_S = 15.0  # end-to-end target incl. scale-up transients
POD_RATE_PER_S = 1.0  # sustainable single-pod arrival rate at this weight


def _autoscaler(policy):
    return Autoscaler(
        policy,
        AutoscaleConfig(
            decision_interval_s=15.0,
            min_pods=1,
            max_pods=MAX_PODS,
            cold_start_s=10.0,
            metrics_window_s=20.0,
        ),
    )


def _policies():
    return {
        "threshold": ThresholdPolicy(slo_p95_ttft_s=2.0),
        "target-utilization": TargetUtilizationPolicy(target=0.5),
        "predictive": PredictivePolicy(
            requests_per_pod_per_s=POD_RATE_PER_S,
            horizon_s=30.0,
            fit_windows=4,
        ),
    }


def _diurnal(label):
    return DiurnalTraffic(
        BASE_RATE,
        rng=derive_rng(BENCH_SEED, "bench-autoscale", label),
        amplitude=AMPLITUDE,
        period_s=PERIOD_S,
    )


def _bursty(label):
    return BurstyTraffic(
        BURST_RATE,
        rng=derive_rng(BENCH_SEED, "bench-autoscale-bursty", label),
        mean_on_s=20.0,
        mean_off_s=40.0,
    )


def _deployment(generator, n_pods):
    return Deployment(
        llm=get_llm(LLM),
        profile=parse_profile(PROFILE),
        n_pods=n_pods,
        max_batch_weight=MAX_BATCH_WEIGHT,
        generator=generator,
        seed=BENCH_SEED,
    )


def _row(name, res):
    return [
        name,
        res.arrivals,
        res.requests_completed,
        res.throughput_tokens_per_s,
        res.ttft.p95_s,
        res.pod_seconds,
        res.n_pods,
        len(res.scale_events),
    ]


def test_autoscaling_policies(benchmark, generator, results_dir):
    elastic = _deployment(generator, n_pods=1)
    static_peak = _deployment(generator, n_pods=PEAK_PODS)

    def run():
        results = {}
        for scenario, make_traffic in (("diurnal", _diurnal), ("bursty", _bursty)):
            per = {}
            per["static-peak"] = static_peak.simulate(
                make_traffic("static-peak"),
                duration_s=DURATION_S,
                stream_label=f"{scenario}-autoscale",
            )
            for name, policy in _policies().items():
                per[name] = elastic.simulate(
                    make_traffic(name),
                    duration_s=DURATION_S,
                    stream_label=f"{scenario}-autoscale",
                    autoscaler=_autoscaler(policy),
                )
            results[scenario] = per
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    reports = []
    for scenario, per in results.items():
        rows = [_row(name, res) for name, res in per.items()]
        reports.append(
            format_table(
                ["policy", "arrivals", "done", "tok/s", "ttft p95",
                 "pod-sec", "pods end", "events"],
                rows,
                floatfmt=".2f",
                title=(
                    f"{scenario} traffic on {PROFILE} {LLM} "
                    f"({DURATION_S:.0f}s, SLO p95 TTFT <= {SLO_P95_TTFT_S:.0f}s; "
                    f"static sized for peak at {PEAK_PODS} pods):"
                ),
            )
        )
    write_report(results_dir, "autoscaling.txt", "\n\n".join(reports))

    for scenario, per in results.items():
        for name, res in per.items():
            res.verify_conservation()
            assert res.requests_completed > 0, (scenario, name)
        # Same seed => identical offered arrival process per policy label
        # is NOT guaranteed (each label derives its own stream), but the
        # static fleet and every policy see the same workload generator.
        for name in _policies():
            fidelity_assert(per[name].scale_events, (scenario, name))

    diurnal = results["diurnal"]
    static = diurnal["static-peak"]
    fidelity_assert(static.ttft.p95_s <= SLO_P95_TTFT_S)
    for name in _policies():
        res = diurnal[name]
        # Each adaptive policy holds the SLO with fewer pod-seconds than
        # the peak-sized static fleet burns.
        fidelity_assert(res.ttft.p95_s <= SLO_P95_TTFT_S, (name, res.ttft.p95_s))
        fidelity_assert(res.pod_seconds < static.pod_seconds, (name, res.pod_seconds))


def test_noop_policy_matches_static_fleet(benchmark, generator, results_dir):
    """The no-op policy is pure observation: seed-for-seed identical."""
    deployment = _deployment(generator, n_pods=2)
    duration = smoke(120.0, 30.0)

    def run():
        static = deployment.simulate(
            _diurnal("noop-golden"), duration_s=duration, stream_label="noop-golden"
        )
        noop = deployment.simulate(
            _diurnal("noop-golden"),
            duration_s=duration,
            stream_label="noop-golden",
            autoscaler=_autoscaler(NoOpPolicy()),
        )
        return static, noop

    static, noop = benchmark.pedantic(run, rounds=1, iterations=1)
    assert noop.scale_events == []
    assert noop.arrivals == static.arrivals
    assert noop.tokens_generated == static.tokens_generated
    assert noop.ttft.median_s == static.ttft.median_s
    assert noop.ttft.p95_s == static.ttft.p95_s
    assert noop.itl.median_s == static.itl.median_s
    assert noop.e2e.median_s == static.e2e.median_s
    assert np.array_equal(
        noop.metrics.itl_samples(), static.metrics.itl_samples()
    )
