"""Table III: feasibility of LLM x GPU-profile combinations.

Paper legend: data collected (Y), memory too small for the LLM plus the
workload generator's largest requests (x), software/hardware gates (-).
Claims reproduced: the full 10x14 grid, with the paper's structural
facts — flan-t5-xl fits everywhere; TGIS tensor-parallel gates for
mpt/mt0/codegen2; flash-attention models unavailable on V100; the
single-GPU small-memory columns mostly infeasible for 13B+ models.
"""

from benchmarks.conftest import write_report
from repro.characterization import Feasibility
from repro.hardware import default_profiles
from repro.models import LLM_CATALOG
from repro.utils.tables import format_matrix

#: The paper's Table III grid (Y=checkmark, x=memory, -=unsupported),
#: columns in default_profiles() order: H100 x1/2/4, A100-40 x1/2/4,
#: A10 x1/2, T4 x1/2/4, V100 x1/2/4.
PAPER_TABLE3 = {
    "google/flan-t5-xl":       "YYY YYY YY YYY YYY",
    "google/flan-t5-xxl":      "YYY YYY xY xxY xxY",
    "google/flan-ul2":         "YYY xYY xx xxx xxx",
    "ibm/mpt-7b-instruct2":    "Y-- Y-- x- x-- x--",
    "bigscience/mt0-xxl":      "Y-- Y-- x- x-- x--",
    "Salesforce/codegen2-16B": "Y-- x-- x- x-- x--",
    "Llama-2-7b":              "YYY YYY YY xYY ---",
    "Llama-2-13b":             "YYY YYY xY xxY ---",
    "EleutherAI/gpt-neox-20b": "YYY xYY xY xxY ---",
    "bigcode/starcoder":       "YYY YYY xY xxY ---",
}


def test_table3_feasibility_matrix(benchmark, char_tool, results_dir):
    llms = list(LLM_CATALOG.values())
    profiles = default_profiles()
    matrix = benchmark.pedantic(
        lambda: char_tool.feasibility_matrix(llms, profiles),
        rounds=1,
        iterations=1,
    )

    total = 0
    agree = 0
    rows = []
    for llm in llms:
        paper_row = PAPER_TABLE3[llm.name].replace(" ", "")
        ours_row = []
        for j, p in enumerate(profiles):
            ours = matrix[(llm.name, p.name)].symbol
            ours_row.append(ours)
            total += 1
            agree += ours == paper_row[j]
        rows.append(ours_row)

    agreement = agree / total
    # The paper's grid is measured on real hardware; our memory model
    # must agree on the large majority of the 140 cells.
    assert agreement > 0.85, f"Table III agreement only {agreement:.2f}"

    # Structural facts.
    assert all(
        matrix[("google/flan-t5-xl", p.name)] is Feasibility.OK for p in profiles
    )
    for name in ("ibm/mpt-7b-instruct2", "bigscience/mt0-xxl", "Salesforce/codegen2-16B"):
        assert all(
            matrix[(name, p.name)] is Feasibility.UNSUPPORTED
            for p in profiles
            if p.count > 1
        )
    for name in ("Llama-2-7b", "Llama-2-13b", "EleutherAI/gpt-neox-20b", "bigcode/starcoder"):
        assert all(
            matrix[(name, p.name)] is Feasibility.UNSUPPORTED
            for p in profiles
            if p.gpu.name == "V100-16GB"
        )

    report = format_matrix(
        [llm.name for llm in llms],
        [p.name.replace("-80GB", "").replace("-40GB", "").replace("-24GB", "").replace("-16GB", "") for p in profiles],
        rows,
        corner="LLM \\ profile",
        title=(
            "Table III — feasibility (Y data collected, x out-of-memory, "
            f"- software/hardware gate); cell agreement with paper: "
            f"{agreement * 100:.0f}%"
        ),
    )
    write_report(results_dir, "table3_feasibility.txt", report)
