"""Table IV: comparison of LLM benchmarking tools.

The paper's Table IV is a qualitative survey; the quantitative row we
can verify is LLM-Pilot's own: workload based on real (trace) data,
maximum batch-weight tuning, and a released dataset covering 10 LLMs on
14 GPU profiles. We verify those properties against the artifacts this
repository actually produces.
"""

from benchmarks.conftest import write_report
from repro.hardware import default_profiles
from repro.models import LLM_CATALOG
from repro.utils.tables import format_table

#: (tool, workload from real data, batch-weight tuning, #LLMs, #GPUs)
RELATED_TOOLS = [
    ("Optimum", "no", "no", 34, 2),
    ("LLMPerf", "no", "no", 3, 1),
    ("Inference benchmark", "no", "no", 1, 1),
    ("Fleece", "yes", "no", 5, 5),
    ("vLLM", "yes", "no", 3, 2),
    ("MLPerf", "yes", "no", 2, 10),
]


def test_table4_tool_comparison(benchmark, full_outcome, generator, results_dir):
    outcome = benchmark.pedantic(lambda: full_outcome, rounds=1, iterations=1)

    ds = outcome.dataset
    n_llms = len(ds.llms())
    n_profiles = len(ds.profiles())

    # LLM-Pilot's Table IV row, verified against our artifacts.
    assert n_llms == len(LLM_CATALOG) == 10
    assert n_profiles >= 10  # feasible subset of the 14 profiles
    assert len(default_profiles()) == 14
    # Workload derives from (synthetic) trace data: the generator was fit
    # on a trace collection, not hand-written distributions.
    assert generator.model.counts.sum() > 0
    # Batch weight tuned per combination: tuned weights vary across profiles.
    weights_per_llm = {}
    for (llm, prof), w in outcome.tuned_weights.items():
        weights_per_llm.setdefault(llm, set()).add(w)
    assert any(len(ws) > 1 for ws in weights_per_llm.values())

    rows = [list(r) for r in RELATED_TOOLS]
    rows.append(["LLM-Pilot (ours)", "yes", "yes", n_llms, 14])
    report = format_table(
        ["tool", "real-data workload", "batch-weight tuning", "#LLMs", "#GPUs"],
        rows,
        title=(
            "Table IV — benchmarking-tool comparison "
            "(our row verified against this repository's artifacts)"
        ),
    )
    write_report(results_dir, "table4_tool_comparison.txt", report)
