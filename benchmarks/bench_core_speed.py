"""Fast-core speed gate: heap frontier + vectorized stepping vs oracle.

The fast simulation core (``fast=True``: heap-indexed event frontier in
:class:`FleetSimulator` plus the vectorized decode kernel in
:class:`ContinuousBatchingEngine`) is only allowed to exist because it
is *bit-identical* to the straight-line oracle path (``fast=False``) —
same floating-point expressions, same RNG draw sequence, same event
order. This benchmark enforces both halves of that contract at fleet
scale:

1. every scalar field and latency distribution of the fast run equals
   the oracle run exactly (no tolerance), and
2. the fast core clears a hard events/sec floor and a minimum speedup
   over the oracle.

Timings use min-of-N interleaved repeats so a background hiccup on the
CI machine hits both paths equally instead of poisoning the ratio. The
speedup widens with pod count (the oracle's frontier scan is O(pods)
per event), so the gate runs a deliberately large fleet. Smoke mode
keeps the bit-identity assertions at full strength but relaxes the
timing floors — a 2-core CI runner proves correctness, not throughput.

Emits ``BENCH_core_speed.json`` with the measured rates and config.
"""

import json
import os
import time

from benchmarks.conftest import BENCH_SEED, smoke
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.simulation import (
    ClosedLoopTraffic,
    FleetSimulator,
    LeastLoadedRouter,
    RequestSource,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-40GB")

PODS = smoke(96, 24)
USERS = smoke(6144, 1536)
WEIGHT = 120_000
DURATION_S = smoke(60.0, 30.0)
REPEATS = smoke(3, 2)

#: Hard floors. Full scale was measured at ~37k events/s and ~3.8x on a
#: warm machine; the gates leave headroom for slower hardware while
#: still catching an accidental return to the O(pods) scan or the
#: scalar decode loop. Smoke floors only prove the fast path is not
#: pathologically slower than the oracle.
MIN_EVENTS_PER_S = smoke(10_000.0, 5_000.0)
MIN_SPEEDUP = smoke(3.0, 1.3)

#: FleetResult fields that must match exactly between the two paths.
EXACT_FIELDS = (
    "time_s", "arrivals", "requests_completed", "tokens_generated",
    "throughput_tokens_per_s", "admitted", "shed", "deferrals",
    "completed_total", "in_flight_end", "pod_seconds",
)


def _build_fleet(generator, fast):
    pods = [
        ContinuousBatchingEngine(
            LLM, PROFILE, max_batch_weight=WEIGHT,
            seed=spawn_seed(BENCH_SEED, "pod", i), fast=fast,
        )
        for i in range(PODS)
    ]
    source = RequestSource(
        generator, derive_rng(BENCH_SEED, "core-speed", USERS), WEIGHT
    )
    return FleetSimulator(
        pods, ClosedLoopTraffic(USERS), LeastLoadedRouter(), source, fast=fast
    )


def _timed_run(generator, fast):
    fleet = _build_fleet(generator, fast)
    t0 = time.perf_counter()
    result = fleet.run(duration_s=DURATION_S)
    return result, time.perf_counter() - t0


def test_core_speed_gate(generator, results_dir):
    wall_fast = wall_oracle = float("inf")
    res_fast = res_oracle = None
    for _ in range(REPEATS):
        res_fast, wall = _timed_run(generator, fast=True)
        wall_fast = min(wall_fast, wall)
        res_oracle, wall = _timed_run(generator, fast=False)
        wall_oracle = min(wall_oracle, wall)

    # --- bit-identity gate (full strength in every mode) -------------------
    for field in EXACT_FIELDS:
        fast_value = getattr(res_fast, field)
        oracle_value = getattr(res_oracle, field)
        assert fast_value == oracle_value, (
            f"fast core diverged from oracle on {field}: "
            f"{fast_value!r} != {oracle_value!r}"
        )
    for dist in ("ttft", "itl", "e2e"):
        assert getattr(res_fast, dist) == getattr(res_oracle, dist), (
            f"fast core diverged from oracle on the {dist} distribution"
        )
    assert res_fast.sim_events == res_oracle.sim_events

    # --- throughput gate ---------------------------------------------------
    events_per_s = res_fast.sim_events / wall_fast
    speedup = wall_oracle / wall_fast
    assert res_fast.sim_events > 0
    assert res_fast.events_per_second > 0  # self-timed field is populated
    assert events_per_s >= MIN_EVENTS_PER_S, (
        f"fast core too slow: {events_per_s:,.0f} events/s "
        f"< floor {MIN_EVENTS_PER_S:,.0f}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast core speedup {speedup:.2f}x < floor {MIN_SPEEDUP:.1f}x "
        f"(fast {wall_fast:.3f}s vs oracle {wall_oracle:.3f}s)"
    )

    payload = {
        "config": {
            "llm": LLM.name,
            "profile": PROFILE.name,
            "pods": PODS,
            "users": USERS,
            "max_batch_weight": WEIGHT,
            "duration_s": DURATION_S,
            "repeats": REPEATS,
            "seed": BENCH_SEED,
            "smoke": smoke(False, True),
        },
        "sim_events": res_fast.sim_events,
        "wall_fast_s": wall_fast,
        "wall_oracle_s": wall_oracle,
        "events_per_second": events_per_s,
        "speedup": speedup,
        "floors": {
            "events_per_second": MIN_EVENTS_PER_S,
            "speedup": MIN_SPEEDUP,
        },
        "bit_identical": True,
    }
    path = os.path.join(results_dir, "BENCH_core_speed.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"\nfast: {wall_fast:.3f}s ({events_per_s:,.0f} events/s)  "
        f"oracle: {wall_oracle:.3f}s  speedup: {speedup:.2f}x"
        f"\n[report written to {path}]"
    )
