"""Fig 4: MDI importance of deployment knobs for TTFT and ITL.

Paper setting: bigcode/starcoder on a single A100 40GB, varying the
number of CPU cores, pod memory, maximum batch weight and concurrent
users. Claim: CPU cores and memory score near zero — over 300x below
the maximum batch weight — justifying LLM-Pilot's trivial rules for
those resources.
"""

from benchmarks.conftest import BENCH_SEED, write_report
from repro.analysis import deployment_knob_study
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.utils.tables import format_table

LLM = "bigcode/starcoder"
PROFILE = "1xA100-40GB"


def test_fig4_deployment_knob_importance(benchmark, generator, results_dir):
    result = benchmark.pedantic(
        lambda: deployment_knob_study(
            get_llm(LLM),
            parse_profile(PROFILE),
            generator,
            user_counts=(1, 2, 4, 8, 16, 32, 64, 128),
            weight_multipliers=(1.0, 2.0, 4.0, 8.0, 16.0),
            replicates=2,
            duration_s=30.0,
            seed=BENCH_SEED,
            n_estimators=30,
        ),
        rounds=1,
        iterations=1,
    )

    for metric, imp in (
        ("ttft", result.importances_ttft),
        ("itl", result.importances_itl),
    ):
        nuisance = max(imp["cpu_cores"], imp["memory_gb"])
        knob = imp["max_batch_weight"] + imp["concurrent_users"]
        assert knob > 20 * max(nuisance, 1e-9), (
            f"{metric}: cpu/memory must be near-irrelevant, got {imp}"
        )

    rows = []
    for knob in ("cpu_cores", "memory_gb", "max_batch_weight", "concurrent_users"):
        rows.append(
            [knob, result.importances_ttft[knob], result.importances_itl[knob]]
        )
    report = format_table(
        ["knob", "MDI (TTFT)", "MDI (ITL)"],
        rows,
        floatfmt=".5f",
        title=(
            f"Fig 4 — deployment-knob MDI for {LLM} on {PROFILE} "
            f"(paper: cpu/memory >300x below batch weight; measured ratio "
            f"ttft {result.knob_ratio('ttft'):.0f}x, itl {result.knob_ratio('itl'):.0f}x)"
        ),
    )
    write_report(results_dir, "fig4_deployment_knobs.txt", report)
