"""§V-A correlation ablation: joint vs independent request sampling.

Paper setting: Llama-2-13b on one A100 80GB. Claim: generating parameter
values from independent marginal distributions significantly distorts
the measured performance relative to the joint model (paper: ~13% lower
throughput, ~30% higher median TTFT, ~25% lower median ITL on average
across 1-128 users) — so modelling the correlations is essential.

Our simulator reproduces the *magnitude* of the distortion; the signs
can differ from the paper's testbed (see EXPERIMENTS.md).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, write_report
from repro.characterization import BatchWeightTuner, run_load_test
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.utils.rng import spawn_seed
from repro.utils.tables import format_table
from repro.workload import WorkloadGenerator

LLM = "Llama-2-13b"
PROFILE = "1xA100-80GB"
USERS = (1, 4, 16, 64, 128)


def test_sec5a_joint_vs_independent(benchmark, generator, results_dir):
    llm = get_llm(LLM)
    profile = parse_profile(PROFILE)
    tuned = BatchWeightTuner(llm, profile).tune()
    assert tuned.feasible

    def run():
        out = {}
        for mode in ("joint", "independent"):
            gen = WorkloadGenerator(generator.model, independent=(mode == "independent"))
            rows = []
            for users in USERS:
                seed = spawn_seed(BENCH_SEED, "sec5a", users)
                engine = ContinuousBatchingEngine(
                    llm, profile, max_batch_weight=tuned.max_batch_weight, seed=seed
                )
                rows.append(
                    run_load_test(engine, gen, users, duration_s=60.0, seed=seed)
                )
            out[mode] = rows
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    tput_delta = []
    ttft_delta = []
    rows = []
    for k, users in enumerate(USERS):
        j, ind = out["joint"][k], out["independent"][k]
        tput_delta.append(
            (ind.throughput_tokens_per_s - j.throughput_tokens_per_s)
            / j.throughput_tokens_per_s
        )
        ttft_delta.append((ind.ttft_median_s - j.ttft_median_s) / j.ttft_median_s)
        rows.append(
            [
                users,
                j.throughput_tokens_per_s,
                ind.throughput_tokens_per_s,
                j.ttft_median_s,
                ind.ttft_median_s,
                j.itl_median_s * 1e3,
                ind.itl_median_s * 1e3,
            ]
        )

    max_abs_tput = float(np.max(np.abs(tput_delta)))
    mean_abs_tput = float(np.mean(np.abs(tput_delta)))
    # The distortion must be material (paper: 13% average, up to 19%).
    assert max_abs_tput > 0.05, f"independent sampling barely changed throughput: {tput_delta}"

    report = format_table(
        ["users", "tput joint", "tput indep", "TTFT joint (s)", "TTFT indep (s)",
         "ITL joint (ms)", "ITL indep (ms)"],
        rows,
        floatfmt=".2f",
        title=(
            f"Sec V-A — joint vs independent sampling, {LLM} on {PROFILE} "
            f"(paper: ~13% mean / 19% max throughput distortion; measured "
            f"{mean_abs_tput * 100:.0f}% mean / {max_abs_tput * 100:.0f}% max)"
        ),
    )
    write_report(results_dir, "sec5a_joint_vs_independent.txt", report)
