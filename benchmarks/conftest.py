"""Shared fixtures for the benchmark harness.

The heavy artifacts (trace collection, workload generator, the full
10-LLM x 14-profile characterization dataset) are built once per session;
every per-table/figure benchmark consumes them. Each benchmark writes a
plain-text report with the same rows/series the paper presents to
``benchmarks/results/``.

Setting ``REPRO_BENCH_SMOKE=1`` runs the suite in smoke mode: every
benchmark exercises its full code path on sharply reduced durations and
trace sizes so CI can catch crashes/regressions in minutes. Statistical
fidelity assertions that need the full scale are skipped via
``fidelity_assert`` — smoke mode checks that benchmarks *run*, not that
the reduced-scale numbers still reproduce the paper's shapes.
"""

import os

import pytest

from repro.characterization import (
    CharacterizationConfig,
    CharacterizationTool,
)
from repro.models import LLM_CATALOG
from repro.traces import TraceConfig, TraceSynthesizer
from repro.workload import WorkloadGenerator

#: CI smoke mode: full code paths, reduced scale (see module docstring).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def smoke(full, reduced):
    """Pick the scale parameter for the current mode."""
    return reduced if SMOKE else full


def fidelity_assert(condition, message=""):
    """Assert a paper-shape property — only meaningful at full scale."""
    if not SMOKE:
        assert condition, message


#: Experiment duration for characterization runs (virtual seconds). The
#: paper uses 120s; 60s keeps the suite fast while preserving the shapes.
BENCH_DURATION_S = smoke(60.0, 8.0)
BENCH_SEED = 0


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_report(results_dir: str, name: str, text: str) -> None:
    """Persist a benchmark's report table and echo it for -s runs."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


@pytest.fixture(scope="session")
def traces():
    config = TraceConfig(n_requests=smoke(150_000, 25_000))
    return TraceSynthesizer(config=config, seed=BENCH_SEED).generate()


@pytest.fixture(scope="session")
def generator(traces):
    return WorkloadGenerator.fit(traces)


@pytest.fixture(scope="session")
def char_tool(generator):
    return CharacterizationTool(
        generator,
        CharacterizationConfig(duration_s=BENCH_DURATION_S, seed=BENCH_SEED),
    )


@pytest.fixture(scope="session")
def full_outcome(char_tool):
    """The full characterization campaign: 10 LLMs x 14 GPU profiles."""
    return char_tool.run(list(LLM_CATALOG.values()))


@pytest.fixture(scope="session")
def full_dataset(full_outcome):
    return full_outcome.dataset
