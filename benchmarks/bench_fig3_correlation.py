"""Fig 3: Spearman rank correlation between request parameters.

Paper claim: the latency-dominant parameters — token counts, batch size
and the sampling parameters — are strongly correlated with one another,
which is why the workload generator must model them jointly.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.analysis import spearman_matrix
from repro.utils.tables import format_matrix


def test_fig3_parameter_correlation(benchmark, traces, results_dir):
    corr, params = benchmark.pedantic(
        lambda: spearman_matrix(traces), rounds=1, iterations=1
    )

    def rho(a, b):
        return corr[params.index(a), params.index(b)]

    # Key correlations the paper's Fig 3 highlights.
    assert abs(rho("input_tokens", "output_tokens")) > 0.1
    assert abs(rho("input_tokens", "batch_size")) > 0.1
    assert abs(rho("output_tokens", "batch_size")) > 0.1
    assert rho("output_tokens", "max_new_tokens") > 0.8
    assert abs(rho("decoding_method", "temperature")) > 0.3
    # Symmetry + unit diagonal sanity.
    assert np.allclose(corr, corr.T, atol=1e-12)
    assert np.allclose(np.diag(corr), 1.0)

    rows = [[f"{corr[i, j]:+.2f}" for j in range(len(params))] for i in range(len(params))]
    report = format_matrix(
        params,
        [p[:9] for p in params],
        rows,
        corner="Spearman",
        title=(
            "Fig 3 — Spearman correlation of request parameters "
            "(paper: token counts x batch size x sampling params all correlated)"
        ),
    )
    write_report(results_dir, "fig3_correlation.txt", report)
