"""Ablation: the two §IV-B2 design choices of the performance model.

The paper motivates (a) constraint-proximity sample weights (Eq. 4) and
(b) the monotonicity constraint on the concurrent-user feature, arguing
they jointly improve recommendations. This benchmark evaluates the
2x2 grid of design choices under the Fig 8 protocol.
"""

from benchmarks.conftest import SMOKE, fidelity_assert, write_report
from repro.evaluation.harness import EvaluationConfig, evaluate_methods
from repro.models import LLM_CATALOG
from repro.recommendation.pilot import LLMPilotRecommender
from repro.utils.tables import format_table


def test_ablation_weights_and_monotonicity(benchmark, full_dataset, generator, results_dir):
    cfg = EvaluationConfig(max_request_weight=generator.max_request_weight())
    constraints = cfg.constraints
    lookup = dict(LLM_CATALOG)

    def factory(weights: bool, mono: bool):
        return lambda: LLMPilotRecommender(
            constraints=constraints,
            tune=False,
            use_sample_weights=weights,
            use_monotone_constraint=mono,
        )

    factories = {
        "weights+mono": factory(True, True),
        "weights only": factory(True, False),
        "mono only": factory(False, True),
        "neither": factory(False, False),
    }
    if SMOKE:
        # The asserted corners of the 2x2 grid only (halves the folds).
        factories = {k: factories[k] for k in ("weights+mono", "neither")}
    scores = benchmark.pedantic(
        lambda: evaluate_methods(factories, full_dataset, lookup, config=cfg),
        rounds=1,
        iterations=1,
    )

    full = scores["weights+mono"]
    neither = scores["neither"]
    # The paper's full design should not be worse than dropping both.
    fidelity_assert(
        full.so >= neither.so - 0.05,
        f"full design {full.so:.2f} vs neither {neither.so:.2f}",
    )

    rows = [
        [name, s.success_rate, s.mean_overspend, s.so]
        for name, s in scores.items()
    ]
    report = format_table(
        ["variant", "success rate", "overspend", "S/O"],
        rows,
        floatfmt=".2f",
        title="Ablation — Eq. (4) weights x monotonicity constraint:",
    )
    write_report(results_dir, "ablation_model_design.txt", report)
