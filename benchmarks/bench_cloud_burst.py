"""Cloud-bursting benchmarks: the hybrid capacity tier under hard gates.

Beyond the paper's protocol: a second, elastic-but-priced capacity
tier is only worth modelling if the simulator proves the economics and
stays honest while doing so. Three headline claims, each hard-asserted
(smoke and full scale alike):

1. **Bursting beats queueing.** Under a diurnal burst that outgrows a
   small owned reservation, renting the overflow from the cloud yields
   a strictly lower total cost (compute bill + SLO penalty) at an
   equal-or-better p95 TTFT than queueing on-prem.
2. **Conservation across spot preemptions.** With the spot tier's
   seeded preemption schedule firing, every admitted request is still
   accounted for and every preemption hit a rented pod.
3. **Fast/oracle parity with the cloud active.** The heap-driven
   cluster loop and the retained oracle loop produce field-exact
   results — billing line items and the ledger included.

The run writes ``BENCH_cloud_burst.json`` (uploaded as a CI artifact)
with the measured bills, tails and preemption ledgers.
"""

import json

from benchmarks.conftest import smoke, write_report
from repro.hardware import aws_like_cloud_catalog, aws_like_pricing, parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.recommendation import LinearSLOPenalty
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    BurstPolicy,
    CloudLedger,
    ClusterInventory,
    ClusterSimulator,
    DiurnalTraffic,
    FleetSimulator,
    LeastLoadedRouter,
    RequestSource,
    TenantGroup,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-7b")
PROFILE = parse_profile("1xA10-24GB")
GPU = PROFILE.gpu.name
MAX_BATCH_WEIGHT = 12_000
DURATION_S = smoke(240.0, 90.0)
SLO_P95_TTFT_S = 2.0
PENALTY_PER_HOUR = 50.0
PRICING = aws_like_pricing()

#: Aggregated across the three tests below; each rewrites the artifact
#: so a mid-suite failure still leaves the completed sections on disk.
_REPORT: dict = {"mode": "smoke" if DURATION_S < 240.0 else "full"}


def _flush_report(results_dir):
    write_report(
        results_dir, "BENCH_cloud_burst.json", json.dumps(_REPORT, indent=2)
    )


def _pod_factory(seed):
    def make(serial):
        return ContinuousBatchingEngine(
            LLM,
            PROFILE,
            max_batch_weight=MAX_BATCH_WEIGHT,
            seed=spawn_seed(seed, "pod", serial),
        )

    return make


def _burst_cluster(generator, *, cloud=None, burst=None, fast=True, seed=0):
    """One diurnal tenant whose peak outgrows a 2-pod owned reservation."""
    factory = _pod_factory(seed)
    fleet = FleetSimulator(
        [factory(i) for i in range(1)],
        DiurnalTraffic(
            5.0,
            rng=derive_rng(seed, "bench-cloud", "diurnal"),
            amplitude=0.9,
            period_s=DURATION_S,
        ),
        LeastLoadedRouter(),
        RequestSource(
            generator, derive_rng(seed, "bench-cloud", "source"), MAX_BATCH_WEIGHT
        ),
        autoscaler=Autoscaler(
            ThresholdPolicy(slo_p95_ttft_s=1.0),
            AutoscaleConfig(
                decision_interval_s=10.0,
                max_pods=6,
                cold_start_s=5.0,
                metrics_window_s=20.0,
            ),
        ),
        pod_factory=factory,
    )
    tenants = [
        TenantGroup("diurnal", fleet, PROFILE.name, slo_p95_ttft_s=SLO_P95_TTFT_S)
    ]
    inventory = ClusterInventory(capacity={GPU: 2})
    sim = ClusterSimulator(tenants, inventory, fast=fast, cloud=cloud, burst=burst)
    return sim, sim.run(duration_s=DURATION_S)


def _total_cost(result):
    """Compute bill (per tier) plus the linear SLO penalty, dollars."""
    penalty = LinearSLOPenalty(
        slo_p95_ttft_s=SLO_P95_TTFT_S, penalty_per_hour=PENALTY_PER_HOUR
    )
    bill = sum(line["total"] for line in result.billing(PRICING).values())
    return bill + sum(penalty(r) for r in result.results.values())


def test_burst_beats_queueing_under_diurnal_burst(
    benchmark, generator, results_dir
):
    """Claim 1: renting the overflow beats queueing it, all-in."""

    def run():
        _, queued = _burst_cluster(generator)
        catalog = aws_like_cloud_catalog()
        _, bursted = _burst_cluster(
            generator,
            cloud=CloudLedger(catalog, seed=0),
            burst=BurstPolicy(mode="spot"),
        )
        return queued, bursted

    queued, bursted = benchmark.pedantic(run, rounds=1, iterations=1)

    queued.verify_conservation()
    bursted.verify_conservation()
    # The owned tier genuinely contends; the cloud genuinely absorbs.
    assert queued.contended_scale_events(), "baseline must queue on-prem"
    assert not bursted.contended_scale_events()
    cloud_s = bursted.results["diurnal"].cloud_pod_seconds
    assert cloud_s > 0
    p95_queued = queued.results["diurnal"].ttft.p95_s
    p95_bursted = bursted.results["diurnal"].ttft.p95_s
    cost_queued = _total_cost(queued)
    cost_bursted = _total_cost(bursted)
    # The headline economics, hard-asserted: cheaper at an
    # equal-or-better tail.
    assert p95_bursted <= p95_queued, (p95_bursted, p95_queued)
    assert cost_bursted < cost_queued, (cost_bursted, cost_queued)
    _REPORT["burst_vs_queue"] = {
        "duration_s": DURATION_S,
        "queued": {
            "total_cost": cost_queued,
            "p95_ttft_s": p95_queued,
            "contended_scale_ups": len(queued.contended_scale_events()),
        },
        "bursted": {
            "total_cost": cost_bursted,
            "p95_ttft_s": p95_bursted,
            "cloud_pod_seconds": cloud_s,
        },
        "savings_fraction": 1.0 - cost_bursted / cost_queued,
    }
    _flush_report(results_dir)


def test_conservation_across_spot_preemptions(benchmark, generator, results_dir):
    """Claim 2: the provider reclaims pods, the ledger still balances."""

    def run():
        # An absurd interruption rate makes preemptions certain even in
        # the smoke window; the schedule itself stays seeded.
        catalog = aws_like_cloud_catalog(spot_interruptions_per_hour=200.0)
        return _burst_cluster(
            generator,
            cloud=CloudLedger(catalog, seed=3),
            burst=BurstPolicy(mode="spot"),
        )

    sim, res = benchmark.pedantic(run, rounds=1, iterations=1)

    res.verify_conservation()
    preempts = [
        e for _, e in res.fault_events() if e.kind == "spot-preempt"
    ]
    assert preempts, "the seeded schedule must fire at this rate"
    # A scheduled instant with no rented pod live records pod=None (a
    # no-op reclaim); every actual victim must be a rented pod.
    hits = [e for e in preempts if e.pod is not None]
    assert hits, "at least one preemption must catch a live rented pod"
    cloud_serials = sim.tenants[0].fleet.cloud_serials
    assert all(e.pod in cloud_serials for e in hits)
    fleet_res = res.results["diurnal"]
    assert fleet_res.requeued >= sum(e.requeued for e in preempts)
    assert fleet_res.lost == 0  # requeue semantics: degraded, never lossy
    _REPORT["spot_preemptions"] = {
        "n_preemptions": len(preempts),
        "n_hits": len(hits),
        "preempted_pods": sorted(e.pod for e in hits),
        "requeued": fleet_res.requeued,
        "lost": fleet_res.lost,
        "cloud_pod_seconds": fleet_res.cloud_pod_seconds,
    }
    _flush_report(results_dir)


def test_fast_oracle_parity_with_cloud(benchmark, generator, results_dir):
    """Claim 3: the fast cluster loop is exact with the cloud active."""

    def run():
        catalog = aws_like_cloud_catalog(spot_interruptions_per_hour=50.0)
        out = []
        for fast in (True, False):
            out.append(
                _burst_cluster(
                    generator,
                    cloud=CloudLedger(catalog, seed=1),
                    burst=BurstPolicy(mode="spot"),
                    fast=fast,
                )[1]
            )
        return out

    fast_res, oracle_res = benchmark.pedantic(run, rounds=1, iterations=1)

    fast_dict = fast_res.to_dict(pricing=PRICING)
    oracle_dict = oracle_res.to_dict(pricing=PRICING)
    assert fast_dict == oracle_dict
    assert fast_res.results["diurnal"].cloud_pod_seconds > 0
    _REPORT["fast_oracle_parity"] = {
        "bit_identical": fast_dict == oracle_dict,
        "cloud_pod_seconds": fast_res.results["diurnal"].cloud_pod_seconds,
        "usage_events": len(fast_res.cloud_events),
    }
    _flush_report(results_dir)
