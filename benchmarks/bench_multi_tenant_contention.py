"""Noisy-neighbor contention on a shared GPU inventory.

Beyond the paper's protocol: the conclusion names multi-tenancy as
LLM-Pilot's next step, and the interesting failure mode there is the
noisy neighbor — one tenant's burst starves another tenant's autoscaler
because the shared inventory is finite. Here a quiet diurnal tenant and
a bursty noisy tenant co-simulate on one clock over a small GPU pool:
the noisy tenant's scale-ups drain the inventory, the quiet tenant's
asks get denied or clipped (observable in its scale-event log), and the
quiet tenant's p95 TTFT degrades. Turning on per-tenant SLO-aware
admission control lets the starved quiet tenant shed the load it cannot
serve, protecting the latency of the requests it does admit versus the
no-admission baseline that queues unboundedly.
"""

from benchmarks.conftest import BENCH_SEED, fidelity_assert, smoke, write_report
from repro.cluster import Deployment
from repro.hardware import aws_like_pricing, parse_profile
from repro.models import get_llm
from repro.simulation import (
    AdmissionController,
    Autoscaler,
    AutoscaleConfig,
    BurstyTraffic,
    ClusterInventory,
    ClusterSimulator,
    DiurnalTraffic,
    LeastLoadedRouter,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

LLM = "Llama-2-13b"
PROFILE = "1xA100-80GB"
MAX_BATCH_WEIGHT = 20_000
CAPACITY = 4  # GPUs — enough for either tenant alone, not for both peaks
DURATION_S = smoke(300.0, 60.0)
QUIET_BASE_RATE = 2.0
QUIET_PERIOD_S = smoke(240.0, 60.0)
NOISY_BURST_RATE = 8.0
SLO_P95_TTFT_S = 2.0
QUIET_SLO_P95_TTFT_S = 8.0  # end-to-end target incl. starved transients


def _autoscaler(max_pods):
    return Autoscaler(
        ThresholdPolicy(slo_p95_ttft_s=SLO_P95_TTFT_S),
        AutoscaleConfig(
            decision_interval_s=10.0,
            max_pods=max_pods,
            cold_start_s=5.0,
            metrics_window_s=20.0,
        ),
    )


def _deployment(generator):
    return Deployment(
        llm=get_llm(LLM),
        profile=parse_profile(PROFILE),
        n_pods=1,
        max_batch_weight=MAX_BATCH_WEIGHT,
        generator=generator,
        seed=BENCH_SEED,
    )


def _router(admission):
    router = LeastLoadedRouter()
    if admission:
        router = AdmissionController(
            router, slo_p95_ttft_s=SLO_P95_TTFT_S, window_s=20.0, mode="shed"
        )
    return router


def _cluster(generator, admission):
    deployment = _deployment(generator)
    quiet = deployment.tenant_group(
        "quiet",
        DiurnalTraffic(
            QUIET_BASE_RATE,
            rng=derive_rng(BENCH_SEED, "bench-contention", "quiet"),
            amplitude=0.8,
            period_s=QUIET_PERIOD_S,
        ),
        router=_router(admission),
        autoscaler=_autoscaler(max_pods=3),
        slo_p95_ttft_s=QUIET_SLO_P95_TTFT_S,
    )
    noisy = deployment.tenant_group(
        "noisy",
        BurstyTraffic(
            NOISY_BURST_RATE,
            rng=derive_rng(BENCH_SEED, "bench-contention", "noisy"),
            mean_on_s=30.0,
            mean_off_s=30.0,
        ),
        router=_router(admission),
        autoscaler=_autoscaler(max_pods=6),
    )
    inventory = ClusterInventory(capacity={parse_profile(PROFILE).gpu.name: CAPACITY})
    return ClusterSimulator([quiet, noisy], inventory)


def test_noisy_neighbor_contention(benchmark, generator, results_dir):
    def run():
        return {
            "no-admission": _cluster(generator, admission=False).run(DURATION_S),
            "admission": _cluster(generator, admission=True).run(DURATION_S),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    pricing = aws_like_pricing()
    rows = []
    for mode, res in results.items():
        cost = res.cost(pricing)
        for tenant in res.tenants:
            r = res.results[tenant]
            rows.append(
                [
                    mode,
                    tenant,
                    r.arrivals,
                    r.shed,
                    r.requests_completed,
                    r.ttft.p95_s,
                    len([e for e in r.scale_events if e.constraint]),
                    r.pod_seconds,
                    cost[tenant],
                ]
            )
    gpu = parse_profile(PROFILE).gpu.name
    peaks = {mode: res.peak_occupancy()[gpu] for mode, res in results.items()}
    report = format_table(
        ["mode", "tenant", "arrivals", "shed", "done", "ttft p95",
         "denied/clipped", "pod-sec", "$"],
        rows,
        floatfmt=".2f",
        title=(
            f"Noisy neighbor on {CAPACITY}x {gpu} ({DURATION_S:.0f}s; quiet "
            f"diurnal {QUIET_BASE_RATE}/s vs bursty {NOISY_BURST_RATE}/s; "
            f"peak occupancy {peaks}):"
        ),
    )
    write_report(results_dir, "multi_tenant_contention.txt", report)

    for mode, res in results.items():
        # Hard invariants, full scale and smoke alike: nothing leaks and
        # the ledger never exceeds capacity.
        res.verify_conservation()
        _, used = res.occupancy_series(gpu)
        assert used.max() <= CAPACITY, mode
        for tenant in res.tenants:
            assert res.results[tenant].requests_completed > 0, (mode, tenant)
        # The finite inventory must actually bite: at least one denied or
        # clipped scale-up event in every mode.
        assert res.contended_scale_events(), mode

    # Admission control protects the starved quiet tenant's tail: the
    # requests it admits are served within SLO, while the no-admission
    # baseline queues unboundedly through the contended burst.
    quiet_base = results["no-admission"].results["quiet"]
    quiet_adm = results["admission"].results["quiet"]
    fidelity_assert(
        quiet_adm.ttft.p95_s < quiet_base.ttft.p95_s,
        (quiet_adm.ttft.p95_s, quiet_base.ttft.p95_s),
    )
    fidelity_assert(
        quiet_adm.ttft.p95_s <= QUIET_SLO_P95_TTFT_S, quiet_adm.ttft.p95_s
    )
    fidelity_assert(quiet_adm.shed > 0)
