"""Table I: per-pod throughput for varying pod counts and user counts.

Paper setting: Llama-2-13b pods on A100 80GB, 1-8 pods, 1-128 users.
Claim: near-perfect scaling — across cells with the same users-per-pod
ratio the relative standard deviation of per-pod throughput never
exceeds 5% (2% on average).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, write_report
from repro.characterization import BatchWeightTuner
from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.utils.stats import relative_std
from repro.utils.tables import format_matrix

LLM = "Llama-2-13b"
PROFILE = "1xA100-80GB"
PODS = (1, 2, 4, 8)
USERS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_table1_pod_scaling(benchmark, generator, results_dir):
    llm = get_llm(LLM)
    profile = parse_profile(PROFILE)
    tuned = BatchWeightTuner(llm, profile).tune()
    assert tuned.feasible
    base = Deployment(
        llm=llm,
        profile=profile,
        n_pods=1,
        max_batch_weight=tuned.max_batch_weight,
        generator=generator,
        seed=BENCH_SEED,
    )

    def run():
        table = {}
        for pods in PODS:
            dep = base.scale(pods)
            for users in USERS:
                if users < pods:
                    table[(pods, users)] = float("nan")
                    continue
                res = dep.run_load_test(users, duration_s=120.0)
                table[(pods, users)] = res.mean_throughput_per_pod
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    # Diagonals with constant users/pod ratio (the paper's colored cells).
    rsds = []
    for ratio in (1, 2, 4, 8, 16):
        cells = [
            table[(p, p * ratio)]
            for p in PODS
            if (p, p * ratio) in table and np.isfinite(table[(p, p * ratio)])
        ]
        if len(cells) >= 2:
            rsds.append(relative_std(cells))
    assert rsds, "need at least one constant-ratio diagonal"
    # Paper: RSD never exceeds 5% (2% average). The heavy-tailed request
    # mix makes single-user-per-pod cells the noisiest; allow 12%.
    assert max(rsds) < 0.12, f"near-perfect scaling violated: RSDs {rsds}"
    assert float(np.mean(rsds)) < 0.06

    rows = [
        [table[(p, u)] if np.isfinite(table[(p, u)]) else float("nan") for u in USERS]
        for p in PODS
    ]
    report = format_matrix(
        [str(p) for p in PODS],
        [str(u) for u in USERS],
        rows,
        floatfmt=".1f",
        corner="pods \\ users",
        title=(
            f"Table I — tokens/s per pod, {LLM} on {PROFILE} "
            f"(paper: RSD <= 5% on constant-ratio diagonals; "
            f"measured max {max(rsds) * 100:.1f}%, "
            f"mean {float(np.mean(rsds)) * 100:.1f}%)"
        ),
    )
    write_report(results_dir, "table1_pod_scaling.txt", report)
