"""Fig 8: recommendation quality — LLM-Pilot vs the §V-C baselines.

Nested leave-one-LLM-out evaluation with U = 200 concurrent users and
latency constraints L1 = 100ms (nTTFT), L2 = 50ms (ITL). Claims
reproduced:

* LLM-Pilot achieves the best S/O score of all methods (paper: ~80%
  success rate with <20% average overspend);
* the static policy is high-risk/high-reward: low overspend when it
  succeeds but a much lower success rate;
* the theoretical ideal scores S=1, O=0.

Absolute per-method numbers differ from the paper (different testbed,
simulated latencies); the ordering claims are asserted.
"""

from benchmarks.conftest import fidelity_assert, smoke, write_report
from repro.baselines import (
    MorphlingRecommender,
    PARISRecommender,
    PerfNetRecommender,
    PerfNetV2Recommender,
    RFRecommender,
    SelectaRecommender,
    StaticRecommender,
)
from repro.evaluation.harness import EvaluationConfig, evaluate_methods, ideal_score
from repro.models import LLM_CATALOG
from repro.recommendation.pilot import LLMPilotRecommender
from repro.utils.tables import format_table

#: Small leave-one-LLM-out tuning grid for LLM-Pilot (the paper tunes a
#: larger grid; this keeps the benchmark tractable offline).
PILOT_GRID = {
    "n_estimators": [150],
    "max_depth": [3, 5],
    "learning_rate": [0.08],
    "subsample": [0.9],
}


def test_fig8_recommendation_quality(benchmark, full_dataset, generator, results_dir):
    cfg = EvaluationConfig(max_request_weight=generator.max_request_weight())
    constraints = cfg.constraints
    lookup = dict(LLM_CATALOG)

    factories = {
        "LLM-Pilot": lambda: LLMPilotRecommender(
            constraints=constraints, tune=smoke(True, False), tuning_grid=PILOT_GRID
        ),
        "Static": lambda: StaticRecommender(
            constraints=constraints, total_users=cfg.total_users
        ),
        "RF": lambda: RFRecommender(n_estimators=smoke(60, 15)),
        "PARIS": lambda: PARISRecommender(n_estimators=smoke(60, 15)),
        "Selecta": lambda: SelectaRecommender(n_epochs=smoke(80, 20)),
        "Morphling": lambda: MorphlingRecommender(n_epochs=smoke(250, 50)),
        "PerfNet": lambda: PerfNetRecommender(n_epochs=smoke(400, 60)),
        "PerfNetV2": lambda: PerfNetV2Recommender(n_epochs=smoke(400, 60)),
    }

    scores = benchmark.pedantic(
        lambda: evaluate_methods(factories, full_dataset, lookup, config=cfg),
        rounds=1,
        iterations=1,
    )
    ideal = ideal_score(full_dataset, config=cfg)

    pilot = scores["LLM-Pilot"]
    # Headline claims.
    fidelity_assert(
        pilot.so == max(s.so for s in scores.values()),
        "LLM-Pilot must achieve the best S/O score: "
        + ", ".join(f"{n}={s.so:.2f}" for n, s in scores.items()),
    )
    fidelity_assert(pilot.success_rate >= 0.6)
    fidelity_assert(pilot.mean_overspend < 0.5)
    assert ideal.success_rate == 1.0 and ideal.so == 1.0
    # Static policy: decent overspend when it succeeds, lower success rate.
    static = scores["Static"]
    fidelity_assert(static.success_rate <= pilot.success_rate)

    rows = [
        [name, "yes" if ("PARIS" in name or "Selecta" in name or "Morphling" in name) else "no",
         s.success_rate, s.mean_overspend, s.so]
        for name, s in sorted(scores.items(), key=lambda kv: -kv[1].so)
    ]
    rows.append(["Ideal (*)", "-", ideal.success_rate, ideal.mean_overspend, ideal.so])
    report = format_table(
        ["method", "ref. meas.", "success rate S", "overspend O", "S/O score"],
        rows,
        floatfmt=".2f",
        title=(
            "Fig 8 — recommendation quality (U=200, L1=100ms nTTFT, "
            "L2=50ms ITL; paper: LLM-Pilot S~0.8, O<0.2, best S/O)"
        ),
    )
    write_report(results_dir, "fig8_recommendation.txt", report)
