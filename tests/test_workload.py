"""Tests for the workload generator: binning, joint model, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.workload import (
    Corpus,
    RequestModel,
    TraceReplaySampler,
    WorkloadGenerator,
    default_corpus,
    fit_binning,
)


class TestBinning:
    def test_low_cardinality_exact(self):
        b = fit_binning("batch", np.array([1, 2, 2, 3, 3, 3]), n_bins=64)
        assert b.exact
        np.testing.assert_array_equal(b.centers, [1, 2, 3])

    def test_exact_assignment_roundtrip(self):
        values = np.array([1, 2, 2, 5, 5, 9])
        b = fit_binning("x", values, n_bins=64)
        np.testing.assert_array_equal(b.decode(b.assign(values)), values)

    def test_high_cardinality_binned(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(5, 1, size=20_000)
        b = fit_binning("tokens", values, n_bins=64)
        assert not b.exact
        assert b.n_bins <= 64

    def test_equal_frequency(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=50_000)
        b = fit_binning("x", values, n_bins=64)
        counts = np.bincount(b.assign(values), minlength=b.n_bins)
        # Approximately uniform occupancy.
        assert counts.min() > 0.5 * len(values) / b.n_bins
        assert counts.max() < 2.0 * len(values) / b.n_bins

    def test_centers_within_range(self):
        rng = np.random.default_rng(2)
        values = rng.exponential(100, size=10_000)
        b = fit_binning("x", values, n_bins=32)
        assert b.centers.min() >= values.min()
        assert b.centers.max() <= values.max()

    def test_integer_preservation(self):
        values = np.arange(1000, dtype=float)
        b = fit_binning("x", values, n_bins=16)
        decoded = b.decode(b.assign(values))
        assert decoded.dtype.kind == "i"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fit_binning("x", np.array([]))
        with pytest.raises(ValueError):
            fit_binning("x", np.array([1.0]), n_bins=0)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_assign_always_in_range(self, values):
        values = np.array(values)
        b = fit_binning("x", values, n_bins=16)
        idx = b.assign(values)
        assert idx.min() >= 0 and idx.max() < b.n_bins


class TestRequestModel:
    def test_sparsity_far_below_theoretical(self, traces):
        model = RequestModel.fit(traces)
        assert model.n_nonempty_bins < model.n_theoretical_bins / 1000
        assert 0 < model.sparsity < 1e-3

    def test_counts_sum_to_trace_size(self, traces):
        model = RequestModel.fit(traces)
        assert model.counts.sum() == len(traces)

    def test_model_much_smaller_than_traces(self, traces):
        """§V-A size claim: generator <1MB vs GBs of traces."""
        model = RequestModel.fit(traces)
        assert model.nbytes() < traces.nbytes() / 5

    def test_joint_sampling_preserves_marginals(self, traces):
        model = RequestModel.fit(traces)
        sample = model.sample(40_000, rng=0)
        ks = stats.ks_2samp(
            sample["input_tokens"].astype(float),
            traces["input_tokens"].astype(float),
        )
        assert ks.statistic < 0.05

    def test_joint_sampling_preserves_correlation(self, traces):
        model = RequestModel.fit(traces)
        sample = model.sample(40_000, rng=0)
        rho_trace = stats.spearmanr(
            traces["input_tokens"], traces["output_tokens"]
        ).statistic
        rho_gen = stats.spearmanr(
            sample["input_tokens"], sample["output_tokens"]
        ).statistic
        assert abs(rho_trace - rho_gen) < 0.08

    def test_independent_sampling_loses_correlation(self, traces):
        """§V-A ablation: independent marginals break the joint structure."""
        model = RequestModel.fit(traces)
        joint = model.sample(40_000, rng=0)
        indep = model.sample(40_000, rng=0, independent=True)
        rho_joint = stats.spearmanr(
            joint["input_tokens"], joint["output_tokens"]
        ).statistic
        rho_indep = stats.spearmanr(
            indep["input_tokens"], indep["output_tokens"]
        ).statistic
        assert abs(rho_indep) < abs(rho_joint) / 2

    def test_sampling_reproducible(self, traces):
        model = RequestModel.fit(traces)
        a = model.sample(100, rng=7)
        b = model.sample(100, rng=7)
        np.testing.assert_array_equal(a["output_tokens"], b["output_tokens"])

    def test_sample_zero(self, traces):
        model = RequestModel.fit(traces)
        out = model.sample(0, rng=0)
        assert all(len(v) == 0 for v in out.values())

    def test_max_request_weight_bounds_joint_samples(self, traces):
        model = RequestModel.fit(traces)
        wmax = model.max_request_weight()
        s = model.sample(20_000, rng=1)
        weights = (s["input_tokens"] + s["output_tokens"]) * s["batch_size"]
        assert weights.max() <= wmax

    def test_values_are_bin_centers(self, traces):
        model = RequestModel.fit(traces)
        s = model.sample(1000, rng=2)
        for p in ("batch_size", "decoding_method"):
            centers = set(model.binnings[p].decode(
                np.arange(model.binnings[p].n_bins)).tolist())
            assert set(np.unique(s[p]).tolist()) <= centers


class TestCorpus:
    def test_exact_token_count(self):
        corpus = default_corpus()
        for k in (0, 1, 5, 100, 1000):
            text = corpus.text_for_tokens(k, rng=0)
            assert Corpus.count_tokens(text) == k

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            default_corpus().text_for_tokens(-1)

    def test_randomized_offsets(self):
        corpus = default_corpus()
        texts = {corpus.text_for_tokens(10, rng=i) for i in range(20)}
        assert len(texts) > 1

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            Corpus(sentences=())


class TestWorkloadGenerator:
    def test_requests_valid(self, generator):
        reqs = generator.sample_requests(500, rng=3)
        assert len(reqs) == 500
        for r in reqs:
            assert r.input_tokens >= 1
            assert r.output_tokens >= 1
            assert 1 <= r.batch_size <= 5

    def test_request_ids_sequential(self, generator):
        reqs = generator.sample_requests(10, rng=0, first_id=100)
        assert [r.request_id for r in reqs] == list(range(100, 110))

    def test_max_weight_truncation(self, generator):
        reqs = generator.sample_requests(2000, rng=4, max_weight=1500)
        assert all(r.weight <= 1500 for r in reqs)

    def test_stream_is_infinite_and_deterministic(self, generator):
        s1 = generator.request_stream(rng=9)
        s2 = generator.request_stream(rng=9)
        for _ in range(300):
            a, b = next(s1), next(s2)
            assert (a.input_tokens, a.output_tokens) == (b.input_tokens, b.output_tokens)

    def test_attach_text(self, traces):
        gen = WorkloadGenerator.fit(traces, attach_text=True)
        req = gen.sample_requests(3, rng=0)[0]
        assert req.input_text is not None
        assert Corpus.count_tokens(req.input_text) == req.input_tokens

    def test_requires_token_params(self, traces):
        with pytest.raises(ValueError, match="input_tokens"):
            WorkloadGenerator.fit(traces, params=["batch_size", "temperature"])

    def test_generator_smaller_and_faster_source_than_replay(self, traces, generator):
        replay = TraceReplaySampler(traces)
        assert generator.nbytes() < replay.nbytes()

    def test_replay_sampler_produces_trace_rows(self, traces):
        replay = TraceReplaySampler(traces)
        reqs = replay.sample_requests(50, rng=5)
        trace_inputs = set(traces["input_tokens"].tolist())
        assert all(r.input_tokens in trace_inputs for r in reqs)

    def test_replay_empty_traces_rejected(self, traces):
        empty = traces.select(np.zeros(len(traces), dtype=bool))
        with pytest.raises(ValueError):
            TraceReplaySampler(empty)
