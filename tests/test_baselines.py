"""Tests for the §V-C baseline recommenders."""

import numpy as np
import pytest

from repro.baselines import (
    MorphlingRecommender,
    PARISRecommender,
    PerfNetRecommender,
    PerfNetV2Recommender,
    RFRecommender,
    SelectaRecommender,
    StaticRecommender,
)
from repro.characterization import PerfDataset
from repro.hardware import aws_like_pricing
from repro.models import LLM_CATALOG, get_llm
from repro.recommendation import LatencyConstraints

CONSTRAINTS = LatencyConstraints(nttft_s=0.1, itl_s=0.05)
LOOKUP = dict(LLM_CATALOG)


# The small fixture dataset does not include the paper's reference
# profiles (1xT4 / 4xH100), so tests use the strongest/weakest profiles
# that are present.
_TEST_REFERENCE_PROFILES = ("1xH100-80GB", "4xT4-16GB")


@pytest.fixture(scope="session")
def train_test(small_dataset):
    dataset = small_dataset.dataset
    test_llm = "Llama-2-13b"
    train = dataset.exclude_llm(test_llm)
    reference = PerfDataset(
        records=[
            r
            for r in dataset.filter(llm=test_llm).records
            if r.profile in _TEST_REFERENCE_PROFILES
        ]
    )
    return dataset, train, test_llm, reference


class TestRF:
    def test_fit_predict(self, train_test):
        _, train, test_llm, _ = train_test
        rf = RFRecommender(n_estimators=20, user_counts=(1, 4, 16, 64))
        rf.fit(train, LOOKUP)
        nttft, itl = rf.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1, 4, 16])
        assert nttft.shape == (3,)
        assert np.all(np.isfinite(itl))

    def test_recommend_interface(self, train_test):
        _, train, test_llm, _ = train_test
        rf = RFRecommender(n_estimators=20, user_counts=(1, 4, 16, 64))
        rf.fit(train, LOOKUP)
        rec = rf.recommend(
            get_llm(test_llm), train.profiles(), aws_like_pricing(), CONSTRAINTS, 50
        )
        assert rec.assessments

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RFRecommender().predict_latencies(get_llm("Llama-2-7b"), "1xT4-16GB", [1])

    def test_does_not_require_reference(self):
        assert not RFRecommender.requires_reference
        with pytest.raises(NotImplementedError):
            RFRecommender().observe_reference(get_llm("Llama-2-7b"), PerfDataset())


class TestPARIS:
    def test_requires_reference_flag(self):
        assert PARISRecommender.requires_reference

    def test_fit_observe_predict(self, train_test):
        _, train, test_llm, reference = train_test
        paris = PARISRecommender(n_estimators=20, user_counts=(1, 4, 16, 64))
        paris.fit(train, LOOKUP)
        paris.observe_reference(get_llm(test_llm), reference)
        nttft, itl = paris.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1, 4])
        assert np.all(np.isfinite(nttft)) and np.all(np.isfinite(itl))

    def test_predict_without_reference_raises(self, train_test):
        _, train, test_llm, _ = train_test
        paris = PARISRecommender(n_estimators=10, user_counts=(1, 4, 16, 64))
        paris.fit(train, LOOKUP)
        with pytest.raises(RuntimeError, match="observe_reference"):
            paris.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1])

    def test_reference_vector_imputes_missing(self, train_test):
        _, train, test_llm, _ = train_test
        paris = PARISRecommender(n_estimators=10, user_counts=(1, 4, 16, 64))
        paris.fit(train, LOOKUP)
        # Empty reference: everything imputed, still finite features.
        paris.observe_reference(get_llm(test_llm), PerfDataset())
        assert np.all(np.isfinite(paris._test_ref))


class TestSelecta:
    def test_completion_predicts_for_unseen(self, train_test):
        _, train, test_llm, reference = train_test
        sel = SelectaRecommender(n_epochs=40, user_counts=(1, 4, 16, 64))
        sel.fit(train, LOOKUP)
        sel.observe_reference(get_llm(test_llm), reference)
        nttft, itl = sel.predict_latencies(
            get_llm(test_llm), "1xA100-40GB", [1, 4, 16, 64]
        )
        assert np.all(np.isfinite(nttft))
        assert np.all(nttft > 0)  # log-space factorization keeps positivity

    def test_unknown_column_gives_nan(self, train_test):
        _, train, test_llm, reference = train_test
        sel = SelectaRecommender(n_epochs=10, user_counts=(1, 4, 16, 64))
        sel.fit(train, LOOKUP)
        sel.observe_reference(get_llm(test_llm), reference)
        nttft, _ = sel.predict_latencies(get_llm(test_llm), "9xUnknown", [1])
        assert np.isnan(nttft[0])

    def test_predict_for_wrong_llm_raises(self, train_test):
        _, train, test_llm, reference = train_test
        sel = SelectaRecommender(n_epochs=10, user_counts=(1, 4, 16, 64))
        sel.fit(train, LOOKUP)
        sel.observe_reference(get_llm(test_llm), reference)
        with pytest.raises(RuntimeError):
            sel.predict_latencies(get_llm("google/flan-t5-xl"), "1xA100-40GB", [1])


class TestNeuralBaselines:
    @pytest.mark.parametrize("cls", [PerfNetRecommender, PerfNetV2Recommender])
    def test_fit_predict_positive_latencies(self, cls, train_test):
        _, train, test_llm, _ = train_test
        net = cls(n_epochs=30, user_counts=(1, 4, 16, 64))
        net.fit(train, LOOKUP)
        nttft, itl = net.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1, 16])
        assert np.all(nttft > 0) and np.all(itl > 0)

    def test_perfnet_v2_is_joint(self):
        assert PerfNetV2Recommender.joint_outputs
        assert not PerfNetRecommender.joint_outputs

    def test_morphling_finetunes_on_reference(self, train_test):
        _, train, test_llm, reference = train_test
        m = MorphlingRecommender(n_epochs=30, finetune_epochs=30,
                                 user_counts=(1, 4, 16, 64))
        m.fit(train, LOOKUP)
        before = m.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1, 16])
        m.observe_reference(get_llm(test_llm), reference)
        after = m.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1, 16])
        # Fine-tuning must change the predictions (reference non-empty).
        if len(reference) > 0:
            assert not np.allclose(before[0], after[0])

    def test_morphling_empty_reference_is_safe(self, train_test):
        _, train, test_llm, _ = train_test
        m = MorphlingRecommender(n_epochs=20, user_counts=(1, 4, 16, 64))
        m.fit(train, LOOKUP)
        m.observe_reference(get_llm(test_llm), PerfDataset())
        nttft, _ = m.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1])
        assert np.isfinite(nttft[0])

    def test_morphling_refinetunes_from_meta(self, train_test):
        """Observing LLM B after LLM A must reset to meta-parameters."""
        _, train, test_llm, reference = train_test
        m = MorphlingRecommender(n_epochs=20, finetune_epochs=20,
                                 user_counts=(1, 4, 16, 64))
        m.fit(train, LOOKUP)
        m.observe_reference(get_llm(test_llm), reference)
        a = m.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1, 4])
        m.observe_reference(get_llm(test_llm), reference)
        b = m.predict_latencies(get_llm(test_llm), "1xA100-40GB", [1, 4])
        np.testing.assert_allclose(a[0], b[0])


class TestStatic:
    def test_policy_selected_from_training_data(self, train_test):
        dataset, train, test_llm, _ = train_test
        static = StaticRecommender(
            constraints=CONSTRAINTS, total_users=50, user_counts=(1, 4, 16, 64)
        )
        static.fit(train, LOOKUP)
        assert static.policy_ is not None
        profile, pods = static.policy_
        assert profile in train.profiles()
        assert pods >= 1

    def test_recommendation_is_fixed(self, train_test):
        _, train, _, _ = train_test
        static = StaticRecommender(
            constraints=CONSTRAINTS, total_users=50, user_counts=(1, 4, 16, 64)
        )
        static.fit(train, LOOKUP)
        r1 = static.recommend(
            get_llm("Llama-2-13b"), train.profiles(), aws_like_pricing(), CONSTRAINTS, 50
        )
        r2 = static.recommend(
            get_llm("google/flan-t5-xl"), train.profiles(), aws_like_pricing(), CONSTRAINTS, 50
        )
        assert (r1.profile, r1.n_pods) == (r2.profile, r2.n_pods)

    def test_recommend_before_fit_raises(self):
        static = StaticRecommender(constraints=CONSTRAINTS)
        with pytest.raises(RuntimeError):
            static.recommend(
                get_llm("Llama-2-7b"), ["1xT4-16GB"], aws_like_pricing(), CONSTRAINTS, 10
            )

    def test_no_predictions(self):
        static = StaticRecommender(constraints=CONSTRAINTS)
        with pytest.raises(NotImplementedError):
            static.predict_latencies(get_llm("Llama-2-7b"), "1xT4-16GB", [1])
