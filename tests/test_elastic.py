"""Tests for the elastic recommender, cost objectives and the feedback
scheduler (schedule -> co-simulate -> adjust)."""

import json
import math
import multiprocessing
import os
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cluster import Deployment, FeedbackScheduler, TenantRequest
from repro.hardware import aws_like_cloud_catalog, aws_like_pricing, parse_profile
from repro.models import get_llm
from repro.recommendation import (
    CostObjective,
    ElasticCandidate,
    ElasticOptions,
    ElasticRecommendation,
    ElasticRecommender,
    LinearSLOPenalty,
    StepSLOPenalty,
    default_candidates,
)
from repro.recommendation.recommender import ProfileAssessment
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    BurstyTraffic,
    PoissonTraffic,
    ThresholdPolicy,
)
from repro.simulation.fleet import FleetResult
from repro.simulation.metrics import LatencyStats
from repro.utils.parallel import fork_map
from repro.utils.rng import derive_rng

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-80GB")
WEIGHT = 20_000
PRICING = aws_like_pricing()


def _result(p95=1.0, pod_seconds=3600.0, duration_s=3600.0, shed=0, admitted=10,
            completed=10):
    stats = LatencyStats(
        median_s=p95, p95_s=p95, p99_s=p95, mean_s=p95, count=completed
    )
    return FleetResult(
        n_pods=1, traffic="poisson", router="rr", duration_s=duration_s,
        warmup_s=0.0, time_s=duration_s, arrivals=admitted + shed,
        requests_completed=completed, tokens_generated=100,
        throughput_tokens_per_s=1.0, ttft=stats, itl=stats, e2e=stats,
        admitted=admitted, shed=shed, completed_total=completed,
        in_flight_end=admitted - completed, pod_seconds=pod_seconds,
    )


def _deployment(generator, seed=0):
    return Deployment(
        llm=LLM, profile=PROFILE, n_pods=1, max_batch_weight=WEIGHT,
        generator=generator, seed=seed,
    )


class TestPenalties:
    def test_linear_zero_within_slo(self):
        penalty = LinearSLOPenalty(slo_p95_ttft_s=2.0, penalty_per_hour=100.0)
        assert penalty(_result(p95=1.5)) == 0.0

    def test_linear_scales_with_relative_excess(self):
        penalty = LinearSLOPenalty(slo_p95_ttft_s=2.0, penalty_per_hour=100.0)
        # 2x the SLO for one hour at $100/h -> $100.
        assert penalty(_result(p95=4.0)) == pytest.approx(100.0)
        # Half the window, same breach -> half the charge.
        assert penalty(
            _result(p95=4.0, duration_s=1800.0)
        ) == pytest.approx(50.0)

    def test_linear_charges_shed(self):
        penalty = LinearSLOPenalty(
            slo_p95_ttft_s=2.0, penalty_per_hour=0.0, penalty_per_shed=0.5
        )
        assert penalty(_result(p95=1.0, shed=8)) == pytest.approx(4.0)

    def test_step_flat_while_breached(self):
        penalty = StepSLOPenalty(slo_p95_ttft_s=2.0, penalty_per_hour=60.0)
        assert penalty(_result(p95=2.1)) == pytest.approx(60.0)
        assert penalty(_result(p95=100.0)) == pytest.approx(60.0)
        assert penalty(_result(p95=1.9)) == 0.0

    def test_nan_tail_with_admitted_work_is_a_breach(self):
        penalty = StepSLOPenalty(slo_p95_ttft_s=2.0, penalty_per_hour=60.0)
        starved = _result(p95=float("nan"), admitted=5, completed=0)
        assert penalty(starved) == pytest.approx(60.0)
        # An idle run served nothing because nothing arrived: no breach.
        idle = _result(p95=float("nan"), admitted=0, completed=0)
        assert penalty(idle) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSLOPenalty(slo_p95_ttft_s=0.0)
        with pytest.raises(ValueError):
            LinearSLOPenalty(slo_p95_ttft_s=1.0, penalty_per_hour=-1.0)
        with pytest.raises(ValueError):
            StepSLOPenalty(slo_p95_ttft_s=-1.0)


class TestCostObjective:
    def test_compute_cost_is_pod_hours_times_rate(self):
        objective = CostObjective(PRICING, LinearSLOPenalty(2.0))
        res = _result(pod_seconds=7200.0)
        assert objective.compute_cost(res, PROFILE) == pytest.approx(
            2.0 * PRICING.pod_cost(PROFILE)
        )

    def test_total_is_compute_plus_penalty(self):
        objective = CostObjective(
            PRICING, StepSLOPenalty(slo_p95_ttft_s=2.0, penalty_per_hour=30.0)
        )
        res = _result(p95=5.0, pod_seconds=3600.0)
        assert objective.total(res, PROFILE) == pytest.approx(
            PRICING.pod_cost(PROFILE) + 30.0
        )


class TestElasticCandidate:
    def test_validation(self):
        with pytest.raises(ValueError, match="min_pods"):
            ElasticCandidate("threshold", 0, 2, lambda: ThresholdPolicy(1.0))
        with pytest.raises(ValueError, match="max_pods"):
            ElasticCandidate("threshold", 3, 2, lambda: ThresholdPolicy(1.0))
        with pytest.raises(ValueError, match="static"):
            ElasticCandidate("static", 1, 2)

    def test_labels(self):
        static = ElasticCandidate("static", 3, 3)
        assert static.label == "static[3]"
        elastic = ElasticCandidate("threshold", 1, 4, lambda: ThresholdPolicy(1.0))
        assert elastic.label == "threshold[1..4]"

    def test_default_candidates_cover_all_policies(self):
        candidates = default_candidates(
            slo_p95_ttft_s=4.0, max_pods=5, requests_per_pod_per_s=1.0
        )
        assert [c.policy for c in candidates] == [
            "threshold", "target-utilization", "predictive",
        ]
        for c in candidates:
            assert (c.min_pods, c.max_pods) == (1, 5)
            assert c.make_policy() is not c.make_policy()  # fresh per call

    def test_default_candidates_threshold_reacts_early(self):
        (threshold, _, _) = default_candidates(
            slo_p95_ttft_s=8.0, max_pods=4, requests_per_pod_per_s=1.0,
            policy_slo_fraction=0.25,
        )
        assert threshold.make_policy().slo_p95_ttft_s == pytest.approx(2.0)
        with pytest.raises(ValueError):
            default_candidates(4.0, 4, 1.0, policy_slo_fraction=0.0)


class TestElasticRecommender:
    SLO = 20.0

    def _recommender(self, generator, **kw):
        defaults = dict(
            slo_p95_ttft_s=self.SLO,
            duration_s=60.0,
            decision_interval_s=10.0,
            cold_start_s=5.0,
            metrics_window_s=15.0,
        )
        defaults.update(kw)
        return ElasticRecommender(
            _deployment(generator),
            lambda: PoissonTraffic(3.0, rng=derive_rng(0, "elastic-test")),
            CostObjective(
                PRICING,
                LinearSLOPenalty(self.SLO, penalty_per_hour=100.0),
            ),
            **defaults,
        )

    def test_evaluate_static_has_flat_bill(self, generator):
        point = self._recommender(generator).evaluate(
            ElasticCandidate("static", 2, 2)
        )
        assert point.policy == "static"
        assert point.scale_events == 0
        # A static fleet bills exactly pods * wall time.
        assert point.pod_hours == pytest.approx(
            2 * point.result.time_s / 3600.0
        )
        assert point.total_cost == point.compute_cost + point.slo_penalty

    def test_sweep_replays_identical_traffic(self, generator):
        recommender = self._recommender(generator)
        a = recommender.evaluate(ElasticCandidate("static", 1, 1))
        b = recommender.evaluate(ElasticCandidate("static", 1, 1))
        assert a.arrivals == b.arrivals
        assert a.p95_ttft_s == b.p95_ttft_s
        assert a.pod_hours == b.pod_hours

    def test_static_ladder_bisects_to_smallest_slo_meeting_count(self, generator):
        recommender = self._recommender(generator)
        pods, ladder = recommender.peak_static_pods(search_max=6)
        assert 1 <= pods <= 6
        by_pods = {point.min_pods: point for point in ladder}
        # The answer's rung is always among the simulated points, the
        # ladder is sorted, and bisection beats the linear climb.
        assert sorted(by_pods) == [point.min_pods for point in ladder]
        assert pods in by_pods
        assert by_pods[pods].meets_slo or pods == 6
        # Every simulated rung below the answer breaches, every rung at
        # or above it meets — the monotone boundary bisection relies on.
        for n, point in by_pods.items():
            assert point.meets_slo == (n >= pods) or (
                n == pods == 6 and not point.meets_slo
            )

    def test_static_ladder_matches_linear_climb(self, generator):
        """Bisection returns the same answer a full linear ladder finds."""
        recommender = self._recommender(generator)
        pods, _ = recommender.peak_static_pods(search_max=6)
        from repro.recommendation.elastic import ElasticCandidate as EC

        linear = next(
            (
                n
                for n in range(1, 7)
                if recommender.evaluate(EC("static", n, n)).meets_slo
            ),
            6,
        )
        assert pods == linear

    def test_recommend_prefers_slo_meeting_cheapest(self, generator):
        rec = self._recommender(generator).recommend(search_max=6)
        assert isinstance(rec, ElasticRecommendation)
        assert rec.chosen in rec.curve
        assert rec.static in rec.curve
        meeting = [p for p in rec.curve if p.meets_slo]
        if meeting:
            assert rec.chosen.meets_slo
            assert rec.chosen.total_cost == min(p.total_cost for p in meeting)
        # Savings is measured against the static baseline, never negative
        # when the static point itself was eligible for selection.
        assert rec.savings >= 0 or not rec.static.meets_slo

    def test_pinned_static_pods_becomes_baseline(self, generator):
        rec = self._recommender(generator).recommend(
            candidates=[
                ElasticCandidate(
                    "threshold", 1, 3,
                    lambda: ThresholdPolicy(slo_p95_ttft_s=5.0),
                )
            ],
            static_pods=2,
        )
        assert rec.static.policy == "static"
        assert rec.static.min_pods == 2
        assert len(rec.curve) == 2
        assert rec.as_dict()["static"]["min_pods"] == 2

    def test_as_dict_schema(self, generator):
        rec = self._recommender(generator).recommend(static_pods=1)
        data = rec.as_dict()
        assert set(data) == {
            "profile", "slo_p95_ttft_s", "chosen", "static", "curve",
            "pruned", "savings", "savings_fraction", "meets_slo",
        }
        for point in data["curve"]:
            assert math.isfinite(point["pod_hours"])
            assert point["policy"]

    def test_validation(self, generator):
        with pytest.raises(ValueError, match="duration_s"):
            self._recommender(generator, duration_s=0.0)
        with pytest.raises(ValueError, match="slo"):
            self._recommender(generator, slo_p95_ttft_s=0.0)
        with pytest.raises(ValueError, match="static_pods"):
            self._recommender(generator).recommend(static_pods=0)
        with pytest.raises(ValueError, match="search_max"):
            self._recommender(generator).peak_static_pods(search_max=0)

    def test_rejects_closed_loop_traffic(self, generator):
        """Closed-loop arrivals adapt to each candidate's service rate,
        so the identical-traffic premise of the sweep cannot hold."""
        from repro.simulation import ClosedLoopTraffic

        with pytest.raises(ValueError, match="open-loop"):
            ElasticRecommender(
                _deployment(generator),
                lambda: ClosedLoopTraffic(8),
                CostObjective(PRICING, LinearSLOPenalty(self.SLO)),
                slo_p95_ttft_s=self.SLO,
                duration_s=60.0,
            )


class TestToolElasticWiring:
    def test_recommend_elastic_returns_trade_curve(self, small_dataset, generator):
        from repro.models import LLM_CATALOG
        from repro.recommendation import (
            GPURecommendationTool,
            LatencyConstraints,
            PerfModelHyperparams,
        )
        from repro.recommendation.pilot import LLMPilotRecommender

        constraints = LatencyConstraints(nttft_s=0.1, itl_s=0.05)
        pilot = LLMPilotRecommender(
            constraints=constraints,
            hyperparams=PerfModelHyperparams(n_estimators=40),
        )
        pilot.fit(small_dataset.dataset.exclude_llm("Llama-2-13b"), dict(LLM_CATALOG))
        tool = GPURecommendationTool(
            perf_model=pilot.model_,
            pricing=PRICING,
            constraints=constraints,
            max_request_weight=generator.max_request_weight(),
        )
        from repro.hardware import default_profiles

        static = tool.recommend(LLM, default_profiles(), total_users=20)
        assert static.feasible
        options = ElasticOptions(
            generator=generator,
            traffic_factory=lambda: PoissonTraffic(
                2.0, rng=derive_rng(0, "tool-elastic")
            ),
            objective=CostObjective(PRICING, LinearSLOPenalty(20.0)),
            slo_p95_ttft_s=20.0,
            duration_s=40.0,
            max_batch_weight=WEIGHT,
            decision_interval_s=10.0,
            cold_start_s=5.0,
            metrics_window_s=15.0,
        )
        rec = tool.recommend(LLM, default_profiles(), total_users=20, elastic=options)
        assert isinstance(rec, ElasticRecommendation)
        assert rec.profile == static.profile
        assert rec.static.min_pods == static.n_pods
        assert rec.static_recommendation is not None
        assert rec.static_recommendation.profile == static.profile
        assert len(rec.curve) >= 4  # baseline + three default policies


needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def _boom_policy():
    raise RuntimeError("boom")


def _hard_exit(_index):
    os._exit(13)


class TestParallelSweeps:
    """Process-parallel sweeps must be a pure performance knob: same
    bytes out as serial, candidate order preserved, and a dead worker
    surfaces as an error instead of a hang."""

    SLO = 20.0

    def _recommender(self, generator):
        return ElasticRecommender(
            _deployment(generator),
            lambda: PoissonTraffic(3.0, rng=derive_rng(0, "elastic-test")),
            CostObjective(
                PRICING, LinearSLOPenalty(self.SLO, penalty_per_hour=100.0)
            ),
            slo_p95_ttft_s=self.SLO,
            duration_s=60.0,
            decision_interval_s=10.0,
            cold_start_s=5.0,
            metrics_window_s=15.0,
        )

    @needs_fork
    def test_recommend_jobs_byte_identical(self, generator):
        serial = self._recommender(generator).recommend(search_max=4, jobs=1)
        parallel = self._recommender(generator).recommend(search_max=4, jobs=4)
        assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
            parallel.as_dict(), sort_keys=True
        )

    @needs_fork
    def test_evaluate_many_preserves_candidate_order(self, generator):
        recommender = self._recommender(generator)
        candidates = [ElasticCandidate("static", n, n) for n in (3, 1, 2)]
        candidates.append(
            ElasticCandidate(
                "threshold", 1, 2, lambda: ThresholdPolicy(slo_p95_ttft_s=5.0)
            )
        )
        points = recommender.evaluate_many(candidates, jobs=4)
        assert [(p.policy, p.min_pods, p.max_pods) for p in points] == [
            (c.policy, c.min_pods, c.max_pods) for c in candidates
        ]
        serial = [recommender.evaluate(c) for c in candidates]
        assert [p.total_cost for p in points] == [p.total_cost for p in serial]
        assert [p.p95_ttft_s for p in points] == [p.p95_ttft_s for p in serial]

    @needs_fork
    def test_worker_exception_propagates(self, generator):
        recommender = self._recommender(generator)
        bad = ElasticCandidate("threshold", 1, 2, _boom_policy)
        good = ElasticCandidate("static", 1, 1)
        with pytest.raises(RuntimeError, match="boom"):
            recommender.evaluate_many([bad, good], jobs=2)

    @needs_fork
    def test_worker_crash_surfaces_as_error(self):
        # A worker that dies outright (os._exit skips all cleanup) must
        # break the pool, not leave the parent waiting forever.
        with pytest.raises(BrokenProcessPool):
            fork_map(_hard_exit, [0, 1], jobs=2)

    def test_serial_fallback_avoids_pool(self):
        # jobs=1 and single-item inputs never fork, so even a would-be
        # crasher runs inline (guard: call a harmless fn instead).
        assert fork_map(lambda x: x * 2, [1, 2, 3], jobs=1) == [2, 4, 6]
        assert fork_map(lambda x: x + 1, [41], jobs=8) == [42]

    def test_jobs_none_and_zero_run_serial(self):
        assert fork_map(lambda x: -x, [1, 2], jobs=None) == [-1, -2]
        assert fork_map(lambda x: -x, [1, 2], jobs=0) == [-1, -2]


def _option(n_pods):
    pod_cost = PRICING.pod_cost(PROFILE)
    return ProfileAssessment(
        profile=PROFILE.name, umax=10, n_pods=n_pods,
        pod_cost=pod_cost, total_cost=pod_cost * n_pods,
    )


def _scaler(max_pods):
    return Autoscaler(
        ThresholdPolicy(slo_p95_ttft_s=1.0),
        AutoscaleConfig(
            decision_interval_s=10.0, max_pods=max_pods,
            cold_start_s=5.0, metrics_window_s=20.0,
        ),
    )


class TestFeedbackScheduler:
    def _inputs(self, generator):
        requests = [
            TenantRequest("quiet", (_option(1),)),
            TenantRequest("noisy", (_option(1),)),
        ]
        deployments = {
            "quiet": _deployment(generator, seed=1),
            "noisy": _deployment(generator, seed=2),
        }
        factories = {
            "quiet": lambda: PoissonTraffic(
                1.0, rng=derive_rng(0, "fb-test", "quiet")
            ),
            "noisy": lambda: BurstyTraffic(
                8.0, rng=derive_rng(0, "fb-test", "noisy"),
                mean_on_s=20.0, mean_off_s=20.0,
            ),
        }
        autoscalers = {"quiet": _scaler(3), "noisy": _scaler(6)}
        return requests, deployments, factories, autoscalers

    def test_contended_cluster_improves(self, generator):
        requests, deployments, factories, autoscalers = self._inputs(generator)
        scheduler = FeedbackScheduler(
            capacity={PROFILE.gpu.name: 3}, duration_s=90.0, max_iterations=3
        )
        outcome = scheduler.run(
            requests, deployments, factories, autoscalers=autoscalers
        )
        totals = outcome.contended_totals()
        assert totals[0] > 0, "scenario must actually contend"
        assert len(outcome.iterations) >= 2
        assert totals[-1] < totals[0]
        assert all(b <= a for a, b in zip(totals, totals[1:]))
        # Adjustments were recorded on the iterations that triggered them.
        assert outcome.iterations[0].adjustments
        # Placements never exceed the inventory.
        for it in outcome.iterations:
            held = sum(
                p.n_pods * parse_profile(p.profile).count for p in it.placements
            )
            assert held <= 3

    def test_uncontended_cluster_converges_immediately(self, generator):
        requests, deployments, factories, autoscalers = self._inputs(generator)
        scheduler = FeedbackScheduler(
            capacity={PROFILE.gpu.name: 32}, duration_s=60.0, max_iterations=3
        )
        outcome = scheduler.run(
            requests, deployments, factories, autoscalers=autoscalers
        )
        assert outcome.converged
        assert len(outcome.iterations) == 1
        assert outcome.contended_totals() == [0]
        assert outcome.iterations[0].adjustments == {}

    def test_cloud_burst_absorbs_contention(self, generator):
        # Same contended setup as above, but with an unmetered cloud tier:
        # every denied scale-up rents instead, so the first co-simulation
        # sees no contention at all and the loop converges immediately.
        requests, deployments, factories, autoscalers = self._inputs(generator)
        scheduler = FeedbackScheduler(
            capacity={PROFILE.gpu.name: 3}, duration_s=90.0, max_iterations=3,
            cloud=aws_like_cloud_catalog(), pricing=PRICING,
        )
        outcome = scheduler.run(
            requests, deployments, factories, autoscalers=autoscalers
        )
        assert outcome.converged
        assert outcome.contended_totals() == [0]
        cloud_s = sum(
            r.cloud_pod_seconds
            for r in outcome.iterations[0].result.results.values()
        )
        assert cloud_s > 0, "the noisy tenant should have rented cloud pods"

    def test_quota_limited_cloud_prefers_burst_over_rightsize(self, generator):
        # A one-GPU cloud quota leaves residual contention, but tenants
        # without an SLO qualify for the burst-to-cloud adjustment; once
        # every adjustment is burst-to-cloud the loop stops re-simulating.
        requests, deployments, factories, autoscalers = self._inputs(generator)
        scheduler = FeedbackScheduler(
            capacity={PROFILE.gpu.name: 3}, duration_s=90.0, max_iterations=3,
            cloud=aws_like_cloud_catalog(quota_gpus={PROFILE.gpu.name: 1}),
            pricing=PRICING,
        )
        outcome = scheduler.run(
            requests, deployments, factories, autoscalers=autoscalers
        )
        totals = outcome.contended_totals()
        assert totals[0] > 0, "a one-pod quota must leave residual contention"
        assert len(outcome.iterations) == 1
        adjustments = outcome.iterations[0].adjustments
        assert adjustments
        assert all(a.startswith("burst-to-cloud") for a in adjustments.values())

    def test_burst_policy_without_catalog_is_rejected(self, generator):
        from repro.simulation.cloud import BurstPolicy

        with pytest.raises(ValueError, match="nothing to rent from"):
            FeedbackScheduler(
                capacity={PROFILE.gpu.name: 3}, duration_s=60.0,
                burst=BurstPolicy(),
            )

    def test_deterministic(self, generator):
        def run():
            requests, deployments, factories, autoscalers = self._inputs(generator)
            return FeedbackScheduler(
                capacity={PROFILE.gpu.name: 3}, duration_s=60.0, max_iterations=2
            ).run(requests, deployments, factories, autoscalers=autoscalers)

        a, b = run(), run()
        assert a.contended_totals() == b.contended_totals()
        assert [
            [(p.tenant, p.profile, p.n_pods) for p in it.placements]
            for it in a.iterations
        ] == [
            [(p.tenant, p.profile, p.n_pods) for p in it.placements]
            for it in b.iterations
        ]

    def test_static_tenants_have_no_scale_events(self, generator):
        requests, deployments, factories, _ = self._inputs(generator)
        scheduler = FeedbackScheduler(
            capacity={PROFILE.gpu.name: 2}, duration_s=30.0, max_iterations=2
        )
        outcome = scheduler.run(requests, deployments, factories)
        assert outcome.converged
        assert outcome.contended_totals() == [0]

    def test_validation(self):
        with pytest.raises(ValueError, match="duration_s"):
            FeedbackScheduler(capacity={}, duration_s=0.0)
        with pytest.raises(ValueError, match="max_iterations"):
            FeedbackScheduler(capacity={}, duration_s=1.0, max_iterations=0)

    @needs_fork
    def test_sweep_capacities_parallel_matches_serial(self, generator):
        requests, deployments, factories, autoscalers = self._inputs(generator)
        capacities = [{PROFILE.gpu.name: 2}, {PROFILE.gpu.name: 4}]

        def sweep(jobs):
            return FeedbackScheduler(
                capacity={}, duration_s=30.0, max_iterations=2
            ).sweep_capacities(
                capacities, requests, deployments, factories,
                autoscalers=autoscalers, jobs=jobs,
            )

        serial, parallel = sweep(1), sweep(2)
        assert [o.contended_totals() for o in serial] == [
            o.contended_totals() for o in parallel
        ]
        assert [
            [(p.tenant, p.profile, p.n_pods) for p in o.iterations[-1].placements]
            for o in serial
        ] == [
            [(p.tenant, p.profile, p.n_pods) for p in o.iterations[-1].placements]
            for o in parallel
        ]


class TestArrivalCache:
    """The shared arrival-stream cache must be a pure performance knob:
    one factory call per sweep, byte-identical recommendations."""

    SLO = 2.0

    def _recommender(self, generator, cache_arrivals=True, factory=None):
        return ElasticRecommender(
            _deployment(generator),
            factory
            or (lambda: PoissonTraffic(3.0, rng=derive_rng(0, "elastic-test"))),
            CostObjective(
                PRICING, LinearSLOPenalty(self.SLO, penalty_per_hour=100.0)
            ),
            slo_p95_ttft_s=self.SLO,
            duration_s=60.0,
            decision_interval_s=10.0,
            cold_start_s=5.0,
            metrics_window_s=15.0,
            cache_arrivals=cache_arrivals,
        )

    def test_cached_recommendation_byte_identical_to_fresh(self, generator):
        cached = self._recommender(generator, True).recommend(search_max=4)
        fresh = self._recommender(generator, False).recommend(search_max=4)
        assert json.dumps(cached.as_dict(), sort_keys=True) == json.dumps(
            fresh.as_dict(), sort_keys=True
        )

    def test_factory_called_once_per_sweep(self, generator):
        calls = []

        def factory():
            calls.append(1)
            return PoissonTraffic(3.0, rng=derive_rng(0, "elastic-test"))

        recommender = self._recommender(generator, True, factory=factory)
        calls.clear()  # the constructor's open-loop probe does not count
        recommender.evaluate(ElasticCandidate("static", 1, 1))
        recommender.evaluate(ElasticCandidate("static", 2, 2))
        assert len(calls) == 1

    def test_cache_off_regenerates_per_candidate(self, generator):
        calls = []

        def factory():
            calls.append(1)
            return PoissonTraffic(3.0, rng=derive_rng(0, "elastic-test"))

        recommender = self._recommender(generator, False, factory=factory)
        calls.clear()
        recommender.evaluate(ElasticCandidate("static", 1, 1))
        recommender.evaluate(ElasticCandidate("static", 2, 2))
        assert len(calls) == 2

    def test_evaluate_many_dedupes_identical_candidates(self, generator):
        recommender = self._recommender(generator)
        rung = ElasticCandidate("static", 1, 1)
        points = recommender.evaluate_many([rung, ElasticCandidate("static", 1, 1)])
        assert points[0] is points[1]

    def test_evaluate_many_keeps_distinct_policy_closures(self, generator):
        """Same label and bounds, different policy factories: candidate
        equality ignores the closure, the dedupe key must not."""
        recommender = self._recommender(generator)
        a = ElasticCandidate(
            "threshold", 1, 2, lambda: ThresholdPolicy(slo_p95_ttft_s=0.5)
        )
        b = ElasticCandidate(
            "threshold", 1, 2, lambda: ThresholdPolicy(slo_p95_ttft_s=10.0)
        )
        assert a == b  # dataclass equality is blind to the closure
        points = recommender.evaluate_many([a, b])
        assert points[0] is not points[1]


class TestCostPruning:
    SLO = 2.0

    def _recommender(self, generator):
        return ElasticRecommender(
            _deployment(generator),
            lambda: PoissonTraffic(3.0, rng=derive_rng(0, "elastic-test")),
            CostObjective(
                PRICING, LinearSLOPenalty(self.SLO, penalty_per_hour=100.0)
            ),
            slo_p95_ttft_s=self.SLO,
            duration_s=60.0,
            decision_interval_s=10.0,
            cold_start_s=5.0,
            metrics_window_s=15.0,
        )

    def test_prune_skips_dominated_candidate_and_records_it(
        self, generator, caplog
    ):
        expensive = ElasticCandidate(
            "threshold", 50, 60, lambda: ThresholdPolicy(slo_p95_ttft_s=0.5)
        )
        cheap = ElasticCandidate(
            "threshold", 1, 4, lambda: ThresholdPolicy(slo_p95_ttft_s=0.5)
        )
        with caplog.at_level("INFO", logger="repro.recommendation.elastic"):
            rec = self._recommender(generator).recommend(
                candidates=[expensive, cheap], static_pods=3, prune=True
            )
        assert rec.static.meets_slo  # the prune needs an incumbent
        assert [p.label for p in rec.pruned] == ["threshold[50..60]"]
        pruned = rec.pruned[0]
        assert pruned.cost_floor > pruned.incumbent_cost
        assert pruned.incumbent_label == rec.static.label
        # Never silent: the skip is logged and serialized.
        assert any("pruned candidate" in r.message for r in caplog.records)
        assert rec.as_dict()["pruned"][0]["label"] == "threshold[50..60]"
        # Only the surviving candidate was simulated.
        assert [p.label for p in rec.curve] == ["static[3]", "threshold[1..4]"]

    def test_prune_without_slo_meeting_incumbent_keeps_everything(
        self, generator
    ):
        # static[1] breaches this SLO, so there is no incumbent and
        # nothing may be pruned — an infeasible baseline proves nothing.
        expensive = ElasticCandidate(
            "threshold", 50, 60, lambda: ThresholdPolicy(slo_p95_ttft_s=0.5)
        )
        rec = self._recommender(generator).recommend(
            candidates=[expensive], static_pods=1, prune=True
        )
        assert not rec.static.meets_slo
        assert rec.pruned == []
        assert len(rec.curve) == 2

    def test_prune_off_by_default(self, generator):
        expensive = ElasticCandidate(
            "threshold", 50, 60, lambda: ThresholdPolicy(slo_p95_ttft_s=0.5)
        )
        rec = self._recommender(generator).recommend(
            candidates=[expensive], static_pods=3
        )
        assert rec.pruned == []
        assert len(rec.curve) == 2
