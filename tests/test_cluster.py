"""Tests for the deployment layer: load balancing and pod scaling."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import Deployment, round_robin_assignment, split_users
from repro.hardware import parse_profile
from repro.models import get_llm


class TestBalancer:
    def test_even_split(self):
        assert split_users(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_first_pods(self):
        assert split_users(10, 4) == [3, 3, 2, 2]

    def test_more_pods_than_users(self):
        assert split_users(2, 5) == [1, 1, 0, 0, 0]

    @given(st.integers(0, 500), st.integers(1, 32))
    def test_split_conserves_users(self, users, pods):
        shares = split_users(users, pods)
        assert sum(shares) == users
        assert max(shares) - min(shares) <= 1

    def test_round_robin(self):
        assert round_robin_assignment(5, 2) == [0, 1, 0, 1, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_users(1, 0)
        with pytest.raises(ValueError):
            split_users(-1, 2)
        with pytest.raises(ValueError):
            round_robin_assignment(1, 0)

    def test_balancer_module_is_retired_with_pointer(self):
        # The repro.cluster.balancer deprecation shim is gone for good;
        # the old import path must fail loudly and say where the names
        # live now, not resurface as a silent re-export.
        with pytest.raises(ImportError, match="repro.simulation.traffic"):
            from repro.cluster import balancer  # noqa: F401


class TestDeployment:
    @pytest.fixture()
    def deployment(self, generator):
        return Deployment(
            llm=get_llm("Llama-2-13b"),
            profile=parse_profile("1xA100-40GB"),
            n_pods=2,
            max_batch_weight=12_000,
            generator=generator,
            seed=3,
        )

    def test_per_pod_results(self, deployment):
        res = deployment.run_load_test(total_users=8, duration_s=10.0)
        assert res.n_pods == 2
        assert len(res.per_pod) == 2
        assert res.total_throughput == pytest.approx(res.throughput_per_pod.sum())

    def test_scale_copy(self, deployment):
        scaled = deployment.scale(4)
        assert scaled.n_pods == 4
        assert deployment.n_pods == 2

    def test_near_perfect_scaling(self, generator):
        """Table I: same users-per-pod ratio => similar per-pod throughput."""
        base = Deployment(
            llm=get_llm("Llama-2-13b"),
            profile=parse_profile("1xH100-80GB"),
            n_pods=1,
            max_batch_weight=60_000,
            generator=generator,
            seed=11,
        )
        r1 = base.run_load_test(total_users=4, duration_s=20.0)
        r2 = base.scale(2).run_load_test(total_users=8, duration_s=20.0)
        per_pod_1 = r1.mean_throughput_per_pod
        per_pod_2 = r2.mean_throughput_per_pod
        assert abs(per_pod_1 - per_pod_2) / per_pod_1 < 0.25

    def test_rsd_small_across_pods(self, generator):
        dep = Deployment(
            llm=get_llm("Llama-2-13b"),
            profile=parse_profile("1xH100-80GB"),
            n_pods=4,
            max_batch_weight=60_000,
            generator=generator,
            seed=13,
        )
        res = dep.run_load_test(total_users=32, duration_s=20.0)
        assert res.throughput_rsd < 0.15

    def test_zero_user_pods_skipped(self, deployment):
        res = deployment.run_load_test(total_users=1, duration_s=5.0)
        assert len(res.per_pod) == 1

    def test_invalid_args(self, generator):
        with pytest.raises(ValueError):
            Deployment(
                llm=get_llm("Llama-2-13b"),
                profile=parse_profile("1xA100-40GB"),
                n_pods=0,
                max_batch_weight=10_000,
                generator=generator,
            )
        dep = Deployment(
            llm=get_llm("Llama-2-13b"),
            profile=parse_profile("1xA100-40GB"),
            n_pods=1,
            max_batch_weight=10_000,
            generator=generator,
        )
        with pytest.raises(ValueError):
            dep.run_load_test(total_users=0)
