"""Tests for MLP, matrix factorization, preprocessing, metrics and CV."""

import numpy as np
import pytest

from repro.ml import (
    GridSearch,
    MatrixFactorization,
    MLPRegressor,
    OneHotEncoder,
    StandardScaler,
    grid_iter,
    leave_one_group_out,
    mae,
    mape,
    r2_score,
    rmse,
    weighted_mape,
)


class TestMLP:
    def _toy(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, size=(n, 4))
        y = X[:, 0] - 2 * X[:, 1] + 0.5 * X[:, 2] * X[:, 3]
        return X, y

    def test_fits_linear_plus_interaction(self):
        X, y = self._toy()
        m = MLPRegressor(hidden_layers=(32, 32), n_epochs=200, random_state=0).fit(X, y)
        assert r2_score(y, m.predict(X)) > 0.95

    def test_loss_decreases(self):
        X, y = self._toy()
        m = MLPRegressor(hidden_layers=(16,), n_epochs=50, random_state=1).fit(X, y)
        assert m.loss_curve_[-1] < m.loss_curve_[0]

    def test_multi_output(self):
        X, y = self._toy()
        Y = np.column_stack([y, -y])
        m = MLPRegressor(hidden_layers=(32,), n_epochs=150, random_state=2).fit(X, Y)
        pred = m.predict(X)
        assert pred.shape == (len(X), 2)
        assert r2_score(Y[:, 1], pred[:, 1]) > 0.9

    def test_partial_fit_improves(self):
        X, y = self._toy()
        m = MLPRegressor(hidden_layers=(16,), n_epochs=20, random_state=3).fit(X, y)
        before = np.mean((y - m.predict(X)) ** 2)
        m.partial_fit(X, y, n_epochs=100)
        after = np.mean((y - m.predict(X)) ** 2)
        assert after < before

    def test_reproducible(self):
        X, y = self._toy()
        a = MLPRegressor(n_epochs=30, random_state=4).fit(X, y).predict(X)
        b = MLPRegressor(n_epochs=30, random_state=4).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layers=())
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layers=(0,))
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.ones((2, 2)))

    def test_shape_mismatch(self):
        X, y = self._toy(50)
        m = MLPRegressor(n_epochs=5).fit(X, y)
        with pytest.raises(ValueError):
            m.predict(X[:, :2])


class TestMatrixFactorization:
    def _ratings(self, seed=0, u=25, i=18, rank=3, frac=0.6):
        rng = np.random.default_rng(seed)
        R = rng.normal(size=(u, rank)) @ rng.normal(size=(i, rank)).T + 2.0
        mask = rng.random((u, i)) < frac
        us, its = np.nonzero(mask)
        return R, mask, us, its

    def test_completes_low_rank_matrix(self):
        R, mask, us, its = self._ratings()
        mf = MatrixFactorization(n_factors=5, n_epochs=150, random_state=0)
        mf.fit(us, its, R[us, its], n_users=R.shape[0], n_items=R.shape[1])
        pred = mf.predict_full()
        heldout_rmse = np.sqrt(np.mean((pred[~mask] - R[~mask]) ** 2))
        assert heldout_rmse < 0.6 * R.std()

    def test_predict_subset_matches_full(self):
        R, mask, us, its = self._ratings(seed=1)
        mf = MatrixFactorization(n_factors=4, n_epochs=60, random_state=1)
        mf.fit(us, its, R[us, its], n_users=R.shape[0], n_items=R.shape[1])
        full = mf.predict_full()
        sub = mf.predict(us[:10], its[:10])
        np.testing.assert_allclose(sub, full[us[:10], its[:10]], rtol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MatrixFactorization(n_factors=0)
        mf = MatrixFactorization()
        with pytest.raises(ValueError):
            mf.fit(np.array([0]), np.array([0, 1]), np.array([1.0]))
        with pytest.raises(ValueError):
            mf.fit(np.array([], dtype=int), np.array([], dtype=int), np.array([]))
        with pytest.raises(ValueError):
            mf.fit(np.array([2]), np.array([0]), np.array([1.0]), n_users=2)
        with pytest.raises(RuntimeError):
            MatrixFactorization().predict(np.array([0]), np.array([0]))


class TestPreprocessing:
    def test_onehot_roundtrip(self):
        X = np.array([["a", "x"], ["b", "y"], ["a", "y"]], dtype=object)
        enc = OneHotEncoder().fit(X)
        out = enc.transform(X)
        assert out.shape == (3, 4)
        assert out.sum() == 6  # one hot per column per row

    def test_onehot_unknown_category_all_zeros(self):
        enc = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        out = enc.transform(np.array([["c"]], dtype=object))
        assert out.sum() == 0

    def test_onehot_feature_names(self):
        enc = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        assert enc.feature_names(["col"]) == ["col=a", "col=b"]

    def test_onehot_column_mismatch(self):
        enc = OneHotEncoder().fit(np.array([["a", "x"]], dtype=object))
        with pytest.raises(ValueError):
            enc.transform(np.array([["a"]], dtype=object))

    def test_scaler_standardizes(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(1000, 3))
        s = StandardScaler().fit(X)
        Z = s.transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_scaler_constant_column_safe(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_scaler_inverse(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        s = StandardScaler().fit(X)
        np.testing.assert_allclose(s.inverse_transform(s.transform(X)), X, atol=1e-12)

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform(np.array([["a"]], dtype=object))


class TestMetrics:
    def test_perfect_predictions(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mae(y, y) == 0
        assert rmse(y, y) == 0
        assert r2_score(y, y) == 1.0
        assert mape(y, y) == 0

    def test_r2_of_mean_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_mape_relative(self):
        assert mape(np.array([100.0]), np.array([110.0])) == pytest.approx(0.1)

    def test_weighted_mape_weighting(self):
        y = np.array([1.0, 100.0])
        p = np.array([2.0, 100.0])  # 100% error on first, 0% on second
        w_first = weighted_mape(y, p, np.array([1.0, 0.0]))
        w_second = weighted_mape(y, p, np.array([0.0, 1.0]))
        assert w_first == pytest.approx(1.0)
        assert w_second == pytest.approx(0.0)

    def test_weighted_mape_validation(self):
        y = np.ones(3)
        with pytest.raises(ValueError):
            weighted_mape(y, y, np.ones(2))
        with pytest.raises(ValueError):
            weighted_mape(y, y, -np.ones(3))
        with pytest.raises(ValueError):
            weighted_mape(y, y, np.zeros(3))

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.ones(3), np.ones(4))


class TestCV:
    def test_logo_covers_all_groups(self):
        groups = ["a", "a", "b", "c", "b"]
        splits = list(leave_one_group_out(groups))
        held = [g for _, _, g in splits]
        assert held == ["a", "b", "c"]
        for train, val, g in splits:
            assert set(train) | set(val) == set(range(5))
            assert not set(train) & set(val)

    def test_logo_needs_two_groups(self):
        with pytest.raises(ValueError):
            list(leave_one_group_out(["a", "a"]))

    def test_grid_iter_product(self):
        combos = list(grid_iter({"a": [1, 2], "b": ["x"]}))
        assert combos == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_grid_iter_empty(self):
        assert list(grid_iter({})) == [{}]

    def test_grid_search_picks_best(self):
        groups = ["a"] * 5 + ["b"] * 5

        def evaluate(params, train_idx, val_idx):
            return abs(params["x"] - 3)

        gs = GridSearch({"x": [1, 3, 7]}, evaluate)
        best = gs.run(groups)
        assert best == {"x": 3}
        assert gs.best_score_ == 0

    def test_grid_search_all_nan_raises(self):
        gs = GridSearch({"x": [1]}, lambda p, t, v: float("nan"))
        with pytest.raises(RuntimeError):
            gs.run(["a", "b"])
