"""Tests for the evaluation metrics (Eqs. 5-7), oracle and harness."""

import numpy as np
import pytest

from repro.characterization import PerfDataset, PerfRecord
from repro.evaluation import (
    RecommendationOutcome,
    best_deployment,
    score_outcomes,
    so_score,
    true_umax,
)
from repro.evaluation.harness import EvaluationConfig, evaluate_method, ideal_score
from repro.hardware import aws_like_pricing
from repro.models import LLM_CATALOG
from repro.recommendation import LatencyConstraints, PerfModelHyperparams
from repro.recommendation.pilot import LLMPilotRecommender

CONSTRAINTS = LatencyConstraints(nttft_s=0.1, itl_s=0.05)


def _mk_dataset(rows):
    ds = PerfDataset()
    for llm, prof, users, nttft, itl in rows:
        count, gpu = prof.split("x")
        ds.add(
            PerfRecord(
                llm=llm, profile=prof, gpu_name=gpu, gpu_count=int(count),
                concurrent_users=users, max_batch_weight=10_000,
                ttft_median_s=nttft * 100, nttft_median_s=nttft,
                itl_median_s=itl, throughput_tokens_per_s=10.0, e2e_median_s=1.0,
            )
        )
    return ds


class TestOracle:
    def test_true_umax_from_measured_series(self):
        ds = _mk_dataset([
            ("m", "1xT4-16GB", 1, 0.01, 0.01),
            ("m", "1xT4-16GB", 2, 0.01, 0.02),
            ("m", "1xT4-16GB", 4, 0.01, 0.08),  # ITL violation
        ])
        assert true_umax(ds, "m", "1xT4-16GB", CONSTRAINTS) == 2

    def test_true_umax_no_data_is_zero(self):
        ds = _mk_dataset([("m", "1xT4-16GB", 1, 0.01, 0.01)])
        assert true_umax(ds, "m", "9xMissing", CONSTRAINTS) == 0

    def test_best_deployment_minimizes_cost(self):
        ds = _mk_dataset([
            # T4 serves 2/pod at $0.53 => 10 users -> 5 pods -> $2.65
            ("m", "1xT4-16GB", 1, 0.01, 0.01),
            ("m", "1xT4-16GB", 2, 0.01, 0.02),
            ("m", "1xT4-16GB", 4, 0.01, 0.09),
            # A100 serves 4/pod at $4.10 => 10 users -> 3 pods -> $12.3
            ("m", "1xA100-40GB", 1, 0.01, 0.01),
            ("m", "1xA100-40GB", 4, 0.01, 0.02),
        ])
        best = best_deployment(
            ds, "m", ds.profiles(), aws_like_pricing(), CONSTRAINTS, total_users=10
        )
        assert best.profile == "1xT4-16GB"
        assert best.n_pods == 5
        assert best.total_cost == pytest.approx(5 * 0.53)

    def test_best_deployment_none_when_all_infeasible(self):
        ds = _mk_dataset([("m", "1xT4-16GB", 1, 0.9, 0.9)])
        assert (
            best_deployment(ds, "m", ds.profiles(), aws_like_pricing(), CONSTRAINTS, 10)
            is None
        )


class TestMetrics:
    def _outcome(self, success_cost=10.0, oracle_cost=8.0, umax=50, pods=4, users=200):
        return RecommendationOutcome(
            llm="m", recommended_profile="1xA100-40GB", n_pods=pods,
            recommended_cost=success_cost, true_umax=umax,
            oracle_profile="1xT4-16GB", oracle_cost=oracle_cost, total_users=users,
        )

    def test_success_condition_eq5(self):
        assert self._outcome(umax=50, pods=4, users=200).success
        assert not self._outcome(umax=49, pods=4, users=200).success

    def test_no_recommendation_is_failure(self):
        o = RecommendationOutcome(
            llm="m", recommended_profile=None, n_pods=0,
            recommended_cost=float("inf"), true_umax=0,
            oracle_profile="1xT4-16GB", oracle_cost=1.0, total_users=10,
        )
        assert not o.success

    def test_overspend_eq6(self):
        o = self._outcome(success_cost=12.0, oracle_cost=8.0)
        assert o.overspend == pytest.approx(0.5)

    def test_overspend_nan_on_failure(self):
        assert np.isnan(self._outcome(umax=1).overspend)

    def test_so_score_eq7(self):
        assert so_score(1.0, 0.0) == 1.0
        assert so_score(0.0, 0.0) == 0.0
        # Harmonic mean of 0.8 and 0.8.
        assert so_score(0.8, 0.2) == pytest.approx(0.8)
        # Overspend beyond 100% zeroes the second term.
        assert so_score(0.9, 1.5) == 0.0

    def test_so_score_validation(self):
        with pytest.raises(ValueError):
            so_score(1.2, 0.0)

    def test_score_outcomes_aggregation(self):
        outcomes = [
            self._outcome(success_cost=10.0, oracle_cost=10.0),  # success, O=0
            self._outcome(umax=1),  # failure
        ]
        score = score_outcomes("test", outcomes)
        assert score.success_rate == 0.5
        assert score.mean_overspend == pytest.approx(0.0)
        assert 0 < score.so <= 1

    def test_score_outcomes_all_failures(self):
        score = score_outcomes("test", [self._outcome(umax=1)])
        assert score.success_rate == 0.0
        assert score.so == 0.0

    def test_score_outcomes_empty_raises(self):
        with pytest.raises(ValueError):
            score_outcomes("test", [])


class TestHarness:
    def test_ideal_score_is_perfect_when_feasible(self, small_dataset):
        score = ideal_score(small_dataset.dataset)
        assert score.success_rate == 1.0
        assert score.mean_overspend == pytest.approx(0.0)
        assert score.so == pytest.approx(1.0)

    def test_evaluate_pilot_on_small_dataset(self, small_dataset, generator):
        cfg = EvaluationConfig(
            total_users=50,
            user_counts=(1, 4, 16, 64),
            max_request_weight=generator.max_request_weight(),
        )
        score = evaluate_method(
            lambda: LLMPilotRecommender(
                constraints=cfg.constraints,
                hyperparams=PerfModelHyperparams(n_estimators=40),
                user_counts=(1, 4, 16, 64),
            ),
            small_dataset.dataset,
            dict(LLM_CATALOG),
            config=cfg,
        )
        assert len(score.outcomes) == len(small_dataset.dataset.llms())
        assert 0.0 <= score.success_rate <= 1.0
        assert 0.0 <= score.so <= 1.0
        # With 4 LLMs and an easy setting the model should succeed sometimes.
        assert score.success_rate >= 0.25
