"""The curated scenario library: every scenarios/ file loads, runs, and
meets the expectations it declares, with golden-pinned headline metrics.

These tests are the per-scenario test matrix the library is pinned by:
a change that silently shifts a scenario's behaviour fails the golden
pin here before it ships, and a change that breaks an expectation bound
names the scenario and the failed check.
"""

import json

import pytest

from repro.simulation import (
    DEFAULT_SCENARIO_DIR,
    ScenarioSpec,
    evaluate_expectations,
    list_scenarios,
    load_by_name,
    scenario_path,
)

CURATED = [
    "bursty-agent-traffic",
    "closed-loop-chat",
    "contended-elastic-cluster",
    "diurnal-retail",
    "heavy-tail-replay",
    "noisy-neighbor",
    "pod-crash-recovery",
    "spot-burst-hybrid",
    "steady-poisson-baseline",
    "zone-outage-chaos",
]

# Seed-stable headline metrics per scenario (observed values behind the
# expectation checks). These pin determinism, not just the bounds: any
# drift in the simulator's arithmetic or event ordering shows up here.
GOLDEN = {
    "bursty-agent-traffic": {"completed": 83, "lost": 0, "p95_ttft_ms": 8026.872163},
    "closed-loop-chat": {"completed": 71, "lost": 0, "p95_ttft_ms": 570.995118},
    "contended-elastic-cluster": {"completed": 267, "lost": 0, "p95_ttft_ms": 40283.168267},
    "diurnal-retail": {"completed": 114, "lost": 0, "p95_ttft_ms": 18676.296816},
    "heavy-tail-replay": {"completed": 90, "lost": 0, "p95_ttft_ms": 16474.672628},
    "noisy-neighbor": {"completed": 257, "lost": 0, "p95_ttft_ms": 46064.555517},
    "pod-crash-recovery": {"completed": 90, "lost": 0, "p95_ttft_ms": 1018.570817},
    "spot-burst-hybrid": {"completed": 190, "lost": 0, "p95_ttft_ms": 12511.890466},
    "steady-poisson-baseline": {"completed": 77, "lost": 0, "p95_ttft_ms": 1006.639061},
    "zone-outage-chaos": {"completed": 140, "lost": 0, "p95_ttft_ms": 17392.082519},
}


def _run_and_evaluate(name):
    spec = load_by_name(name)
    result = spec.run(keep_samples=True)
    result.verify_conservation()
    return spec, result, evaluate_expectations(spec, result)


class TestLoader:
    def test_library_lists_every_curated_scenario(self):
        assert list_scenarios() == CURATED  # sorted by name

    def test_scenario_path_points_into_the_library(self):
        path = scenario_path("noisy-neighbor")
        assert path.parent == DEFAULT_SCENARIO_DIR
        assert path.name == "noisy-neighbor.yaml"

    def test_unknown_name_lists_available_names(self):
        with pytest.raises(ValueError) as err:
            scenario_path("nope")
        message = str(err.value)
        assert "unknown scenario name 'nope'" in message
        for name in CURATED:
            assert name in message

    def test_load_by_name_roundtrips_the_file(self):
        spec = load_by_name("steady-poisson-baseline")
        direct = ScenarioSpec.load(str(scenario_path("steady-poisson-baseline")))
        assert spec == direct

    def test_custom_directory(self, tmp_path):
        (tmp_path / "tiny.json").write_text(
            json.dumps(
                {
                    "duration_s": 5.0,
                    "workload": {"requests": 3000},
                    "traffic": {"kind": "poisson", "rate_per_s": 0.5},
                }
            )
        )
        assert list_scenarios(tmp_path) == ["tiny"]
        assert load_by_name("tiny", tmp_path).duration_s == 5.0

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        assert list_scenarios(tmp_path / "absent") == []

    @pytest.mark.parametrize("name", CURATED)
    def test_every_scenario_loads_and_declares_expectations(self, name):
        spec = load_by_name(name)
        assert spec.name == name  # file stem and spec name agree
        assert spec.expectations, f"{name} has no expectations block"


class TestScenarioMatrix:
    @pytest.mark.parametrize("name", CURATED)
    def test_scenario_meets_its_expectations(self, name):
        spec, result, report = _run_and_evaluate(name)
        assert report.passed, report.summary()
        # Every declared bound was actually evaluated — a skipped check
        # (e.g. missing metrics) must not silently count as a pass.
        assert all(c.passed is not None for c in report.checks), report.summary()

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_golden_headline_metrics(self, name):
        _, _, report = _run_and_evaluate(name)
        observed = {c.name: c.observed for c in report.checks}
        golden = GOLDEN[name]
        assert int(observed["min_completed"]) == golden["completed"]
        assert int(observed["max_lost"]) == golden["lost"]
        assert observed["p95_ttft_ms_max"] == pytest.approx(
            golden["p95_ttft_ms"], rel=1e-6
        )


class TestChaosParity:
    def test_pod_crash_recovery_fast_matches_oracle(self):
        # The library's designated parity scenario: a chaos run (crash +
        # slowdown faults) must be bit-identical between the heap-frontier
        # fast path and the oracle stepper.
        spec = load_by_name("pod-crash-recovery")
        assert spec.expectations.get("fast_oracle_parity") is True
        fast = spec.run(keep_samples=True, fast=True)
        oracle = spec.run(keep_samples=True, fast=False)
        for field in (
            "arrivals",
            "admitted",
            "shed",
            "requests_completed",
            "completed_total",
            "lost",
            "requeued",
            "tokens_generated",
        ):
            assert getattr(fast, field) == getattr(oracle, field), field
        assert fast.ttft.p95_s == oracle.ttft.p95_s
        assert fast.itl.p95_s == oracle.itl.p95_s
        assert [e.time_s for e in fast.fault_events] == [
            e.time_s for e in oracle.fault_events
        ]
