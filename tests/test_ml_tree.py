"""Tests for the histogram tree engine, including monotonicity properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import DecisionTreeRegressor, FeatureBinner, r2_score


def _toy(n=400, seed=0, d=4):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, d))
    y = 1.5 * X[:, 0] - X[:, 1] ** 2 + 0.05 * rng.standard_normal(n)
    return X, y


class TestFeatureBinner:
    def test_low_cardinality_thresholds(self):
        X = np.array([[0.0], [1.0], [1.0], [3.0]])
        b = FeatureBinner(max_bins=8).fit(X)
        codes = b.transform(X)
        assert b.n_bins(0) == 3
        assert codes[:, 0].tolist() == [0, 1, 1, 2]

    def test_constant_column_single_bin(self):
        X = np.ones((10, 1))
        b = FeatureBinner().fit(X)
        assert b.n_bins(0) == 1

    def test_codes_within_bins(self):
        X, _ = _toy(1000)
        b = FeatureBinner(max_bins=32).fit(X)
        codes = b.transform(X)
        for j in range(X.shape[1]):
            assert codes[:, j].max() < b.n_bins(j)

    def test_threshold_values_are_raw_scale(self):
        X, _ = _toy(500)
        b = FeatureBinner(max_bins=16).fit(X)
        thr = b.threshold_value(0, 0)
        assert X[:, 0].min() < thr < X[:, 0].max()

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=1)
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=256)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureBinner().transform(np.ones((2, 2)))


class TestDecisionTree:
    def test_fits_signal(self):
        X, y = _toy()
        t = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert r2_score(y, t.predict(X)) > 0.9

    def test_depth_zero_predicts_mean(self):
        X, y = _toy()
        t = DecisionTreeRegressor(max_depth=0).fit(X, y)
        np.testing.assert_allclose(t.predict(X), y.mean(), rtol=1e-9)

    def test_depth_bounded(self):
        X, y = _toy()
        t = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert t.depth() <= 3
        assert t.n_leaves() <= 8

    def test_min_samples_leaf(self):
        X, y = _toy(100)
        t = DecisionTreeRegressor(max_depth=10, min_samples_leaf=40).fit(X, y)
        assert t.n_leaves() <= 100 // 40 + 1

    def test_sample_weight_zero_ignores_points(self):
        X, y = _toy(300)
        w = np.ones(300)
        outlier = X.copy()
        y_out = y.copy()
        y_out[:50] += 100.0
        w_out = w.copy()
        w_out[:50] = 0.0
        t = DecisionTreeRegressor(max_depth=5).fit(outlier, y_out, sample_weight=w_out)
        # Predictions should look like the clean signal, not the outliers.
        assert np.abs(t.predict(X[50:]) - y[50:]).mean() < 2.0

    def test_weight_validation(self):
        X, y = _toy(50)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, y, sample_weight=-np.ones(50))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, y, sample_weight=np.zeros(50))

    def test_shape_validation(self):
        X, y = _toy(50)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, y[:-1])
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.empty((0, 3)), np.empty(0))
        t = DecisionTreeRegressor().fit(X, y)
        with pytest.raises(ValueError):
            t.predict(X[:, :2])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_feature_importances_sum_to_one(self):
        X, y = _toy()
        t = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert t.feature_importances_.sum() == pytest.approx(1.0)

    def test_importances_identify_signal_feature(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(500, 5))
        y = 10 * X[:, 2] + 0.01 * rng.standard_normal(500)
        t = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert np.argmax(t.feature_importances_) == 2

    def test_constant_target_single_leaf(self):
        X, _ = _toy(100)
        t = DecisionTreeRegressor(max_depth=5).fit(X, np.full(100, 3.3))
        assert t.n_leaves() == 1
        np.testing.assert_allclose(t.predict(X[:5]), 3.3, rtol=1e-9)


class TestMonotoneTree:
    def _check_monotone(self, model, d, feature, sign, rng, n_ctx=25):
        for _ in range(n_ctx):
            ctx = rng.uniform(-2, 2, size=d)
            pts = np.tile(ctx, (40, 1))
            pts[:, feature] = np.linspace(-2, 2, 40)
            diffs = np.diff(model.predict(pts))
            assert np.all(sign * diffs >= -1e-9)

    def test_increasing_constraint(self):
        X, y = _toy(500, seed=1)
        t = DecisionTreeRegressor(max_depth=7, monotone_constraints={0: 1}).fit(X, y)
        self._check_monotone(t, 4, 0, +1, np.random.default_rng(0))

    def test_decreasing_constraint(self):
        X, y = _toy(500, seed=2)
        y = -y
        t = DecisionTreeRegressor(max_depth=7, monotone_constraints={0: -1}).fit(X, y)
        self._check_monotone(t, 4, 0, -1, np.random.default_rng(1))

    def test_constraint_against_signal_degrades_fit(self):
        X, y = _toy(500, seed=3)
        free = DecisionTreeRegressor(max_depth=6).fit(X, y)
        forced = DecisionTreeRegressor(max_depth=6, monotone_constraints={0: -1}).fit(X, y)
        assert r2_score(y, forced.predict(X)) < r2_score(y, free.predict(X))

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(monotone_constraints={0: 2})

    def test_unknown_feature_index(self):
        X, y = _toy(100)
        with pytest.raises(ValueError, match="unknown feature"):
            DecisionTreeRegressor(monotone_constraints={10: 1}).fit(X, y)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_monotone_property_random_data(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, size=(150, 3))
        y = rng.standard_normal(150)  # pure noise: hardest case
        t = DecisionTreeRegressor(max_depth=5, monotone_constraints={1: 1}).fit(X, y)
        self._check_monotone(t, 3, 1, +1, rng, n_ctx=8)
