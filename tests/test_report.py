"""HTML run reports: self-contained output, stable section anchors, and
identical rendering for live results and replayed ``--json`` files."""

import json

import pytest

from repro.cli import main
from repro.hardware import aws_like_pricing
from repro.report import render_report
from repro.simulation import load_by_name

FLEET_ANCHORS = [
    "overview",
    "latency",
    "throughput",
    "scale-events",
    "faults",
    "pods",
]
CLUSTER_ANCHORS = [
    "overview",
    "occupancy",
    "tenants",
    "contention",
    "billing",
    "faults",
]


def _assert_self_contained(html):
    # The whole point of the report: it must open from file:// on an
    # air-gapped machine. No URL of any scheme may appear — this also
    # forbids the conventional SVG xmlns attribute, which HTML5 inline
    # SVG does not need.
    assert "http://" not in html
    assert "https://" not in html
    assert "<script" not in html
    assert "<link" not in html
    assert html.startswith("<!DOCTYPE html>")


def _anchored(html, anchor):
    return f'id="{anchor}"' in html


@pytest.fixture(scope="module")
def fleet_fault_result():
    spec = load_by_name("pod-crash-recovery")
    result = spec.run(keep_samples=True)
    result.verify_conservation()
    return spec, result


@pytest.fixture(scope="module")
def cluster_cloud_result():
    spec = load_by_name("spot-burst-hybrid")
    result = spec.run(keep_samples=True)
    result.verify_conservation()
    return spec, result


class TestFleetReport:
    def test_self_contained_with_all_sections(self, fleet_fault_result):
        spec, result = fleet_fault_result
        html = render_report(
            result.to_dict(slo_p95_ttft_s=spec.slo_ttft_ms / 1e3)
        )
        _assert_self_contained(html)
        for anchor in FLEET_ANCHORS:
            assert _anchored(html, anchor), anchor

    def test_fault_annotations_present(self, fleet_fault_result):
        _, result = fleet_fault_result
        html = render_report(result.to_dict())
        # Fault events are drawn as chart rules and tabled in #faults.
        assert "event-fault" in html
        assert "crash" in html
        assert "slowdown" in html

    def test_renders_live_result_object(self, fleet_fault_result):
        # A SimResult (not just its payload dict) flows through the
        # same path.
        _, result = fleet_fault_result
        html = render_report(result)
        _assert_self_contained(html)
        assert _anchored(html, "overview")

    def test_custom_title_is_escaped(self, fleet_fault_result):
        _, result = fleet_fault_result
        html = render_report(result.to_dict(), title="<crash> & burn")
        assert "<title>&lt;crash&gt; &amp; burn</title>" in html


class TestClusterReport:
    def test_self_contained_with_all_sections(self, cluster_cloud_result):
        spec, result = cluster_cloud_result
        html = render_report(result.to_dict(pricing=aws_like_pricing()))
        _assert_self_contained(html)
        for anchor in CLUSTER_ANCHORS + ["cloud"]:
            assert _anchored(html, anchor), anchor
        # Per-tenant drill-down sections exist for every tenant.
        for tenant in ("api", "background"):
            assert _anchored(html, f"tenant-{tenant}"), tenant

    def test_billing_populated_with_pricing(self, cluster_cloud_result):
        _, result = cluster_cloud_result
        html = render_report(result.to_dict(pricing=aws_like_pricing()))
        assert "tier breakdown" in html
        assert "total cost ($)" in html

    def test_billing_absent_without_pricing(self, cluster_cloud_result):
        _, result = cluster_cloud_result
        html = render_report(result.to_dict())
        assert "No pricing table was supplied" in html

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind 'mystery'"):
            render_report({"kind": "mystery"})


class TestReportCommand:
    def test_roundtrip_from_json_file(self, tmp_path, capsys):
        # simulate --json | report must render the same document the
        # live path produces (same payload, same renderer).
        rc = main(
            ["simulate", "--scenario-name", "pod-crash-recovery", "--json"]
        )
        assert rc == 0
        payload_text = capsys.readouterr().out
        src = tmp_path / "run.json"
        src.write_text(payload_text)
        out = tmp_path / "run.html"
        rc = main(["report", str(src), "--out", str(out)])
        assert rc == 0
        assert f"wrote {out}" in capsys.readouterr().out
        html = out.read_text()
        _assert_self_contained(html)
        for anchor in FLEET_ANCHORS:
            assert _anchored(html, anchor), anchor
        assert html == render_report(json.loads(payload_text))

    def test_live_scenario_by_name(self, tmp_path, capsys):
        out = tmp_path / "live.html"
        rc = main(
            [
                "report",
                "--scenario-name", "steady-poisson-baseline",
                "--out", str(out),
            ]
        )
        assert rc == 0
        html = out.read_text()
        _assert_self_contained(html)
        assert _anchored(html, "latency")

    def test_live_cluster_scenario_has_billing(self, tmp_path, capsys):
        out = tmp_path / "cluster.html"
        rc = main(
            ["report", "--scenario-name", "noisy-neighbor", "--out", str(out)]
        )
        assert rc == 0
        html = out.read_text()
        _assert_self_contained(html)
        for anchor in CLUSTER_ANCHORS:
            assert _anchored(html, anchor), anchor
        assert "tier breakdown" in html  # live cluster runs are priced

    def test_default_output_name_derives_from_input(
        self, tmp_path, capsys, monkeypatch
    ):
        rc = main(
            ["simulate", "--scenario-name", "closed-loop-chat", "--json"]
        )
        assert rc == 0
        (tmp_path / "chat.json").write_text(capsys.readouterr().out)
        monkeypatch.chdir(tmp_path)
        rc = main(["report", "chat.json"])
        assert rc == 0
        assert (tmp_path / "chat-report.html").exists()

    def test_requires_exactly_one_input(self, tmp_path, capsys):
        rc = main(["report"])
        assert rc == 2
        assert "exactly one input" in capsys.readouterr().err
        rc = main(
            [
                "report", "x.json",
                "--scenario-name", "noisy-neighbor",
            ]
        )
        assert rc == 2
        assert "exactly one input" in capsys.readouterr().err

    def test_batch_array_rejected(self, tmp_path, capsys):
        src = tmp_path / "batch.json"
        src.write_text(json.dumps([{"kind": "cluster"}, {"kind": "cluster"}]))
        rc = main(["report", str(src)])
        assert rc == 2
        assert "batch array" in capsys.readouterr().err

    def test_unknown_kind_exits_2(self, tmp_path, capsys):
        src = tmp_path / "odd.json"
        src.write_text(json.dumps({"kind": "recommendation"}))
        rc = main(["report", str(src)])
        assert rc == 2
        assert "kind" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        rc = main(["report", "no-such-file.json"])
        assert rc == 2
        assert "no-such-file.json" in capsys.readouterr().err

    def test_scenario_name_miss_lists_names(self, capsys):
        rc = main(["report", "--scenario-name", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario name" in err
        assert "available:" in err
