"""Tests for the GPU catalog, profiles and pricing tables."""

import pytest

from repro.hardware import (
    GPU_CATALOG,
    GPUProfile,
    aws_like_pricing,
    default_profiles,
    get_gpu,
    list_gpus,
    parse_profile,
    PricingTable,
)


class TestGPUCatalog:
    def test_catalog_has_the_paper_gpu_types(self):
        for name in ("H100-80GB", "A100-40GB", "A10-24GB", "T4-16GB", "V100-16GB"):
            assert name in GPU_CATALOG

    def test_a100_80gb_present_for_table1(self):
        assert get_gpu("A100-80GB").memory_gb == 80.0

    def test_get_gpu_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known types"):
            get_gpu("B200")

    def test_memory_ordering(self):
        assert get_gpu("H100-80GB").memory_gb > get_gpu("T4-16GB").memory_gb

    def test_bandwidth_ordering_matches_datasheets(self):
        # V100 HBM2 is faster than T4 GDDR6 and A10 GDDR6.
        assert get_gpu("V100-16GB").memory_bandwidth_gbps > get_gpu("T4-16GB").memory_bandwidth_gbps
        assert get_gpu("V100-16GB").memory_bandwidth_gbps > get_gpu("A10-24GB").memory_bandwidth_gbps

    def test_compute_capabilities(self):
        assert get_gpu("V100-16GB").compute_capability == 7.0
        assert get_gpu("T4-16GB").compute_capability == 7.5
        assert get_gpu("H100-80GB").compute_capability == 9.0

    def test_interconnect_bandwidth_nvlink(self):
        h100 = get_gpu("H100-80GB")
        assert h100.interconnect_bandwidth_gbps() == h100.nvlink_bandwidth_gbps

    def test_interconnect_bandwidth_pcie_fallback(self):
        t4 = get_gpu("T4-16GB")
        assert t4.interconnect_bandwidth_gbps() == t4.pcie_bandwidth_gbps

    def test_feature_dict_complete_and_numeric(self):
        for name in list_gpus():
            feats = get_gpu(name).feature_dict()
            assert all(isinstance(v, float) for v in feats.values())
            assert "gpu_memory_gb" in feats and "gpu_fp16_tflops" in feats


class TestGPUProfile:
    def test_default_profiles_count_matches_table3(self):
        assert len(default_profiles()) == 14

    def test_default_profiles_unique_names(self):
        names = [p.name for p in default_profiles()]
        assert len(set(names)) == len(names)

    def test_aggregate_memory(self):
        p = GPUProfile(gpu=get_gpu("A100-40GB"), count=4)
        assert p.total_memory_gb == 160.0

    def test_aggregate_bandwidth_and_tflops(self):
        p = GPUProfile(gpu=get_gpu("T4-16GB"), count=2)
        assert p.total_memory_bandwidth_gbps == 640.0
        assert p.total_fp16_tflops == 130.0

    def test_tensor_parallel_flag(self):
        assert not GPUProfile(gpu=get_gpu("T4-16GB"), count=1).is_tensor_parallel
        assert GPUProfile(gpu=get_gpu("T4-16GB"), count=2).is_tensor_parallel

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError, match="count"):
            GPUProfile(gpu=get_gpu("T4-16GB"), count=0)

    def test_parse_profile_roundtrip(self):
        for p in default_profiles():
            assert parse_profile(p.name) == p

    def test_parse_profile_bad_format(self):
        with pytest.raises(ValueError):
            parse_profile("A100-40GB")
        with pytest.raises(ValueError):
            parse_profile("twoxA100-40GB")

    def test_feature_dict_includes_count(self):
        feats = GPUProfile(gpu=get_gpu("A10-24GB"), count=2).feature_dict()
        assert feats["gpu_count"] == 2.0
        assert feats["profile_total_memory_gb"] == 48.0


class TestPricing:
    def test_pod_cost_scales_with_count(self):
        pricing = aws_like_pricing()
        p1 = parse_profile("1xA100-40GB")
        p4 = parse_profile("4xA100-40GB")
        assert pricing.pod_cost(p4) == pytest.approx(4 * pricing.pod_cost(p1))

    def test_h100_most_expensive_per_gpu(self):
        pricing = aws_like_pricing()
        h100 = pricing.gpu_price("H100-80GB")
        assert all(
            h100 >= pricing.gpu_price(g) for g in pricing.per_gpu_hourly
        )

    def test_t4_cheapest(self):
        pricing = aws_like_pricing()
        t4 = pricing.gpu_price("T4-16GB")
        assert all(t4 <= pricing.gpu_price(g) for g in pricing.per_gpu_hourly)

    def test_deployment_cost(self):
        pricing = aws_like_pricing()
        p = parse_profile("1xT4-16GB")
        assert pricing.deployment_cost(p, 3) == pytest.approx(3 * pricing.pod_cost(p))

    def test_deployment_cost_negative_pods_raises(self):
        with pytest.raises(ValueError):
            aws_like_pricing().deployment_cost(parse_profile("1xT4-16GB"), -1)

    def test_unknown_gpu_raises(self):
        with pytest.raises(KeyError, match="priced types"):
            aws_like_pricing().gpu_price("TPU-v5")

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            PricingTable(per_gpu_hourly={"X": -1.0})

    def test_with_override_does_not_mutate(self):
        base = aws_like_pricing()
        other = base.with_override("T4-16GB", 99.0)
        assert base.gpu_price("T4-16GB") != 99.0
        assert other.gpu_price("T4-16GB") == 99.0

    def test_with_override_can_add_a_new_gpu_type(self):
        base = aws_like_pricing()
        extended = base.with_override("B200-192GB", 25.0)
        assert extended.gpu_price("B200-192GB") == 25.0
        with pytest.raises(KeyError):
            base.gpu_price("B200-192GB")

    def test_zero_price_is_valid(self):
        # A free tier (e.g. on-prem sunk cost) is a legitimate table.
        table = PricingTable(per_gpu_hourly={"T4-16GB": 0.0})
        assert table.gpu_price("T4-16GB") == 0.0
        assert table.pod_cost(parse_profile("4xT4-16GB")) == 0.0

    def test_deployment_cost_zero_pods(self):
        pricing = aws_like_pricing()
        assert pricing.deployment_cost(parse_profile("1xA10-24GB"), 0) == 0.0

    def test_empty_table_reports_no_priced_types(self):
        with pytest.raises(KeyError, match="priced types"):
            PricingTable().gpu_price("H100-80GB")

    def test_all_default_profiles_are_priced(self):
        # Every profile the recommender can emit must have a c(G).
        pricing = aws_like_pricing()
        for profile in default_profiles():
            assert pricing.pod_cost(profile) > 0
            assert pricing.pod_cost(profile) == pytest.approx(
                profile.count * pricing.gpu_price(profile.gpu.name)
            )
