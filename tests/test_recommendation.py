"""Tests for the GPU recommendation tool: features, Eq. (4) weights,
performance model, Eqs. (1)-(3) and HP tuning."""

import numpy as np
import pytest

from repro.characterization import PerfDataset, PerfRecord
from repro.hardware import aws_like_pricing, default_profiles, parse_profile
from repro.models import LLM_CATALOG, get_llm
from repro.recommendation import (
    FeatureSpace,
    LatencyConstraints,
    PerformanceModel,
    PerfModelHyperparams,
    constraint_proximity_weights,
    recommend_from_predictions,
    tune_performance_model,
    umax_from_latencies,
    GPURecommendationTool,
)
from repro.recommendation.pilot import LLMPilotRecommender


CONSTRAINTS = LatencyConstraints(nttft_s=0.1, itl_s=0.05)


class TestFeatureSpace:
    def test_fixed_feature_order(self):
        space = FeatureSpace.fit(list(LLM_CATALOG.values()))
        a = space.transform_one(get_llm("Llama-2-7b"), "1xT4-16GB", 4)
        b = space.transform_one(get_llm("Llama-2-7b"), "1xT4-16GB", 4)
        np.testing.assert_array_equal(a, b)
        assert len(a) == space.n_features

    def test_users_feature_index(self):
        space = FeatureSpace.fit(list(LLM_CATALOG.values()))
        x4 = space.transform_one(get_llm("Llama-2-7b"), "1xT4-16GB", 4)
        x8 = space.transform_one(get_llm("Llama-2-7b"), "1xT4-16GB", 8)
        diff = np.nonzero(x4 != x8)[0]
        assert diff.tolist() == [space.users_feature_index]

    def test_unknown_model_type_coded_negative(self):
        space = FeatureSpace.fit([get_llm("Llama-2-7b")])
        x = space.transform_one(get_llm("google/flan-t5-xl"), "1xT4-16GB", 1)
        type_idx = space.feature_names.index("llm_type_code")
        assert x[type_idx] == -1

    def test_derived_features_off_by_default(self):
        space = FeatureSpace.fit([get_llm("Llama-2-7b")])
        assert "memory_headroom_gb" not in space.feature_names
        space2 = FeatureSpace.fit([get_llm("Llama-2-7b")], include_derived=True)
        assert "memory_headroom_gb" in space2.feature_names

    def test_profile_accepts_object_or_name(self):
        space = FeatureSpace.fit([get_llm("Llama-2-7b")])
        a = space.transform_one(get_llm("Llama-2-7b"), "2xA10-24GB", 2)
        b = space.transform_one(get_llm("Llama-2-7b"), parse_profile("2xA10-24GB"), 2)
        np.testing.assert_array_equal(a, b)

    def test_empty_llms_rejected(self):
        with pytest.raises(ValueError):
            FeatureSpace.fit([])


def _mk_dataset(rows):
    """rows: (llm, profile, users, nttft, itl)"""
    ds = PerfDataset()
    for llm, prof, users, nttft, itl in rows:
        ds.add(
            PerfRecord(
                llm=llm, profile=prof, gpu_name=prof.split("x")[1],
                gpu_count=int(prof.split("x")[0]), concurrent_users=users,
                max_batch_weight=10_000, ttft_median_s=nttft * 100,
                nttft_median_s=nttft, itl_median_s=itl,
                throughput_tokens_per_s=100.0, e2e_median_s=1.0,
            )
        )
    return ds


class TestWeights:
    def test_point_on_constraint_gets_weight_one(self):
        ds = _mk_dataset([
            ("m", "1xT4-16GB", 1, 0.1, 0.05),   # exactly on both constraints
            ("m", "1xT4-16GB", 2, 0.2, 0.10),
        ])
        w = constraint_proximity_weights(ds, CONSTRAINTS)
        assert w[0] == pytest.approx(1.0)
        assert w[1] == pytest.approx(0.0)

    def test_weights_in_unit_interval(self):
        ds = _mk_dataset([
            ("m", "1xT4-16GB", u, 0.01 * u, 0.01 + 0.005 * u) for u in (1, 2, 4, 8)
        ])
        w = constraint_proximity_weights(ds, CONSTRAINTS)
        assert np.all((0 <= w) & (w <= 1))

    def test_normalization_is_per_group(self):
        ds = _mk_dataset([
            ("m", "1xT4-16GB", 1, 0.1, 0.05),
            ("m", "1xT4-16GB", 2, 0.3, 0.2),
            ("m", "2xT4-16GB", 1, 0.1, 0.05),
            ("m", "2xT4-16GB", 2, 5.0, 3.0),  # far away, different group
        ])
        w = constraint_proximity_weights(ds, CONSTRAINTS)
        # The near-constraint point of each group gets weight 1 regardless
        # of the other group's spread.
        assert w[0] == pytest.approx(1.0)
        assert w[2] == pytest.approx(1.0)

    def test_degenerate_group_all_ones(self):
        ds = _mk_dataset([("m", "1xT4-16GB", 1, 0.1, 0.05)])
        w = constraint_proximity_weights(ds, CONSTRAINTS)
        assert w[0] == pytest.approx(1.0)

    def test_constraint_validation(self):
        with pytest.raises(ValueError):
            LatencyConstraints(nttft_s=0.0, itl_s=0.05)


class TestUmax:
    def test_all_satisfied_returns_max(self):
        users = [1, 2, 4, 8]
        nttft = np.array([0.01, 0.02, 0.03, 0.04])
        itl = np.array([0.01, 0.01, 0.02, 0.03])
        assert umax_from_latencies(users, nttft, itl, CONSTRAINTS) == 8

    def test_violation_stops_scan(self):
        users = [1, 2, 4, 8]
        nttft = np.array([0.01, 0.02, 0.20, 0.01])  # violates at 4
        itl = np.array([0.01, 0.01, 0.01, 0.01])
        assert umax_from_latencies(users, nttft, itl, CONSTRAINTS) == 2

    def test_violation_at_first_user_returns_zero(self):
        users = [1, 2]
        nttft = np.array([0.5, 0.5])
        itl = np.array([0.01, 0.01])
        assert umax_from_latencies(users, nttft, itl, CONSTRAINTS) == 0

    def test_requires_all_smaller_counts_to_hold(self):
        """Eq. (3): satisfaction must hold for every u' <= u."""
        users = [1, 2, 4]
        nttft = np.array([0.01, 0.9, 0.01])
        itl = np.array([0.01, 0.01, 0.01])
        assert umax_from_latencies(users, nttft, itl, CONSTRAINTS) == 1

    def test_unsorted_input_handled(self):
        users = [8, 1, 4, 2]
        nttft = np.array([0.04, 0.01, 0.03, 0.02])
        itl = np.full(4, 0.01)
        assert umax_from_latencies(users, nttft, itl, CONSTRAINTS) == 8

    def test_nan_prediction_stops(self):
        users = [1, 2]
        nttft = np.array([0.01, np.nan])
        itl = np.array([0.01, 0.01])
        assert umax_from_latencies(users, nttft, itl, CONSTRAINTS) == 1


class TestRecommendFromPredictions:
    def _predictor(self, table):
        def predict(llm, profile, user_counts):
            nttft, itl = table[profile]
            return np.array(nttft), np.array(itl)
        return predict

    def test_picks_cheapest_satisfying(self):
        pricing = aws_like_pricing()
        # T4 supports 2 users/pod; A100 supports 8 users/pod.
        table = {
            "1xT4-16GB": ([0.01, 0.01, 0.2], [0.01, 0.01, 0.2]),
            "1xA100-40GB": ([0.01, 0.01, 0.01], [0.01, 0.01, 0.01]),
        }
        rec = recommend_from_predictions(
            self._predictor(table), get_llm("Llama-2-7b"),
            ["1xT4-16GB", "1xA100-40GB"], pricing, CONSTRAINTS,
            total_users=16, user_counts=[1, 2, 8],
        )
        # T4: umax 2 -> 8 pods * 0.53 = 4.24; A100: umax 8 -> 2 pods * 4.10 = 8.20.
        assert rec.profile == "1xT4-16GB"
        assert rec.n_pods == 8
        assert rec.total_cost == pytest.approx(8 * 0.53)

    def test_infeasible_everywhere(self):
        table = {"1xT4-16GB": ([9.0], [9.0])}
        rec = recommend_from_predictions(
            self._predictor(table), get_llm("Llama-2-7b"), ["1xT4-16GB"],
            aws_like_pricing(), CONSTRAINTS, total_users=10, user_counts=[1],
        )
        assert not rec.feasible
        assert rec.profile is None

    def test_assessments_cover_all_profiles(self):
        table = {
            "1xT4-16GB": ([9.0], [9.0]),
            "1xA100-40GB": ([0.01], [0.01]),
        }
        rec = recommend_from_predictions(
            self._predictor(table), get_llm("Llama-2-7b"),
            ["1xT4-16GB", "1xA100-40GB"], aws_like_pricing(), CONSTRAINTS,
            total_users=10, user_counts=[1],
        )
        assert len(rec.assessments) == 2
        by_name = {a.profile: a for a in rec.assessments}
        assert by_name["1xT4-16GB"].umax == 0
        assert by_name["1xA100-40GB"].n_pods == 10

    def test_invalid_users(self):
        with pytest.raises(ValueError):
            recommend_from_predictions(
                self._predictor({}), get_llm("Llama-2-7b"), [],
                aws_like_pricing(), CONSTRAINTS, total_users=0,
            )


class TestPerformanceModel:
    def test_fit_predict_on_small_dataset(self, small_dataset):
        ds = small_dataset.dataset
        lookup = dict(LLM_CATALOG)
        space = FeatureSpace.fit([lookup[m] for m in ds.llms()])
        model = PerformanceModel(
            feature_space=space, constraints=CONSTRAINTS,
            hyperparams=PerfModelHyperparams(n_estimators=40),
        ).fit(ds, lookup)
        nttft, itl = model.predict(get_llm("Llama-2-13b"), "1xA100-40GB", [1, 4, 16, 64])
        assert nttft.shape == (4,)
        assert np.all(np.isfinite(nttft)) and np.all(np.isfinite(itl))
        assert np.all(itl > 0)

    def test_monotone_in_users(self, small_dataset):
        ds = small_dataset.dataset
        lookup = dict(LLM_CATALOG)
        space = FeatureSpace.fit([lookup[m] for m in ds.llms()])
        model = PerformanceModel(
            feature_space=space, constraints=CONSTRAINTS,
            hyperparams=PerfModelHyperparams(n_estimators=60),
        ).fit(ds, lookup)
        for prof in ds.profiles():
            nttft, itl = model.predict(
                get_llm("google/flan-t5-xxl"), prof, [1, 2, 4, 8, 16, 32, 64, 128]
            )
            assert np.all(np.diff(nttft) >= -1e-12)
            assert np.all(np.diff(itl) >= -1e-12)

    def test_without_monotone_constraint_flag(self, small_dataset):
        ds = small_dataset.dataset
        lookup = dict(LLM_CATALOG)
        space = FeatureSpace.fit([lookup[m] for m in ds.llms()])
        model = PerformanceModel(
            feature_space=space, constraints=CONSTRAINTS,
            hyperparams=PerfModelHyperparams(n_estimators=20),
            use_monotone_constraint=False,
        ).fit(ds, lookup)
        assert model._model_itl.monotone_constraints == {}

    def test_predict_before_fit_raises(self):
        space = FeatureSpace.fit([get_llm("Llama-2-7b")])
        model = PerformanceModel(feature_space=space, constraints=CONSTRAINTS)
        with pytest.raises(RuntimeError):
            model.predict(get_llm("Llama-2-7b"), "1xT4-16GB", [1])


class TestHPOAndTool:
    def test_tuning_returns_grid_member(self, small_dataset):
        ds = small_dataset.dataset
        grid = {"n_estimators": [30], "max_depth": [2, 4]}
        hp, score = tune_performance_model(ds, dict(LLM_CATALOG), CONSTRAINTS, grid=grid)
        assert hp.n_estimators == 30
        assert hp.max_depth in (2, 4)
        assert np.isfinite(score)

    def test_recommendation_tool_end_to_end(self, small_dataset, generator):
        ds = small_dataset.dataset
        lookup = dict(LLM_CATALOG)
        pilot = LLMPilotRecommender(
            constraints=CONSTRAINTS,
            hyperparams=PerfModelHyperparams(n_estimators=40),
        )
        train = ds.exclude_llm("Llama-2-13b")
        pilot.fit(train, lookup)
        tool = GPURecommendationTool(
            perf_model=pilot.model_,
            pricing=aws_like_pricing(),
            constraints=CONSTRAINTS,
            max_request_weight=generator.max_request_weight(),
        )
        rec = tool.recommend(get_llm("Llama-2-13b"), default_profiles(), total_users=50)
        assert rec.feasible
        assert rec.n_pods >= 1
        # Statically infeasible profiles must never be recommended.
        assert rec.profile != "1xA10-24GB"
        assert rec.profile != "1xT4-16GB"
