"""Property-based invariants of the simulation substrate.

Randomized seeds, traffic models, routers and autoscaling policies are
swept with hypothesis; whatever the draw, the substrate's conservation
laws must hold:

* request conservation — every offered arrival is admitted or shed, and
  every admitted request completes or is still in flight at the end
  (``FleetResult.verify_conservation``);
* ledger replay — the cluster inventory's event log, replayed in causal
  order, never goes negative and never exceeds capacity;
* billing sanity — pod-seconds are non-negative, never below the
  always-on single-pod floor, never above a flat-out ``max_pods`` fleet,
  and exactly ``pods * time`` for static fleets;
* degeneracy — a 1-tenant cluster with ample inventory is the standalone
  fleet simulation, number for number.

``derandomize=True`` keeps CI deterministic: the sweep is a fixed,
diverse grid rather than a fresh random draw per run.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.simulation import (
    AdmissionController,
    Autoscaler,
    AutoscaleConfig,
    BurstyTraffic,
    ClusterInventory,
    ClusterSimulator,
    DiurnalTraffic,
    FaultInjector,
    FaultSpec,
    FleetSimulator,
    JoinShortestQueueRouter,
    LeastLoadedRouter,
    PoissonTraffic,
    PredictivePolicy,
    RequestSource,
    RoundRobinRouter,
    TargetUtilizationPolicy,
    TenantGroup,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-80GB")
WEIGHT = 20_000
DURATION_S = 45.0

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

seeds = st.integers(min_value=0, max_value=10_000)
rates = st.floats(min_value=1.0, max_value=8.0, allow_nan=False)
traffic_kinds = st.sampled_from(["poisson", "diurnal", "bursty"])
policy_kinds = st.sampled_from(
    ["threshold", "target-utilization", "predictive", "none"]
)
router_kinds = st.sampled_from(["round-robin", "least-loaded", "jsq", "admission"])
max_pods = st.integers(min_value=2, max_value=5)


def _traffic(kind, rate, seed):
    rng = derive_rng(seed, "invariant-traffic", kind)
    if kind == "poisson":
        return PoissonTraffic(rate, rng=rng)
    if kind == "diurnal":
        return DiurnalTraffic(rate, rng=rng, amplitude=0.8, period_s=30.0)
    return BurstyTraffic(rate, rng=rng, mean_on_s=10.0, mean_off_s=10.0)


def _router(kind):
    if kind == "round-robin":
        return RoundRobinRouter()
    if kind == "least-loaded":
        return LeastLoadedRouter()
    if kind == "jsq":
        return JoinShortestQueueRouter()
    return AdmissionController(
        LeastLoadedRouter(), slo_p95_ttft_s=1.0, window_s=15.0, mode="shed"
    )


def _policy(kind):
    if kind == "threshold":
        return ThresholdPolicy(slo_p95_ttft_s=1.0)
    if kind == "target-utilization":
        return TargetUtilizationPolicy(target=0.5)
    if kind == "predictive":
        return PredictivePolicy(requests_per_pod_per_s=1.0)
    return None


def _fleet(generator, seed, kind, rate, router_kind="least-loaded",
           policy_kind="none", cap=4, label="fleet", faults=None, n_pods=1):
    def factory(serial):
        return ContinuousBatchingEngine(
            LLM, PROFILE, max_batch_weight=WEIGHT,
            seed=spawn_seed(seed, "pod", serial),
        )

    policy = _policy(policy_kind)
    autoscaler = None
    if policy is not None:
        autoscaler = Autoscaler(
            policy,
            AutoscaleConfig(
                decision_interval_s=10.0, max_pods=cap,
                cold_start_s=5.0, metrics_window_s=15.0,
            ),
        )
    source = RequestSource(
        generator, derive_rng(seed, "invariant-source", label), WEIGHT
    )
    return FleetSimulator(
        [factory(i) for i in range(n_pods)],
        _traffic(kind, rate, seed),
        _router(router_kind),
        source,
        autoscaler=autoscaler,
        pod_factory=factory,
        faults=faults,
    )


class TestFleetInvariants:
    @SETTINGS
    @given(seed=seeds, kind=traffic_kinds, rate=rates,
           router_kind=router_kinds, policy_kind=policy_kinds, cap=max_pods)
    def test_request_conservation(
        self, generator, seed, kind, rate, router_kind, policy_kind, cap
    ):
        fleet = _fleet(generator, seed, kind, rate, router_kind, policy_kind, cap)
        res = fleet.run(duration_s=DURATION_S, keep_samples=False)
        res.verify_conservation()
        assert res.arrivals == res.admitted + res.shed
        # Every admitted request was routed to exactly one pod.
        assert res.admitted == sum(fleet.routed_counts)
        # Tokens come only from admitted work, counted once per pod.
        assert res.tokens_generated == sum(
            p.tokens_generated for p in res.per_pod
        )

    @SETTINGS
    @given(seed=seeds, kind=traffic_kinds, rate=rates, policy_kind=policy_kinds,
           cap=max_pods)
    def test_pod_seconds_bounds(self, generator, seed, kind, rate, policy_kind, cap):
        fleet = _fleet(generator, seed, kind, rate, policy_kind=policy_kind, cap=cap)
        res = fleet.run(duration_s=DURATION_S, keep_samples=False)
        assert res.pod_seconds >= 0.0
        # One pod is always routable (the fleet never drains its last),
        # so billing can never dip below the single-pod floor...
        assert res.pod_seconds >= res.time_s * (1.0 - 1e-9)
        # ...and a fleet flat-out at max_pods for the whole run is the
        # ceiling.
        assert res.pod_seconds <= cap * res.time_s * (1.0 + 1e-9)

    @SETTINGS
    @given(seed=seeds, kind=traffic_kinds, rate=rates,
           n_pods=st.integers(min_value=1, max_value=3))
    def test_static_fleet_bills_exactly(self, generator, seed, kind, rate, n_pods):
        def factory(serial):
            return ContinuousBatchingEngine(
                LLM, PROFILE, max_batch_weight=WEIGHT,
                seed=spawn_seed(seed, "pod", serial),
            )

        source = RequestSource(generator, derive_rng(seed, "static-bill"), WEIGHT)
        fleet = FleetSimulator(
            [factory(i) for i in range(n_pods)],
            _traffic(kind, rate, seed),
            LeastLoadedRouter(),
            source,
        )
        res = fleet.run(duration_s=DURATION_S, keep_samples=False)
        res.verify_conservation()
        assert res.pod_seconds == pytest.approx(n_pods * res.time_s)


class TestClusterInvariants:
    @SETTINGS
    @given(seed=seeds, rate_a=rates, rate_b=rates, kind=traffic_kinds,
           policy_kind=st.sampled_from(["threshold", "target-utilization"]),
           capacity=st.integers(min_value=2, max_value=4))
    def test_ledger_replay_and_conservation(
        self, generator, seed, rate_a, rate_b, kind, policy_kind, capacity
    ):
        tenants = [
            TenantGroup(
                "a",
                _fleet(generator, seed, kind, rate_a,
                       policy_kind=policy_kind, cap=4, label="a"),
                PROFILE.name,
            ),
            TenantGroup(
                "b",
                _fleet(generator, seed + 1, kind, rate_b,
                       policy_kind=policy_kind, cap=4, label="b"),
                PROFILE.name,
            ),
        ]
        sim = ClusterSimulator(
            tenants, ClusterInventory(capacity={PROFILE.gpu.name: capacity})
        )
        res = sim.run(duration_s=DURATION_S)
        # Per-tenant conservation + causal ledger replay (occupancy never
        # negative, never above capacity) + end-state holds match.
        res.verify_conservation()
        _, used = res.occupancy_series(PROFILE.gpu.name)
        assert used.min() >= 0
        assert used.max() <= capacity
        assert res.peak_occupancy()[PROFILE.gpu.name] == used.max()
        # Peak pods per tenant replays from the same ledger: every tenant
        # held at least its initial pod and never more than the capacity.
        peaks = res.peak_pods()
        assert all(1 <= v <= capacity for v in peaks.values())
        # Pod-second billing stays within the per-tenant bounds.
        for result in res.results.values():
            assert result.pod_seconds >= 0.0
            assert result.pod_seconds <= 4 * result.time_s * (1.0 + 1e-9)

    @SETTINGS
    @given(seed=seeds, kind=traffic_kinds, rate=rates,
           policy_kind=st.sampled_from(["threshold", "predictive", "none"]))
    def test_one_tenant_cluster_equals_standalone_fleet(
        self, generator, seed, kind, rate, policy_kind
    ):
        standalone = _fleet(
            generator, seed, kind, rate, policy_kind=policy_kind, label="solo"
        ).run(duration_s=DURATION_S, keep_samples=False)
        clustered_fleet = _fleet(
            generator, seed, kind, rate, policy_kind=policy_kind, label="solo"
        )
        sim = ClusterSimulator(
            [TenantGroup("solo", clustered_fleet, PROFILE.name)],
            ClusterInventory(capacity={PROFILE.gpu.name: 64}),
        )
        res = sim.run(duration_s=DURATION_S)
        clustered = res.results["solo"]
        assert clustered.arrivals == standalone.arrivals
        assert clustered.shed == standalone.shed
        assert clustered.tokens_generated == standalone.tokens_generated
        assert clustered.requests_completed == standalone.requests_completed
        assert clustered.ttft.median_s == standalone.ttft.median_s
        assert clustered.ttft.p95_s == standalone.ttft.p95_s
        assert clustered.itl.p95_s == standalone.itl.p95_s
        assert clustered.pod_seconds == standalone.pod_seconds
        assert clustered.scale_events == standalone.scale_events


class TestFaultInvariants:
    """Conservation laws must survive chaos: crashes requeue or lose
    in-flight work, but never invent or leak requests."""

    @SETTINGS
    @given(seed=seeds, kind=traffic_kinds, rate=rates,
           mode=st.sampled_from(["requeue", "lose"]),
           t1=st.floats(min_value=1.0, max_value=40.0, allow_nan=False),
           t2=st.floats(min_value=1.0, max_value=40.0, allow_nan=False),
           restart=st.booleans())
    def test_conservation_under_crashes(
        self, generator, seed, kind, rate, mode, t1, t2, restart
    ):
        delay = 5.0 if restart else None
        faults = FaultInjector(
            [
                FaultSpec(kind="crash", time_s=t1, mode=mode,
                          restart_delay_s=delay),
                FaultSpec(kind="crash", time_s=t2, mode=mode,
                          restart_delay_s=delay),
            ],
            seed=seed,
        )
        fleet = _fleet(generator, seed, kind, rate, faults=faults,
                       n_pods=3, label="chaos")
        res = fleet.run(duration_s=DURATION_S, keep_samples=False)
        res.verify_conservation()
        assert res.arrivals == res.admitted + res.shed
        assert (
            res.completed_total + res.in_flight_end + res.lost == res.admitted
        )
        if mode == "requeue":
            assert res.lost == 0
        else:
            assert res.requeued == 0
        crashes = [e for e in res.fault_events if e.kind == "crash"]
        assert len(crashes) == 2
        assert res.lost == sum(e.lost for e in crashes)
        assert res.requeued == sum(e.requeued for e in crashes)

    @SETTINGS
    @given(seed=seeds, kind=traffic_kinds, rate=rates,
           policy_kind=st.sampled_from(["threshold", "target-utilization"]))
    def test_autoscaled_fleet_survives_crash(
        self, generator, seed, kind, rate, policy_kind
    ):
        faults = FaultInjector(
            [FaultSpec(kind="crash", time_s=10.0, restart_delay_s=4.0)],
            seed=seed,
        )
        fleet = _fleet(generator, seed, kind, rate, policy_kind=policy_kind,
                       faults=faults, n_pods=2, label="chaos-scaled")
        res = fleet.run(duration_s=DURATION_S, keep_samples=False)
        res.verify_conservation()
        assert res.lost == 0
        # The crash bills to the instant, the restart re-provisions: the
        # static bounds still hold against the autoscaler cap plus the
        # restart replacement.
        assert res.pod_seconds >= 0.0
        assert res.pod_seconds <= (4 + 1) * res.time_s * (1.0 + 1e-9)


class TestSweepCacheInvariants:
    """The elastic sweep's shared arrival-stream cache must be invisible:
    whatever the traffic model and seed, a cached sweep equals the
    factory-fresh sweep candidate-for-candidate."""

    @SETTINGS
    @given(seed=seeds, kind=traffic_kinds, rate=rates)
    def test_cached_sweep_equals_fresh_candidate_for_candidate(
        self, generator, seed, kind, rate
    ):
        import json

        from repro.cluster import Deployment
        from repro.hardware import aws_like_pricing
        from repro.recommendation import (
            CostObjective,
            ElasticCandidate,
            ElasticRecommender,
            LinearSLOPenalty,
        )

        def recommender(cache_arrivals):
            deployment = Deployment(
                llm=LLM, profile=PROFILE, n_pods=1,
                max_batch_weight=WEIGHT, generator=generator, seed=seed,
            )
            return ElasticRecommender(
                deployment,
                lambda: _traffic(kind, rate, seed),
                CostObjective(
                    aws_like_pricing(),
                    LinearSLOPenalty(5.0, penalty_per_hour=100.0),
                ),
                slo_p95_ttft_s=5.0,
                duration_s=20.0,
                decision_interval_s=5.0,
                cold_start_s=2.0,
                metrics_window_s=10.0,
                cache_arrivals=cache_arrivals,
            )

        candidates = [
            ElasticCandidate("static", 1, 1),
            ElasticCandidate("static", 2, 2),
            ElasticCandidate(
                "threshold", 1, 3, lambda: ThresholdPolicy(slo_p95_ttft_s=1.0)
            ),
        ]
        cached = recommender(True).evaluate_many(candidates)
        fresh = recommender(False).evaluate_many(candidates)
        assert len(cached) == len(fresh)
        for mine, ref in zip(cached, fresh):
            assert json.dumps(mine.as_dict(), sort_keys=True) == json.dumps(
                ref.as_dict(), sort_keys=True
            )
