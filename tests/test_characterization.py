"""Tests for the characterization tool: tuner, feasibility, load testing,
dataset container and campaign runner."""


import numpy as np
import pytest

from repro.characterization import (
    BatchWeightTuner,
    CharacterizationConfig,
    Feasibility,
    PerfDataset,
    PerfRecord,
    check_feasibility,
    run_load_test,
)
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm


class TestTuner:
    def test_tuned_weight_is_valid_and_frontier(self):
        tuner = BatchWeightTuner(
            get_llm("Llama-2-13b"), parse_profile("1xA100-40GB"), resolution=64
        )
        result = tuner.tune()
        assert result.feasible
        assert tuner.is_valid(result.max_batch_weight)
        # Just past the frontier (plus resolution) must be invalid.
        assert not tuner.is_valid(result.max_batch_weight + 2 * 64 + 2)

    def test_weight_scales_with_memory(self):
        w40 = BatchWeightTuner(get_llm("Llama-2-13b"), parse_profile("1xA100-40GB")).tune()
        w80 = BatchWeightTuner(get_llm("Llama-2-13b"), parse_profile("1xH100-80GB")).tune()
        assert w80.max_batch_weight > 2 * w40.max_batch_weight

    def test_mqa_model_gets_huge_weight(self):
        """Starcoder's multi-query attention stores 40x less KV per token."""
        star = BatchWeightTuner(get_llm("bigcode/starcoder"), parse_profile("1xH100-80GB")).tune()
        neox = BatchWeightTuner(get_llm("EleutherAI/gpt-neox-20b"), parse_profile("1xH100-80GB")).tune()
        assert star.max_batch_weight > 5 * neox.max_batch_weight

    def test_infeasible_when_weights_too_big(self):
        result = BatchWeightTuner(get_llm("Llama-2-13b"), parse_profile("1xA10-24GB")).tune()
        assert not result.feasible
        assert result.max_batch_weight == 0

    def test_search_step_counting(self):
        tuner = BatchWeightTuner(get_llm("google/flan-t5-xl"), parse_profile("1xT4-16GB"))
        result = tuner.tune()
        assert result.search_steps > 0
        assert result.probes >= result.search_steps

    def test_bad_resolution(self):
        with pytest.raises(ValueError):
            BatchWeightTuner(
                get_llm("google/flan-t5-xl"), parse_profile("1xT4-16GB"), resolution=0
            )


class TestFeasibility:
    def test_tp_unsupported_marked(self):
        rep = check_feasibility(
            get_llm("ibm/mpt-7b-instruct2"), parse_profile("2xA100-40GB"), 5000
        )
        assert rep.status is Feasibility.UNSUPPORTED
        assert "tensor parallelism" in rep.reason

    def test_flash_on_v100_marked(self):
        rep = check_feasibility(get_llm("Llama-2-7b"), parse_profile("1xV100-16GB"), 5000)
        assert rep.status is Feasibility.UNSUPPORTED
        assert "flash attention" in rep.reason

    def test_flash_on_t4_allowed(self):
        """T4 (CC 7.5) runs flash attention; only V100 (7.0) is excluded."""
        rep = check_feasibility(get_llm("Llama-2-7b"), parse_profile("2xT4-16GB"), 5000)
        assert rep.status is Feasibility.OK

    def test_oom_when_weights_dont_fit(self):
        rep = check_feasibility(get_llm("google/flan-t5-xxl"), parse_profile("1xA10-24GB"), 5000)
        assert rep.status is Feasibility.OOM

    def test_oom_when_workload_does_not_fit(self):
        # Demand an absurdly large request weight.
        rep = check_feasibility(
            get_llm("Llama-2-13b"), parse_profile("1xA100-40GB"), 10**7
        )
        assert rep.status is Feasibility.OOM
        assert rep.max_batch_weight > 0

    def test_ok_case_has_weight(self):
        rep = check_feasibility(get_llm("Llama-2-13b"), parse_profile("1xA100-40GB"), 5000)
        assert rep.status is Feasibility.OK
        assert rep.feasible
        assert rep.max_batch_weight >= 5000

    def test_symbols(self):
        assert Feasibility.OK.symbol == "Y"
        assert Feasibility.OOM.symbol == "x"
        assert Feasibility.UNSUPPORTED.symbol == "-"


class TestLoadTest:
    def _engine(self, W=12_000, seed=0):
        return ContinuousBatchingEngine(
            get_llm("Llama-2-13b"), parse_profile("1xA100-40GB"),
            max_batch_weight=W, seed=seed,
        )

    def test_basic_metrics_finite(self, generator):
        res = run_load_test(self._engine(), generator, concurrent_users=4,
                            duration_s=10.0, seed=1)
        assert np.isfinite(res.ttft_median_s)
        assert np.isfinite(res.nttft_median_s)
        assert np.isfinite(res.itl_median_s)
        assert res.throughput_tokens_per_s > 0
        assert res.requests_completed > 0

    def test_nttft_definition(self, generator):
        res = run_load_test(self._engine(), generator, concurrent_users=2,
                            duration_s=10.0, seed=2)
        # nTTFT is TTFT per input token: much smaller than TTFT.
        assert res.nttft_median_s < res.ttft_median_s

    def test_throughput_grows_with_load_before_saturation(self, generator):
        r1 = run_load_test(self._engine(seed=3), generator, 1, duration_s=15.0, seed=3)
        r8 = run_load_test(self._engine(seed=3), generator, 8, duration_s=15.0, seed=3)
        assert r8.throughput_tokens_per_s > 2 * r1.throughput_tokens_per_s

    def test_reproducible(self, generator):
        a = run_load_test(self._engine(seed=4), generator, 4, duration_s=8.0, seed=9)
        b = run_load_test(self._engine(seed=4), generator, 4, duration_s=8.0, seed=9)
        assert a.ttft_median_s == b.ttft_median_s
        assert a.throughput_tokens_per_s == b.throughput_tokens_per_s

    def test_requires_fresh_engine(self, generator):
        eng = self._engine()
        run_load_test(eng, generator, 1, duration_s=2.0, seed=0)
        with pytest.raises(ValueError, match="fresh"):
            run_load_test(eng, generator, 1, duration_s=2.0, seed=0)

    def test_invalid_args(self, generator):
        with pytest.raises(ValueError):
            run_load_test(self._engine(), generator, 0, duration_s=5.0)
        with pytest.raises(ValueError):
            run_load_test(self._engine(), generator, 1, duration_s=0.0)

    def test_keep_results(self, generator):
        res = run_load_test(self._engine(), generator, 2, duration_s=8.0,
                            seed=5, keep_results=True)
        assert len(res.results) == res.requests_completed


class TestPerfDataset:
    def _record(self, llm="m", profile="1xT4-16GB", users=1, **kw):
        defaults = dict(
            gpu_name="T4-16GB", gpu_count=1, max_batch_weight=1000,
            ttft_median_s=0.1, nttft_median_s=0.001, itl_median_s=0.02,
            throughput_tokens_per_s=100.0, e2e_median_s=1.0,
        )
        defaults.update(kw)
        return PerfRecord(llm=llm, profile=profile, concurrent_users=users, **defaults)

    def test_add_and_query(self):
        ds = PerfDataset()
        ds.add(self._record(llm="a", users=1))
        ds.add(self._record(llm="a", users=2))
        ds.add(self._record(llm="b", users=1))
        assert len(ds) == 3
        assert ds.llms() == ["a", "b"]
        assert len(ds.filter(llm="a")) == 2
        assert len(ds.exclude_llm("a")) == 1
        assert ds.lookup("b", "1xT4-16GB", 1) is not None
        assert ds.lookup("b", "1xT4-16GB", 99) is None

    def test_series_sorted_by_users(self):
        ds = PerfDataset()
        for u in (16, 1, 4):
            ds.add(self._record(users=u, itl_median_s=u / 1000))
        users, itl = ds.series("m", "1xT4-16GB", "itl_median_s")
        assert users.tolist() == [1, 4, 16]
        assert itl.tolist() == [0.001, 0.004, 0.016]

    def test_save_load_roundtrip(self, tmp_path):
        ds = PerfDataset()
        ds.add(self._record(llm="x", users=8))
        path = str(tmp_path / "ds.npz")
        ds.save(path)
        loaded = PerfDataset.load(path)
        assert len(loaded) == 1
        r = loaded.records[0]
        assert r.llm == "x" and r.concurrent_users == 8
        assert r.itl_median_s == pytest.approx(0.02)

    def test_column_types(self):
        ds = PerfDataset(records=[self._record()])
        assert ds.column("llm").dtype == object
        assert ds.column("itl_median_s").dtype == float


class TestCharacterizationTool:
    def test_small_campaign(self, small_dataset):
        ds = small_dataset.dataset
        assert len(ds) > 0
        # flan-t5-xl fits everywhere in the chosen profile set.
        assert len(ds.filter(llm="google/flan-t5-xl")) == 4 * 4
        # Llama-2-13b does not fit on 2xA10 (48GB - reserve < 26GB + KV).
        statuses = {
            (r.llm, r.profile): r.status for r in small_dataset.feasibility
        }
        assert all(s in list(Feasibility) for s in statuses.values())

    def test_records_reference_tuned_weight(self, small_dataset):
        for rec in small_dataset.dataset:
            assert rec.max_batch_weight >= 2
            key = (rec.llm, rec.profile)
            assert small_dataset.tuned_weights[key] == rec.max_batch_weight

    def test_overhead_accounting(self, small_dataset):
        assert small_dataset.total_overhead_s > 0
        assert small_dataset.serial_overhead_s >= small_dataset.total_overhead_s

    def test_latencies_monotone_in_users_mostly(self, small_dataset):
        """The §IV-B2 empirical observation: nTTFT and ITL increase (or
        stay flat) with concurrent users; allow small noise wiggle."""
        ds = small_dataset.dataset
        for llm in ds.llms():
            for prof in ds.profiles():
                users, itl = ds.series(llm, prof, "itl_median_s")
                if len(users) < 2:
                    continue
                diffs = np.diff(itl)
                assert np.all(diffs > -0.2 * np.abs(itl[:-1]))

    def test_config_immutable_defaults(self):
        cfg = CharacterizationConfig()
        assert cfg.user_counts == (1, 2, 4, 8, 16, 32, 64, 128)
        assert cfg.duration_s == 120.0
