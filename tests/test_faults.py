"""The fault-injection layer: specs, injector determinism, degraded-mode
simulation and recovery metrics.

The central contracts:

* the same seed produces the same fault schedule — on the fast core, the
  golden oracle, and inside a cluster co-simulation;
* conservation survives chaos: every admitted request completes, stays
  in flight, or is explicitly counted lost;
* a chaos scenario is golden-pinned so fault semantics cannot drift
  silently.
"""

import math

import pytest

from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.simulation import (
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FleetSimulator,
    LeastLoadedRouter,
    PoissonTraffic,
    RequestSource,
)
from repro.simulation.scenario import ScenarioSpec
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-80GB")
WEIGHT = 20_000


def _fleet(generator, seed=0, n_pods=3, rate=4.0, faults=None, fast=True,
           n_zones=1, label="faults"):
    def factory(serial):
        return ContinuousBatchingEngine(
            LLM, PROFILE, max_batch_weight=WEIGHT,
            seed=spawn_seed(seed, "pod", serial),
        )

    source = RequestSource(
        generator, derive_rng(seed, "fault-source", label), WEIGHT
    )
    return FleetSimulator(
        [factory(i) for i in range(n_pods)],
        PoissonTraffic(rate, rng=derive_rng(seed, "fault-traffic", label)),
        LeastLoadedRouter(),
        source,
        pod_factory=factory,
        fast=fast,
        faults=faults,
        zone_of=(lambda serial: f"zone-{serial % n_zones}"),
    )


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", time_s=1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(kind="crash", time_s=1.0, mode="retry")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time_s"):
            FaultSpec(kind="crash", time_s=-1.0)

    def test_pod_and_zone_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            FaultSpec(kind="slowdown", time_s=1.0, pod=0, zone="zone-0",
                      duration_s=1.0, factor=2.0)

    def test_whole_zone_crash_is_zone_outage(self):
        with pytest.raises(ValueError, match="zone-outage"):
            FaultSpec(kind="crash", time_s=1.0, zone="zone-0")

    def test_zone_outage_needs_zone(self):
        with pytest.raises(ValueError, match="zone"):
            FaultSpec(kind="zone-outage", time_s=1.0)

    def test_slowdown_needs_duration_and_factor(self):
        with pytest.raises(ValueError, match="duration_s"):
            FaultSpec(kind="slowdown", time_s=1.0, factor=2.0)
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(kind="slowdown", time_s=1.0, duration_s=5.0)

    def test_crash_rejects_slowdown_knobs(self):
        with pytest.raises(ValueError, match="slowdown"):
            FaultSpec(kind="crash", time_s=1.0, duration_s=5.0)

    def test_spot_preempt_rejects_zone_targeting(self):
        with pytest.raises(ValueError, match="cloud pods, not zones"):
            FaultSpec(kind="spot-preempt", time_s=5.0, zone="zone-0")

    def test_spot_preempt_rejects_restart_delay(self):
        with pytest.raises(ValueError, match="reclaimed by the provider"):
            FaultSpec(kind="spot-preempt", time_s=5.0, restart_delay_s=3.0)

    def test_restart_delay_must_be_positive(self):
        with pytest.raises(ValueError, match="restart_delay_s"):
            FaultSpec(kind="crash", time_s=1.0, restart_delay_s=0.0)


class TestFaultInjector:
    def test_schedule_sorted_with_slowdown_expansion(self):
        injector = FaultInjector(
            [
                FaultSpec(kind="crash", time_s=8.0),
                FaultSpec(kind="slowdown", time_s=2.0, duration_s=10.0,
                          factor=3.0),
            ],
            seed=1,
        )
        injector.begin()
        times = []
        actions = []
        while math.isfinite(injector.next_time):
            t, action, _, _ = injector.pop()
            times.append(t)
            actions.append(action)
        assert times == [2.0, 8.0, 12.0]
        assert actions == ["slow-start", "crash", "slow-end"]

    def test_victim_draws_deterministic_across_begins(self):
        injector = FaultInjector([FaultSpec(kind="crash", time_s=1.0)], seed=7)
        injector.begin()
        first = [injector.pick_victim({3, 1, 4}) for _ in range(5)]
        injector.begin()  # re-arm: the stream must restart identically
        assert [injector.pick_victim({3, 1, 4}) for _ in range(5)] == first
        assert all(v in {1, 3, 4} for v in first)

    def test_specs_must_be_fault_specs(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultInjector([{"kind": "crash", "time_s": 1.0}], seed=0)


class TestFaultedFleet:
    def test_fast_and_oracle_same_fault_schedule(self, generator):
        def run(fast):
            faults = FaultInjector(
                [
                    FaultSpec(kind="crash", time_s=6.0, restart_delay_s=4.0),
                    FaultSpec(kind="slowdown", time_s=10.0, duration_s=5.0,
                              factor=4.0),
                    FaultSpec(kind="crash", time_s=18.0, mode="lose"),
                ],
                seed=3,
            )
            return _fleet(generator, seed=2, faults=faults, fast=fast).run(
                duration_s=30.0, keep_samples=False
            )

        fast, oracle = run(True), run(False)
        assert fast.fault_events == oracle.fault_events
        assert fast.requeued == oracle.requeued
        assert fast.lost == oracle.lost
        assert fast.requests_completed == oracle.requests_completed
        assert fast.tokens_generated == oracle.tokens_generated
        assert fast.ttft.p95_s == oracle.ttft.p95_s
        assert fast.pod_seconds == oracle.pod_seconds

    def test_crash_requeue_conserves_requests(self, generator):
        faults = FaultInjector(
            [FaultSpec(kind="crash", time_s=5.0, restart_delay_s=3.0)], seed=0
        )
        res = _fleet(generator, faults=faults).run(
            duration_s=25.0, keep_samples=False
        )
        res.verify_conservation()
        assert res.lost == 0
        assert res.requeued > 0
        assert any(e.kind == "crash" for e in res.fault_events)

    def test_crash_lose_counts_lost(self, generator):
        faults = FaultInjector(
            [FaultSpec(kind="crash", time_s=5.0, mode="lose")], seed=0
        )
        res = _fleet(generator, rate=6.0, faults=faults).run(
            duration_s=25.0, keep_samples=False
        )
        res.verify_conservation()
        assert res.requeued == 0
        (crash,) = [e for e in res.fault_events if e.kind == "crash"]
        assert res.lost == crash.lost
        assert res.completed_total + res.in_flight_end + res.lost == res.admitted

    def test_crashed_pod_without_restart_stays_dead(self, generator):
        faults = FaultInjector([FaultSpec(kind="crash", time_s=5.0)], seed=0)
        fleet = _fleet(generator, n_pods=2, faults=faults)
        res = fleet.run(duration_s=20.0, keep_samples=False)
        res.verify_conservation()
        assert res.n_pods == 1
        assert [p.state for p in res.per_pod].count("crashed") == 1

    def test_restart_replacement_inherits_zone(self, generator):
        faults = FaultInjector(
            [FaultSpec(kind="crash", time_s=5.0, restart_delay_s=2.0)], seed=0
        )
        res = _fleet(generator, n_pods=4, n_zones=2, faults=faults).run(
            duration_s=25.0, keep_samples=False
        )
        res.verify_conservation()
        (crash,) = [e for e in res.fault_events if e.kind == "crash"]
        crashed = next(p for p in res.per_pod if p.state == "crashed")
        replacement = res.per_pod[-1]
        assert crashed.pod == crash.pod
        assert replacement.zone == crashed.zone
        assert res.n_pods == 4

    def test_zone_outage_kills_exactly_the_zone(self, generator):
        faults = FaultInjector(
            [FaultSpec(kind="zone-outage", time_s=5.0, zone="zone-1")], seed=0
        )
        res = _fleet(generator, n_pods=4, n_zones=2, faults=faults).run(
            duration_s=20.0, keep_samples=False
        )
        res.verify_conservation()
        outages = [e for e in res.fault_events if e.kind == "zone-outage"]
        assert {e.pod % 2 for e in outages} == {1}
        crashed = [p for p in res.per_pod if p.state == "crashed"]
        assert {p.zone for p in crashed} == {"zone-1"}
        assert len(crashed) == 2
        assert res.n_pods == 2

    def test_slowdown_degrades_then_recovers(self, generator):
        def run(faults):
            return _fleet(generator, rate=3.0, faults=faults).run(
                duration_s=40.0, keep_samples=True
            )

        slow = run(
            FaultInjector(
                [FaultSpec(kind="slowdown", time_s=10.0, duration_s=15.0,
                           factor=20.0)],
                seed=0,
            )
        )
        clean = run(None)
        slow.verify_conservation()
        # An untargeted slowdown hits one seeded victim pod.
        kinds = [e.kind for e in slow.fault_events]
        assert kinds == ["slowdown-start", "slowdown-end"]
        assert slow.ttft.p95_s > clean.ttft.p95_s
        # The multiplier is restored: every surviving engine decodes at
        # factor 1.0 again after the window.
        starts, tails = slow.ttft_p95_series(window_s=10.0)
        degraded = tails[(starts >= 10.0) & (starts < 25.0)].max()
        recovered = tails[starts >= 30.0]
        assert recovered.size and recovered.max() < degraded

    def test_slowdown_affects_latency_not_conservation(self, generator):
        faults = FaultInjector(
            [FaultSpec(kind="slowdown", time_s=5.0, duration_s=10.0,
                       factor=8.0)],
            seed=0,
        )
        res = _fleet(generator, faults=faults).run(
            duration_s=30.0, keep_samples=False
        )
        res.verify_conservation()
        assert res.lost == 0 and res.requeued == 0


class TestRecoveryMetrics:
    def test_no_disruption_means_no_recovery_metric(self, generator):
        res = _fleet(generator).run(duration_s=15.0, keep_samples=True)
        assert res.recovery_time_s(slo_p95_ttft_s=1.0) is None
        assert res.to_dict(slo_p95_ttft_s=1.0).get("recovery") is None

    def test_recovery_needs_samples(self, generator):
        faults = FaultInjector([FaultSpec(kind="crash", time_s=2.0)], seed=0)
        res = _fleet(generator, faults=faults).run(
            duration_s=15.0, keep_samples=False
        )
        with pytest.raises(ValueError, match="keep_samples"):
            res.recovery_time_s(slo_p95_ttft_s=1.0)

    def test_degraded_attainment_needs_samples(self, generator):
        # Silent None here would read as "no degraded windows" — the
        # dropped-samples condition must name the fix instead.
        faults = FaultInjector([FaultSpec(kind="crash", time_s=2.0)], seed=0)
        res = _fleet(generator, faults=faults).run(
            duration_s=15.0, keep_samples=False
        )
        with pytest.raises(ValueError, match="keep_samples=True"):
            res.degraded_slo_attainment(slo_p95_ttft_s=1.0)

    def test_recovery_and_degraded_attainment(self, generator):
        faults = FaultInjector(
            [FaultSpec(kind="crash", time_s=10.0, restart_delay_s=5.0)], seed=0
        )
        res = _fleet(generator, faults=faults).run(
            duration_s=60.0, keep_samples=True
        )
        # Against a generous SLO the fleet recovers in bounded time and
        # most degraded-era windows still attain it.
        recovery = res.recovery_time_s(slo_p95_ttft_s=10.0)
        assert recovery is not None and math.isfinite(recovery)
        assert recovery <= 50.0
        attainment = res.degraded_slo_attainment(slo_p95_ttft_s=10.0)
        assert 0.0 <= attainment <= 1.0
        payload = res.to_dict(slo_p95_ttft_s=10.0)
        assert payload["recovery"]["recovery_time_s"] == recovery
        # An unattainable SLO is never re-entered.
        assert res.recovery_time_s(slo_p95_ttft_s=0.0) == float("inf")


CHAOS_SCENARIO = {
    "name": "chaos-pin",
    "seed": 7,
    "duration_s": 30.0,
    "llm": "Llama-2-7b",
    "profile": "1xA10-24GB",
    "pods": 3,
    "workload": {"requests": 4000},
    "traffic": {"kind": "poisson", "rate_per_s": 3.0},
    "faults": {
        "seed": 7,
        "zones": 3,
        "events": [
            {"kind": "crash", "time_s": 8.0, "restart_delay_s": 5.0},
            {"kind": "slowdown", "time_s": 14.0, "duration_s": 6.0,
             "factor": 5.0},
            {"kind": "zone-outage", "time_s": 20.0, "zone": "zone-2",
             "mode": "lose"},
        ],
    },
}


class TestChaosGoldenPin:
    """Seeded chaos runs are bit-stable: semantic drift in the fault
    layer shows up here as a changed pin, not as silent corruption."""

    def test_fault_schedule_is_reproducible(self):
        spec = ScenarioSpec.from_dict(CHAOS_SCENARIO)
        a = spec.run(keep_samples=False)
        b = spec.run(keep_samples=False)
        a.verify_conservation()
        assert a.fault_events == b.fault_events
        assert (a.arrivals, a.requeued, a.lost, a.tokens_generated) == (
            b.arrivals, b.requeued, b.lost, b.tokens_generated
        )

    def test_chaos_pin(self):
        res = ScenarioSpec.from_dict(CHAOS_SCENARIO).run(keep_samples=False)
        res.verify_conservation()
        events = [
            (e.time_s, e.kind, e.pod, e.zone) for e in res.fault_events
        ]
        # Pod 2 (zone-2) crashes and requeues its work; its replacement
        # (serial 3) inherits zone-2 and is exactly what the zone-outage
        # then destroys, losing the in-flight batch.
        assert events == [
            (8.0, "crash", 2, "zone-2"),
            (14.0, "slowdown-start", 0, "zone-0"),
            (20.0, "zone-outage", 3, "zone-2"),
            (20.0, "slowdown-end", 0, "zone-0"),
        ]
        assert isinstance(res.fault_events[0], FaultEvent)
        assert res.requeued == 7
        assert res.lost == 18
        assert (res.arrivals, res.requests_completed) == (102, 45)
        assert res.n_pods == 2
