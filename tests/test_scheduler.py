"""Tests for the multi-tenant cluster scheduler (paper's next-step
extension) and the analytic steady-state estimator."""

import pytest

from repro.cluster import (
    ClusterInventory,
    MultiTenantScheduler,
    TenantRequest,
)
from repro.characterization import BatchWeightTuner, run_load_test
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine, SteadyStateEstimator
from repro.models import get_llm
from repro.recommendation.recommender import ProfileAssessment, Recommendation


def _option(profile, pods, cost, umax=8):
    return ProfileAssessment(
        profile=profile, umax=umax, n_pods=pods, pod_cost=cost / pods, total_cost=cost
    )


class TestInventory:
    def test_allocate_release_roundtrip(self):
        inv = ClusterInventory(capacity={"A100-40GB": 8})
        inv.allocate("2xA100-40GB", 2)  # 4 GPUs
        assert inv.available("A100-40GB") == 4
        inv.release("2xA100-40GB", 2)
        assert inv.available("A100-40GB") == 8

    def test_over_allocation_rejected(self):
        inv = ClusterInventory(capacity={"T4-16GB": 3})
        with pytest.raises(ValueError, match="cannot allocate"):
            inv.allocate("4xT4-16GB", 1)

    def test_over_release_rejected(self):
        inv = ClusterInventory(capacity={"T4-16GB": 4})
        with pytest.raises(ValueError, match="releasing"):
            inv.release("1xT4-16GB", 1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ClusterInventory(capacity={"T4-16GB": -1})

    def test_utilization(self):
        inv = ClusterInventory(capacity={"T4-16GB": 4, "H100-80GB": 2})
        inv.allocate("1xT4-16GB", 2)
        util = inv.utilization()
        assert util["T4-16GB"] == pytest.approx(0.5)
        assert util["H100-80GB"] == 0.0


class TestTenantRequest:
    def test_from_recommendation_filters_and_sorts(self):
        rec = Recommendation(
            profile="1xT4-16GB",
            n_pods=2,
            total_cost=1.06,
            assessments=[
                _option("1xA100-40GB", 1, 4.10),
                _option("1xT4-16GB", 2, 1.06),
                ProfileAssessment(
                    profile="1xV100-16GB", umax=0, n_pods=0, pod_cost=3.06,
                    total_cost=float("inf"),
                ),
            ],
        )
        req = TenantRequest.from_recommendation("tenant-a", rec)
        assert [o.profile for o in req.options] == ["1xT4-16GB", "1xA100-40GB"]


class TestScheduler:
    def test_greedy_takes_cheapest_fitting(self):
        inv = ClusterInventory(capacity={"T4-16GB": 2, "A100-40GB": 4})
        sched = MultiTenantScheduler(inv)
        tenants = [
            TenantRequest("a", (_option("1xT4-16GB", 2, 1.06),
                                _option("1xA100-40GB", 1, 4.10))),
            TenantRequest("b", (_option("1xT4-16GB", 2, 1.06),
                                _option("1xA100-40GB", 1, 4.10))),
        ]
        result = sched.schedule_greedy(tenants)
        assert result.n_placed == 2
        # First tenant exhausts T4s; second falls back to A100.
        assert result.placements[0].profile == "1xT4-16GB"
        assert result.placements[1].profile == "1xA100-40GB"

    def test_greedy_unplaced_when_no_capacity(self):
        inv = ClusterInventory(capacity={"T4-16GB": 1})
        sched = MultiTenantScheduler(inv)
        tenants = [
            TenantRequest("a", (_option("1xT4-16GB", 1, 0.53),)),
            TenantRequest("b", (_option("1xT4-16GB", 1, 0.53),)),
        ]
        result = sched.schedule_greedy(tenants)
        assert result.n_placed == 1
        assert result.unplaced == ["b"]

    def test_best_fit_beats_greedy_on_packing(self):
        # Greedy gives tenant a the cheap big allocation and strands b;
        # best-fit places both.
        def tenants():
            return [
                TenantRequest("a", (_option("4xT4-16GB", 1, 2.12),
                                    _option("1xA100-40GB", 1, 4.10))),
                TenantRequest("b", (_option("4xT4-16GB", 1, 2.12),)),
            ]

        greedy = MultiTenantScheduler(
            ClusterInventory(capacity={"T4-16GB": 4, "A100-40GB": 1})
        ).schedule_greedy(tenants())
        assert greedy.n_placed == 1

        best = MultiTenantScheduler(
            ClusterInventory(capacity={"T4-16GB": 4, "A100-40GB": 1})
        ).schedule_best_fit(tenants())
        assert best.n_placed == 2
        assert best.unplaced == []

    def test_best_fit_minimizes_cost_among_max_placements(self):
        inv = ClusterInventory(capacity={"T4-16GB": 8, "A100-40GB": 8})
        sched = MultiTenantScheduler(inv)
        tenants = [
            TenantRequest("a", (_option("1xA100-40GB", 1, 4.10),
                                _option("1xT4-16GB", 2, 1.06))),
        ]
        result = sched.schedule_best_fit(tenants)
        assert result.n_placed == 1
        assert result.total_cost == pytest.approx(1.06)

    def test_best_fit_commits_inventory(self):
        inv = ClusterInventory(capacity={"T4-16GB": 2})
        sched = MultiTenantScheduler(inv)
        sched.schedule_best_fit(
            [TenantRequest("a", (_option("1xT4-16GB", 2, 1.06),))]
        )
        assert inv.available("T4-16GB") == 0


class TestSteadyStateEstimator:
    @pytest.fixture(scope="class")
    def setup(self, generator):
        llm = get_llm("Llama-2-13b")
        profile = parse_profile("1xA100-40GB")
        tuned = BatchWeightTuner(llm, profile).tune()
        est = SteadyStateEstimator(
            llm, profile, tuned.max_batch_weight, generator, seed=1
        )
        return llm, profile, tuned.max_batch_weight, est

    def test_saturation_flag(self, setup):
        _, _, _, est = setup
        assert not est.estimate(1).saturated
        assert est.estimate(128).saturated

    def test_throughput_monotone_until_saturation(self, setup):
        _, _, _, est = setup
        sweep = est.sweep([1, 2, 4, 8])
        tputs = [e.throughput_tokens_per_s for e in sweep]
        assert all(b >= a for a, b in zip(tputs, tputs[1:]))

    def test_ttft_grows_past_saturation(self, setup):
        _, _, _, est = setup
        assert est.estimate(128).ttft_s > 5 * est.estimate(1).ttft_s

    def test_agrees_with_simulator_at_saturation(self, setup, generator):
        """The analytic fast path must land within 2x of the event sim."""
        llm, profile, weight, est = setup
        engine = ContinuousBatchingEngine(llm, profile, max_batch_weight=weight, seed=2)
        sim = run_load_test(engine, generator, 64, duration_s=60.0, warmup_s=10.0, seed=2)
        ana = est.estimate(64)
        ratio_tput = ana.throughput_tokens_per_s / sim.throughput_tokens_per_s
        ratio_itl = ana.itl_s / sim.itl_median_s
        assert 0.5 < ratio_tput < 2.0, f"throughput ratio {ratio_tput:.2f}"
        assert 0.5 < ratio_itl < 2.0, f"ITL ratio {ratio_itl:.2f}"

    def test_validation(self, setup, generator):
        llm, profile, weight, est = setup
        with pytest.raises(ValueError):
            est.estimate(0)
        with pytest.raises(ValueError):
            SteadyStateEstimator(llm, profile, 1, generator)
