"""Tests for the statistical analyses: correlation, importance, CDFs."""

import numpy as np
import pytest

from repro.analysis import (
    compare_marginals,
    deployment_knob_study,
    empirical_cdf,
    latency_importance_study,
    spearman_matrix,
)
from repro.hardware import parse_profile
from repro.models import get_llm


class TestSpearman:
    def test_matrix_shape_and_diagonal(self, traces):
        corr, params = spearman_matrix(traces)
        assert corr.shape == (len(params), len(params))
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_symmetry(self, traces):
        corr, _ = spearman_matrix(traces)
        np.testing.assert_allclose(corr, corr.T, atol=1e-12)

    def test_fig3_key_correlations_present(self, traces):
        """Fig 3: the latency-dominant parameters correlate strongly."""
        corr, params = spearman_matrix(traces)
        i_in = params.index("input_tokens")
        i_out = params.index("output_tokens")
        i_batch = params.index("batch_size")
        i_maxnew = params.index("max_new_tokens")
        assert abs(corr[i_in, i_out]) > 0.1
        assert abs(corr[i_in, i_batch]) > 0.1
        # max_new_tokens is nearly determined by output_tokens.
        assert corr[i_out, i_maxnew] > 0.8

    def test_two_param_matrix(self, traces):
        corr, params = spearman_matrix(traces, ("input_tokens", "output_tokens"))
        assert corr.shape == (2, 2)
        assert corr[0, 1] == corr[1, 0]

    def test_requires_two_params(self, traces):
        with pytest.raises(ValueError):
            spearman_matrix(traces, ("input_tokens",))


class TestLatencyImportance:
    def test_sec3a_study(self, traces):
        """§III-A: RF achieves high R^2; output tokens dominate."""
        result = latency_importance_study(
            traces, n_estimators=12, max_rows=8000, seed=0
        )
        assert result.r2 > 0.85
        assert "llm_index" in result.importances
        ranking = result.ranking()
        assert ranking[0] == "output_tokens"
        top4 = set(ranking[:4])
        assert "output_tokens" in top4 and "batch_size" in top4

    def test_importances_normalized(self, traces):
        result = latency_importance_study(traces, n_estimators=6, max_rows=4000)
        total = sum(result.importances.values())
        assert total == pytest.approx(1.0)

    def test_nuisance_flags_near_zero(self, traces):
        result = latency_importance_study(traces, n_estimators=12, max_rows=8000)
        assert result.importances["watermark"] < 0.02
        assert result.importances["echo"] < 0.02


class TestKnobStudy:
    def test_fig4_cpu_memory_irrelevant(self, generator):
        """Fig 4: CPU cores and memory have MDI far below batch weight."""
        result = deployment_knob_study(
            get_llm("Llama-2-13b"),
            parse_profile("1xA100-40GB"),
            generator,
            user_counts=(1, 8, 64),
            weight_multipliers=(1.0, 4.0),
            replicates=3,
            duration_s=8.0,
            seed=3,
            n_estimators=15,
        )
        for imp in (result.importances_ttft, result.importances_itl):
            knobs = imp["max_batch_weight"] + imp["concurrent_users"]
            nuisance = imp["cpu_cores"] + imp["memory_gb"]
            assert knobs > 20 * max(nuisance, 1e-9)
        assert result.knob_ratio("ttft") > 5
        assert len(result.rows) == 18

    def test_infeasible_pair_raises(self, generator):
        with pytest.raises(ValueError, match="infeasible"):
            deployment_knob_study(
                get_llm("Llama-2-13b"),
                parse_profile("1xA10-24GB"),
                generator,
                duration_s=2.0,
            )


class TestCDF:
    def test_empirical_cdf_monotone(self):
        values, probs = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probs.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))

    def test_fig6_marginal_fidelity(self, traces, generator):
        """Fig 6: generator marginals track the empirical CDFs closely."""
        out = compare_marginals(
            traces, generator,
            params=("input_tokens", "batch_size", "temperature"),
            n_samples=30_000, seed=0,
        )
        for comparison in out.values():
            assert comparison.ks_distance < 0.06
            assert np.all(np.diff(comparison.cdf_trace) >= 0)
            assert np.all(np.diff(comparison.cdf_generated) >= 0)

    def test_unknown_param_raises(self, traces, generator):
        with pytest.raises(KeyError):
            compare_marginals(traces, generator, params=("no_such_param",))
