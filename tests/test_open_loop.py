"""Tests for the open-loop (Poisson arrivals) load-testing mode."""

import numpy as np
import pytest

from repro.characterization import run_open_loop_test
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-40GB")


def _engine(seed=0):
    return ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=12_000, seed=seed)


class TestOpenLoop:
    def test_basic_metrics(self, generator):
        res = run_open_loop_test(
            _engine(), generator, arrival_rate_per_s=0.5, duration_s=60.0, seed=1
        )
        assert res.requests_completed > 0
        assert np.isfinite(res.ttft_median_s)
        assert np.isfinite(res.itl_median_s)
        assert res.throughput_tokens_per_s > 0

    def test_arrival_count_matches_rate(self, generator):
        res = run_open_loop_test(
            _engine(), generator, arrival_rate_per_s=1.0, duration_s=120.0, seed=2
        )
        assert 80 <= res.arrivals <= 170
        # The closed-loop population field is no longer overloaded.
        assert res.concurrent_users == 0
        assert res.offered_rate_per_s == 1.0

    def test_underload_no_queueing(self, generator):
        """At a trickle arrival rate the server idles between requests."""
        res = run_open_loop_test(
            _engine(), generator, arrival_rate_per_s=0.05, duration_s=120.0, seed=3
        )
        assert res.queue_depth_end <= 1
        assert res.ttft_median_s < 1.0

    def test_overload_builds_queue(self, generator):
        """Arrivals far beyond capacity accumulate unbounded queueing."""
        res = run_open_loop_test(
            _engine(), generator, arrival_rate_per_s=20.0, duration_s=60.0, seed=4
        )
        assert res.queue_depth_end > 50
        # TTFT blows up relative to the underloaded case.
        calm = run_open_loop_test(
            _engine(seed=9), generator, arrival_rate_per_s=0.1, duration_s=60.0, seed=4
        )
        assert res.ttft_median_s > 5 * calm.ttft_median_s

    def test_reproducible(self, generator):
        a = run_open_loop_test(_engine(5), generator, 0.5, duration_s=30.0, seed=7)
        b = run_open_loop_test(_engine(5), generator, 0.5, duration_s=30.0, seed=7)
        assert a.ttft_median_s == b.ttft_median_s
        assert a.arrivals == b.arrivals

    def test_validation(self, generator):
        with pytest.raises(ValueError):
            run_open_loop_test(_engine(), generator, arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            run_open_loop_test(_engine(), generator, 1.0, duration_s=0.0)
        eng = _engine()
        run_open_loop_test(eng, generator, 0.5, duration_s=5.0)
        with pytest.raises(ValueError, match="fresh"):
            run_open_loop_test(eng, generator, 0.5, duration_s=5.0)


class TestArrivalTimeSubmission:
    def test_future_arrival_rejected(self):
        from repro.inference import InferenceRequest

        eng = _engine()
        with pytest.raises(ValueError, match="future"):
            eng.submit(
                InferenceRequest(request_id=0, input_tokens=5, output_tokens=5),
                arrival_time=10.0,
            )

    def test_past_arrival_preserves_ttft(self):
        from repro.inference import InferenceRequest

        eng = _engine()
        eng.submit(InferenceRequest(request_id=0, input_tokens=50, output_tokens=5))
        eng.step()  # prefill; time advances
        t = eng.time
        eng.submit(
            InferenceRequest(request_id=1, input_tokens=50, output_tokens=5),
            arrival_time=t / 2,
        )
        results = []
        while eng.has_work():
            results.extend(eng.step())
        second = next(r for r in results if r.request.request_id == 1)
        assert second.submitted_at == pytest.approx(t / 2)
        assert second.ttft > 0

    def test_advance_to_only_moves_forward(self):
        eng = _engine()
        eng.advance_to(5.0)
        assert eng.time == 5.0
        eng.advance_to(1.0)
        assert eng.time == 5.0
