"""Shared fixtures: small synthetic traces, workload generators and a
reduced characterization dataset (session-scoped — they are expensive)."""

import pytest

from repro.characterization import CharacterizationConfig, CharacterizationTool
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.traces import TraceConfig, TraceSynthesizer
from repro.workload import WorkloadGenerator


@pytest.fixture(scope="session")
def traces():
    """A small but statistically meaningful trace collection."""
    config = TraceConfig(n_requests=30_000, n_users=800)
    return TraceSynthesizer(config=config, seed=11).generate()


@pytest.fixture(scope="session")
def generator(traces):
    return WorkloadGenerator.fit(traces)


@pytest.fixture(scope="session")
def small_dataset(generator):
    """Characterization of 4 LLMs on 4 profiles with short experiments."""
    llms = [
        get_llm("google/flan-t5-xl"),
        get_llm("google/flan-t5-xxl"),
        get_llm("Llama-2-7b"),
        get_llm("Llama-2-13b"),
    ]
    profiles = [
        parse_profile("1xH100-80GB"),
        parse_profile("1xA100-40GB"),
        parse_profile("2xA10-24GB"),
        parse_profile("4xT4-16GB"),
    ]
    tool = CharacterizationTool(
        generator,
        CharacterizationConfig(
            duration_s=15.0, user_counts=(1, 4, 16, 64), seed=5
        ),
    )
    return tool.run(llms, profiles=profiles)
