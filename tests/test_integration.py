"""End-to-end integration tests across the full pipeline."""

import numpy as np

from repro.baselines.base import BaseRecommender
from repro.characterization import PerfDataset
from repro.cluster import ClusterInventory, MultiTenantScheduler, TenantRequest
from repro.evaluation.harness import EvaluationConfig, evaluate_method
from repro.hardware import aws_like_pricing, default_profiles
from repro.models import LLM_CATALOG, get_llm
from repro.ml.serialize import gbm_from_dict, gbm_to_dict
from repro.recommendation import (
    GPURecommendationTool,
    LatencyConstraints,
    PerfModelHyperparams,
)
from repro.recommendation.pilot import LLMPilotRecommender

CONSTRAINTS = LatencyConstraints(nttft_s=0.1, itl_s=0.05)


class TestFullPipeline:
    def test_characterize_persist_train_recommend(
        self, small_dataset, generator, tmp_path
    ):
        """The complete admin->user workflow through disk persistence."""
        # 1. Admin persists the characterization dataset.
        path = str(tmp_path / "dataset.npz")
        small_dataset.dataset.save(path)
        dataset = PerfDataset.load(path)
        assert len(dataset) == len(small_dataset.dataset)

        # 2. User trains on historical LLMs (excluding the target).
        target = "Llama-2-13b"
        train = dataset.exclude_llm(target)
        pilot = LLMPilotRecommender(
            constraints=CONSTRAINTS,
            hyperparams=PerfModelHyperparams(n_estimators=40),
            user_counts=(1, 4, 16, 64),
        )
        pilot.fit(train, dict(LLM_CATALOG))

        # 3. Recommendation through the public tool.
        tool = GPURecommendationTool(
            perf_model=pilot.model_,
            pricing=aws_like_pricing(),
            constraints=CONSTRAINTS,
            max_request_weight=generator.max_request_weight(),
            user_counts=(1, 4, 16, 64),
        )
        rec = tool.recommend(get_llm(target), default_profiles(), total_users=50)
        assert rec.feasible
        assert rec.total_cost > 0

        # 4. Recommendation feeds straight into multi-tenant scheduling.
        request = TenantRequest.from_recommendation("tenant", rec)
        inventory = ClusterInventory(
            capacity={g: 16 for g in ("H100-80GB", "A100-40GB", "A10-24GB",
                                      "T4-16GB", "V100-16GB")}
        )
        schedule = MultiTenantScheduler(inventory).schedule_greedy([request])
        assert schedule.n_placed == 1
        assert schedule.placements[0].total_cost <= rec.total_cost + 1e-9

    def test_trained_model_serializes_and_predicts_identically(
        self, small_dataset
    ):
        train = small_dataset.dataset
        pilot = LLMPilotRecommender(
            constraints=CONSTRAINTS,
            hyperparams=PerfModelHyperparams(n_estimators=30),
            user_counts=(1, 4, 16, 64),
        )
        pilot.fit(train, dict(LLM_CATALOG))
        restored = gbm_from_dict(gbm_to_dict(pilot.model_._model_itl))
        llm = get_llm("google/flan-t5-xxl")
        rows = [(llm, "1xA100-40GB", u) for u in (1, 4, 16, 64)]
        X = pilot.model_.feature_space.transform(rows)
        np.testing.assert_array_equal(
            pilot.model_._model_itl.predict(X), restored.predict(X)
        )

    def test_evaluation_is_deterministic(self, small_dataset, generator):
        cfg = EvaluationConfig(
            total_users=50,
            user_counts=(1, 4, 16, 64),
            max_request_weight=generator.max_request_weight(),
        )

        def factory():
            return LLMPilotRecommender(
                constraints=cfg.constraints,
                hyperparams=PerfModelHyperparams(n_estimators=30),
                user_counts=(1, 4, 16, 64),
            )

        a = evaluate_method(factory, small_dataset.dataset, dict(LLM_CATALOG), config=cfg)
        b = evaluate_method(factory, small_dataset.dataset, dict(LLM_CATALOG), config=cfg)
        assert a.success_rate == b.success_rate
        assert a.so == b.so
        assert [o.recommended_profile for o in a.outcomes] == [
            o.recommended_profile for o in b.outcomes
        ]

    def test_recommender_interface_contract(self):
        """Every recommender subclass advertises the harness contract."""
        from repro.baselines import (
            MorphlingRecommender,
            PARISRecommender,
            PerfNetRecommender,
            PerfNetV2Recommender,
            RFRecommender,
            SelectaRecommender,
            StaticRecommender,
        )

        for cls in (
            RFRecommender,
            PARISRecommender,
            SelectaRecommender,
            MorphlingRecommender,
            PerfNetRecommender,
            PerfNetV2Recommender,
            StaticRecommender,
            LLMPilotRecommender,
        ):
            assert issubclass(cls, BaseRecommender)
            assert isinstance(cls.name, str) and cls.name
            assert isinstance(cls.requires_reference, bool)
