"""Property-based tests of continuous-batching engine invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine, InferenceRequest
from repro.models import get_llm

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-40GB")

request_strategy = st.builds(
    lambda i, o, b: (i, o, b),
    st.integers(1, 800),
    st.integers(1, 200),
    st.integers(1, 3),
)


def _run_engine(requests, W=6000, seed=0):
    engine = ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=W, seed=seed)
    results = []
    submitted = 0
    for rid, (inp, out, batch) in enumerate(requests):
        req = InferenceRequest(
            request_id=rid, input_tokens=inp, output_tokens=out, batch_size=batch
        )
        if req.weight > W:
            continue
        engine.submit(req)
        submitted += 1
    while engine.has_work():
        results.extend(engine.step())
    return engine, results, submitted


class TestEngineInvariants:
    @given(st.lists(request_strategy, min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_all_submitted_requests_complete(self, reqs):
        engine, results, submitted = _run_engine(reqs)
        assert len(results) == submitted
        assert engine.stats.requests_completed == submitted

    @given(st.lists(request_strategy, min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_resources_fully_released(self, reqs):
        engine, _, _ = _run_engine(reqs)
        assert engine.batch_weight_in_use == 0
        assert engine._kv_tokens == 0
        assert engine.active_requests == 0
        assert engine.queue_depth == 0

    @given(st.lists(request_strategy, min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_token_accounting(self, reqs):
        engine, results, _ = _run_engine(reqs)
        expected = sum(r.request.output_tokens * r.request.batch_size for r in results)
        assert engine.stats.tokens_generated == expected

    @given(st.lists(request_strategy, min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_timestamps_causally_ordered(self, reqs):
        _, results, _ = _run_engine(reqs)
        for r in results:
            assert r.submitted_at <= r.first_token_at <= r.finished_at
            assert r.ttft >= 0
            assert r.e2e_latency >= r.ttft

    @given(st.lists(request_strategy, min_size=2, max_size=20), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_itl_gaps_positive(self, reqs, seed):
        engine, _, _ = _run_engine(reqs, seed=seed)
        gaps = engine.itl_samples()
        assert np.all(gaps > 0)

    @given(st.lists(request_strategy, min_size=1, max_size=15))
    @settings(max_examples=20, deadline=None)
    def test_time_strictly_monotone_across_steps(self, reqs):
        engine = ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=6000, seed=1)
        for rid, (inp, out, batch) in enumerate(reqs):
            req = InferenceRequest(
                request_id=rid, input_tokens=inp, output_tokens=out, batch_size=batch
            )
            if req.weight <= 6000:
                engine.submit(req)
        last = engine.time
        while engine.has_work():
            engine.step()
            assert engine.time > last
            last = engine.time

    @given(st.lists(request_strategy, min_size=1, max_size=15))
    @settings(max_examples=15, deadline=None)
    def test_batch_weight_never_exceeded(self, reqs):
        W = 4000
        engine = ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=W, seed=2)
        for rid, (inp, out, batch) in enumerate(reqs):
            req = InferenceRequest(
                request_id=rid, input_tokens=inp, output_tokens=out, batch_size=batch
            )
            if req.weight <= W:
                engine.submit(req)
        while engine.has_work():
            engine.step()
            assert engine.batch_weight_in_use <= W


class TestWarmupSupport:
    def test_reset_metrics_clears_samples_keeps_state(self):
        engine = ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=6000, seed=0)
        engine.submit(InferenceRequest(request_id=0, input_tokens=50, output_tokens=40))
        engine.submit(InferenceRequest(request_id=1, input_tokens=50, output_tokens=400))
        for _ in range(10):
            engine.step()
        t = engine.time
        assert engine.itl_samples().size > 0
        engine.reset_metrics()
        assert engine.itl_samples().size == 0
        assert engine.ttft_samples()[0].size == 0
        assert engine.stats.tokens_generated == 0
        assert engine.time == t  # virtual time untouched
        assert engine.has_work()  # batch untouched

    def test_warmup_load_test_excludes_transient(self, generator):
        from repro.characterization import run_load_test

        eng = ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=12_000, seed=3)
        res = run_load_test(
            eng, generator, concurrent_users=4, duration_s=20.0, warmup_s=10.0, seed=3
        )
        assert res.requests_completed > 0
        # All counted completions were submitted after the warmup boundary.
        eng2 = ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=12_000, seed=3)
        res2 = run_load_test(
            eng2, generator, concurrent_users=4, duration_s=20.0, warmup_s=10.0,
            seed=3, keep_results=True,
        )
        assert all(r.submitted_at >= 10.0 for r in res2.results)

    def test_warmup_validation(self, generator):
        from repro.characterization import run_load_test

        eng = ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=12_000, seed=0)
        with pytest.raises(ValueError):
            run_load_test(eng, generator, 1, duration_s=5.0, warmup_s=-1.0)
