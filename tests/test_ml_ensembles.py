"""Tests for the random forest and gradient-boosting ensembles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    GradientBoostingRegressor,
    RandomForestRegressor,
    r2_score,
)


def _toy(n=500, seed=0, d=6):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, d))
    y = 2 * X[:, 0] + np.sin(3 * X[:, 1]) + X[:, 2] ** 2
    return X, y + 0.1 * rng.standard_normal(n)


class TestRandomForest:
    def test_fits_signal(self):
        X, y = _toy()
        f = RandomForestRegressor(n_estimators=25, random_state=0).fit(X, y)
        assert r2_score(y, f.predict(X)) > 0.9

    def test_generalizes(self):
        X, y = _toy(800, seed=1)
        Xt, yt = _toy(300, seed=2)
        f = RandomForestRegressor(n_estimators=25, random_state=0).fit(X, y)
        assert r2_score(yt, f.predict(Xt)) > 0.8

    def test_reproducible(self):
        X, y = _toy()
        a = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_seed_matters(self):
        X, y = _toy()
        a = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=10, random_state=4).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_mdi_importances_normalized(self):
        X, y = _toy()
        f = RandomForestRegressor(n_estimators=15, random_state=0).fit(X, y)
        assert f.feature_importances_.sum() == pytest.approx(1.0)
        assert np.all(f.feature_importances_ >= 0)

    def test_mdi_identifies_signal_over_noise(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(size=(600, 6))
        y = 5 * X[:, 0] + 0.05 * rng.standard_normal(600)
        f = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        imp = f.feature_importances_
        assert imp[0] > 10 * max(imp[1:])

    def test_max_features_fraction_resolution(self):
        f = RandomForestRegressor(max_features=0.5)
        assert f._resolve_max_features(10) == 5
        assert RandomForestRegressor(max_features=None)._resolve_max_features(10) is None
        assert RandomForestRegressor(max_features=3)._resolve_max_features(10) == 3
        assert RandomForestRegressor(max_features=100)._resolve_max_features(10) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((2, 2)))


class TestGBM:
    def test_fits_signal_better_than_single_tree(self):
        X, y = _toy()
        g = GradientBoostingRegressor(n_estimators=150, max_depth=3).fit(X, y)
        assert r2_score(y, g.predict(X)) > 0.98

    def test_learning_rate_tradeoff(self):
        X, y = _toy()
        fast = GradientBoostingRegressor(n_estimators=10, learning_rate=0.5).fit(X, y)
        slow = GradientBoostingRegressor(n_estimators=10, learning_rate=0.01).fit(X, y)
        assert r2_score(y, fast.predict(X)) > r2_score(y, slow.predict(X))

    def test_staged_predict_improves(self):
        X, y = _toy()
        g = GradientBoostingRegressor(n_estimators=60, learning_rate=0.2).fit(X, y)
        stages = list(g.staged_predict(X, every=20))
        errs = [np.mean((y - s) ** 2) for s in stages]
        assert errs[-1] < errs[0]

    def test_base_prediction_weighted_mean(self):
        X, y = _toy(100)
        w = np.random.default_rng(0).uniform(size=100)
        g = GradientBoostingRegressor(n_estimators=1).fit(X, y, sample_weight=w)
        assert g.base_prediction_ == pytest.approx(np.dot(w, y) / w.sum())

    def test_subsample_and_colsample(self):
        X, y = _toy()
        g = GradientBoostingRegressor(
            n_estimators=80, subsample=0.7, colsample=0.5, random_state=1
        ).fit(X, y)
        assert r2_score(y, g.predict(X)) > 0.9

    def test_reproducible(self):
        X, y = _toy()
        a = GradientBoostingRegressor(n_estimators=20, subsample=0.8, random_state=5).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=20, subsample=0.8, random_state=5).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_importances_normalized(self):
        X, y = _toy()
        g = GradientBoostingRegressor(n_estimators=30).fit(X, y)
        assert g.feature_importances_.sum() == pytest.approx(1.0)

    def test_hyperparameter_validation(self):
        for kwargs in (
            dict(n_estimators=0),
            dict(learning_rate=0.0),
            dict(learning_rate=1.5),
            dict(subsample=0.0),
            dict(colsample=1.5),
        ):
            with pytest.raises(ValueError):
                GradientBoostingRegressor(**kwargs)

    def test_unknown_monotone_feature_rejected(self):
        X, y = _toy(100)
        with pytest.raises(ValueError, match="unknown feature"):
            GradientBoostingRegressor(monotone_constraints={99: 1}).fit(X, y)

    def test_predict_shape_validation(self):
        X, y = _toy(100)
        g = GradientBoostingRegressor(n_estimators=5).fit(X, y)
        with pytest.raises(ValueError):
            g.predict(X[:, :3])
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(X)


class TestGBMMonotone:
    def _check(self, model, d, feature, rng, n_ctx=20):
        for _ in range(n_ctx):
            ctx = rng.uniform(-2, 2, size=d)
            pts = np.tile(ctx, (40, 1))
            pts[:, feature] = np.linspace(-2, 2, 40)
            assert np.all(np.diff(model.predict(pts)) >= -1e-9)

    def test_ensemble_globally_monotone(self):
        X, y = _toy(600, seed=4)
        g = GradientBoostingRegressor(
            n_estimators=100, max_depth=4, monotone_constraints={0: 1}
        ).fit(X, y)
        self._check(g, 6, 0, np.random.default_rng(0))

    def test_monotone_with_subsampling(self):
        X, y = _toy(600, seed=5)
        g = GradientBoostingRegressor(
            n_estimators=60, subsample=0.6, colsample=0.7,
            monotone_constraints={0: 1}, random_state=2,
        ).fit(X, y)
        self._check(g, 6, 0, np.random.default_rng(1))

    def test_monotone_still_fits_monotone_signal(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(0, 1, size=(500, 3))
        y = np.log1p(5 * X[:, 0]) + 0.3 * X[:, 1]
        g = GradientBoostingRegressor(
            n_estimators=100, monotone_constraints={0: 1, 1: 1}
        ).fit(X, y)
        assert r2_score(y, g.predict(X)) > 0.95

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_monotone_property_on_noise(self, seed):
        """The paper's guarantee must hold even on pure noise targets."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, size=(120, 3))
        y = rng.standard_normal(120)
        g = GradientBoostingRegressor(
            n_estimators=25, max_depth=3, monotone_constraints={2: 1},
            random_state=seed,
        ).fit(X, y)
        self._check(g, 3, 2, rng, n_ctx=6)
