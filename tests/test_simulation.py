"""Tests for the event-driven simulation core (repro.simulation).

The load-test wrappers promise *seed-for-seed identical* output to the
pre-refactor hand-written driver loops; the golden values pinned here
were captured from that original implementation and must never drift.
"""

import numpy as np
import pytest

from repro.characterization import run_load_test, run_open_loop_test
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    BurstyTraffic,
    ClosedLoopTraffic,
    DiurnalTraffic,
    FleetSimulator,
    JoinShortestQueueRouter,
    LatencyStats,
    LeastLoadedRouter,
    MetricsCollector,
    NoOpPolicy,
    PoissonTraffic,
    RequestSource,
    RoundRobinRouter,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-40GB")


def _engine(seed=0, weight=12_000):
    return ContinuousBatchingEngine(LLM, PROFILE, max_batch_weight=weight, seed=seed)


class TestGoldenEquivalence:
    """Wrappers reproduce the pre-refactor driver loops bit-for-bit.

    These exact values were recorded by running the original
    ``loadtest.py`` (two ~130-line hand-written loops) at the fixtures'
    seeds before it was rewritten over FleetSimulator.
    """

    def test_closed_loop_golden(self, generator):
        res = run_load_test(_engine(seed=3), generator, 4, duration_s=20.0, seed=3)
        assert res.concurrent_users == 4
        assert res.duration_s == 20.006395221038623
        assert res.ttft_median_s == 0.08482754441551124
        assert res.nttft_median_s == 0.00034597828527130944
        assert res.itl_median_s == 0.03367198138182016
        assert res.throughput_tokens_per_s == 158.1389295611904
        assert res.e2e_median_s == 5.752671341114865
        assert res.requests_completed == 8
        assert res.first_tokens_served == 12
        assert res.tokens_generated == 3101
        assert res.queue_depth_end == 0

    def test_closed_loop_warmup_golden(self, generator):
        res = run_load_test(
            _engine(seed=7), generator, 16, duration_s=15.0, seed=7, warmup_s=5.0
        )
        assert res.ttft_median_s == 0.5201397873588353
        assert res.itl_median_s == 0.039178609793496626
        assert res.throughput_tokens_per_s == 283.40768066475727
        assert res.requests_completed == 6
        assert res.tokens_generated == 4375
        assert res.queue_depth_end == 3

    def test_open_loop_golden(self, generator):
        res = run_open_loop_test(
            _engine(seed=5), generator, 0.5, duration_s=30.0, seed=7
        )
        assert res.arrivals == 13
        assert res.concurrent_users == 0  # no longer overloaded
        assert res.offered_rate_per_s == 0.5
        assert res.ttft_median_s == 0.11683560163830119
        assert res.itl_median_s == 0.03337550139414597
        assert res.throughput_tokens_per_s == 97.27597382328894
        assert res.requests_completed == 9
        assert res.tokens_generated == 2981


class TestFleetEquivalence:
    def test_one_pod_closed_loop_matches_run_load_test(self, generator):
        """FleetSimulator(1 pod) + ClosedLoopTraffic == run_load_test."""
        users, seed, duration = 4, 3, 20.0
        reference = run_load_test(
            _engine(seed=seed), generator, users, duration_s=duration, seed=seed,
            keep_results=True,
        )

        engine = _engine(seed=seed)
        source = RequestSource(
            generator, derive_rng(seed, "loadtest", users), engine.max_batch_weight
        )
        fleet = FleetSimulator(
            [engine], ClosedLoopTraffic(users), RoundRobinRouter(), source
        )
        fleet.run(duration_s=duration)

        ttft, _inputs = engine.ttft_samples()
        # Raw sample streams are identical...
        assert engine.stats.tokens_generated == reference.tokens_generated
        assert len(engine.metrics.completed) == reference.requests_completed
        assert int(ttft.size) == reference.first_tokens_served
        assert engine.queue_depth == reference.queue_depth_end
        # ...and so are per-request timestamps, not just aggregates.
        for mine, ref in zip(engine.metrics.completed, reference.results):
            assert mine.submitted_at == ref.submitted_at
            assert mine.first_token_at == ref.first_token_at
            assert mine.finished_at == ref.finished_at

    def test_noop_autoscaler_is_golden_identical(self, generator):
        """A no-op-policy autoscaled fleet == the PR-1 static fleet path.

        The autoscaler's decision ticks only *read* windowed metrics;
        with the no-op policy they must not perturb a single engine step,
        RNG draw or timestamp relative to the plain static fleet (whose
        1-pod path is itself golden-pinned against the pre-refactor
        harness in TestGoldenEquivalence).
        """
        users, seed, duration = 4, 3, 20.0
        reference = run_load_test(
            _engine(seed=seed), generator, users, duration_s=duration, seed=seed,
            keep_results=True,
        )

        engine = _engine(seed=seed)
        source = RequestSource(
            generator, derive_rng(seed, "loadtest", users), engine.max_batch_weight
        )
        fleet = FleetSimulator(
            [engine],
            ClosedLoopTraffic(users),
            RoundRobinRouter(),
            source,
            autoscaler=Autoscaler(
                NoOpPolicy(),
                AutoscaleConfig(decision_interval_s=2.0, metrics_window_s=5.0),
            ),
            pod_factory=lambda serial: _engine(seed=spawn_seed(seed, "pod", serial)),
        )
        res = fleet.run(duration_s=duration)
        res.verify_conservation()
        assert res.scale_events == []
        assert res.pod_seconds == pytest.approx(res.time_s)
        assert engine.stats.tokens_generated == reference.tokens_generated
        assert len(engine.metrics.completed) == reference.requests_completed
        assert engine.queue_depth == reference.queue_depth_end
        for mine, ref in zip(engine.metrics.completed, reference.results):
            assert mine.submitted_at == ref.submitted_at
            assert mine.first_token_at == ref.first_token_at
            assert mine.finished_at == ref.finished_at

    def test_round_robin_fleet_conserves_requests_and_tokens(self, generator):
        for n_pods in (2, 3):
            engines = [
                _engine(seed=spawn_seed(9, "pod", i)) for i in range(n_pods)
            ]
            source = RequestSource(generator, derive_rng(9, "fleet"), 12_000)
            fleet = FleetSimulator(
                engines,
                ClosedLoopTraffic(6),
                RoundRobinRouter(),
                source,
            )
            res = fleet.run(duration_s=15.0)
            # Every drawn request was routed exactly once (nothing was
            # shed, drained or double-counted)...
            res.verify_conservation()
            assert res.admitted == res.arrivals
            assert res.shed == 0
            assert sum(fleet.routed_counts) == fleet.arrivals == source.drawn
            assert sum(p.arrivals_routed for p in res.per_pod) == res.arrivals
            # ...token and completion counts add up across pods...
            assert res.tokens_generated == sum(
                e.stats.tokens_generated for e in engines
            )
            assert res.requests_completed == sum(
                len(e.metrics.completed) for e in engines
            )
            # ...and round-robin spreads the *initial* population evenly.
            assert all(p.arrivals_routed >= 6 // n_pods for p in res.per_pod)

    def test_shared_clock_causality(self, generator):
        """No pod's completion precedes its request's arrival time."""
        engines = [_engine(seed=i) for i in range(3)]
        source = RequestSource(generator, derive_rng(1, "causality"), 12_000)
        fleet = FleetSimulator(
            engines,
            PoissonTraffic(3.0, rng=derive_rng(1, "causality-arrivals")),
            JoinShortestQueueRouter(),
            source,
        )
        res = fleet.run(duration_s=20.0)
        assert res.arrivals > 0
        for engine in engines:
            for r in engine.metrics.completed:
                assert r.first_token_at >= r.submitted_at
                assert r.finished_at >= r.first_token_at

    def test_fresh_engine_required(self, generator):
        engine = _engine()
        source = RequestSource(generator, derive_rng(0, "x"), 12_000)
        FleetSimulator(
            [engine], ClosedLoopTraffic(1), RoundRobinRouter(), source
        ).run(duration_s=2.0)
        with pytest.raises(ValueError, match="fresh"):
            FleetSimulator(
                [engine], ClosedLoopTraffic(1), RoundRobinRouter(), source
            ).run(duration_s=2.0)

    def test_validation(self, generator):
        source = RequestSource(generator, derive_rng(0, "x"), 12_000)
        with pytest.raises(ValueError):
            FleetSimulator([], ClosedLoopTraffic(1), RoundRobinRouter(), source)
        with pytest.raises(ValueError):
            FleetSimulator(
                [_engine()], ClosedLoopTraffic(1), RoundRobinRouter(), source
            ).run(duration_s=0.0)


class TestTrafficModels:
    def _drain(self, traffic, source, until):
        times = []
        while True:
            t = traffic.peek()
            if t is None or t >= until:
                return times
            t, _ = traffic.pop(source)
            times.append(t)

    def test_poisson_rate(self, generator):
        source = RequestSource(generator, derive_rng(0, "p"), 12_000)
        traffic = PoissonTraffic(2.0, rng=derive_rng(0, "pa"))
        times = self._drain(traffic, source, 200.0)
        assert 300 <= len(times) <= 500  # 2/s over 200s
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_diurnal_modulates_rate(self, generator):
        source = RequestSource(generator, derive_rng(0, "d"), 12_000)
        period = 100.0
        traffic = DiurnalTraffic(
            2.0, rng=derive_rng(0, "da"), amplitude=0.9, period_s=period
        )
        times = np.array(self._drain(traffic, source, 40 * period))
        phase = (times % period) / period
        # First half-period is the crest (sin>0), second the trough.
        crest = np.sum(phase < 0.5)
        trough = np.sum(phase >= 0.5)
        assert crest > 2 * trough

    def test_bursty_is_burstier_than_poisson(self, generator):
        source = RequestSource(generator, derive_rng(0, "b"), 12_000)
        traffic = BurstyTraffic(
            8.0, rng=derive_rng(0, "ba"), mean_on_s=10.0, mean_off_s=30.0
        )
        times = np.array(self._drain(traffic, source, 2000.0))
        counts, _ = np.histogram(times, bins=np.arange(0.0, 2000.0, 5.0))
        # Index of dispersion >> 1 (Poisson would be ~1).
        fano = counts.var() / counts.mean()
        assert fano > 3.0
        # Mean rate is duty-cycled well below the ON rate.
        assert len(times) < 0.5 * 8.0 * 2000.0

    def test_traffic_validation(self):
        rng = derive_rng(0, "v")
        with pytest.raises(ValueError):
            ClosedLoopTraffic(0)
        with pytest.raises(ValueError):
            PoissonTraffic(0.0, rng=rng)
        with pytest.raises(ValueError):
            DiurnalTraffic(1.0, rng=rng, amplitude=1.5)
        with pytest.raises(ValueError):
            BurstyTraffic(1.0, rng=rng, mean_on_s=0.0)

    def test_source_truncates_overweight_requests(self, generator):
        source = RequestSource(generator, derive_rng(0, "t"), 600)
        for _ in range(200):
            assert source.next_request().weight <= 600


class _StubPod:
    def __init__(self, batch_weight, pending_weight, queue_depth, active):
        self.batch_weight_in_use = batch_weight
        self.pending_weight = pending_weight
        self.queue_depth = queue_depth
        self.active_requests = active


class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        pods = [_StubPod(0, 0, 0, 0) for _ in range(3)]
        assert [router.route(None, 0.0, pods) for _ in range(5)] == [0, 1, 2, 0, 1]
        router.reset()
        assert router.route(None, 0.0, pods) == 0

    def test_least_loaded_picks_lightest_committed_weight(self):
        pods = [
            _StubPod(batch_weight=900, pending_weight=0, queue_depth=0, active=1),
            _StubPod(batch_weight=100, pending_weight=200, queue_depth=2, active=1),
            _StubPod(batch_weight=100, pending_weight=900, queue_depth=9, active=1),
        ]
        assert LeastLoadedRouter().route(None, 0.0, pods) == 1

    def test_jsq_counts_requests_not_weight(self):
        pods = [
            _StubPod(batch_weight=10_000, pending_weight=0, queue_depth=0, active=1),
            _StubPod(batch_weight=50, pending_weight=50, queue_depth=3, active=2),
        ]
        assert JoinShortestQueueRouter().route(None, 0.0, pods) == 0


class TestMetricsCollector:
    def test_incremental_matches_concatenation(self):
        collector = MetricsCollector()
        rng = np.random.default_rng(0)
        chunks = [rng.random(n) for n in (3, 1, 7, 2000, 5)]
        for chunk in chunks:
            collector.record_gaps(chunk, now=0.0)
        np.testing.assert_array_equal(
            collector.itl_samples(), np.concatenate(chunks)
        )

    def test_itl_samples_is_o1(self):
        collector = MetricsCollector()
        collector.record_gaps(np.ones(10), now=0.0)
        first = collector.itl_samples()
        second = collector.itl_samples()
        # Same backing buffer — no per-call concatenation.
        assert first.base is second.base

    def test_samples_snapshot_survives_reset(self):
        collector = MetricsCollector()
        collector.record_gaps(np.array([1.0, 2.0, 3.0]), now=0.0)
        snapshot = collector.itl_samples()
        collector.reset()
        collector.record_gaps(np.array([9.0]), now=0.0)
        np.testing.assert_array_equal(snapshot, [1.0, 2.0, 3.0])

    def test_reset_clears_everything(self):
        collector = MetricsCollector()
        collector.record_first_token(0.5, 100, now=1.0)
        collector.record_gaps(np.ones(4), now=1.0)
        collector.record_tokens(4, now=1.0)
        collector.reset()
        assert collector.itl_samples().size == 0
        assert collector.ttft_samples()[0].size == 0
        assert collector.tokens_recorded == 0
        assert collector.throughput_timeseries()[0].size == 0

    def test_latency_stats_tails(self):
        samples = np.arange(1, 1001, dtype=float)
        stats = LatencyStats.from_samples(samples)
        assert stats.count == 1000
        assert stats.median_s <= stats.p95_s <= stats.p99_s
        assert stats.p99_s > 980
        empty = LatencyStats.from_samples(np.empty(0))
        assert empty.count == 0
        assert np.isnan(empty.median_s)

    def test_windowed_timeseries(self):
        collector = MetricsCollector(window_s=10.0)
        collector.record_tokens(5, now=1.0)
        collector.record_tokens(5, now=9.0)
        collector.record_tokens(20, now=25.0)
        times, rates = collector.throughput_timeseries()
        np.testing.assert_allclose(times, [0.0, 10.0, 20.0])
        np.testing.assert_allclose(rates, [1.0, 0.0, 2.0])

    def test_merged_pools_samples(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.record_gaps(np.array([1.0, 2.0]), now=0.0)
        b.record_gaps(np.array([3.0]), now=0.0)
        a.record_first_token(0.1, 10, now=0.0)
        b.record_tokens(7, now=3.0)
        merged = MetricsCollector.merged([a, b])
        assert merged.itl_samples().size == 3
        assert merged.ttft_samples()[0].size == 1
        assert merged.tokens_recorded == 7

    def test_engine_emits_into_collector(self, generator):
        engine = _engine()
        run_load_test(engine, generator, 2, duration_s=8.0, seed=1)
        assert engine.metrics.itl_samples().size > 0
        assert engine.metrics.ttft_stats().count > 0
        # Completions are recorded by the engine itself, so directly
        # driven engines (no FleetSimulator) get them too.
        assert len(engine.metrics.completed) == engine.stats.requests_completed
        times, rates = engine.metrics.throughput_timeseries()
        total_window_tokens = float(np.sum(rates)) * engine.metrics.window_s
        assert total_window_tokens == engine.stats.tokens_generated


class TestFastOracleParity:
    """The fast core (heap frontier + vectorized decode, ``fast=True``,
    the default) must be bit-identical to the straight-line golden
    oracle (``fast=False``) — same floats, same RNG draws, same event
    order. This is the contract that lets the golden pins above keep
    guarding both implementations at once."""

    FIELDS = (
        "time_s", "arrivals", "requests_completed", "tokens_generated",
        "throughput_tokens_per_s", "admitted", "shed", "deferrals",
        "completed_total", "in_flight_end", "pod_seconds", "sim_events",
    )

    def _run(self, generator, fast, autoscaled):
        def factory(serial):
            return ContinuousBatchingEngine(
                LLM, PROFILE, max_batch_weight=12_000,
                seed=spawn_seed(9, "pod", serial), fast=fast,
            )

        autoscaler = None
        if autoscaled:
            autoscaler = Autoscaler(
                ThresholdPolicy(slo_p95_ttft_s=1.0),
                AutoscaleConfig(
                    decision_interval_s=10.0, max_pods=6,
                    cold_start_s=5.0, metrics_window_s=20.0,
                ),
            )
        source = RequestSource(generator, derive_rng(9, "parity"), 12_000)
        fleet = FleetSimulator(
            [factory(i) for i in range(4)],
            BurstyTraffic(
                6.0, rng=derive_rng(9, "parity-traffic"),
                mean_on_s=10.0, mean_off_s=10.0,
            ),
            LeastLoadedRouter(),
            source,
            autoscaler=autoscaler,
            pod_factory=factory,
            fast=fast,
        )
        return fleet.run(duration_s=40.0)

    @pytest.mark.parametrize("autoscaled", [False, True])
    def test_fleet_results_bit_identical(self, generator, autoscaled):
        fast = self._run(generator, fast=True, autoscaled=autoscaled)
        oracle = self._run(generator, fast=False, autoscaled=autoscaled)
        for field in self.FIELDS:
            assert getattr(fast, field) == getattr(oracle, field), field
        # Full latency distributions, not just aggregates.
        assert fast.ttft == oracle.ttft
        assert fast.itl == oracle.itl
        assert fast.e2e == oracle.e2e
        assert fast.scale_events == oracle.scale_events

    def test_fast_run_times_itself(self, generator):
        result = self._run(generator, fast=True, autoscaled=False)
        assert result.sim_events > 0
        assert result.wall_time_s > 0.0
        assert result.events_per_second == result.sim_events / result.wall_time_s
