"""Tests for the inference-server simulator: cost model, memory/OOM,
continuous-batching engine and server facade."""

import numpy as np
import pytest

from repro.hardware import parse_profile
from repro.inference import (
    ContinuousBatchingEngine,
    CornerCaseBatch,
    CostModel,
    CostModelConfig,
    DeploymentSpec,
    InferenceRequest,
    InferenceServer,
    MemoryModel,
    corner_case_batches,
)
from repro.models import get_llm


@pytest.fixture
def llama13() :
    return get_llm("Llama-2-13b")


@pytest.fixture
def a100():
    return parse_profile("1xA100-40GB")


class TestRequest:
    def test_weight_definition(self):
        r = InferenceRequest(request_id=0, input_tokens=100, output_tokens=50, batch_size=2)
        assert r.weight == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceRequest(request_id=0, input_tokens=0, output_tokens=1)
        with pytest.raises(ValueError):
            InferenceRequest(request_id=0, input_tokens=1, output_tokens=0)
        with pytest.raises(ValueError):
            InferenceRequest(request_id=0, input_tokens=1, output_tokens=1, batch_size=0)


class TestCostModel:
    def test_prefill_linear_in_tokens(self, llama13, a100):
        cm = CostModel(llama13, a100)
        t1, t2 = cm.prefill_time(100), cm.prefill_time(1000)
        assert t2 > t1
        # Linear (minus fixed overhead): slope ratio close to 10x.
        overhead = cm.prefill_time(0)
        assert (t2 - overhead) / (t1 - overhead) == pytest.approx(10.0, rel=0.01)

    def test_decode_memory_bound_floor(self, llama13, a100):
        """At batch 1 the decode step is dominated by the weight read."""
        cm = CostModel(llama13, a100)
        floor = llama13.weights_bytes / (
            a100.total_memory_bandwidth_gbps * 1e9 * CostModelConfig().memory_bandwidth_efficiency
        )
        step = cm.decode_step_time(1, 200)
        assert step > floor
        assert step < 3 * floor

    def test_decode_grows_with_kv(self, llama13, a100):
        cm = CostModel(llama13, a100)
        assert cm.decode_step_time(8, 20_000) > cm.decode_step_time(8, 1_000)

    def test_decode_grows_with_batch(self, llama13, a100):
        cm = CostModel(llama13, a100)
        assert cm.decode_step_time(128, 1000) > cm.decode_step_time(1, 1000)

    def test_faster_gpu_is_faster(self, llama13):
        h100 = CostModel(llama13, parse_profile("1xH100-80GB"))
        a100 = CostModel(llama13, parse_profile("1xA100-40GB"))
        assert h100.decode_step_time(8, 5000) < a100.decode_step_time(8, 5000)
        assert h100.prefill_time(1000) < a100.prefill_time(1000)

    def test_tensor_parallel_adds_comm_but_divides_traffic(self, llama13):
        single = CostModel(llama13, parse_profile("1xA100-40GB"))
        quad = CostModel(llama13, parse_profile("4xA100-40GB"))
        # 4-way TP is faster per decode step, but not 4x faster (comm).
        t1 = single.decode_step_time(8, 5000)
        t4 = quad.decode_step_time(8, 5000)
        assert t4 < t1
        assert t4 > t1 / 4

    def test_encoder_decoder_decode_reads_fraction(self, a100):
        flan = get_llm("google/flan-t5-xxl")
        cm = CostModel(flan, a100)
        full_read = flan.weights_bytes / (
            a100.total_memory_bandwidth_gbps * 1e9 * CostModelConfig().memory_bandwidth_efficiency
        )
        assert cm.decode_step_time(1, 0) < full_read + 0.01

    def test_negative_inputs_rejected(self, llama13, a100):
        cm = CostModel(llama13, a100)
        with pytest.raises(ValueError):
            cm.prefill_time(-1)
        with pytest.raises(ValueError):
            cm.decode_step_time(-1, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CostModelConfig(memory_bandwidth_efficiency=0.0)
        with pytest.raises(ValueError):
            CostModelConfig(prefill_compute_efficiency=1.5)


class TestMemoryModel:
    def test_weights_fit(self, llama13):
        assert MemoryModel(llama13, parse_profile("1xA100-40GB")).weights_fit
        assert not MemoryModel(llama13, parse_profile("1xA10-24GB")).weights_fit

    def test_capacity_scales_with_count(self, llama13):
        m1 = MemoryModel(llama13, parse_profile("1xA100-40GB"))
        m2 = MemoryModel(llama13, parse_profile("2xA100-40GB"))
        assert m2.capacity_bytes == pytest.approx(2 * m1.capacity_bytes)

    def test_flash_attention_avoids_quadratic_activations(self):
        profile = parse_profile("1xA100-40GB")
        llama = get_llm("Llama-2-7b")  # flash
        mpt = get_llm("ibm/mpt-7b-instruct2")  # no flash, same size class
        act_llama = MemoryModel(llama, profile).activation_bytes(4000)
        act_mpt = MemoryModel(mpt, profile).activation_bytes(4000)
        assert act_mpt > act_llama

    def test_oom_monotone_in_weight(self, llama13, a100):
        mm = MemoryModel(llama13, a100)
        small = CornerCaseBatch("s", 1, 100, 100)
        huge = CornerCaseBatch("h", 1, 4000, 60_000)
        assert not mm.would_oom(small)
        assert mm.would_oom(huge)

    def test_kv_token_capacity_positive_when_fits(self, llama13, a100):
        assert MemoryModel(llama13, a100).kv_token_capacity() > 0

    def test_corner_cases_cover_weight(self):
        cases = corner_case_batches(10_000)
        names = {c.name for c in cases}
        assert {"single-long-prompt", "single-long-generation", "many-small", "balanced"} <= names
        for c in cases:
            assert c.total_weight <= 10_000

    def test_corner_case_minimum_weight(self):
        with pytest.raises(ValueError):
            corner_case_batches(1)


class TestEngine:
    def _req(self, rid, inp=50, out=20, batch=1):
        return InferenceRequest(request_id=rid, input_tokens=inp, output_tokens=out, batch_size=batch)

    def _engine(self, llm="Llama-2-13b", profile="1xA100-40GB", W=10_000, **kw):
        return ContinuousBatchingEngine(
            get_llm(llm), parse_profile(profile), max_batch_weight=W, **kw
        )

    def test_single_request_lifecycle(self):
        eng = self._engine()
        eng.submit(self._req(0, inp=100, out=10))
        results = []
        while eng.has_work():
            results.extend(eng.step())
        assert len(results) == 1
        r = results[0]
        assert r.ttft > 0
        assert r.finished_at > r.first_token_at
        # 10 tokens: 1 from prefill + 9 decode steps.
        assert eng.stats.decode_steps == 9
        assert eng.stats.tokens_generated == 10

    def test_single_token_request_completes_at_prefill(self):
        eng = self._engine()
        eng.submit(self._req(0, inp=10, out=1))
        results = eng.step()
        assert len(results) == 1
        assert eng.stats.decode_steps == 0

    def test_weight_accounting_returns_to_zero(self):
        eng = self._engine()
        for i in range(5):
            eng.submit(self._req(i, inp=60, out=15, batch=2))
        while eng.has_work():
            eng.step()
        assert eng.batch_weight_in_use == 0
        assert eng.active_requests == 0
        assert eng.stats.requests_completed == 5

    def test_oversized_request_rejected(self):
        eng = self._engine(W=100)
        with pytest.raises(ValueError, match="exceeds"):
            eng.submit(self._req(0, inp=90, out=20))

    def test_batch_weight_respected(self):
        eng = self._engine(W=300)
        for i in range(10):
            eng.submit(self._req(i, inp=50, out=50))  # weight 100 each
        eng.step()  # admission + prefill
        assert eng.batch_weight_in_use <= 300
        assert eng.active_requests <= 3

    def test_queueing_raises_ttft(self):
        """The paper's saturation signature: queued requests wait."""
        eng = self._engine(W=400)
        for i in range(12):
            eng.submit(self._req(i, inp=50, out=50))
        results = []
        while eng.has_work():
            results.extend(eng.step())
        ttfts = sorted(r.ttft for r in results)
        assert ttfts[-1] > 5 * ttfts[0]

    def test_itl_samples_positive(self):
        eng = self._engine()
        eng.submit(self._req(0, inp=20, out=30))
        while eng.has_work():
            eng.step()
        itl = eng.itl_samples()
        assert len(itl) == 29
        assert np.all(itl > 0)

    def test_ttft_samples_for_unfinished_requests(self):
        eng = self._engine()
        eng.submit(self._req(0, inp=20, out=500))
        eng.step()  # prefill only
        ttft, inputs = eng.ttft_samples()
        assert len(ttft) == 1
        assert inputs[0] == 20

    def test_deterministic_given_seed(self):
        def run(seed):
            eng = self._engine(seed=seed)
            for i in range(4):
                eng.submit(self._req(i, out=25))
            out = []
            while eng.has_work():
                out.extend(eng.step())
            return [r.finished_at for r in out]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_kv_conservation(self):
        eng = self._engine()
        for i in range(6):
            eng.submit(self._req(i, inp=40, out=12))
        while eng.has_work():
            eng.step()
        assert eng._kv_tokens == 0

    def test_lookahead_admission_skips_blocked_head(self):
        eng = self._engine(W=1000)
        eng.submit(self._req(0, inp=400, out=400))  # weight 800
        eng.step()  # admit + prefill the big one
        eng.submit(self._req(1, inp=400, out=400))  # doesn't fit now (800+800)
        eng.submit(self._req(2, inp=50, out=50))  # weight 100 fits
        eng.step()
        assert eng.active_requests == 2  # small one jumped the queue
        assert eng.queue_depth == 1

    def test_client_batch_size_multiplies_tokens(self):
        eng = self._engine()
        eng.submit(self._req(0, inp=30, out=10, batch=3))
        while eng.has_work():
            eng.step()
        assert eng.stats.tokens_generated == 30

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            self._engine(W=1)
        with pytest.raises(ValueError):
            self._engine(max_batch_requests=0)


class TestServer:
    def test_server_rejects_oversized_model(self):
        spec = DeploymentSpec(profile=parse_profile("1xA10-24GB"), max_batch_weight=5000)
        with pytest.raises(MemoryError, match="does not fit"):
            InferenceServer(get_llm("Llama-2-13b"), spec)

    def test_default_cpu_rule(self):
        spec = DeploymentSpec(profile=parse_profile("4xT4-16GB"), max_batch_weight=5000)
        assert spec.resolved_cpu_cores() == 8

    def test_explicit_cpu_override(self):
        spec = DeploymentSpec(
            profile=parse_profile("1xT4-16GB"), max_batch_weight=5000, cpu_cores=7
        )
        assert spec.resolved_cpu_cores() == 7

    def test_startup_time_scales_with_weights(self):
        p = parse_profile("1xH100-80GB")
        small = InferenceServer(
            get_llm("google/flan-t5-xl"), DeploymentSpec(profile=p, max_batch_weight=9000)
        )
        big = InferenceServer(
            get_llm("google/flan-ul2"), DeploymentSpec(profile=p, max_batch_weight=9000)
        )
        assert big.startup_time_s > small.startup_time_s

    def test_spec_validation(self):
        p = parse_profile("1xT4-16GB")
        with pytest.raises(ValueError):
            DeploymentSpec(profile=p, max_batch_weight=1)
        with pytest.raises(ValueError):
            DeploymentSpec(profile=p, max_batch_weight=100, memory_gb=0)


class TestFastOracleParity:
    """The vectorized decode kernel (``fast=True``, the default) must
    be bit-identical to the scalar golden-oracle loop (``fast=False``):
    same step times, same completion timestamps, same counters."""

    def _run(self, fast):
        engine = ContinuousBatchingEngine(
            get_llm("Llama-2-13b"), parse_profile("1xA100-40GB"),
            max_batch_weight=6_000, seed=42, fast=fast,
        )
        rng = np.random.default_rng(7)
        requests = [
            InferenceRequest(
                request_id=i,
                input_tokens=int(rng.integers(20, 400)),
                output_tokens=int(rng.integers(1, 120)),
                batch_size=int(rng.integers(1, 3)),
            )
            for i in range(40)
        ]
        results = []
        # Interleave arrivals with steps so admission, queueing and the
        # failed-admission memo are all exercised mid-flight.
        for request in requests:
            engine.submit(request)
            results.extend(engine.step())
        while engine.has_work():
            results.extend(engine.step())
        return engine, results

    def test_completions_bit_identical(self):
        fast_engine, fast_results = self._run(fast=True)
        oracle_engine, oracle_results = self._run(fast=False)
        assert len(fast_results) == len(oracle_results) == 40
        for mine, ref in zip(fast_results, oracle_results):
            assert mine.request.request_id == ref.request.request_id
            assert mine.submitted_at == ref.submitted_at
            assert mine.first_token_at == ref.first_token_at
            assert mine.finished_at == ref.finished_at
        assert fast_engine.stats == oracle_engine.stats
        assert fast_engine.time == oracle_engine.time
        np.testing.assert_array_equal(
            fast_engine.metrics.itl_samples(),
            oracle_engine.metrics.itl_samples(),
        )
