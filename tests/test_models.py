"""Tests for the LLM architecture catalog."""

import dataclasses

import pytest

from repro.models import LLM_CATALOG, get_llm, list_llms


class TestCatalog:
    def test_ten_llms_as_in_table3(self):
        assert len(LLM_CATALOG) == 10

    def test_lookup_roundtrip(self):
        for name in list_llms():
            assert get_llm(name).name == name

    def test_unknown_llm_raises(self):
        with pytest.raises(KeyError, match="known LLMs"):
            get_llm("gpt-5")

    def test_parameter_range_matches_paper(self):
        sizes = [m.n_params_billion for m in LLM_CATALOG.values()]
        assert min(sizes) == 3.0  # flan-t5-xl
        assert max(sizes) == 20.0  # flan-ul2 / gpt-neox-20b

    def test_encoder_decoder_models(self):
        enc_dec = {n for n, m in LLM_CATALOG.items() if m.is_encoder_decoder}
        assert enc_dec == {
            "google/flan-t5-xl",
            "google/flan-t5-xxl",
            "google/flan-ul2",
            "bigscience/mt0-xxl",
        }

    def test_flash_attention_models(self):
        flash = {n for n, m in LLM_CATALOG.items() if m.uses_flash_attention}
        assert flash == {
            "Llama-2-7b",
            "Llama-2-13b",
            "EleutherAI/gpt-neox-20b",
            "bigcode/starcoder",
        }

    def test_tp_unsupported_models(self):
        no_tp = {
            n for n, m in LLM_CATALOG.items() if not m.tgis_tensor_parallel_supported
        }
        assert no_tp == {
            "ibm/mpt-7b-instruct2",
            "bigscience/mt0-xxl",
            "Salesforce/codegen2-16B",
        }

    def test_starcoder_multi_query_attention(self):
        assert get_llm("bigcode/starcoder").n_kv_heads == 1


class TestLLMSpec:
    def test_weights_bytes_fp16(self):
        llm = get_llm("Llama-2-13b")
        assert llm.weights_bytes == pytest.approx(26e9)

    def test_kv_bytes_per_token(self):
        llm = get_llm("Llama-2-13b")
        # 2 * layers * kv_heads * head_dim * 2 bytes
        expected = 2 * 40 * 40 * (5120 // 40) * 2
        assert llm.kv_bytes_per_token == expected

    def test_mqa_kv_much_smaller(self):
        starcoder = get_llm("bigcode/starcoder")
        neox = get_llm("EleutherAI/gpt-neox-20b")
        assert starcoder.kv_bytes_per_token < neox.kv_bytes_per_token / 10

    def test_flops_per_token(self):
        llm = get_llm("Llama-2-7b")
        assert llm.flops_per_token == pytest.approx(14e9)

    def test_head_dim_consistency(self):
        for llm in LLM_CATALOG.values():
            assert llm.head_dim * llm.n_heads == llm.d_model

    def test_feature_dict_covers_paper_features(self):
        feats = get_llm("google/flan-t5-xl").feature_dict()
        for key in (
            "llm_n_params_billion",
            "llm_is_encoder_decoder",
            "llm_n_layers",
            "llm_n_heads",
            "llm_n_positions",
            "llm_vocab_size",
            "llm_flash_attention",
            "llm_rel_attn_max_distance",
            "llm_rel_attn_num_buckets",
            "llm_dtype_bytes",
        ):
            assert key in feats

    def test_invalid_dtype_rejected(self):
        base = get_llm("Llama-2-7b")
        with pytest.raises(ValueError, match="dtype"):
            dataclasses.replace(base, dtype="int4")

    def test_invalid_kv_heads_rejected(self):
        base = get_llm("Llama-2-7b")
        with pytest.raises(ValueError, match="kv_heads"):
            dataclasses.replace(base, n_kv_heads=0)

    def test_nonpositive_params_rejected(self):
        base = get_llm("Llama-2-7b")
        with pytest.raises(ValueError, match="n_params"):
            dataclasses.replace(base, n_params_billion=0.0)
