"""Tests for declarative scenario specs and their CLI entry points."""

import json

import pytest

from repro.cli import main
from repro.simulation import (
    AdmissionController,
    BurstyTraffic,
    ClosedLoopTraffic,
    ClusterSimulator,
    DiurnalTraffic,
    FleetSimulator,
    PoissonTraffic,
    ReplayTraffic,
    ScenarioSpec,
    load_scenario,
)

REPLAY_ARRIVALS = [[0.0, 16, 8], [0.5, 64, 32], [1.0, 2048, 256], [2.0, 32, 8]]


def fleet_spec(**overrides):
    spec = {
        "name": "fleet-test",
        "duration_s": 15.0,
        "llm": "Llama-2-7b",
        "profile": "1xA10-24GB",
        "pods": 2,
        "workload": {"requests": 3000},
        "traffic": {"kind": "replay", "arrivals": REPLAY_ARRIVALS},
        "router": "weight-aware",
    }
    spec.update(overrides)
    return spec


def cluster_spec(**overrides):
    spec = {
        "name": "cluster-test",
        "duration_s": 15.0,
        "llm": "Llama-2-7b",
        "profile": "1xA10-24GB",
        "pods": 1,
        "workload": {"requests": 3000},
        "capacity": {"A10-24GB": 3},
        "tenants": [
            {"name": "chat", "traffic": {"kind": "poisson", "rate_per_s": 1.0}},
            {
                "name": "batch",
                "traffic": {"kind": "replay", "arrivals": REPLAY_ARRIVALS},
            },
        ],
    }
    spec.update(overrides)
    return spec


class TestValidation:
    def test_requires_duration(self):
        with pytest.raises(ValueError, match="duration_s"):
            ScenarioSpec.from_dict({"name": "x", "traffic": {"kind": "poisson"}})

    def test_rejects_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="unknown key.*frobnicate"):
            ScenarioSpec.from_dict(fleet_spec(frobnicate=1))

    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            ScenarioSpec.from_dict([1, 2, 3])

    def test_requires_traffic_kind(self):
        with pytest.raises(ValueError, match="traffic mapping with a 'kind'"):
            ScenarioSpec.from_dict(fleet_spec(traffic={"rate_per_s": 1.0}))

    def test_rejects_unknown_traffic_kind(self):
        with pytest.raises(ValueError, match="unknown traffic kind"):
            ScenarioSpec.from_dict(fleet_spec(traffic={"kind": "warp-drive"}))

    def test_rejects_unknown_traffic_key(self):
        with pytest.raises(ValueError, match="traffic\\[poisson\\]"):
            ScenarioSpec.from_dict(
                fleet_spec(traffic={"kind": "poisson", "rate_per_s": 1, "users": 2})
            )

    def test_closed_needs_users(self):
        with pytest.raises(ValueError, match="needs 'users'"):
            ScenarioSpec.from_dict(fleet_spec(traffic={"kind": "closed"}))

    def test_rate_traffic_needs_rate(self):
        with pytest.raises(ValueError, match="needs 'rate_per_s'"):
            ScenarioSpec.from_dict(fleet_spec(traffic={"kind": "bursty"}))

    def test_replay_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            ScenarioSpec.from_dict(fleet_spec(traffic={"kind": "replay"}))
        with pytest.raises(ValueError, match="exactly one"):
            ScenarioSpec.from_dict(
                fleet_spec(
                    traffic={
                        "kind": "replay",
                        "path": "x.csv",
                        "arrivals": REPLAY_ARRIVALS,
                    }
                )
            )

    def test_rejects_unknown_router(self):
        with pytest.raises(ValueError, match="unknown router"):
            ScenarioSpec.from_dict(fleet_spec(router="random"))

    def test_rejects_unknown_router_kwargs(self):
        with pytest.raises(ValueError, match="router\\[weight-aware\\].*warmupp"):
            ScenarioSpec.from_dict(
                fleet_spec(router={"kind": "weight-aware", "warmupp": 10})
            )
        # Valid constructor kwargs pass and reach the router.
        spec = ScenarioSpec.from_dict(
            fleet_spec(router={"kind": "weight-aware", "warmup": 10})
        )
        assert spec.build_fleet().router.warmup == 10

    def test_rejects_unknown_autoscaler_policy(self):
        with pytest.raises(ValueError, match="unknown autoscaler policy"):
            ScenarioSpec.from_dict(fleet_spec(autoscaler={"policy": "psychic"}))

    def test_replay_llm_key_requires_trace_source(self):
        with pytest.raises(ValueError, match="only applies to a 'trace'"):
            ScenarioSpec.from_dict(
                fleet_spec(
                    traffic={
                        "kind": "replay",
                        "arrivals": REPLAY_ARRIVALS,
                        "llm": "Llama-2-7b",
                    }
                )
            )

    def test_cluster_needs_capacity(self):
        spec = cluster_spec()
        del spec["capacity"]
        with pytest.raises(ValueError, match="capacity"):
            ScenarioSpec.from_dict(spec)

    def test_cluster_rejects_duplicate_tenants(self):
        spec = cluster_spec()
        spec["tenants"].append(dict(spec["tenants"][0]))
        with pytest.raises(ValueError, match="duplicate tenant names"):
            ScenarioSpec.from_dict(spec)

    def test_tenant_needs_name(self):
        spec = cluster_spec()
        del spec["tenants"][0]["name"]
        with pytest.raises(ValueError, match="tenant needs a name"):
            ScenarioSpec.from_dict(spec)

    def test_reports_all_errors_at_once(self):
        spec = fleet_spec(
            duration_s=-1.0,
            traffic={"kind": "poisson"},
            router="nope",
        )
        with pytest.raises(ValueError) as exc_info:
            ScenarioSpec.from_dict(spec)
        msg = str(exc_info.value)
        assert "duration_s must be positive" in msg
        assert "needs 'rate_per_s'" in msg
        assert "unknown router" in msg
        assert msg.count(";") >= 2


FAULTS_SECTION = {
    "seed": 3,
    "zones": 2,
    "events": [
        {"kind": "crash", "time_s": 4.0, "restart_delay_s": 2.0},
        {"kind": "slowdown", "time_s": 6.0, "duration_s": 3.0, "factor": 2.0},
    ],
}


class TestFaultsSection:
    def test_rejects_unknown_faults_key(self):
        with pytest.raises(ValueError, match="scenario faults.*bogus"):
            ScenarioSpec.from_dict(
                fleet_spec(faults={"events": [], "bogus": 1})
            )

    def test_rejects_unknown_fault_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ScenarioSpec.from_dict(
                fleet_spec(faults={"events": [{"kind": "meteor", "time_s": 1}]})
            )

    def test_rejects_kind_mismatched_keys(self):
        # 'factor' belongs to slowdown events, not crashes.
        with pytest.raises(ValueError, match="event\\[0\\].*factor"):
            ScenarioSpec.from_dict(
                fleet_spec(
                    faults={
                        "events": [{"kind": "crash", "time_s": 1, "factor": 2}]
                    }
                )
            )

    def test_event_needs_time(self):
        with pytest.raises(ValueError, match="time_s"):
            ScenarioSpec.from_dict(
                fleet_spec(faults={"events": [{"kind": "crash"}]})
            )

    def test_bad_event_flows_through_multi_error(self):
        spec = fleet_spec(
            duration_s=-2.0,
            faults={"events": [{"kind": "crash", "time_s": 1, "mode": "warp"}]},
        )
        with pytest.raises(ValueError) as exc_info:
            ScenarioSpec.from_dict(spec)
        msg = str(exc_info.value)
        assert "duration_s must be positive" in msg
        assert "unknown fault mode" in msg

    def test_build_fleet_arms_injector(self):
        spec = ScenarioSpec.from_dict(fleet_spec(faults=FAULTS_SECTION))
        fleet = spec.build_fleet()
        injector = fleet.faults
        assert injector is not None
        kinds = [s.kind for s in injector.specs]
        assert kinds == ["crash", "slowdown"]
        # Zones thread through to the fleet's serial → zone mapping.
        assert {fleet.pod_zone(i) for i in range(len(fleet.pods))} == {
            "zone-0",
            "zone-1",
        }

    def test_fleet_run_records_fault_events(self):
        spec = ScenarioSpec.from_dict(fleet_spec(faults=FAULTS_SECTION))
        res = spec.run()
        assert [e.kind for e in res.fault_events[:1]] == ["crash"]
        res.verify_conservation()  # raises on any leaked request

    def test_scenario_seed_drives_injection(self):
        base = ScenarioSpec.from_dict(fleet_spec(faults=FAULTS_SECTION))
        again = ScenarioSpec.from_dict(fleet_spec(faults=FAULTS_SECTION))
        a = [(e.time_s, e.kind, e.pod) for e in base.run().fault_events]
        b = [(e.time_s, e.kind, e.pod) for e in again.run().fault_events]
        assert a == b

    def test_tenants_inherit_top_level_faults(self):
        spec = ScenarioSpec.from_dict(cluster_spec(faults=FAULTS_SECTION))
        sim = spec.build_cluster()
        for group in sim.tenants:
            assert group.fleet.faults is not None
            zones = {
                group.fleet.pod_zone(i) for i in range(len(group.fleet.pods))
            }
            assert zones <= {"zone-0", "zone-1"}

    def test_tenant_override_beats_top_level(self):
        spec_dict = cluster_spec(faults=FAULTS_SECTION)
        spec_dict["tenants"][0]["faults"] = {"events": []}
        sim = ScenarioSpec.from_dict(spec_dict).build_cluster()
        by_name = {g.name: g for g in sim.tenants}
        assert by_name["chat"].fleet.faults is None
        assert by_name["batch"].fleet.faults is not None

    def test_bad_tenant_faults_names_tenant(self):
        spec_dict = cluster_spec()
        spec_dict["tenants"][0]["faults"] = {
            "events": [{"kind": "crash", "time_s": -1}]
        }
        with pytest.raises(ValueError, match="tenant 'chat' faults"):
            ScenarioSpec.from_dict(spec_dict)


class TestBuildTraffic:
    @pytest.mark.parametrize(
        "traffic, expected",
        [
            ({"kind": "closed", "users": 4}, ClosedLoopTraffic),
            ({"kind": "poisson", "rate_per_s": 1.0}, PoissonTraffic),
            ({"kind": "diurnal", "rate_per_s": 1.0, "period_s": 60}, DiurnalTraffic),
            ({"kind": "bursty", "rate_per_s": 2.0, "mean_on_s": 5}, BurstyTraffic),
            ({"kind": "replay", "arrivals": REPLAY_ARRIVALS}, ReplayTraffic),
        ],
    )
    def test_kinds(self, traffic, expected):
        spec = ScenarioSpec.from_dict(fleet_spec(traffic=traffic))
        assert isinstance(spec.build_traffic(), expected)

    def test_replay_transforms(self):
        spec = ScenarioSpec.from_dict(
            fleet_spec(
                traffic={
                    "kind": "replay",
                    "arrivals": REPLAY_ARRIVALS,
                    "bootstrap": {"n": 50, "rate_per_s": 2.0, "seed": 5},
                }
            )
        )
        traffic = spec.build_traffic()
        assert traffic.remaining == 50
        # Seeded: building twice replays the identical resample.
        again = spec.build_traffic()
        assert traffic.log.times_s.tolist() == again.log.times_s.tolist()


class TestBuildAndRun:
    def test_build_fleet(self):
        spec = ScenarioSpec.from_dict(
            fleet_spec(
                admission={"mode": "shed", "slo_ttft_ms": 2000},
                autoscaler={"policy": "threshold", "max_pods": 4},
            )
        )
        fleet = spec.build_fleet()
        assert isinstance(fleet, FleetSimulator)
        assert len(fleet.pods) == 2
        assert isinstance(fleet.router, AdmissionController)
        assert fleet.autoscaler is not None

    def test_spec_slo_inherited_by_admission_and_threshold(self):
        # One spec-level SLO drives shedding, threshold scaling and
        # reporting — like the CLI's single --slo-ttft-ms.
        spec = ScenarioSpec.from_dict(
            fleet_spec(
                slo_ttft_ms=500,
                admission={"mode": "shed"},
                autoscaler={"policy": "threshold"},
            )
        )
        fleet = spec.build_fleet()
        assert fleet.router.slo_p95_ttft_s == pytest.approx(0.5)
        assert fleet.autoscaler.policy.slo_p95_ttft_s == pytest.approx(0.5)
        # An explicit section value still wins.
        spec = ScenarioSpec.from_dict(
            fleet_spec(slo_ttft_ms=500, admission={"mode": "shed",
                                                   "slo_ttft_ms": 900})
        )
        assert spec.build_fleet().router.slo_p95_ttft_s == pytest.approx(0.9)
        with pytest.raises(ValueError, match="build_cluster"):
            ScenarioSpec.from_dict(cluster_spec()).build_fleet()

    def test_build_cluster_inherits_defaults(self):
        spec = ScenarioSpec.from_dict(cluster_spec(router="join-shortest-queue"))
        sim = spec.build_cluster()
        assert isinstance(sim, ClusterSimulator)
        assert [g.name for g in sim.tenants] == ["chat", "batch"]
        for group in sim.tenants:
            assert group.profile == "1xA10-24GB"
            assert group.fleet.router.name == "join-shortest-queue"
        with pytest.raises(ValueError, match="build_fleet"):
            ScenarioSpec.from_dict(fleet_spec()).build_cluster()

    def test_run_fleet_deterministic(self):
        spec = ScenarioSpec.from_dict(fleet_spec())
        a = spec.run()
        b = spec.run()
        assert a.arrivals == len(REPLAY_ARRIVALS)
        assert a.router == "weight-aware"
        assert a.requests_completed == b.requests_completed
        assert a.ttft.median_s == b.ttft.median_s

    def test_run_cluster(self):
        res = ScenarioSpec.from_dict(cluster_spec()).run()
        assert res.tenants == ["chat", "batch"]
        assert res.results["batch"].arrivals == len(REPLAY_ARRIVALS)


class TestCloudSection:
    def test_cloud_needs_tenants(self):
        with pytest.raises(ValueError, match="a cloud section needs tenants"):
            ScenarioSpec.from_dict(fleet_spec(cloud={"mode": "spot"}))

    def test_rejects_unknown_cloud_key(self):
        with pytest.raises(ValueError, match="unknown key.*cloud.*modez"):
            ScenarioSpec.from_dict(cluster_spec(cloud={"modez": "spot"}))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown cloud mode"):
            ScenarioSpec.from_dict(cluster_spec(cloud={"mode": "prepaid"}))

    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError, match="max_cloud_pods must be >= 0"):
            ScenarioSpec.from_dict(cluster_spec(cloud={"max_cloud_pods": -1}))
        with pytest.raises(ValueError, match="quota for A10-24GB must be >= 0"):
            ScenarioSpec.from_dict(
                cluster_spec(cloud={"quota": {"A10-24GB": -2}})
            )

    def test_catalog_entry_needs_every_price(self):
        with pytest.raises(
            ValueError, match="cloud catalog\\[A10-24GB\\] needs a spot price"
        ):
            ScenarioSpec.from_dict(
                cluster_spec(
                    cloud={
                        "catalog": {
                            "A10-24GB": {"on_demand": 1.0, "reserved": 0.5}
                        }
                    }
                )
            )

    def test_build_cloud_defaults(self):
        spec = ScenarioSpec.from_dict(cluster_spec())
        assert spec.build_cloud() is None

    def test_build_cloud_applies_quota_and_mode(self):
        spec = ScenarioSpec.from_dict(
            cluster_spec(
                cloud={
                    "mode": "spot",
                    "max_cloud_pods": 4,
                    "quota": {"A10-24GB": 2},
                    "seed": 7,
                }
            )
        )
        ledger, policy = spec.build_cloud()
        assert policy.mode == "spot"
        assert policy.max_cloud_pods == 4
        assert ledger.seed == 7
        assert ledger.available_gpus("A10-24GB") == 2

    def test_custom_catalog_prices_win(self):
        spec = ScenarioSpec.from_dict(
            cluster_spec(
                cloud={
                    "catalog": {
                        "A10-24GB": {
                            "on_demand": 2.0, "spot": 0.0, "reserved": 1.0
                        }
                    }
                }
            )
        )
        ledger, _ = spec.build_cloud()
        profile = ledger.catalog.instances["A10-24GB"]
        assert profile.on_demand == 2.0
        assert profile.spot == 0.0  # zero-price entries are legal

    def test_run_cluster_with_cloud(self):
        spec_dict = cluster_spec(
            capacity={"A10-24GB": 2},
            cloud={"mode": "on-demand", "max_cloud_pods": 2},
        )
        for tenant in spec_dict["tenants"]:
            tenant["autoscaler"] = {"max_pods": 3}
        res = ScenarioSpec.from_dict(spec_dict).run()
        assert res.cloud_catalog is not None
        # Identical spec, identical bill: the ledger seed comes from the
        # scenario seed so repeated runs are deterministic.
        again = ScenarioSpec.from_dict(spec_dict).run()
        assert [e.__dict__ for e in res.cloud_events] == [
            e.__dict__ for e in again.cloud_events
        ]


class TestLoad:
    def test_load_json(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(fleet_spec()))
        spec = load_scenario(str(path))
        assert spec.name == "fleet-test"
        assert not spec.is_cluster

    def test_load_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "scenario.yaml"
        path.write_text(yaml.safe_dump(fleet_spec()))
        spec = ScenarioSpec.load(str(path))
        assert spec.name == "fleet-test"
        assert spec.traffic["kind"] == "replay"

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            ScenarioSpec.load(str(path))

    def test_load_error_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(fleet_spec(duration_s=-5.0)))
        with pytest.raises(ValueError, match="broken.json.*duration_s"):
            ScenarioSpec.load(str(path))


class TestScenarioCLI:
    def test_simulate_scenario(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(fleet_spec()))
        rc = main(["simulate", "--scenario", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay traffic, weight-aware routing" in out
        assert "Llama-2-7b on 2x 1xA10-24GB" in out

    def test_simulate_scenario_rejects_cluster_spec(self, tmp_path, capsys):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(cluster_spec()))
        rc = main(["simulate", "--scenario", str(path)])
        assert rc == 2
        assert "cluster-sim --scenario" in capsys.readouterr().err

    def test_simulate_scenario_missing_file(self, capsys):
        rc = main(["simulate", "--scenario", "no-such-scenario.json"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_cluster_sim_scenario(self, tmp_path, capsys):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(cluster_spec()))
        rc = main(["cluster-sim", "--scenario", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 tenants on one clock" in out
        assert "Peak GPU occupancy" in out

    def test_cluster_sim_scenario_json_output(self, tmp_path, capsys):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(cluster_spec()))
        rc = main(["cluster-sim", "--scenario", str(path), "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert [t["name"] for t in data["tenants"]] == ["chat", "batch"]
        assert data["capacity"] == {"A10-24GB": 3}

    def test_cluster_sim_scenario_rejects_fleet_spec(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(fleet_spec()))
        rc = main(["cluster-sim", "--scenario", str(path)])
        assert rc == 2
        assert "simulate --scenario" in capsys.readouterr().err
