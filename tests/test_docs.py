"""The docs layer is load-bearing: links resolve, snippets execute.

Mirrors the CI docs job inside the tier-1 suite so a broken doc link or
a drifted scenario snippet fails locally too, not just in CI.
"""

import doctest
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist():
    for name in ("architecture.md", "scenarios.md", "cli.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"


def test_intra_repo_links_resolve():
    check_docs = _load_check_docs()
    problems = []
    for doc in check_docs.doc_files():
        problems.extend(check_docs.broken_links(doc))
    assert not problems, "\n".join(problems)


def test_link_checker_catches_breakage(tmp_path):
    check_docs = _load_check_docs()
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[ok](doc.md) [web](https://example.com) [bad](no-such-file.md)"
    )
    problems = check_docs.broken_links(doc)
    assert len(problems) == 1 and "no-such-file.md" in problems[0]


def test_scenario_snippets_execute():
    """Every ``>>>`` snippet in docs/scenarios.md runs and matches."""
    failures, tests = doctest.testfile(
        str(REPO_ROOT / "docs" / "scenarios.md"),
        module_relative=False,
        verbose=False,
    )
    assert tests > 0, "docs/scenarios.md lost its executable snippets"
    assert failures == 0


def test_check_docs_main_exits_clean(capsys):
    check_docs = _load_check_docs()
    assert check_docs.main() == 0
    assert "docs OK" in capsys.readouterr().out


if __name__ == "__main__":
    sys.exit(0)
