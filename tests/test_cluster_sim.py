"""Tests for the multi-tenant shared-clock cluster co-simulation."""

import pytest

from repro.cluster import Deployment, Placement, ScheduleResult
from repro.hardware import aws_like_pricing, parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    ClusterInventory,
    ClusterSimulator,
    FleetSimulator,
    LeastLoadedRouter,
    PoissonTraffic,
    RequestSource,
    ScaleEvent,
    TenantGroup,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-80GB")
WEIGHT = 20_000


def _factory(seed):
    def make(serial):
        return ContinuousBatchingEngine(
            LLM, PROFILE, max_batch_weight=WEIGHT, seed=spawn_seed(seed, "pod", serial)
        )

    return make


def _scaler(max_pods=4, interval=10.0):
    return Autoscaler(
        ThresholdPolicy(slo_p95_ttft_s=1.0),
        AutoscaleConfig(
            decision_interval_s=interval,
            max_pods=max_pods,
            cold_start_s=5.0,
            metrics_window_s=20.0,
        ),
    )


def _fleet(generator, name, rate, seed, autoscaler=None, n_pods=1):
    factory = _factory(seed)
    source = RequestSource(generator, derive_rng(seed, "cluster-test", name), WEIGHT)
    return FleetSimulator(
        [factory(i) for i in range(n_pods)],
        PoissonTraffic(rate, rng=derive_rng(seed, "cluster-traffic", name)),
        LeastLoadedRouter(),
        source,
        autoscaler=autoscaler,
        pod_factory=factory,
    )


def _contended_cluster(generator, capacity=3, duration=90.0):
    """Two tenants whose combined asks exceed a small inventory."""
    tenants = [
        TenantGroup(
            "quiet",
            _fleet(generator, "quiet", 1.0, 1, autoscaler=_scaler(max_pods=3)),
            PROFILE.name,
            slo_p95_ttft_s=5.0,
        ),
        TenantGroup(
            "noisy",
            _fleet(generator, "noisy", 8.0, 2, autoscaler=_scaler(max_pods=6)),
            PROFILE.name,
        ),
    ]
    inventory = ClusterInventory(capacity={PROFILE.gpu.name: capacity})
    sim = ClusterSimulator(tenants, inventory)
    return sim, sim.run(duration_s=duration)


class TestInventoryLedger:
    def test_attributed_allocations_are_logged(self):
        inv = ClusterInventory(capacity={"A100-40GB": 8})
        inv.allocate("2xA100-40GB", 2, tenant="a", time_s=5.0, reason="scale-up")
        inv.release("2xA100-40GB", 1, tenant="a", time_s=9.0, reason="scale-down")
        assert [(e.delta, e.reason) for e in inv.events] == [
            (4, "scale-up"),
            (-2, "scale-down"),
        ]
        assert inv.events[0].gpu == "A100-40GB"
        assert inv.events[1].time_s == 9.0

    def test_anonymous_allocations_are_not_logged(self):
        # The packing search churns allocate/release; only clock-aware,
        # tenant-attributed calls belong in the event log.
        inv = ClusterInventory(capacity={"T4-16GB": 4})
        inv.allocate("1xT4-16GB", 2)
        inv.release("1xT4-16GB", 2)
        assert inv.events == []

    def test_fillable_pods(self):
        inv = ClusterInventory(capacity={"A100-40GB": 7})
        assert inv.fillable_pods("2xA100-40GB") == 3
        inv.allocate("2xA100-40GB", 3)
        assert inv.fillable_pods("2xA100-40GB") == 0
        assert inv.fillable_pods("1xA100-40GB") == 1


class TestScaleEventConstraints:
    def test_denied_event_direction_uses_the_ask(self):
        denied = ScaleEvent(10.0, 2, 2, "threshold", requested=4, constraint="denied")
        assert denied.direction == "up"
        assert denied.denied and not denied.clipped
        clipped = ScaleEvent(10.0, 2, 3, "threshold", requested=4, constraint="clipped")
        assert clipped.clipped and not clipped.denied

    def test_unconstrained_event_unchanged(self):
        up = ScaleEvent(10.0, 2, 3, "threshold")
        assert up.direction == "up" and not up.denied and not up.clipped


class TestSingleTenantEquivalence:
    def test_one_tenant_cluster_matches_standalone_fleet(self, generator):
        """A 1-tenant cluster with ample inventory IS FleetSimulator.run."""
        standalone = _fleet(
            generator, "solo", 6.0, 3, autoscaler=_scaler()
        ).run(duration_s=60.0, keep_samples=False)
        clustered_fleet = _fleet(generator, "solo", 6.0, 3, autoscaler=_scaler())
        sim = ClusterSimulator(
            [TenantGroup("solo", clustered_fleet, PROFILE.name)],
            ClusterInventory(capacity={PROFILE.gpu.name: 64}),
        )
        res = sim.run(duration_s=60.0)
        clustered = res.results["solo"]
        assert clustered.arrivals == standalone.arrivals
        assert clustered.tokens_generated == standalone.tokens_generated
        assert clustered.requests_completed == standalone.requests_completed
        assert clustered.ttft.median_s == standalone.ttft.median_s
        assert clustered.ttft.p95_s == standalone.ttft.p95_s
        assert clustered.itl.median_s == standalone.itl.median_s
        assert clustered.pod_seconds == standalone.pod_seconds
        assert clustered.scale_events == standalone.scale_events
        res.verify_conservation()


class TestContention:
    @pytest.fixture(scope="class")
    def contended(self, generator):
        return _contended_cluster(generator)

    def test_denied_or_clipped_events_appear(self, contended):
        _, res = contended
        constrained = res.contended_scale_events()
        assert constrained, "expected at least one denied/clipped scale-up"
        for tenant, event in constrained:
            assert tenant in res.tenants
            assert event.constraint in ("denied", "clipped")
            assert event.requested is not None
            assert event.requested > event.to_pods
            assert event.direction == "up"

    def test_conservation_under_contention(self, contended):
        _, res = contended
        res.verify_conservation()

    def test_occupancy_never_exceeds_capacity(self, contended):
        _, res = contended
        gpu = PROFILE.gpu.name
        times, used = res.occupancy_series(gpu)
        assert used.max() <= res.capacity[gpu]
        assert used.min() >= 0
        assert res.peak_occupancy()[gpu] == used.max()

    def test_contention_saturates_inventory(self, contended):
        _, res = contended
        gpu = PROFILE.gpu.name
        assert res.peak_occupancy()[gpu] == res.capacity[gpu]

    def test_cost_attribution(self, contended):
        _, res = contended
        pricing = aws_like_pricing()
        cost = res.cost(pricing)
        rate = pricing.pod_cost(PROFILE)
        for tenant in res.tenants:
            expected = res.results[tenant].pod_seconds / 3600.0 * rate
            assert cost[tenant] == pytest.approx(expected)
        assert res.total_cost(pricing) == pytest.approx(sum(cost.values()))

    def test_slo_reporting(self, contended):
        _, res = contended
        assert res.meets_slo("noisy") is None  # no SLO declared
        assert res.meets_slo("quiet") == (
            res.results["quiet"].ttft.p95_s <= 5.0
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_invariants_sweep_seeds(self, generator, seed):
        """Conservation + ledger sanity hold across contention patterns."""
        tenants = [
            TenantGroup(
                "a",
                _fleet(generator, "a", 4.0, seed, autoscaler=_scaler(max_pods=4)),
                PROFILE.name,
            ),
            TenantGroup(
                "b",
                _fleet(
                    generator, "b", 4.0, seed + 100, autoscaler=_scaler(max_pods=4)
                ),
                PROFILE.name,
            ),
        ]
        sim = ClusterSimulator(
            tenants, ClusterInventory(capacity={PROFILE.gpu.name: 3})
        )
        res = sim.run(duration_s=60.0)
        res.verify_conservation()
        _, used = res.occupancy_series(PROFILE.gpu.name)
        assert used.max() <= 3

    def test_deterministic(self, generator, contended):
        sim_a, res_a = contended
        _, res_b = _contended_cluster(generator)
        for tenant in res_a.tenants:
            assert (
                res_a.results[tenant].scale_events
                == res_b.results[tenant].scale_events
            )
            assert res_a.results[tenant].arrivals == res_b.results[tenant].arrivals
        assert res_a.events == res_b.events


class TestGoldenPin:
    """The co-simulation interface is regression-gated like the PR 1
    single-pod path: these exact per-tenant numbers were recorded from
    the scenario below at the session fixtures' seeds. A refactor of the
    cluster loop, the fleet co-simulation interface, or the ledger that
    changes any of them is a behaviour change, not a cleanup — re-pin
    deliberately or fix the regression."""

    @pytest.fixture(scope="class")
    def pinned(self, generator):
        tenants = [
            TenantGroup(
                "quiet",
                _fleet(generator, "quiet", 1.0, 1, autoscaler=_scaler(max_pods=3)),
                PROFILE.name,
                slo_p95_ttft_s=5.0,
            ),
            TenantGroup(
                "noisy",
                _fleet(generator, "noisy", 8.0, 2, autoscaler=_scaler(max_pods=6)),
                PROFILE.name,
            ),
        ]
        sim = ClusterSimulator(
            tenants, ClusterInventory(capacity={PROFILE.gpu.name: 3})
        )
        return sim.run(duration_s=60.0)

    def test_quiet_tenant_pinned(self, pinned):
        quiet = pinned.results["quiet"]
        assert quiet.arrivals == 59
        assert quiet.shed == 0
        assert quiet.requests_completed == 49
        assert quiet.ttft.p95_s == 0.3945801254818189
        assert quiet.pod_seconds == 60.00551579467534
        assert quiet.scale_events == []

    def test_noisy_tenant_pinned(self, pinned):
        noisy = pinned.results["noisy"]
        assert noisy.arrivals == 442
        assert noisy.shed == 0
        assert noisy.requests_completed == 191
        assert noisy.ttft.p95_s == 28.758722939711756
        assert noisy.pod_seconds == 110.0735820359907
        assert len(noisy.scale_events) == 5
        assert sum(1 for e in noisy.scale_events if e.denied) == 4
        assert sum(1 for e in noisy.scale_events if e.clipped) == 0

    def test_cost_and_ledger_pinned(self, pinned):
        cost = pinned.cost(aws_like_pricing())
        assert cost["quiet"] == 0.08534117801909381
        assert cost["noisy"] == 0.15654909445118675
        assert pinned.peak_occupancy() == {PROFILE.gpu.name: 3}
        assert pinned.peak_pods() == {"quiet": 1, "noisy": 2}
        assert len(pinned.events) == 3
        pinned.verify_conservation()


class TestValidation:
    def test_duplicate_tenant_names_rejected(self, generator):
        groups = [
            TenantGroup("x", _fleet(generator, "x", 1.0, 0), PROFILE.name),
            TenantGroup("x", _fleet(generator, "x2", 1.0, 1), PROFILE.name),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            ClusterSimulator(groups, ClusterInventory(capacity={"A100-80GB": 8}))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            ClusterSimulator([], ClusterInventory(capacity={}))

    def test_initial_allocation_must_fit(self, generator):
        group = TenantGroup(
            "big", _fleet(generator, "big", 1.0, 0, n_pods=3), PROFILE.name
        )
        sim = ClusterSimulator(
            [group], ClusterInventory(capacity={PROFILE.gpu.name: 2})
        )
        with pytest.raises(ValueError, match="initial allocation"):
            sim.run(duration_s=10.0)

    def test_tenant_group_validates_profile(self, generator):
        with pytest.raises(ValueError):
            TenantGroup("x", _fleet(generator, "x", 1.0, 0), "nonsense")
        with pytest.raises(ValueError, match="non-empty"):
            TenantGroup("", _fleet(generator, "y", 1.0, 0), PROFILE.name)


class TestScheduleBridge:
    def test_to_cluster_sim_uses_placements(self, generator):
        schedule = ScheduleResult(
            placements=[
                Placement("chat", PROFILE.name, 2, 10.24),
                Placement("code", PROFILE.name, 1, 5.12),
            ],
            unplaced=["stranded"],
        )
        deployments = {
            name: Deployment(
                llm=LLM,
                profile=PROFILE,
                n_pods=1,
                max_batch_weight=WEIGHT,
                generator=generator,
                seed=7,
            )
            for name in ("chat", "code")
        }
        traffics = {
            name: PoissonTraffic(1.0, rng=derive_rng(7, "bridge", name))
            for name in ("chat", "code")
        }
        sim = schedule.to_cluster_sim(
            deployments,
            traffics,
            capacity={PROFILE.gpu.name: 8},
            slos={"chat": 2.0},
        )
        assert [g.name for g in sim.tenants] == ["chat", "code"]
        assert len(sim.tenants[0].fleet.pods) == 2
        assert len(sim.tenants[1].fleet.pods) == 1
        assert sim.tenants[0].slo_p95_ttft_s == 2.0
        assert sim.tenants[1].slo_p95_ttft_s is None
        res = sim.run(duration_s=15.0)
        res.verify_conservation()
        assert set(res.results) == {"chat", "code"}

    def test_reconfigure_retunes_weight_on_new_profile(self, generator):
        dep = Deployment(
            llm=LLM,
            profile=PROFILE,
            n_pods=1,
            max_batch_weight=WEIGHT,
            generator=generator,
            seed=0,
        )
        same = dep.reconfigure(n_pods=3)
        assert same.max_batch_weight == WEIGHT
        assert same.n_pods == 3
        moved = dep.reconfigure(profile=parse_profile("1xA100-40GB"))
        assert moved.max_batch_weight != WEIGHT
        assert moved.profile.name == "1xA100-40GB"


class TestFastOracleParity:
    """A contended, autoscaled multi-tenant cluster run on the fast
    core must be bit-identical to the golden-oracle path."""

    def _run(self, generator, fast):
        def tenant_fleet(name, rate, seed, max_pods):
            def factory(serial):
                return ContinuousBatchingEngine(
                    LLM, PROFILE, max_batch_weight=WEIGHT,
                    seed=spawn_seed(seed, "pod", serial), fast=fast,
                )

            source = RequestSource(
                generator, derive_rng(seed, "cluster-test", name), WEIGHT
            )
            return FleetSimulator(
                [factory(0)],
                PoissonTraffic(rate, rng=derive_rng(seed, "cluster-traffic", name)),
                LeastLoadedRouter(),
                source,
                autoscaler=_scaler(max_pods=max_pods),
                pod_factory=factory,
                fast=fast,
            )

        tenants = [
            TenantGroup(
                "quiet", tenant_fleet("quiet", 1.0, 1, 3), PROFILE.name,
                slo_p95_ttft_s=5.0,
            ),
            TenantGroup("noisy", tenant_fleet("noisy", 8.0, 2, 6), PROFILE.name),
        ]
        inventory = ClusterInventory(capacity={PROFILE.gpu.name: 3})
        return ClusterSimulator(tenants, inventory).run(duration_s=60.0)

    def test_cluster_results_bit_identical(self, generator):
        fast = self._run(generator, fast=True)
        oracle = self._run(generator, fast=False)
        assert fast.tenants == oracle.tenants
        assert fast.end_provisioned == oracle.end_provisioned
        assert fast.sim_events == oracle.sim_events
        for tenant in fast.tenants:
            mine, ref = fast.results[tenant], oracle.results[tenant]
            assert mine.arrivals == ref.arrivals
            assert mine.requests_completed == ref.requests_completed
            assert mine.tokens_generated == ref.tokens_generated
            assert mine.pod_seconds == ref.pod_seconds
            assert mine.ttft == ref.ttft
            assert mine.itl == ref.itl
            assert mine.e2e == ref.e2e
            assert mine.scale_events == ref.scale_events
        # Contention decisions (inventory grants/denials) match too.
        assert [
            (e.time_s, e.gpu, e.delta, e.tenant, e.reason) for e in fast.events
        ] == [
            (e.time_s, e.gpu, e.delta, e.tenant, e.reason) for e in oracle.events
        ]
        assert fast.wall_time_s > 0.0
        assert fast.events_per_second > 0.0

    def test_deployment_threads_fast_flag(self, generator):
        def simulate(fast):
            deployment = Deployment(
                llm=LLM, profile=PROFILE, n_pods=2, max_batch_weight=WEIGHT,
                generator=generator, seed=5, fast=fast,
            )
            assert deployment.pod_factory(0).fast is fast
            assert deployment.scale(3).fast is fast
            return deployment.simulate(
                PoissonTraffic(4.0, rng=derive_rng(5, "dep-parity")),
                duration_s=30.0,
            )

        fast, oracle = simulate(True), simulate(False)
        assert fast.arrivals == oracle.arrivals
        assert fast.tokens_generated == oracle.tokens_generated
        assert fast.ttft == oracle.ttft
        assert fast.itl == oracle.itl


class TestClusterFrontierParity:
    """The heap-driven cluster loop (``fast=True``, the default) must be
    bit-identical to the retained O(tenants)-scan oracle loop — same
    per-tenant results, same inventory event stream — across seeds,
    with autoscaling, inventory contention, and a chaos schedule."""

    def _run(self, generator, fast_cluster, seed_base, with_faults):
        from repro.simulation.faults import FaultInjector, FaultSpec

        def tenant(name, rate, seed, max_pods, faults=None):
            factory = _factory(seed)
            source = RequestSource(
                generator, derive_rng(seed, "cluster-test", name), WEIGHT
            )
            fleet = FleetSimulator(
                [factory(0)],
                PoissonTraffic(rate, rng=derive_rng(seed, "cluster-traffic", name)),
                LeastLoadedRouter(),
                source,
                autoscaler=_scaler(max_pods=max_pods),
                pod_factory=factory,
                faults=faults,
            )
            return TenantGroup(name, fleet, PROFILE.name)

        faults_a = faults_b = None
        if with_faults:
            # Includes two same-instant faults on one tenant and a
            # cross-tenant same-time collision with tenant a's crash —
            # the tie-break cases the heap keys must replicate.
            faults_a = FaultInjector(
                [
                    FaultSpec(kind="crash", time_s=20.0),
                    FaultSpec(
                        kind="slowdown", time_s=35.0, duration_s=15.0, factor=2.5
                    ),
                ],
                seed=3,
            )
            faults_b = FaultInjector(
                [
                    FaultSpec(kind="crash", time_s=20.0),
                    FaultSpec(kind="crash", time_s=20.0),
                ],
                seed=4,
            )
        tenants = [
            tenant("quiet", 1.0, seed_base + 1, 3, faults_a),
            tenant("noisy", 8.0, seed_base + 2, 6, faults_b),
            tenant("third", 4.0, seed_base + 5, 4),
        ]
        inventory = ClusterInventory(capacity={PROFILE.gpu.name: 4})
        sim = ClusterSimulator(tenants, inventory, fast=fast_cluster)
        assert sim.fast is fast_cluster
        return sim.run(duration_s=60.0)

    @pytest.mark.parametrize("seed_base", [0, 40])
    @pytest.mark.parametrize("with_faults", [False, True])
    def test_bit_identical(self, generator, seed_base, with_faults):
        fast = self._run(generator, True, seed_base, with_faults)
        oracle = self._run(generator, False, seed_base, with_faults)
        assert fast.tenants == oracle.tenants
        assert fast.end_provisioned == oracle.end_provisioned
        assert fast.sim_events == oracle.sim_events
        for name in fast.tenants:
            mine, ref = fast.results[name], oracle.results[name]
            assert mine.arrivals == ref.arrivals
            assert mine.requests_completed == ref.requests_completed
            assert mine.tokens_generated == ref.tokens_generated
            assert mine.pod_seconds == ref.pod_seconds
            assert mine.ttft == ref.ttft
            assert mine.itl == ref.itl
            assert mine.e2e == ref.e2e
            assert mine.scale_events == ref.scale_events
            assert mine.lost == ref.lost
            assert mine.fault_events == ref.fault_events
        assert [
            (e.time_s, e.gpu, e.delta, e.tenant, e.reason) for e in fast.events
        ] == [
            (e.time_s, e.gpu, e.delta, e.tenant, e.reason) for e in oracle.events
        ]

    def test_occupancy_series_cached_per_gpu(self, generator):
        result = self._run(generator, True, 0, False)
        first = result.occupancy_series(PROFILE.gpu.name)
        again = result.occupancy_series(PROFILE.gpu.name)
        # Same objects back: the replay ran once and was cached.
        assert first[0] is again[0] and first[1] is again[1]
        other = result.occupancy_series("H100-80GB")
        assert other[0] is not first[0]


class TestInitialAllocationRollback:
    def test_failure_rolls_back_granted_tenants(self, generator):
        """A tenant that does not fit must not leave earlier tenants'
        initial allocations committed in the ledger."""
        groups = [
            TenantGroup(
                "fits", _fleet(generator, "fits", 1.0, 0, n_pods=2), PROFILE.name
            ),
            TenantGroup(
                "big", _fleet(generator, "big", 1.0, 1, n_pods=3), PROFILE.name
            ),
        ]
        inventory = ClusterInventory(capacity={PROFILE.gpu.name: 4})
        used_before = dict(inventory.used)
        sim = ClusterSimulator(groups, inventory)
        with pytest.raises(ValueError, match="initial allocation.*'big'"):
            sim.run(duration_s=10.0)
        assert dict(inventory.used) == used_before
        assert inventory.events == []
        # The inventory is intact: a cluster that does fit runs fine.
        ok = ClusterSimulator(
            [groups[0]], ClusterInventory(capacity={PROFILE.gpu.name: 4})
        ).run(duration_s=10.0)
        ok.verify_conservation()
