"""The hybrid cloud-bursting capacity tier.

The central contracts:

* burst decisions live in the shared acquire/release closures, so the
  fast and oracle cluster loops stay bit-identical with the cloud tier
  active, and a 1-tenant cluster whose burst never fires IS the
  standalone fleet;
* spot preemptions flow through the ordinary fault path, hit only
  rented pods (including draining ones), and conservation holds;
* billing is per tier: on-prem pod-seconds at c(G), cloud pod-seconds
  at the catalog's per-mode price, and runs that never burst bill
  exactly as before the tier existed.
"""

import math

import pytest

from repro.hardware import (
    CloudCatalog,
    CloudInstanceType,
    aws_like_cloud_catalog,
    aws_like_pricing,
    parse_profile,
)
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.recommendation import CostObjective, LinearSLOPenalty
from repro.simulation import (
    Autoscaler,
    AutoscaleConfig,
    AutoscalePolicy,
    BurstPolicy,
    CloudLedger,
    ClusterInventory,
    ClusterSimulator,
    FaultInjector,
    FaultSpec,
    FleetSimulator,
    HybridCapacity,
    LeastLoadedRouter,
    PoissonTraffic,
    RequestSource,
    TenantGroup,
    ThresholdPolicy,
    spot_preemption_specs,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-80GB")
GPU = PROFILE.gpu.name
WEIGHT = 20_000


def _factory(seed):
    def make(serial):
        return ContinuousBatchingEngine(
            LLM, PROFILE, max_batch_weight=WEIGHT, seed=spawn_seed(seed, "pod", serial)
        )

    return make


def _scaler(max_pods=6, interval=10.0):
    return Autoscaler(
        ThresholdPolicy(slo_p95_ttft_s=1.0),
        AutoscaleConfig(
            decision_interval_s=interval,
            max_pods=max_pods,
            cold_start_s=5.0,
            metrics_window_s=20.0,
        ),
    )


def _fleet(generator, name, rate, seed, autoscaler=None, n_pods=1, faults=None):
    factory = _factory(seed)
    source = RequestSource(generator, derive_rng(seed, "cloud-test", name), WEIGHT)
    return FleetSimulator(
        [factory(i) for i in range(n_pods)],
        PoissonTraffic(rate, rng=derive_rng(seed, "cloud-traffic", name)),
        LeastLoadedRouter(),
        source,
        autoscaler=autoscaler,
        pod_factory=factory,
        faults=faults,
    )


def _burst_cluster(generator, *, capacity=2, cloud=None, burst=None, fast=True,
                   duration=90.0, rate=8.0):
    """One noisy tenant whose asks exceed a small owned inventory."""
    tenants = [
        TenantGroup(
            "noisy",
            _fleet(generator, "noisy", rate, 2, autoscaler=_scaler(max_pods=6)),
            PROFILE.name,
            slo_p95_ttft_s=5.0,
        ),
    ]
    inventory = ClusterInventory(capacity={GPU: capacity})
    sim = ClusterSimulator(tenants, inventory, fast=fast, cloud=cloud, burst=burst)
    return sim, sim.run(duration_s=duration)


class TestCloudCatalog:
    def test_mode_prices_ordered(self):
        catalog = aws_like_cloud_catalog()
        inst = catalog.instance(GPU)
        assert 0 < inst.spot < inst.reserved < inst.on_demand

    def test_pod_cost_scales_with_gpu_count(self):
        catalog = aws_like_cloud_catalog()
        two = parse_profile(f"2x{GPU}")
        assert catalog.pod_cost(two, "spot") == pytest.approx(
            2 * catalog.gpu_price(GPU, "spot")
        )

    def test_zero_prices_are_legal(self):
        inst = CloudInstanceType(gpu="X-1GB", on_demand=0.0, spot=0.0, reserved=0.0)
        catalog = CloudCatalog(instances={"X-1GB": inst})
        assert catalog.gpu_price("X-1GB", "on-demand") == 0.0

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError, match="negative spot price"):
            CloudInstanceType(gpu="X", on_demand=1.0, spot=-0.1, reserved=0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown cloud pricing mode"):
            aws_like_cloud_catalog().gpu_price(GPU, "preemptible")

    def test_unoffered_type(self):
        catalog = aws_like_cloud_catalog()
        assert not catalog.offers("TPU-v9")
        with pytest.raises(KeyError, match="rentable types"):
            catalog.instance("TPU-v9")

    def test_quota_overlay(self):
        catalog = aws_like_cloud_catalog(quota_gpus={GPU: 4})
        assert catalog.quota_gpus(GPU) == 4
        other = next(g for g in catalog.instances if g != GPU)
        assert catalog.quota_gpus(other) is None

    def test_mismatched_key_rejected(self):
        inst = CloudInstanceType(gpu="A", on_demand=1.0, spot=0.3, reserved=0.6)
        with pytest.raises(ValueError, match="does not match"):
            CloudCatalog(instances={"B": inst})


class TestBurstPolicy:
    def test_no_shortfall_no_burst(self):
        assert BurstPolicy().burst_pods(0, 0, 1.0) == 0

    def test_unbounded_policy_rents_the_shortfall(self):
        assert BurstPolicy().burst_pods(3, 5, 99.0) == 3

    def test_price_cap_refuses(self):
        policy = BurstPolicy(price_cap_per_pod_hour=2.0)
        assert policy.burst_pods(3, 0, 2.5) == 0
        assert policy.burst_pods(3, 0, 2.0) == 3

    def test_per_tenant_cap_counts_held_pods(self):
        policy = BurstPolicy(max_cloud_pods=4)
        assert policy.burst_pods(5, 3, 1.0) == 1
        assert policy.burst_pods(5, 4, 1.0) == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown cloud pricing mode"):
            BurstPolicy(mode="preemptible")


class TestCloudLedger:
    def test_allocate_release_bookkeeping(self):
        ledger = CloudLedger(aws_like_cloud_catalog())
        ledger.allocate(f"2x{GPU}", 2, tenant="a", time_s=5.0, mode="spot")
        assert ledger.used[GPU] == 4
        assert ledger.held_pods("a") == 2
        ledger.release(f"2x{GPU}", 1, tenant="a", time_s=9.0, mode="spot")
        assert ledger.used[GPU] == 2
        assert [(e.delta, e.reason) for e in ledger.events] == [
            (4, "burst"),
            (-2, "scale-down"),
        ]

    def test_quota_clips_fillable_pods(self):
        ledger = CloudLedger(aws_like_cloud_catalog(quota_gpus={GPU: 5}))
        assert ledger.fillable_pods(f"2x{GPU}") == 2
        ledger.allocate(f"2x{GPU}", 2, tenant="a", time_s=0.0, mode="on-demand")
        assert ledger.fillable_pods(f"2x{GPU}") == 0
        assert ledger.available_gpus(GPU) == 1

    def test_unmetered_type_is_practically_unbounded(self):
        ledger = CloudLedger(aws_like_cloud_catalog())
        assert ledger.fillable_pods(f"1x{GPU}") == 1 << 30

    def test_unoffered_type_fills_nothing(self):
        catalog = CloudCatalog(
            instances={
                GPU: CloudInstanceType(gpu=GPU, on_demand=1.0, spot=0.3, reserved=0.6)
            }
        )
        ledger = CloudLedger(catalog)
        assert ledger.fillable_pods("1xA10-24GB") == 0

    def test_over_quota_allocation_raises(self):
        ledger = CloudLedger(aws_like_cloud_catalog(quota_gpus={GPU: 1}))
        with pytest.raises(ValueError, match="cloud quota exceeded"):
            ledger.allocate(f"2x{GPU}", 1, tenant="a", time_s=0.0, mode="spot")

    def test_over_return_raises(self):
        ledger = CloudLedger(aws_like_cloud_catalog())
        with pytest.raises(ValueError, match="more cloud GPUs than rented"):
            ledger.release(f"1x{GPU}", 1, tenant="a", time_s=0.0, mode="spot")


class TestSpotPreemptionSpecs:
    def test_seeded_schedule_is_reproducible(self):
        a = spot_preemption_specs(60.0, 600.0, 7, "tenant-a")
        b = spot_preemption_specs(60.0, 600.0, 7, "tenant-a")
        assert [s.time_s for s in a] == [s.time_s for s in b]
        assert all(s.kind == "spot-preempt" for s in a)
        assert all(0 <= s.time_s < 600.0 for s in a)

    def test_labels_decorrelate_tenants(self):
        a = spot_preemption_specs(60.0, 600.0, 7, "tenant-a")
        b = spot_preemption_specs(60.0, 600.0, 7, "tenant-b")
        assert [s.time_s for s in a] != [s.time_s for s in b]

    def test_zero_rate_is_empty(self):
        assert spot_preemption_specs(0.0, 600.0, 7) == []

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="rate_per_hour"):
            spot_preemption_specs(-1.0, 600.0, 0)
        with pytest.raises(ValueError, match="horizon_s"):
            spot_preemption_specs(1.0, 0.0, 0)


class TestClusterBurst:
    @pytest.fixture(scope="class")
    def bursted(self, generator):
        cloud = CloudLedger(aws_like_cloud_catalog(), seed=0)
        return _burst_cluster(generator, cloud=cloud, burst=BurstPolicy())

    def test_burst_absorbs_contention(self, bursted):
        _, res = bursted
        # Every denied/clipped scale-up overflowed into the cloud, so no
        # constraint was recorded — and the ledger shows the rentals.
        assert res.contended_scale_events() == []
        assert res.cloud_events
        assert res.results["noisy"].cloud_pod_seconds > 0

    def test_conservation_with_cloud_events(self, bursted):
        _, res = bursted
        res.verify_conservation()

    def test_on_prem_occupancy_still_capped(self, bursted):
        _, res = bursted
        _, used = res.occupancy_series(GPU)
        assert used.max() <= res.capacity[GPU]

    def test_mixed_billing_line_items(self, bursted):
        _, res = bursted
        pricing = aws_like_pricing()
        bill = res.billing(pricing)["noisy"]
        r = res.results["noisy"]
        assert bill["on_prem"]["pod_seconds"] == pytest.approx(
            r.on_prem_pod_seconds
        )
        assert bill["cloud"]["pod_seconds"] == pytest.approx(r.cloud_pod_seconds)
        assert bill["cloud"]["mode"] == "on-demand"
        assert bill["total"] == pytest.approx(
            bill["on_prem"]["cost"] + bill["cloud"]["cost"]
        )
        assert res.total_cost(pricing) == pytest.approx(bill["total"])

    def test_to_dict_carries_the_cloud_block(self, bursted):
        _, res = bursted
        payload = res.to_dict(pricing=aws_like_pricing())
        assert payload["cloud"]["modes"] == {"noisy": "on-demand"}
        assert payload["cloud"]["cloud_pod_seconds_total"] == pytest.approx(
            res.results["noisy"].cloud_pod_seconds
        )
        tenant_line = next(t for t in payload["tenants"] if t["name"] == "noisy")
        assert tenant_line["billing"]["cloud"]["cost"] > 0
        assert "burst" in res.summary()

    def test_burst_denied_by_cloud_quota(self, generator):
        # A catalog that offers the GPU but with zero account quota:
        # the burst ask clips to nothing and the on-prem constraint is
        # recorded exactly as if no cloud existed.
        cloud = CloudLedger(aws_like_cloud_catalog(quota_gpus={GPU: 0}), seed=0)
        _, res = _burst_cluster(generator, cloud=cloud, burst=BurstPolicy())
        assert res.contended_scale_events()
        assert res.cloud_events == []
        assert res.results["noisy"].cloud_pod_seconds == 0
        res.verify_conservation()

    def test_burst_without_cloud_rejected(self, generator):
        with pytest.raises(ValueError, match="cloud"):
            _burst_cluster(generator, cloud=None, burst=BurstPolicy())

    def test_unknown_burst_tenant_rejected(self, generator):
        cloud = CloudLedger(aws_like_cloud_catalog(), seed=0)
        with pytest.raises(ValueError, match="unknown tenant"):
            _burst_cluster(
                generator, cloud=cloud, burst={"nobody": BurstPolicy()}
            )

    def test_fast_and_oracle_identical_with_cloud(self, generator, bursted):
        _, fast_res = bursted
        cloud = CloudLedger(aws_like_cloud_catalog(), seed=0)
        _, oracle_res = _burst_cluster(
            generator, cloud=cloud, burst=BurstPolicy(), fast=False
        )
        pricing = aws_like_pricing()
        assert fast_res.to_dict(pricing=pricing) == oracle_res.to_dict(
            pricing=pricing
        )


class TestSpotPreemption:
    @pytest.fixture(scope="class")
    def preempted(self, generator):
        # A spot interruption rate high enough that the 90s window sees
        # several seeded preemptions of the rented pods.
        cloud = CloudLedger(
            aws_like_cloud_catalog(spot_interruptions_per_hour=200.0), seed=3
        )
        return _burst_cluster(
            generator, cloud=cloud, burst=BurstPolicy(mode="spot")
        )

    def test_preemptions_fire_and_conserve(self, preempted):
        _, res = preempted
        spot_events = [
            e for _, e in res.fault_events() if e.kind == "spot-preempt"
        ]
        assert spot_events
        res.verify_conservation()

    def test_preemptions_hit_only_cloud_pods(self, preempted):
        sim, res = preempted
        cloud_serials = sim.tenants[0].fleet.cloud_serials
        for _, event in res.fault_events():
            if event.kind == "spot-preempt" and event.pod is not None:
                assert event.pod in cloud_serials

    def test_spot_schedule_identical_across_loops(self, generator, preempted):
        _, fast_res = preempted
        cloud = CloudLedger(
            aws_like_cloud_catalog(spot_interruptions_per_hour=200.0), seed=3
        )
        _, oracle_res = _burst_cluster(
            generator, cloud=cloud, burst=BurstPolicy(mode="spot"), fast=False
        )
        pricing = aws_like_pricing()
        assert fast_res.to_dict(pricing=pricing) == oracle_res.to_dict(
            pricing=pricing
        )

    def test_on_demand_mode_injects_no_preemptions(self, generator):
        cloud = CloudLedger(
            aws_like_cloud_catalog(spot_interruptions_per_hour=200.0), seed=3
        )
        _, res = _burst_cluster(generator, cloud=cloud, burst=BurstPolicy())
        assert not any(
            e.kind == "spot-preempt" for _, e in res.fault_events()
        )

    def test_untargeted_preemption_with_no_cloud_pods_is_ineffective(
        self, generator
    ):
        faults = FaultInjector(
            [FaultSpec(kind="spot-preempt", time_s=5.0)], seed=0
        )
        res = _fleet(generator, "no-cloud", 2.0, 0, n_pods=2, faults=faults).run(
            duration_s=15.0, keep_samples=False
        )
        assert [e.pod for e in res.fault_events if e.kind == "spot-preempt"] == [
            None
        ]
        res.verify_conservation()


class _ScriptedPolicy(AutoscalePolicy):
    """Deterministic scale plan: burst at 10s, drain the burst at 20s."""

    name = "scripted"

    def desired_pods(self, view):
        if view.time < 10.0:
            return 1
        if view.time < 20.0:
            return 3
        return 1


class TestSpotPreemptionMidDrain:
    def test_draining_cloud_pod_can_be_preempted(self, generator):
        # Serial 0 is owned; the 10s scale-up mints cloud serials 1 and 2;
        # the 20s scale-down drains them (newest first, with residual
        # work at this rate), and the provider reclaims serial 2 while
        # it is still draining.
        scaler = Autoscaler(
            _ScriptedPolicy(),
            AutoscaleConfig(
                decision_interval_s=10.0, max_pods=3, cold_start_s=2.0,
                metrics_window_s=20.0,
            ),
        )
        faults = FaultInjector(
            [FaultSpec(kind="spot-preempt", time_s=21.0, pod=2)], seed=0
        )
        fleet = _fleet(
            generator, "mid-drain", 6.0, 5, autoscaler=scaler, faults=faults
        )
        hybrid = HybridCapacity(
            1,
            CloudLedger(aws_like_cloud_catalog(), seed=0),
            BurstPolicy(mode="spot"),
            PROFILE.name,
        )
        hybrid.bind(fleet)
        res = fleet.run(duration_s=40.0, keep_samples=False)
        events = [e for e in res.fault_events if e.kind == "spot-preempt"]
        assert [e.pod for e in events] == [2]
        assert 2 in fleet.cloud_serials
        res.verify_conservation()
        # The reclaim returned the rented capacity to the ledger.
        assert hybrid.ledger.held_pods("fleet") == 0
        assert any(
            e.reason == "spot-preempt" and e.delta < 0
            for e in hybrid.ledger.events
        )


class TestSingleTenantEquivalence:
    def test_cluster_with_idle_cloud_matches_standalone_fleet(self, generator):
        """With ample owned inventory the burst never fires, and the
        1-tenant cluster with a cloud tier IS FleetSimulator.run."""
        standalone = _fleet(
            generator, "solo", 6.0, 3, autoscaler=_scaler()
        ).run(duration_s=60.0, keep_samples=False)
        clustered_fleet = _fleet(generator, "solo", 6.0, 3, autoscaler=_scaler())
        sim = ClusterSimulator(
            [TenantGroup("solo", clustered_fleet, PROFILE.name)],
            ClusterInventory(capacity={GPU: 64}),
            cloud=CloudLedger(aws_like_cloud_catalog(), seed=0),
            burst=BurstPolicy(),
        )
        res = sim.run(duration_s=60.0)
        clustered = res.results["solo"]
        assert res.cloud_events == []
        assert clustered.cloud_pod_seconds == 0
        assert clustered.arrivals == standalone.arrivals
        assert clustered.requests_completed == standalone.requests_completed
        assert clustered.ttft.p95_s == standalone.ttft.p95_s
        assert clustered.pod_seconds == standalone.pod_seconds
        assert clustered.scale_events == standalone.scale_events
        res.verify_conservation()


class TestHybridCapacity:
    def test_initial_fleet_must_fit_the_owned_tier(self, generator):
        fleet = _fleet(generator, "big", 1.0, 0, n_pods=3)
        hybrid = HybridCapacity(
            2,
            CloudLedger(aws_like_cloud_catalog(), seed=0),
            BurstPolicy(),
            PROFILE.name,
        )
        with pytest.raises(ValueError, match="exceeds the 2-pod on-prem tier"):
            hybrid.bind(fleet)

    def test_hybrid_fleet_bills_cloud_seconds(self, generator):
        fleet = _fleet(
            generator, "hybrid", 8.0, 1, autoscaler=_scaler(max_pods=5)
        )
        hybrid = HybridCapacity(
            2,
            CloudLedger(aws_like_cloud_catalog(), seed=0),
            BurstPolicy(),
            PROFILE.name,
        )
        hybrid.bind(fleet)
        res = fleet.run(duration_s=60.0, keep_samples=False)
        res.verify_conservation()
        assert res.cloud_pod_seconds > 0
        assert res.on_prem_pod_seconds + res.cloud_pod_seconds == pytest.approx(
            res.pod_seconds
        )
        assert res.to_dict()["cloud_pod_seconds"] == pytest.approx(
            res.cloud_pod_seconds
        )


class TestCostObjectiveMixedBill:
    def _result(self, generator):
        fleet = _fleet(
            generator, "bill", 8.0, 1, autoscaler=_scaler(max_pods=5)
        )
        hybrid = HybridCapacity(
            2,
            CloudLedger(aws_like_cloud_catalog(), seed=0),
            BurstPolicy(mode="spot"),
            PROFILE.name,
        )
        hybrid.bind(fleet)
        return fleet.run(duration_s=60.0, keep_samples=False)

    def test_mixed_bill_prices_each_tier(self, generator):
        res = self._result(generator)
        catalog = aws_like_cloud_catalog()
        pricing = aws_like_pricing()
        objective = CostObjective(
            pricing=pricing,
            penalty=LinearSLOPenalty(slo_p95_ttft_s=10.0),
            cloud=catalog,
            cloud_mode="spot",
        )
        expected = res.on_prem_pod_seconds / 3600.0 * pricing.pod_cost(
            PROFILE
        ) + res.cloud_pod_seconds / 3600.0 * catalog.pod_cost(PROFILE, "spot")
        assert objective.compute_cost(res, PROFILE) == pytest.approx(expected)
        # Spot rents below the owned rate, so the mixed bill undercuts
        # pricing the same pod-seconds entirely on-prem.
        assert objective.compute_cost(res, PROFILE) < res.pod_hours * (
            pricing.pod_cost(PROFILE)
        )

    def test_cloud_seconds_without_catalog_is_an_error(self, generator):
        res = self._result(generator)
        objective = CostObjective(
            pricing=aws_like_pricing(),
            penalty=LinearSLOPenalty(slo_p95_ttft_s=10.0),
        )
        with pytest.raises(ValueError, match="no cloud catalog"):
            objective.compute_cost(res, PROFILE)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown cloud pricing mode"):
            CostObjective(
                pricing=aws_like_pricing(),
                penalty=LinearSLOPenalty(slo_p95_ttft_s=1.0),
                cloud_mode="preemptible",
            )

    def test_zero_price_catalog_bills_cloud_seconds_for_free(self, generator):
        res = self._result(generator)
        free = CloudCatalog(
            instances={
                GPU: CloudInstanceType(gpu=GPU, on_demand=0.0, spot=0.0, reserved=0.0)
            }
        )
        pricing = aws_like_pricing()
        objective = CostObjective(
            pricing=pricing,
            penalty=LinearSLOPenalty(slo_p95_ttft_s=10.0),
            cloud=free,
        )
        assert objective.compute_cost(res, PROFILE) == pytest.approx(
            res.on_prem_pod_seconds / 3600.0 * pricing.pod_cost(PROFILE)
        )
