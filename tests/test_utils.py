"""Tests for repro.utils: RNG derivation, tables, small stats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import as_rng, derive_rng, spawn_seed
from repro.utils.stats import (
    geometric_mean,
    harmonic_mean,
    median,
    percentile,
    relative_std,
)
from repro.utils.tables import format_matrix, format_table


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(1, "a", 2) == spawn_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert spawn_seed(1, "a") != spawn_seed(1, "b")

    def test_seed_sensitivity(self):
        assert spawn_seed(1, "a") != spawn_seed(2, "a")

    def test_label_order_matters(self):
        assert spawn_seed(1, "a", "b") != spawn_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must not collide.
        assert spawn_seed(1, "ab") != spawn_seed(1, "a", "b")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_in_range(self, seed, label):
        s = spawn_seed(seed, label)
        assert 0 <= s < 2**64


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(7, "x").standard_normal(5)
        b = derive_rng(7, "x").standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_differ(self):
        a = derive_rng(7, "x").standard_normal(5)
        b = derive_rng(7, "y").standard_normal(5)
        assert not np.allclose(a, b)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_as_rng_from_int(self):
        a = as_rng(3).integers(0, 100, 10)
        b = as_rng(3).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestStats:
    def test_median_basic(self):
        assert median([1.0, 3.0, 2.0]) == 2.0

    def test_median_empty_is_nan(self):
        assert np.isnan(median([]))

    def test_percentile(self):
        assert percentile(np.arange(101), 50) == 50.0

    def test_percentile_empty_is_nan(self):
        assert np.isnan(percentile([], 50))

    def test_relative_std_constant(self):
        assert relative_std([5.0, 5.0, 5.0]) == 0.0

    def test_relative_std_zero_mean(self):
        assert np.isnan(relative_std([-1.0, 1.0]))

    def test_relative_std_scale_invariant(self):
        a = np.array([1.0, 2.0, 3.0])
        assert relative_std(a) == pytest.approx(relative_std(10 * a))

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_nonpositive_nan(self):
        assert np.isnan(geometric_mean([1.0, 0.0]))

    def test_harmonic_mean_symmetric(self):
        assert harmonic_mean(0.5, 0.8) == pytest.approx(harmonic_mean(0.8, 0.5))

    def test_harmonic_mean_zero(self):
        assert harmonic_mean(0.0, 0.9) == 0.0

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_harmonic_mean_between_min_and_max(self, a, b):
        h = harmonic_mean(a, b)
        assert min(a, b) - 1e-12 <= h <= max(a, b) + 1e-12


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1.5], ["bb", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "2.250" in lines[-1]

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_format_table_ragged_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_format_matrix_includes_labels(self):
        out = format_matrix(["r1"], ["c1", "c2"], [[1.0, 2.0]], corner="M")
        assert "r1" in out and "c1" in out and "c2" in out
