"""Tests for the repro-pilot command-line interface."""

import pytest

from repro.characterization import PerfDataset
from repro.cli import build_parser, main
from repro.traces import TraceDataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_traces_args(self):
        args = build_parser().parse_args(
            ["traces", "--requests", "500", "--out", "x.npz"]
        )
        assert args.command == "traces"
        assert args.requests == 500

    def test_recommend_defaults(self):
        args = build_parser().parse_args(
            ["recommend", "--dataset", "d.npz", "--llm", "Llama-2-7b"]
        )
        assert args.users == 200
        assert args.nttft_ms == 100.0
        assert args.itl_ms == 50.0

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.traffic == "poisson"
        assert args.router == "least-loaded"
        assert args.pods == 2

    def test_simulate_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--router", "random"])


class TestCommands:
    def test_traces_command(self, tmp_path, capsys):
        out = str(tmp_path / "traces.npz")
        rc = main(["traces", "--requests", "2000", "--seed", "1", "--out", out])
        assert rc == 0
        loaded = TraceDataset.load(out)
        assert len(loaded) == 2000
        assert "Wrote 2,000 requests" in capsys.readouterr().out

    def test_characterize_command(self, tmp_path, capsys):
        out = str(tmp_path / "dataset.npz")
        rc = main(
            [
                "characterize",
                "--requests", "5000",
                "--llm", "google/flan-t5-xl",
                "--llm", "Llama-2-7b",
                "--duration", "5",
                "--out", out,
            ]
        )
        assert rc == 0
        ds = PerfDataset.load(out)
        assert set(ds.llms()) == {"google/flan-t5-xl", "Llama-2-7b"}
        assert "Characterized" in capsys.readouterr().out

    def test_characterize_unknown_llm(self, tmp_path, capsys):
        rc = main(
            [
                "characterize",
                "--requests", "2000",
                "--llm", "not-a-model",
                "--out", str(tmp_path / "x.npz"),
            ]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_recommend_command(self, tmp_path, capsys):
        dataset_path = str(tmp_path / "dataset.npz")
        rc = main(
            [
                "characterize",
                "--requests", "5000",
                "--llm", "google/flan-t5-xl",
                "--llm", "google/flan-t5-xxl",
                "--llm", "Llama-2-7b",
                "--duration", "5",
                "--out", dataset_path,
            ]
        )
        assert rc == 0
        rc = main(
            [
                "recommend",
                "--dataset", dataset_path,
                "--llm", "Llama-2-13b",
                "--users", "50",
                "--requests", "5000",
                "--itl-ms", "80",
            ]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)  # recommendation or honest infeasibility
        assert "Assessments for Llama-2-13b" in out

    def test_recommend_excludes_own_rows(self, tmp_path, capsys):
        dataset_path = str(tmp_path / "dataset.npz")
        main(
            [
                "characterize",
                "--requests", "5000",
                "--llm", "google/flan-t5-xl",
                "--llm", "Llama-2-7b",
                "--duration", "5",
                "--out", dataset_path,
            ]
        )
        rc = main(
            [
                "recommend",
                "--dataset", dataset_path,
                "--llm", "Llama-2-7b",
                "--users", "20",
                "--requests", "5000",
            ]
        )
        out = capsys.readouterr().out
        assert "excluded Llama-2-7b's own rows" in out
        assert rc in (0, 1)

    def test_info_command(self, capsys):
        rc = main(["info", "--requests", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LLM catalog" in out
        assert "Workload generator" in out

    def test_simulate_command(self, capsys):
        rc = main(
            [
                "simulate",
                "--requests", "3000",
                "--pods", "2",
                "--traffic", "bursty",
                "--rate", "4",
                "--duration", "10",
                "--router", "join-shortest-queue",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bursty traffic, join-shortest-queue routing" in out
        assert "TTFT p50/p95/p99" in out

    def test_simulate_closed_loop_command(self, capsys):
        rc = main(
            [
                "simulate",
                "--requests", "3000",
                "--traffic", "closed",
                "--users", "4",
                "--duration", "10",
            ]
        )
        assert rc == 0
        assert "closed-loop traffic" in capsys.readouterr().out

    def test_simulate_unknown_llm(self, capsys):
        rc = main(["simulate", "--requests", "3000", "--llm", "not-a-model"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
