"""Tests for the repro-pilot command-line interface."""

import json

import pytest

from repro.characterization import PerfDataset
from repro.cli import build_parser, main
from repro.traces import TraceDataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_traces_args(self):
        args = build_parser().parse_args(
            ["traces", "--requests", "500", "--out", "x.npz"]
        )
        assert args.command == "traces"
        assert args.requests == 500

    def test_recommend_defaults(self):
        args = build_parser().parse_args(
            ["recommend", "--dataset", "d.npz", "--llm", "Llama-2-7b"]
        )
        assert args.users == 200
        assert args.nttft_ms == 100.0
        assert args.itl_ms == 50.0

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.traffic == "poisson"
        assert args.router == "least-loaded"
        assert args.pods == 2

    def test_simulate_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--router", "random"])

    def test_recommend_elastic_defaults(self):
        args = build_parser().parse_args(["recommend-elastic"])
        assert args.command == "recommend-elastic"
        assert args.penalty == "linear"
        assert args.static_pods == 0
        assert args.headroom == 2
        assert not args.json

    def test_recommend_elastic_rejects_unknown_penalty(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend-elastic", "--penalty", "cubic"])

    def test_cluster_sim_requires_tenant_and_capacity(self, capsys):
        # Tenants/capacity moved to runtime validation so that
        # --scenario FILE can replace them wholesale.
        rc = main(["cluster-sim"])
        assert rc == 2
        assert "--tenant and --capacity" in capsys.readouterr().err
        rc = main(
            ["cluster-sim", "--tenant", "a:Llama-2-7b:1xT4-16GB:1:poisson:1"]
        )
        assert rc == 2
        assert "--tenant and --capacity" in capsys.readouterr().err

    def test_simulate_replay_requires_arrivals(self, capsys):
        rc = main(["simulate", "--traffic", "replay", "--requests", "3000"])
        assert rc == 2
        assert "--arrivals" in capsys.readouterr().err


class TestCommands:
    def test_traces_command(self, tmp_path, capsys):
        out = str(tmp_path / "traces.npz")
        rc = main(["traces", "--requests", "2000", "--seed", "1", "--out", out])
        assert rc == 0
        loaded = TraceDataset.load(out)
        assert len(loaded) == 2000
        assert "Wrote 2,000 requests" in capsys.readouterr().out

    def test_characterize_command(self, tmp_path, capsys):
        out = str(tmp_path / "dataset.npz")
        rc = main(
            [
                "characterize",
                "--requests", "5000",
                "--llm", "google/flan-t5-xl",
                "--llm", "Llama-2-7b",
                "--duration", "5",
                "--out", out,
            ]
        )
        assert rc == 0
        ds = PerfDataset.load(out)
        assert set(ds.llms()) == {"google/flan-t5-xl", "Llama-2-7b"}
        assert "Characterized" in capsys.readouterr().out

    def test_characterize_unknown_llm(self, tmp_path, capsys):
        rc = main(
            [
                "characterize",
                "--requests", "2000",
                "--llm", "not-a-model",
                "--out", str(tmp_path / "x.npz"),
            ]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_recommend_command(self, tmp_path, capsys):
        dataset_path = str(tmp_path / "dataset.npz")
        rc = main(
            [
                "characterize",
                "--requests", "5000",
                "--llm", "google/flan-t5-xl",
                "--llm", "google/flan-t5-xxl",
                "--llm", "Llama-2-7b",
                "--duration", "5",
                "--out", dataset_path,
            ]
        )
        assert rc == 0
        rc = main(
            [
                "recommend",
                "--dataset", dataset_path,
                "--llm", "Llama-2-13b",
                "--users", "50",
                "--requests", "5000",
                "--itl-ms", "80",
            ]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)  # recommendation or honest infeasibility
        assert "Assessments for Llama-2-13b" in out

    def test_recommend_excludes_own_rows(self, tmp_path, capsys):
        dataset_path = str(tmp_path / "dataset.npz")
        main(
            [
                "characterize",
                "--requests", "5000",
                "--llm", "google/flan-t5-xl",
                "--llm", "Llama-2-7b",
                "--duration", "5",
                "--out", dataset_path,
            ]
        )
        rc = main(
            [
                "recommend",
                "--dataset", dataset_path,
                "--llm", "Llama-2-7b",
                "--users", "20",
                "--requests", "5000",
            ]
        )
        out = capsys.readouterr().out
        assert "excluded Llama-2-7b's own rows" in out
        assert rc in (0, 1)

    def test_info_command(self, capsys):
        rc = main(["info", "--requests", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LLM catalog" in out
        assert "Workload generator" in out

    def test_simulate_command(self, capsys):
        rc = main(
            [
                "simulate",
                "--requests", "3000",
                "--pods", "2",
                "--traffic", "bursty",
                "--rate", "4",
                "--duration", "10",
                "--router", "join-shortest-queue",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bursty traffic, join-shortest-queue routing" in out
        assert "TTFT p50/p95/p99" in out

    def test_simulate_closed_loop_command(self, capsys):
        rc = main(
            [
                "simulate",
                "--requests", "3000",
                "--traffic", "closed",
                "--users", "4",
                "--duration", "10",
            ]
        )
        assert rc == 0
        assert "closed-loop traffic" in capsys.readouterr().out

    def test_simulate_unknown_llm(self, capsys):
        rc = main(["simulate", "--requests", "3000", "--llm", "not-a-model"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_simulate_json_schema(self, capsys):
        rc = main(
            ["simulate", "--requests", "3000", "--duration", "10", "--json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "fleet"
        assert data["fault_events"] == []
        assert data["lost"] == 0
        assert data["arrivals"] == data["admitted"] + data["shed"]
        assert {"ttft", "itl", "e2e", "per_pod", "scale_events"} <= set(data)
        assert all(p["zone"] == "zone-0" for p in data["per_pod"])

    def test_simulate_fault_flag(self, capsys):
        rc = main(
            [
                "simulate",
                "--requests", "3000",
                "--duration", "20",
                "--rate", "4",
                "--fault", "crash@5:restart=5",
                "--fault", "slowdown@8:duration=4,factor=3",
                "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        kinds = [e["kind"] for e in data["fault_events"]]
        assert "crash" in kinds
        assert "slowdown-start" in kinds and "slowdown-end" in kinds
        assert data["admitted"] == (
            data["completed_total"] + data["in_flight_end"] + data["lost"]
        )

    def test_simulate_zone_outage_zones_flag(self, capsys):
        rc = main(
            [
                "simulate",
                "--requests", "3000",
                "--pods", "4",
                "--zones", "2",
                "--duration", "20",
                "--fault", "zone-outage@6:zone=zone-1,restart=5",
                "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert {p["zone"] for p in data["per_pod"]} == {"zone-0", "zone-1"}
        assert any(e["kind"] == "zone-outage" for e in data["fault_events"])

    def test_simulate_bad_fault_spec_exits_2(self, capsys):
        rc = main(["simulate", "--requests", "3000", "--fault", "crash"])
        assert rc == 2
        assert "KIND@TIME" in capsys.readouterr().err

    def test_simulate_fault_with_scenario_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "s.json"
        spec.write_text(
            json.dumps(
                {
                    "duration_s": 5.0,
                    "workload": {"requests": 3000},
                    "traffic": {"kind": "poisson", "rate_per_s": 1.0},
                }
            )
        )
        rc = main(
            ["simulate", "--scenario", str(spec), "--fault", "crash@1"]
        )
        assert rc == 2
        assert "faults" in capsys.readouterr().err


CLUSTER_ARGS = [
    "cluster-sim",
    "--tenant", "chat:Llama-2-13b:1xA100-80GB:1:poisson:4.0",
    "--tenant", "code:Llama-2-13b:1xA100-80GB:1:poisson:4.0",
    "--capacity", "A100-80GB=3",
    "--max-batch-weight", "20000",
    "--duration", "30",
    "--requests", "3000",
]


class TestClusterSimCommand:
    def test_runs_and_reports(self, capsys):
        rc = main(CLUSTER_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 tenants on one clock" in out
        assert "Peak GPU occupancy" in out

    def test_json_output_schema(self, capsys):
        rc = main(CLUSTER_ARGS + ["--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {
            "kind", "duration_s", "capacity", "total_cost", "peak_occupancy",
            "cloud", "tenants", "contended_scale_events", "fault_events",
            "series",
        }
        assert data["kind"] == "cluster"
        assert data["capacity"] == {"A100-80GB": 3}
        assert data["cloud"] is None
        assert data["fault_events"] == []
        assert [t["name"] for t in data["tenants"]] == ["chat", "code"]
        for tenant in data["tenants"]:
            assert tenant["arrivals"] >= 0
            assert tenant["pod_seconds"] >= 0
            assert tenant["cost"] >= 0
            assert tenant["lost"] == 0
            assert tenant["requeued"] == 0
        for event in data["contended_scale_events"]:
            assert event["constraint"] in ("denied", "clipped")
            assert event["tenant"] in ("chat", "code")
        assert data["peak_occupancy"]["A100-80GB"] <= 3

    def test_policy_none_and_admission(self, capsys):
        rc = main(CLUSTER_ARGS + ["--policy", "none", "--admission", "shed"])
        assert rc == 0
        assert "tenants on one clock" in capsys.readouterr().out

    def test_fault_flag_hits_every_tenant(self, capsys):
        rc = main(CLUSTER_ARGS + ["--fault", "crash@10:restart=5", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        # The same fault schedule is injected per tenant (independent
        # victim draws), so each tenant records one crash.
        assert sorted(e["tenant"] for e in data["fault_events"]) == [
            "chat", "code",
        ]
        assert all(e["kind"] == "crash" for e in data["fault_events"])

    def test_autoscale_json_has_recovery_block(self, capsys):
        rc = main(
            [
                "autoscale",
                "--requests", "3000",
                "--duration", "40",
                "--rate", "4",
                "--policy", "threshold",
                "--fault", "crash@10:restart=8",
                "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "fleet"
        assert "recovery" in data
        assert data["recovery"]["slo_p95_ttft_s"] == pytest.approx(2.0)

    def test_bad_tenant_spec_exits_2(self, capsys):
        rc = main(
            [
                "cluster-sim",
                "--tenant", "broken-spec",
                "--capacity", "A100-80GB=2",
                "--requests", "3000",
            ]
        )
        assert rc == 2
        assert "tenant spec" in capsys.readouterr().err

    def test_bad_capacity_spec_exits_2(self, capsys):
        rc = main(
            [
                "cluster-sim",
                "--tenant", "a:Llama-2-13b:1xA100-80GB:1:poisson:1.0",
                "--capacity", "A100-80GB",
                "--requests", "3000",
            ]
        )
        assert rc == 2
        assert "capacity spec" in capsys.readouterr().err

    def test_unknown_llm_in_tenant_exits_2(self, capsys):
        rc = main(
            [
                "cluster-sim",
                "--tenant", "a:not-a-model:1xA100-80GB:1:poisson:1.0",
                "--capacity", "A100-80GB=2",
                "--requests", "3000",
            ]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_initial_allocation_too_big_exits_2(self, capsys):
        rc = main(
            [
                "cluster-sim",
                "--tenant", "a:Llama-2-13b:1xA100-80GB:4:poisson:1.0",
                "--capacity", "A100-80GB=2",
                "--duration", "10",
                "--requests", "3000",
            ]
        )
        assert rc == 2
        assert "initial allocation" in capsys.readouterr().err


ELASTIC_ARGS = [
    "recommend-elastic",
    "--llm", "Llama-2-13b",
    "--profile", "1xA100-80GB",
    "--max-batch-weight", "20000",
    "--traffic", "poisson",
    "--rate", "2.0",
    "--duration", "30",
    "--slo-ttft-ms", "20000",
    "--requests", "3000",
]


class TestRecommendElasticCommand:
    def test_runs_and_reports_curve(self, capsys):
        rc = main(ELASTIC_ARGS + ["--static-pods", "1"])
        assert rc in (0, 1)  # recommendation or honest infeasibility
        out = capsys.readouterr().out
        assert "Trade curve for Llama-2-13b" in out
        assert "Recommendation:" in out
        assert "static[1]" in out

    def test_json_output_schema(self, capsys):
        rc = main(ELASTIC_ARGS + ["--static-pods", "2", "--json"])
        assert rc in (0, 1)
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {
            "profile", "slo_p95_ttft_s", "chosen", "static", "curve",
            "pruned", "savings", "savings_fraction", "meets_slo",
        }
        assert data["profile"] == "1xA100-80GB"
        assert data["static"]["policy"] == "static"
        assert data["static"]["min_pods"] == 2
        assert len(data["curve"]) >= 4  # baseline + three default policies
        policies = {p["policy"] for p in data["curve"]}
        assert {"static", "threshold", "target-utilization",
                "predictive"} <= policies
        for point in data["curve"]:
            assert point["total_cost"] == pytest.approx(
                point["compute_cost"] + point["slo_penalty"]
            )
        # Exit code mirrors SLO attainment of the chosen config.
        assert rc == (0 if data["meets_slo"] else 1)

    def test_sizing_ladder_without_static_pods(self, capsys):
        rc = main(ELASTIC_ARGS + ["--search-max", "3"])
        assert rc in (0, 1)
        data_out = capsys.readouterr().out
        assert "static[1]" in data_out

    def test_unknown_llm_exits_2(self, capsys):
        rc = main(
            ["recommend-elastic", "--llm", "not-a-model", "--requests", "3000"]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_static_pods_exits_2(self, capsys):
        rc = main(ELASTIC_ARGS + ["--static-pods", "-1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_closed_loop_traffic_rejected(self, capsys):
        rc = main(
            [
                "recommend-elastic",
                "--traffic", "closed",
                "--users", "8",
                "--requests", "3000",
            ]
        )
        assert rc == 2
        assert "open-loop" in capsys.readouterr().err


class TestScenarioNameFlag:
    """--scenario-name resolves through the curated scenarios/ library,
    and scenario errors always name the offending file."""

    def test_simulate_runs_library_scenario_by_name(self, capsys):
        rc = main(
            ["simulate", "--scenario-name", "steady-poisson-baseline", "--json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "fleet"
        assert data["arrivals"] > 0

    def test_scenario_name_miss_lists_available_names(self, capsys):
        rc = main(["simulate", "--scenario-name", "no-such-scenario"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario name 'no-such-scenario'" in err
        # The miss is actionable: every curated name is listed.
        assert "steady-poisson-baseline" in err
        assert "noisy-neighbor" in err

    def test_cluster_sim_scenario_name_miss_lists_available_names(self, capsys):
        rc = main(["cluster-sim", "--scenario-name", "no-such-scenario"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario name" in err
        assert "available:" in err

    def test_scenario_name_and_file_are_mutually_exclusive(self, capsys):
        rc = main(
            [
                "simulate",
                "--scenario", "x.yaml",
                "--scenario-name", "steady-poisson-baseline",
            ]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_malformed_yaml_error_names_the_file(self, tmp_path, capsys):
        spec = tmp_path / "broken.yaml"
        spec.write_text("name: [unclosed\n")
        rc = main(["simulate", "--scenario", str(spec)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "broken.yaml" in err
        assert "invalid YAML" in err

    def test_invalid_spec_error_names_the_file(self, tmp_path, capsys):
        spec = tmp_path / "bad-keys.json"
        spec.write_text(json.dumps({"durations": 5.0}))
        rc = main(["simulate", "--scenario", str(spec)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "bad-keys.json" in err

    def test_missing_scenario_file_error_names_the_file(self, capsys):
        rc = main(["simulate", "--scenario", "does-not-exist.yaml"])
        assert rc == 2
        assert "does-not-exist.yaml" in capsys.readouterr().err
