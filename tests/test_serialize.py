"""Tests for JSON model serialization."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    gbm_from_dict,
    gbm_to_dict,
    load_gbm,
    save_gbm,
    tree_from_dict,
    tree_to_dict,
)


def _toy(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 5))
    y = X[:, 0] - 0.5 * X[:, 1] ** 2 + 0.05 * rng.standard_normal(n)
    return X, y


class TestTreeSerialization:
    def test_roundtrip_predictions_identical(self):
        X, y = _toy()
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        clone = tree_from_dict(tree_to_dict(tree))
        np.testing.assert_array_equal(tree.predict(X), clone.predict(X))

    def test_importances_preserved(self):
        X, y = _toy()
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        clone = tree_from_dict(tree_to_dict(tree))
        np.testing.assert_allclose(
            tree.feature_importances_, clone.feature_importances_
        )

    def test_unfit_tree_rejected(self):
        with pytest.raises(ValueError):
            tree_to_dict(DecisionTreeRegressor())

    def test_dict_is_json_compatible(self):
        import json

        X, y = _toy()
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        text = json.dumps(tree_to_dict(tree))
        clone = tree_from_dict(json.loads(text))
        np.testing.assert_array_equal(tree.predict(X), clone.predict(X))


class TestGBMSerialization:
    def test_roundtrip_predictions_identical(self):
        X, y = _toy()
        gbm = GradientBoostingRegressor(
            n_estimators=40, max_depth=3, monotone_constraints={0: 1}
        ).fit(X, y)
        clone = gbm_from_dict(gbm_to_dict(gbm))
        np.testing.assert_array_equal(gbm.predict(X), clone.predict(X))
        assert clone.monotone_constraints == {0: 1}

    def test_file_roundtrip(self, tmp_path):
        X, y = _toy()
        gbm = GradientBoostingRegressor(n_estimators=20).fit(X, y)
        path = str(tmp_path / "model.json")
        save_gbm(gbm, path)
        clone = load_gbm(path)
        np.testing.assert_array_equal(gbm.predict(X), clone.predict(X))

    def test_monotonicity_survives_roundtrip(self):
        X, y = _toy(seed=1)
        gbm = GradientBoostingRegressor(
            n_estimators=30, monotone_constraints={0: 1}
        ).fit(X, y)
        clone = gbm_from_dict(gbm_to_dict(gbm))
        rng = np.random.default_rng(0)
        for _ in range(10):
            ctx = rng.uniform(-2, 2, size=5)
            pts = np.tile(ctx, (30, 1))
            pts[:, 0] = np.linspace(-2, 2, 30)
            assert np.all(np.diff(clone.predict(pts)) >= -1e-9)

    def test_kind_and_version_validated(self):
        X, y = _toy()
        gbm = GradientBoostingRegressor(n_estimators=2).fit(X, y)
        data = gbm_to_dict(gbm)
        bad_kind = dict(data, kind="random_forest")
        with pytest.raises(ValueError, match="not a serialized GBM"):
            gbm_from_dict(bad_kind)
        bad_version = dict(data, format_version=99)
        with pytest.raises(ValueError, match="format version"):
            gbm_from_dict(bad_version)

    def test_unfit_gbm_rejected(self):
        with pytest.raises(ValueError):
            gbm_to_dict(GradientBoostingRegressor())
