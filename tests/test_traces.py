"""Tests for the synthetic production-trace substrate."""

import numpy as np
import pytest

from repro.traces import (
    DECODING_METHODS,
    DEFAULT_ARCHETYPES,
    TraceConfig,
    TraceDataset,
    synthesize_traces,
)


class TestArchetypes:
    def test_weights_sum_to_one(self):
        assert sum(a.weight for a in DEFAULT_ARCHETYPES) == pytest.approx(1.0)

    def test_token_sampling_within_platform_limits(self):
        rng = np.random.default_rng(0)
        for arch in DEFAULT_ARCHETYPES:
            inp, out = arch.sample_tokens(rng, 5000)
            assert inp.min() >= 1 and inp.max() <= 4093
            assert out.min() >= 1 and out.max() <= 1500

    def test_translation_tokens_strongly_correlated(self):
        rng = np.random.default_rng(1)
        arch = next(a for a in DEFAULT_ARCHETYPES if a.name == "translation")
        inp, out = arch.sample_tokens(rng, 20_000)
        r = np.corrcoef(np.log(inp), np.log(out))[0, 1]
        assert r > 0.75


class TestSynthesizer:
    def test_reproducible(self):
        a = synthesize_traces(n_requests=2000, seed=3)
        b = synthesize_traces(n_requests=2000, seed=3)
        np.testing.assert_array_equal(a["input_tokens"], b["input_tokens"])
        np.testing.assert_array_equal(a["latency_s"], b["latency_s"])

    def test_seed_changes_data(self):
        a = synthesize_traces(n_requests=2000, seed=3)
        b = synthesize_traces(n_requests=2000, seed=4)
        assert not np.array_equal(a["input_tokens"], b["input_tokens"])

    def test_table2_characteristics(self, traces):
        s = traces.summary()
        assert s["n_requests"] == 30_000
        assert s["n_llms"] == 24
        assert 5.0 <= s["time_period_months"] <= 6.0
        assert s["batch_size_range"] == (1, 5)
        assert s["input_tokens_range"][1] <= 4093
        assert s["output_tokens_range"][1] <= 1500
        assert s["n_additional_params"] >= 20

    def test_timestamps_sorted(self, traces):
        ts = traces["timestamp"]
        assert np.all(np.diff(ts) >= 0)

    def test_latency_positive(self, traces):
        assert np.all(traces["latency_s"] > 0)

    def test_output_tokens_dominate_latency(self, traces):
        """The paper's core §III-A finding must hold in the synthetic data."""
        lat = traces["latency_s"]
        r_out = abs(np.corrcoef(traces["output_tokens"], lat)[0, 1])
        r_in = abs(np.corrcoef(traces["input_tokens"], lat)[0, 1])
        assert r_out > r_in

    def test_batched_requests_have_short_sequences(self, traces):
        batch = traces["batch_size"]
        inp = traces["input_tokens"]
        assert inp[batch >= 4].max() <= 2048 // 4

    def test_decoding_method_values(self, traces):
        assert set(np.unique(traces["decoding_method"])) <= {0, 1, 2}
        assert len(DECODING_METHODS) == 3

    def test_greedy_has_zero_temperature(self, traces):
        greedy = traces["decoding_method"] == 0
        assert np.all(traces["temperature"][greedy] == 0.0)

    def test_beam_requests_have_multiple_beams(self, traces):
        beam = traces["decoding_method"] == 2
        if beam.any():
            assert np.all(traces["num_beams"][beam] >= 2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(n_requests=0)
        with pytest.raises(ValueError):
            TraceConfig(n_users=0)
        with pytest.raises(ValueError):
            TraceConfig(user_archetype_affinity=1.5)

    def test_platform_llm_size_range(self):
        t = synthesize_traces(n_requests=1000, seed=0)
        assert len(t.llm_names) == 24
        # names carry the size; extremes pinned to 3B and 176B
        assert t.llm_names[0].endswith("3B")
        assert t.llm_names[-1].endswith("176B")


class TestTraceDataset:
    def test_len_and_counts(self, traces):
        assert len(traces) == traces.n_requests == 30_000
        assert traces.n_users <= 800

    def test_param_matrix_shape(self, traces):
        X = traces.param_matrix()
        assert X.shape == (len(traces), len(traces.param_names()))

    def test_select_mask(self, traces):
        sub = traces.select(traces["batch_size"] > 1)
        assert len(sub) < len(traces)
        assert np.all(sub["batch_size"] > 1)

    def test_save_load_roundtrip(self, traces, tmp_path):
        path = str(tmp_path / "traces.npz")
        traces.save(path)
        loaded = TraceDataset.load(path)
        assert len(loaded) == len(traces)
        np.testing.assert_array_equal(loaded["output_tokens"], traces["output_tokens"])
        assert loaded.llm_names == traces.llm_names

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            TraceDataset(
                columns={
                    "timestamp": np.zeros(3),
                    "user_id": np.zeros(3),
                    "input_tokens": np.zeros(2),
                    "output_tokens": np.zeros(3),
                }
            )

    def test_missing_required_column_rejected(self):
        with pytest.raises(ValueError, match="missing column"):
            TraceDataset(columns={"timestamp": np.zeros(3)})

    def test_nbytes_positive(self, traces):
        assert traces.nbytes() > 0
