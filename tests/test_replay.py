"""Tests for the traces <-> simulation bridge: arrival logs and replay."""

import numpy as np
import pytest

from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.simulation import (
    ArrivalLog,
    LeastLoadedRouter,
    ReplayTraffic,
    RequestSource,
    WeightAwareRouter,
)
from repro.traces import TraceConfig, TraceSynthesizer


@pytest.fixture(scope="module")
def small_traces():
    """A tiny trace collection, separate from the session fixture's seed."""
    return TraceSynthesizer(TraceConfig(n_requests=4000), seed=7).generate()


@pytest.fixture(scope="module")
def log(small_traces):
    return ArrivalLog.from_trace(small_traces)


def make_log(times, inp=None, out=None, **kwargs):
    n = len(times)
    return ArrivalLog(
        times_s=np.asarray(times, dtype=float),
        input_tokens=np.asarray(inp if inp is not None else [32] * n),
        output_tokens=np.asarray(out if out is not None else [16] * n),
        **kwargs,
    )


class TestArrivalLog:
    def test_basic_accessors(self):
        log = make_log([0.0, 1.0, 3.0], inp=[10, 20, 30], out=[5, 5, 5])
        assert len(log) == 3
        assert log.duration_s == 3.0
        assert log.mean_rate_per_s == pytest.approx(2 / 3)
        np.testing.assert_array_equal(log.weights, [15, 25, 35])

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError, match="sorted"):
            make_log([1.0, 0.5])

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match=">= 0"):
            make_log([-1.0, 0.5])

    def test_rejects_zero_tokens(self):
        with pytest.raises(ValueError, match="input_tokens"):
            make_log([0.0], inp=[0], out=[4])

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValueError, match="ragged"):
            make_log([0.0, 1.0], inp=[1], out=[1, 1])

    def test_from_columns_sorts_and_rebases(self):
        log = ArrivalLog.from_columns(
            {
                "timestamp": [105.0, 100.0, 102.0],
                "input_tokens": [3, 1, 2],
                "output_tokens": [30, 10, 20],
            }
        )
        np.testing.assert_allclose(log.times_s, [0.0, 2.0, 5.0])
        np.testing.assert_array_equal(log.input_tokens, [1, 2, 3])

    def test_warp_compresses_times_only(self):
        log = make_log([0.0, 10.0, 20.0])
        fast = log.warp(10.0)
        np.testing.assert_allclose(fast.times_s, [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(fast.input_tokens, log.input_tokens)
        with pytest.raises(ValueError, match="positive"):
            log.warp(0.0)

    def test_warp_to_rate(self):
        log = make_log([0.0, 1.0, 2.0, 3.0])
        assert log.warp_to_rate(5.0).mean_rate_per_s == pytest.approx(5.0)

    def test_warp_to_rate_error_names_the_real_condition(self):
        # A single arrival has no rate...
        with pytest.raises(ValueError, match="mean arrival rate.*1 arrival"):
            make_log([0.0]).warp_to_rate(1.0)
        # ...and so does a log with many arrivals all at the same instant:
        # the old message blamed "fewer than 2 arrivals", which is wrong
        # here. The error must report the computed rate and the span.
        with pytest.raises(ValueError, match=r"3 arrival\(s\) spanning 0s"):
            make_log([0.0, 0.0, 0.0]).warp_to_rate(1.0)

    def test_clip_keeps_horizon(self):
        log = make_log([0.0, 1.0, 5.0, 9.0])
        assert len(log.clip(6.0)) == 3
        with pytest.raises(ValueError, match="positive"):
            log.clip(-1.0)

    def test_clip_is_half_open_at_the_horizon(self):
        # The simulation horizon is [0, horizon): an arrival stamped
        # exactly at the horizon belongs to the next window. Keeping it
        # would double-count it in clip-then-replay flows.
        log = make_log([0.0, 1.0, 5.0, 9.0])
        clipped = log.clip(5.0)
        assert len(clipped) == 2
        np.testing.assert_allclose(clipped.times_s, [0.0, 1.0])

    def test_for_tenant_filters_and_rebases(self):
        log = make_log(
            [0.0, 1.0, 2.0, 3.0],
            tenant=np.array(["a", "b", "a", "b"]),
        )
        sub = log.for_tenant("b")
        assert len(sub) == 2
        np.testing.assert_allclose(sub.times_s, [0.0, 2.0])
        with pytest.raises(ValueError, match="tenant column"):
            make_log([0.0]).for_tenant("a")

    def test_bootstrap_deterministic_and_scaled(self, log):
        a = log.bootstrap(500, rng=5, rate_per_s=4.0)
        b = log.bootstrap(500, rng=5, rate_per_s=4.0)
        assert len(a) == 500
        np.testing.assert_array_equal(a.times_s, b.times_s)
        np.testing.assert_array_equal(a.input_tokens, b.input_tokens)
        assert a.mean_rate_per_s == pytest.approx(4.0)
        # A different seed draws a different resample.
        c = log.bootstrap(500, rng=6, rate_per_s=4.0)
        assert not np.array_equal(a.input_tokens, c.input_tokens)

    def test_bootstrap_preserves_marginals(self, log):
        boot = log.bootstrap(4000, rng=1)
        assert abs(float(np.median(boot.weights)) - float(np.median(log.weights))) < (
            0.25 * float(np.median(log.weights)) + 1.0
        )

    def test_bootstrap_rejects_bad_n(self, log):
        with pytest.raises(ValueError, match=">= 1"):
            log.bootstrap(0)


class TestPersistence:
    @pytest.mark.parametrize("ext", ["csv", "jsonl"])
    def test_round_trip(self, tmp_path, ext):
        log = make_log(
            [0.0, 0.25, 1.5],
            inp=[10, 20, 30],
            out=[1, 2, 3],
            batch_size=np.array([1, 2, 1]),
            tenant=np.array(["chat", "batch", "chat"]),
            session=np.array([7, 8, 7]),
        )
        path = str(tmp_path / f"arrivals.{ext}")
        log.save(path)
        loaded = ArrivalLog.load(path)
        np.testing.assert_allclose(loaded.times_s, log.times_s)
        np.testing.assert_array_equal(loaded.input_tokens, log.input_tokens)
        np.testing.assert_array_equal(loaded.output_tokens, log.output_tokens)
        np.testing.assert_array_equal(loaded.batch_size, log.batch_size)
        np.testing.assert_array_equal(loaded.tenant.astype(str), log.tenant)
        assert [str(s) for s in loaded.session] == ["7", "8", "7"]

    def test_round_trip_without_optional_columns(self, tmp_path):
        log = make_log([0.0, 1.0])
        path = str(tmp_path / "arrivals.csv")
        log.save(path)
        loaded = ArrivalLog.load(path)
        assert loaded.tenant is None and loaded.session is None
        np.testing.assert_array_equal(loaded.batch_size, [1, 1])

    def test_unsupported_extension(self, tmp_path):
        log = make_log([0.0])
        with pytest.raises(ValueError, match="extension"):
            log.save(str(tmp_path / "arrivals.parquet"))
        with pytest.raises(ValueError, match="extension"):
            ArrivalLog.load(str(tmp_path / "arrivals.parquet"))

    def test_load_heterogeneous_jsonl_rows(self, tmp_path):
        # Optional columns may be present on only some rows: keep the
        # column, defaulting absent values, instead of crashing or
        # silently dropping it based on the first row.
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"timestamp": 0.0, "input_tokens": 4, "output_tokens": 2}\n'
            '{"timestamp": 1.0, "input_tokens": 8, "output_tokens": 2,'
            ' "session": "u1", "batch_size": 2}\n'
        )
        log = ArrivalLog.load(str(path))
        assert [str(s) for s in log.session] == ["", "u1"]
        np.testing.assert_array_equal(log.batch_size, [1, 2])

    def test_load_rejects_empty_and_missing_columns(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            ArrivalLog.load(str(empty))
        bad = tmp_path / "bad.csv"
        bad.write_text("timestamp,input_tokens\n0.0,5\n")
        with pytest.raises(ValueError, match="output_tokens"):
            ArrivalLog.load(str(bad))


class TestTraceBridge:
    def test_to_arrivals_rebases_and_sorts(self, small_traces):
        cols = small_traces.to_arrivals()
        assert cols["timestamp"][0] == 0.0
        assert np.all(np.diff(cols["timestamp"]) >= 0)
        assert cols["input_tokens"].size == len(small_traces)
        assert "user_id" in cols

    def test_to_arrivals_llm_selection(self, small_traces):
        name = small_traces.llm_names[0]
        by_name = small_traces.to_arrivals(llm=name)
        by_index = small_traces.to_arrivals(llm=0)
        np.testing.assert_array_equal(by_name["timestamp"], by_index["timestamp"])
        assert by_name["timestamp"].size < len(small_traces)
        with pytest.raises(KeyError, match="unknown LLM"):
            small_traces.to_arrivals(llm="not-a-model")

    def test_to_arrivals_window(self, small_traces):
        span = small_traces.time_span_days() * 86_400.0
        windowed = small_traces.to_arrivals(start_s=0.0, duration_s=span / 2)
        assert 0 < windowed["timestamp"].size < len(small_traces)

    def test_from_trace_carries_sessions(self, small_traces, log):
        assert len(log) == len(small_traces)
        assert log.session is not None
        assert log.session.size == len(log)


def small_deployment(generator, n_pods=1, router=None):
    return Deployment(
        llm=get_llm("Llama-2-7b"),
        profile=parse_profile("1xA10-24GB"),
        n_pods=n_pods,
        max_batch_weight=12_000,
        generator=generator,
        seed=0,
    )


class TestReplayTraffic:
    def test_pops_in_log_order(self, generator):
        log = make_log([0.0, 0.5, 2.0], inp=[10, 20, 30], out=[4, 5, 6])
        traffic = ReplayTraffic(log)
        source = RequestSource(generator, np.random.default_rng(0), 12_000)
        seen = []
        while traffic.peek() is not None:
            t, req = traffic.pop(source)
            seen.append((t, req.input_tokens, req.output_tokens))
        assert seen == [(0.0, 10, 4), (0.5, 20, 5), (2.0, 30, 6)]
        assert traffic.remaining == 0
        with pytest.raises(RuntimeError, match="exhausted"):
            traffic.pop(source)

    def test_truncates_to_max_weight(self, generator):
        log = make_log([0.0], inp=[8000], out=[8000])
        traffic = ReplayTraffic(log)
        source = RequestSource(generator, np.random.default_rng(0), 4000)
        _, req = traffic.pop(source)
        assert req.weight <= 4000
        # Proportional: the recorded 50/50 input/output shape survives.
        assert req.input_tokens == req.output_tokens

    def test_truncates_batch_dominated_weight(self, generator):
        # A huge client batch of tiny requests: the token floors cannot
        # absorb the clamp, so the batch itself must shrink too.
        log = make_log(
            [0.0, 1.0],
            inp=[10, 50],
            out=[10, 30],
            batch_size=np.array([10_000, 200]),
        )
        traffic = ReplayTraffic(log)
        source = RequestSource(generator, np.random.default_rng(0), 12_000)
        for _ in range(2):
            _, req = traffic.pop(source)
            assert req.weight <= 12_000

    def test_speedup_and_horizon(self):
        log = make_log([0.0, 10.0, 20.0, 30.0])
        traffic = ReplayTraffic(log, speedup=10.0, horizon_s=2.5)
        assert traffic.remaining == 3  # 0, 1, 2s survive the clipped horizon
        with pytest.raises(ValueError, match="no arrivals"):
            ReplayTraffic(make_log([]))

    def test_fleet_replay_conserves_arrivals(self, generator, log):
        replay_log = log.bootstrap(120, rng=2, rate_per_s=4.0)
        deployment = small_deployment(generator, n_pods=2)
        res = deployment.simulate(
            ReplayTraffic(replay_log),
            duration_s=replay_log.duration_s + 30.0,
            router=LeastLoadedRouter(),
            stream_label="replay-test",
        )
        res.verify_conservation()
        assert res.arrivals == len(replay_log)
        assert res.traffic == "replay"

    def test_fleet_replay_deterministic(self, generator, log):
        replay_log = log.bootstrap(80, rng=3, rate_per_s=3.0)

        def run():
            deployment = small_deployment(generator, n_pods=2)
            return deployment.simulate(
                ReplayTraffic(replay_log),
                duration_s=60.0,
                router=WeightAwareRouter(),
                stream_label="replay-test",
            )

        a, b = run(), run()
        assert a.arrivals == b.arrivals
        assert a.requests_completed == b.requests_completed
        assert a.ttft.median_s == b.ttft.median_s
        assert a.ttft.p95_s == b.ttft.p95_s
        assert a.tokens_generated == b.tokens_generated


class TestGoldenReplay:
    """Golden pin for one replayed-fleet run.

    Pins the whole traces -> arrival log -> bootstrap -> replay ->
    weight-aware-routed fleet pipeline to values captured when the
    replay layer was introduced. Any drift in trace synthesis, the
    bridge, seeded bootstrap, replay injection or the router shows up
    here as an exact mismatch.
    """

    def test_replayed_fleet_run_pinned(self, generator):
        traces = TraceSynthesizer(TraceConfig(n_requests=4000), seed=7).generate()
        log = ArrivalLog.from_trace(traces).bootstrap(100, rng=9, rate_per_s=4.0)
        deployment = Deployment(
            llm=get_llm("Llama-2-7b"),
            profile=parse_profile("1xA10-24GB"),
            n_pods=2,
            max_batch_weight=12_000,
            generator=generator,
            seed=0,
        )
        res = deployment.simulate(
            ReplayTraffic(log),
            duration_s=60.0,
            router=WeightAwareRouter(),
            stream_label="golden-replay",
        )
        res.verify_conservation()
        assert res.arrivals == 100
        assert res.requests_completed == 92
        assert res.tokens_generated == 20_561
        assert res.ttft.median_s == pytest.approx(0.579022344, abs=1e-8)
        assert res.ttft.p95_s == pytest.approx(22.350932471, abs=1e-8)
        assert res.itl.median_s == pytest.approx(0.055563675, abs=1e-8)
        assert res.throughput_tokens_per_s == pytest.approx(342.547868623, abs=1e-6)


class _StubPod:
    def __init__(self, committed):
        self.batch_weight_in_use = committed
        self.pending_weight = 0


class _StubRequest:
    def __init__(self, weight):
        self.weight = weight


class TestWeightAwareRouter:
    def test_validation(self):
        with pytest.raises(ValueError, match="heavy_pod_fraction"):
            WeightAwareRouter(heavy_pod_fraction=0.0)
        with pytest.raises(ValueError, match="heavy_pod_fraction"):
            WeightAwareRouter(heavy_pod_fraction=1.0)
        with pytest.raises(ValueError, match=">= 1"):
            WeightAwareRouter(warmup=0)

    def test_warmup_falls_back_to_least_loaded(self):
        router = WeightAwareRouter(warmup=100)
        pods = [_StubPod(500), _StubPod(100), _StubPod(300)]
        assert router.route(_StubRequest(50), 0.0, pods) == 1

    def test_single_pod_always_zero(self):
        router = WeightAwareRouter(warmup=1)
        assert router.route(_StubRequest(50), 0.0, [_StubPod(0)]) == 0

    def test_heavy_requests_confined_to_heavy_tier(self):
        router = WeightAwareRouter(heavy_pod_fraction=0.25, warmup=1)
        pods = [_StubPod(0), _StubPod(0), _StubPod(0), _StubPod(10_000)]
        # Teach the router a weight distribution: many mice, few elephants.
        for _ in range(99):
            router.route(_StubRequest(100), 0.0, pods)
        # An elephant goes to the heavy tier (last pod) even though it
        # carries far more committed load than the light pods.
        assert router.route(_StubRequest(50_000), 0.0, pods) == 3
        # Mice keep the light tier.
        assert router.route(_StubRequest(100), 0.0, pods) in (0, 1, 2)

    def test_uniform_weights_fall_back_to_least_loaded(self):
        # Constant weights make the SITA threshold degenerate: no
        # request is "heavy", so the router must not idle the heavy
        # tier — it degrades to fleet-wide least-loaded instead.
        router = WeightAwareRouter(warmup=1)
        pods = [_StubPod(500), _StubPod(500), _StubPod(500), _StubPod(0)]
        for _ in range(100):
            assert router.route(_StubRequest(100), 0.0, pods) == 3

    def test_reset_clears_history(self):
        router = WeightAwareRouter(warmup=2)
        pods = [_StubPod(0), _StubPod(0)]
        router.route(_StubRequest(10), 0.0, pods)
        router.route(_StubRequest(10), 0.0, pods)
        router.reset()
        assert router._seen == 0 and router._weights == []
