"""Tests for autoscaling policies, the elastic fleet and admission control."""

import math

import numpy as np
import pytest

from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.simulation import (
    AdmissionController,
    Autoscaler,
    AutoscaleConfig,
    FleetSimulator,
    FleetView,
    LeastLoadedRouter,
    MetricsCollector,
    NoOpPolicy,
    PoissonTraffic,
    PredictivePolicy,
    RequestSource,
    RoundRobinRouter,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng, spawn_seed

LLM = get_llm("Llama-2-13b")
PROFILE = parse_profile("1xA100-80GB")
WEIGHT = 20_000


def _factory(seed):
    def make(serial):
        return ContinuousBatchingEngine(
            LLM, PROFILE, max_batch_weight=WEIGHT, seed=spawn_seed(seed, "pod", serial)
        )

    return make


def _fleet(generator, traffic, seed=0, n_pods=1, autoscaler=None, router=None):
    factory = _factory(seed)
    source = RequestSource(generator, derive_rng(seed, "autoscale-test"), WEIGHT)
    return FleetSimulator(
        [factory(i) for i in range(n_pods)],
        traffic,
        router or LeastLoadedRouter(),
        source,
        autoscaler=autoscaler,
        pod_factory=factory,
    )


def _view(**overrides):
    defaults = dict(
        time=100.0,
        pods=2,
        starting=0,
        draining=0,
        queue_depth=0,
        active_requests=4,
        utilization=0.5,
        p95_ttft_s=1.0,
        arrival_times_s=np.array([40.0, 50.0, 60.0, 70.0, 80.0, 90.0]),
        arrival_rates_per_s=np.array([1.0, 1.5, 2.0, 2.5, 3.0, 3.5]),
    )
    defaults.update(overrides)
    return FleetView(**defaults)


class TestPolicies:
    def test_noop_keeps_provisioned(self):
        assert NoOpPolicy().desired_pods(_view(pods=3, starting=2)) == 5

    def test_threshold_scales_up_on_breach(self):
        policy = ThresholdPolicy(slo_p95_ttft_s=2.0)
        assert policy.desired_pods(_view(p95_ttft_s=3.0)) == 3

    def test_threshold_scales_down_when_cold_and_idle(self):
        policy = ThresholdPolicy(slo_p95_ttft_s=2.0, low_fraction=0.5)
        assert policy.desired_pods(_view(p95_ttft_s=0.5, queue_depth=0)) == 1
        # Queued work blocks the scale-down even below the low-water mark.
        assert policy.desired_pods(_view(p95_ttft_s=0.5, queue_depth=3)) == 2

    def test_threshold_holds_in_band_and_on_nan(self):
        policy = ThresholdPolicy(slo_p95_ttft_s=2.0)
        assert policy.desired_pods(_view(p95_ttft_s=1.5)) == 2
        # NaN tail with in-flight work: warm-up transient, hold.
        assert policy.desired_pods(_view(p95_ttft_s=float("nan"))) == 2

    def test_threshold_shrinks_idle_fleet(self):
        policy = ThresholdPolicy(slo_p95_ttft_s=2.0)
        idle = _view(p95_ttft_s=float("nan"), queue_depth=0, active_requests=0)
        assert policy.desired_pods(idle) == 1

    def test_target_utilization_hpa_formula(self):
        policy = TargetUtilizationPolicy(target=0.5, tolerance=0.1)
        # 2 pods at 0.9 utilization -> ceil(2 * 0.9/0.5) = 4.
        assert policy.desired_pods(_view(utilization=0.9)) == 4
        # 2 pods at 0.2 -> ceil(2 * 0.4) = 1.
        assert policy.desired_pods(_view(utilization=0.2)) == 1

    def test_target_utilization_dead_band_and_warming_damping(self):
        policy = TargetUtilizationPolicy(target=0.5, tolerance=0.1)
        assert policy.desired_pods(_view(utilization=0.53)) == 2
        # Warming pods already cover the ask: no further scale-up.
        assert policy.desired_pods(_view(utilization=0.9, starting=3)) == 5

    def test_predictive_extrapolates_rising_series(self):
        policy = PredictivePolicy(
            requests_per_pod_per_s=2.0, horizon_s=20.0, fit_windows=6, safety=1.0
        )
        view = _view()  # rate = 0.05*t - 1.0 on the fitted points
        forecast = policy.forecast_rate(view)
        # Evaluated horizon_s past the decision time: 0.05*(100+20) - 1.
        assert forecast == pytest.approx(5.0, rel=1e-9)
        assert policy.desired_pods(view) == math.ceil(forecast / 2.0)

    def test_predictive_empty_and_single_point_series(self):
        policy = PredictivePolicy(requests_per_pod_per_s=2.0)
        # No observed window yet: hold, don't mistake missing data for
        # zero traffic and collapse the fleet.
        empty = _view(arrival_times_s=np.empty(0), arrival_rates_per_s=np.empty(0))
        assert policy.desired_pods(empty) == 2
        single = _view(
            arrival_times_s=np.array([90.0]), arrival_rates_per_s=np.array([5.0])
        )
        assert policy.forecast_rate(single) == 5.0

    def test_autoscaler_clamps_to_bounds(self):
        config = AutoscaleConfig(min_pods=2, max_pods=4)
        scaler = Autoscaler(ThresholdPolicy(slo_p95_ttft_s=2.0), config)
        assert scaler.desired_pods(_view(pods=4, p95_ttft_s=9.0)) == 4
        assert scaler.desired_pods(_view(pods=2, p95_ttft_s=0.1)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(slo_p95_ttft_s=0.0)
        with pytest.raises(ValueError):
            ThresholdPolicy(slo_p95_ttft_s=1.0, low_fraction=1.5)
        with pytest.raises(ValueError):
            TargetUtilizationPolicy(target=0.0)
        with pytest.raises(ValueError):
            PredictivePolicy(requests_per_pod_per_s=0.0)
        with pytest.raises(ValueError):
            PredictivePolicy(requests_per_pod_per_s=1.0, fit_windows=1)
        with pytest.raises(ValueError):
            AutoscaleConfig(decision_interval_s=0.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_pods=3, max_pods=2)


class TestElasticFleet:
    def _overload_scaler(self, **config):
        defaults = dict(
            decision_interval_s=10.0, max_pods=4, cold_start_s=5.0,
            metrics_window_s=20.0,
        )
        defaults.update(config)
        return Autoscaler(
            ThresholdPolicy(slo_p95_ttft_s=1.0), AutoscaleConfig(**defaults)
        )

    def test_scales_up_under_overload(self, generator):
        traffic = PoissonTraffic(6.0, rng=derive_rng(0, "overload"))
        fleet = _fleet(generator, traffic, autoscaler=self._overload_scaler())
        res = fleet.run(duration_s=120.0)
        res.verify_conservation()
        assert res.scale_events
        assert all(e.direction == "up" for e in res.scale_events[:1])
        assert res.n_pods > 1
        assert len(res.per_pod) > 1

    def test_cold_start_delays_service(self, generator):
        cold = 8.0
        traffic = PoissonTraffic(6.0, rng=derive_rng(1, "cold"))
        fleet = _fleet(
            generator, traffic, seed=1,
            autoscaler=self._overload_scaler(cold_start_s=cold),
        )
        res = fleet.run(duration_s=90.0)
        first_up = next(e for e in res.scale_events if e.direction == "up")
        late_pods = [p for p in res.per_pod if p.pod >= 1 and p.arrivals_routed]
        assert late_pods, "scale-up never served traffic"
        for pod_stats in late_pods:
            engine = fleet.all_pods[pod_stats.pod]
            first_served = min(r.submitted_at for r in engine.metrics.completed)
            assert first_served >= first_up.time_s + cold

    def test_drains_and_retires_on_scale_down(self, generator):
        # A burst that ends: rate collapses after the first 60s window
        # because the diurnal trough hits, so the fleet must shrink.
        from repro.simulation import DiurnalTraffic

        traffic = DiurnalTraffic(
            2.5, rng=derive_rng(2, "downscale"), amplitude=0.95, period_s=120.0
        )
        fleet = _fleet(generator, traffic, seed=2, autoscaler=self._overload_scaler())
        res = fleet.run(duration_s=240.0)
        res.verify_conservation()
        downs = [e for e in res.scale_events if e.direction == "down"]
        assert downs
        states = [p.state for p in res.per_pod]
        assert "retired" in states
        # Retired pods' tokens are still counted — exactly once.
        assert res.tokens_generated == sum(p.tokens_generated for p in res.per_pod)
        assert res.requests_completed == sum(
            p.requests_completed for p in res.per_pod
        )

    def test_deterministic_event_log(self, generator):
        def run():
            traffic = PoissonTraffic(6.0, rng=derive_rng(3, "det"))
            fleet = _fleet(
                generator, traffic, seed=3, autoscaler=self._overload_scaler()
            )
            return fleet.run(duration_s=90.0)

        a, b = run(), run()
        assert a.scale_events == b.scale_events
        assert a.arrivals == b.arrivals
        assert a.tokens_generated == b.tokens_generated
        assert a.ttft.median_s == b.ttft.median_s
        assert a.pod_seconds == b.pod_seconds

    def test_pod_seconds_accounting(self, generator):
        traffic = PoissonTraffic(6.0, rng=derive_rng(4, "bill"))
        fleet = _fleet(generator, traffic, seed=4, autoscaler=self._overload_scaler())
        res = fleet.run(duration_s=100.0)
        # Never below the always-on floor, never above max_pods flat-out.
        assert res.pod_seconds >= res.time_s
        assert res.pod_seconds <= 4 * res.time_s
        static = _fleet(
            generator, PoissonTraffic(6.0, rng=derive_rng(4, "bill")), seed=4
        ).run(duration_s=100.0)
        assert static.pod_seconds == pytest.approx(static.time_s)

    def test_autoscaler_requires_pod_factory(self, generator):
        source = RequestSource(generator, derive_rng(0, "x"), WEIGHT)
        with pytest.raises(ValueError, match="pod_factory"):
            FleetSimulator(
                [_factory(0)(0)],
                PoissonTraffic(1.0, rng=derive_rng(0, "y")),
                RoundRobinRouter(),
                source,
                autoscaler=self._overload_scaler(),
            )


class _StubPod:
    """A pod exposing only what the admission controller reads."""

    def __init__(self):
        self.metrics = MetricsCollector()


class TestAdmissionController:
    def _controller(self, **kw):
        defaults = dict(slo_p95_ttft_s=1.0, window_s=10.0, min_samples=4)
        defaults.update(kw)
        return AdmissionController(RoundRobinRouter(), **defaults)

    def _pods_with_ttft(self, values, now):
        pod = _StubPod()
        for v in values:
            pod.metrics.record_first_token(v, 100, now=now)
        return [pod]

    def _request(self, request_id=0):
        from repro.inference import InferenceRequest

        return InferenceRequest(
            request_id=request_id, input_tokens=10, output_tokens=10
        )

    def test_admits_below_slo(self):
        ctl = self._controller()
        pods = self._pods_with_ttft([0.1] * 10, now=5.0)
        assert ctl.admit(self._request(), 5.0, pods) == "admit"
        assert ctl.admitted == 1

    def test_sheds_above_slo(self):
        ctl = self._controller()
        pods = self._pods_with_ttft([5.0] * 10, now=5.0)
        assert ctl.admit(self._request(), 5.0, pods) == "shed"
        assert ctl.shed == 1

    def test_admits_when_too_few_samples(self):
        ctl = self._controller(min_samples=8)
        pods = self._pods_with_ttft([5.0] * 3, now=5.0)
        assert ctl.admit(self._request(), 5.0, pods) == "admit"

    def test_p95_cached_within_refresh_quantum(self):
        ctl = self._controller(refresh_s=2.0)
        pods = self._pods_with_ttft([5.0] * 10, now=5.0)
        assert ctl.admit(self._request(), 5.0, pods) == "shed"
        # New (fast) samples arrive, but the estimate is < refresh_s old.
        pods[0].metrics.reset()
        for _ in range(10):
            pods[0].metrics.record_first_token(0.01, 100, now=6.0)
        assert ctl.admit(self._request(), 6.0, pods) == "shed"
        # Past the quantum the fresh samples are picked up.
        assert ctl.admit(self._request(), 7.5, pods) == "admit"

    def test_windowed_p95_on_merged_collector(self):
        # merged() interleaves per-pod streams, so the trailing-window
        # cut must not assume monotone record times.
        a, b = MetricsCollector(), MetricsCollector()
        for t, v in ((1.0, 9.0), (50.0, 1.0)):
            a.record_first_token(v, 100, now=t)
        for t, v in ((2.0, 9.0), (51.0, 2.0)):
            b.record_first_token(v, 100, now=t)
        merged = MetricsCollector.merged([a, b])
        np.testing.assert_array_equal(sorted(merged.ttft_since(40.0)), [1.0, 2.0])

    def test_old_samples_age_out_of_window(self):
        ctl = self._controller(window_s=10.0)
        pods = self._pods_with_ttft([5.0] * 10, now=5.0)
        # At t=50 the breach at t=5 is ancient history.
        assert ctl.admit(self._request(), 50.0, pods) == "admit"

    def test_defer_then_shed_after_max_defers(self):
        ctl = self._controller(mode="defer", max_defers=2)
        pods = self._pods_with_ttft([5.0] * 10, now=5.0)
        request = self._request(request_id=7)
        assert ctl.admit(request, 5.0, pods) == "defer"
        assert ctl.admit(request, 6.0, pods) == "defer"
        assert ctl.admit(request, 7.0, pods) == "shed"
        assert ctl.deferred == 2
        assert ctl.shed == 1

    def test_routes_via_inner(self):
        ctl = self._controller()
        assert ctl.name == "admission(round-robin)"
        pods = [_StubPod(), _StubPod()]
        assert ctl.route(self._request(), 0.0, pods) == 0
        assert ctl.route(self._request(), 0.0, pods) == 1
        ctl.reset()
        assert ctl.route(self._request(), 0.0, pods) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._controller(slo_p95_ttft_s=0.0)
        with pytest.raises(ValueError):
            self._controller(mode="drop")
        with pytest.raises(ValueError):
            self._controller(retry_delay_s=0.0)

    def test_integration_sheds_under_overload(self, generator):
        traffic = PoissonTraffic(8.0, rng=derive_rng(5, "shed"))
        router = AdmissionController(
            LeastLoadedRouter(), slo_p95_ttft_s=0.5, window_s=20.0
        )
        fleet = _fleet(generator, traffic, seed=5, router=router)
        res = fleet.run(duration_s=120.0)
        res.verify_conservation()
        assert res.shed > 0
        assert res.admitted + res.shed == res.arrivals
        assert res.admitted == sum(fleet.routed_counts)
        # The controller's own tally agrees with the fleet's.
        assert router.shed == res.shed

    def test_integration_defer_retries(self, generator):
        traffic = PoissonTraffic(8.0, rng=derive_rng(6, "defer"))
        router = AdmissionController(
            LeastLoadedRouter(),
            slo_p95_ttft_s=0.5,
            window_s=20.0,
            mode="defer",
            retry_delay_s=3.0,
        )
        fleet = _fleet(generator, traffic, seed=6, router=router)
        res = fleet.run(duration_s=120.0)
        res.verify_conservation()
        assert res.deferrals > 0

    def test_defer_exhaustion_sheds_at_fleet_level(self, generator):
        """Persistent overload drains the retry budget: max_defers
        exhausted turns into fleet-level shed, and arrivals are still
        conserved (a deferred request is counted as one arrival no
        matter how many times it is re-offered)."""
        traffic = PoissonTraffic(10.0, rng=derive_rng(7, "defer-exhaust"))
        router = AdmissionController(
            LeastLoadedRouter(),
            slo_p95_ttft_s=0.2,
            window_s=30.0,
            mode="defer",
            retry_delay_s=2.0,
            max_defers=2,
        )
        fleet = _fleet(generator, traffic, seed=7, router=router)
        res = fleet.run(duration_s=120.0)
        res.verify_conservation()
        assert res.deferrals > 0
        assert res.shed > 0
        # The controller's tallies agree with the fleet's.
        assert router.deferred == res.deferrals
        assert router.shed == res.shed
        # Re-offers never inflate the arrival count.
        assert res.arrivals == res.admitted + res.shed
        assert res.admitted == sum(fleet.routed_counts)

    def test_defer_with_autoscaler_end_to_end(self, generator):
        """Defer mode rides the elastic fleet: deferred arrivals retry
        while the autoscaler adds capacity, so deferrals convert into
        served work instead of rejections once pods arrive."""
        traffic = PoissonTraffic(6.0, rng=derive_rng(8, "defer-scale"))
        router = AdmissionController(
            LeastLoadedRouter(),
            slo_p95_ttft_s=0.5,
            window_s=20.0,
            mode="defer",
            retry_delay_s=3.0,
            max_defers=5,
        )
        fleet = _fleet(
            generator, traffic, seed=8, router=router,
            autoscaler=self._overload_autoscaler(),
        )
        res = fleet.run(duration_s=120.0)
        res.verify_conservation()
        assert res.deferrals > 0
        assert res.scale_events, "overload must trigger scale-ups"
        assert res.n_pods > 1
        assert res.requests_completed > 0

    def _overload_autoscaler(self):
        return Autoscaler(
            ThresholdPolicy(slo_p95_ttft_s=1.0),
            AutoscaleConfig(
                decision_interval_s=10.0, max_pods=4,
                cold_start_s=5.0, metrics_window_s=20.0,
            ),
        )

    def test_defer_mode_in_cluster_co_simulation(self, generator):
        """Defer mode at the cluster layer: deferred retries cross the
        shared clock without breaking tenant conservation or the
        inventory ledger."""
        from repro.simulation import (
            ClusterInventory, ClusterSimulator, TenantGroup,
        )

        def tenant(name, seed, rate):
            router = AdmissionController(
                LeastLoadedRouter(),
                slo_p95_ttft_s=0.5,
                window_s=20.0,
                mode="defer",
                retry_delay_s=2.0,
            )
            fleet = _fleet(
                generator,
                PoissonTraffic(rate, rng=derive_rng(seed, "cluster-defer", name)),
                seed=seed,
                router=router,
                autoscaler=self._overload_autoscaler(),
            )
            return TenantGroup(name, fleet, PROFILE.name)

        sim = ClusterSimulator(
            [tenant("a", 10, 6.0), tenant("b", 11, 6.0)],
            ClusterInventory(capacity={PROFILE.gpu.name: 3}),
        )
        res = sim.run(duration_s=90.0)
        res.verify_conservation()
        assert sum(r.deferrals for r in res.results.values()) > 0
        assert res.contended_scale_events(), "capacity 3 must contend"
