"""Setup shim: enables `python setup.py develop` / legacy editable installs
in offline environments that lack the `wheel` package (PEP 660 editable
installs require it). Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
