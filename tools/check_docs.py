#!/usr/bin/env python
"""Docs gate: intra-repo markdown links must resolve.

Scans ``README.md`` and ``docs/*.md`` for markdown links and fails
(exit 1, one line per problem) when a relative link points at a file
that does not exist in the repo. External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are not checked.

Run from anywhere: paths resolve against the repo root (this file's
parent's parent). The CI docs job runs this plus
``python -m doctest docs/scenarios.md``; ``tests/test_docs.py`` runs
both as part of the tier-1 suite.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def broken_links(path: Path) -> list[str]:
    """Unresolvable relative link targets in one markdown file."""
    problems = []
    text = path.read_text()
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            shown = (
                path.relative_to(REPO_ROOT)
                if path.is_relative_to(REPO_ROOT)
                else path
            )
            problems.append(f"{shown}: broken link -> {target}")
    return problems


def main() -> int:
    problems = []
    for doc in doc_files():
        problems.extend(broken_links(doc))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"docs OK: {len(doc_files())} files, all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
