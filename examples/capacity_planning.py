#!/usr/bin/env python
"""Capacity planning: pod scaling and latency/throughput trade-offs.

Two production questions the paper's machinery answers directly:

1. *How many pods do I need as my user base grows?* — replicated
   deployments scale near-perfectly with the pod count (paper §II-C,
   Table I), so per-pod throughput depends only on the users-per-pod
   ratio.
2. *Which GPU gives the best latency/throughput/cost trade-off?* —
   sweep the load ladder per profile and compare ITL against throughput
   per dollar (paper Fig 7).

Run:  python examples/capacity_planning.py
"""

from repro import quickstart_generator
from repro.characterization import (
    CharacterizationConfig,
    CharacterizationTool,
    check_feasibility,
)
from repro.cluster import Deployment
from repro.hardware import aws_like_pricing, parse_profile
from repro.models import get_llm
from repro.utils.tables import format_table

LLM = "google/flan-t5-xxl"
SCALING_PROFILE = "1xA100-40GB"
TRADEOFF_PROFILES = ("1xH100-80GB", "1xA100-40GB", "2xA10-24GB", "4xT4-16GB")


def pod_scaling(generator) -> None:
    llm = get_llm(LLM)
    profile = parse_profile(SCALING_PROFILE)
    report = check_feasibility(llm, profile, generator.max_request_weight())
    deployment = Deployment(
        llm=llm,
        profile=profile,
        n_pods=1,
        max_batch_weight=report.max_batch_weight,
        generator=generator,
        seed=0,
    )
    rows = []
    for pods in (1, 2, 4):
        for users in (8, 16, 32):
            res = deployment.scale(pods).run_load_test(users, duration_s=30.0)
            rows.append(
                [pods, users, users / pods, res.mean_throughput_per_pod,
                 res.total_throughput]
            )
    print(
        format_table(
            ["pods", "users", "users/pod", "tokens/s per pod", "total tokens/s"],
            rows,
            floatfmt=".1f",
            title=f"Pod scaling for {LLM} on {SCALING_PROFILE}:",
        )
    )
    print(
        "Rows with equal users/pod show near-equal per-pod throughput — "
        "the near-perfect scaling of Table I.\n"
    )


def tradeoffs(generator) -> None:
    llm = get_llm(LLM)
    pricing = aws_like_pricing()
    tool = CharacterizationTool(
        generator,
        CharacterizationConfig(duration_s=30.0, user_counts=(1, 8, 32, 128), seed=0),
    )
    rows = []
    for name in TRADEOFF_PROFILES:
        profile = parse_profile(name)
        report, records = tool.characterize_pair(llm, profile)
        if not report.feasible:
            continue
        cost = pricing.pod_cost(profile)
        peak = max(records, key=lambda r: r.throughput_tokens_per_s)
        rows.append(
            [
                name,
                peak.throughput_tokens_per_s,
                peak.itl_median_s * 1e3,
                cost,
                peak.throughput_tokens_per_s / cost,
            ]
        )
    rows.sort(key=lambda r: -r[-1])
    print(
        format_table(
            ["profile", "peak tokens/s", "ITL @peak (ms)", "$/h", "tokens/s per $"],
            rows,
            floatfmt=".1f",
            title=f"Latency / throughput-per-dollar trade-off for {LLM} (Fig 7c):",
        )
    )
    print(
        "High-memory GPUs win on absolute throughput and latency; "
        "cheaper GPUs often win per dollar — unless the SLA is tight."
    )


def main() -> None:
    generator = quickstart_generator(n_requests=60_000, seed=0)
    pod_scaling(generator)
    tradeoffs(generator)


if __name__ == "__main__":
    main()
