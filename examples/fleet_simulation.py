#!/usr/bin/env python
"""Fleet simulation: one deployment, many traffic shapes, three routers.

The paper's harness (§III-C3) is a single-pod closed-loop ladder. The
event-driven simulation core generalizes it: here a 3-pod Llama-2-13b
deployment is co-simulated on one shared virtual clock under

1. steady Poisson arrivals,
2. a diurnal (sinusoidal) load cycle, and
3. 2-state MMPP on/off bursts,

each through round-robin, least-loaded and join-shortest-queue front-end
routing, comparing throughput and tail latency (p50/p95/p99).

Run:  python examples/fleet_simulation.py
"""

import time

from repro import quickstart_generator
from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.simulation import (
    ROUTERS,
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

PODS = 3
DURATION_S = 120.0
SEED = 0


def make_traffic(kind: str):
    rng = derive_rng(SEED, "example-traffic", kind)
    if kind == "poisson":
        return PoissonTraffic(5.0, rng=rng)
    if kind == "diurnal":
        return DiurnalTraffic(5.0, rng=rng, amplitude=0.9, period_s=60.0)
    return BurstyTraffic(12.0, rng=rng, mean_on_s=15.0, mean_off_s=25.0)


def main() -> None:
    t0 = time.time()
    generator = quickstart_generator(n_requests=60_000, seed=SEED)
    deployment = Deployment(
        llm=get_llm("Llama-2-13b"),
        profile=parse_profile("1xA100-80GB"),
        n_pods=PODS,
        max_batch_weight=20_000,
        generator=generator,
        seed=SEED,
    )

    for kind in ("poisson", "diurnal", "bursty"):
        rows = []
        for router_name, router_cls in sorted(ROUTERS.items()):
            res = deployment.simulate(
                make_traffic(kind),
                duration_s=DURATION_S,
                router=router_cls(),
                stream_label=f"example-{kind}",
            )
            rows.append(
                [
                    router_name,
                    res.arrivals,
                    res.requests_completed,
                    res.throughput_tokens_per_s,
                    res.ttft.median_s,
                    res.ttft.p95_s,
                    res.ttft.p99_s,
                ]
            )
        print(
            format_table(
                ["router", "arrivals", "done", "tok/s", "ttft p50",
                 "ttft p95", "ttft p99"],
                rows,
                floatfmt=".3f",
                title=f"\n{kind} traffic on {PODS} pods ({DURATION_S:.0f}s):",
            )
        )

    print(f"\n[{time.time() - t0:.1f}s wall]")


if __name__ == "__main__":
    main()
