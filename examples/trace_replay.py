#!/usr/bin/env python
"""Trace replay and declarative scenarios, end to end.

Phase 1 — bridge: synthesize a production-like trace collection, export
it to an :class:`ArrivalLog` (the plain CSV/JSONL arrival schema), and
bootstrap it to a simulatable rate with a fixed seed.

Phase 2 — weight-aware routing: replay the bootstrapped log against a
4-pod fleet under queue-depth routing (JSQ) and weight-aware routing.
The replayed request weights are heavy-tailed, so isolating the heavy
tail onto a dedicated pod tier protects the p95 TTFT of the light
majority.

Phase 3 — scenarios: express the same experiment as a declarative
scenario spec, write it to JSON, and run it from the file alone — the
exact artifact ``repro-pilot simulate --scenario FILE`` consumes.

Run:  python examples/trace_replay.py
"""

import json
import os
import tempfile
import time

from repro import quickstart_generator
from repro.cluster import Deployment
from repro.hardware import parse_profile
from repro.models import get_llm
from repro.simulation import ArrivalLog, ReplayTraffic, ROUTERS, ScenarioSpec
from repro.traces import TraceConfig, TraceSynthesizer
from repro.utils.tables import format_table

PODS = 4
DURATION_S = 240.0
RATE_PER_S = 6.0
SEED = 0


def main() -> None:
    t0 = time.time()

    # Phase 1: trace -> arrival log -> seeded bootstrap.
    traces = TraceSynthesizer(TraceConfig(n_requests=40_000), seed=SEED).generate()
    log = ArrivalLog.from_trace(traces)
    print(
        f"Bridged {len(log):,} trace rows to an arrival log spanning "
        f"{log.duration_s / 86_400:.0f} days (mean rate "
        f"{log.mean_rate_per_s * 3600:.1f}/h)"
    )
    replayable = log.bootstrap(
        int(RATE_PER_S * DURATION_S), rng=SEED, rate_per_s=RATE_PER_S
    )
    print(
        f"Bootstrapped to {len(replayable):,} arrivals at "
        f"{replayable.mean_rate_per_s:.1f}/s for a {DURATION_S:.0f}s window\n"
    )

    # Phase 2: replay under queue-depth vs weight-aware routing.
    generator = quickstart_generator(n_requests=60_000, seed=SEED)
    deployment = Deployment(
        llm=get_llm("Llama-2-13b"),
        profile=parse_profile("1xA100-80GB"),
        n_pods=PODS,
        max_batch_weight=20_000,
        generator=generator,
        seed=SEED,
    )
    rows = []
    for name in ("join-shortest-queue", "weight-aware"):
        res = deployment.simulate(
            ReplayTraffic(replayable),
            duration_s=DURATION_S,
            router=ROUTERS[name](),
            stream_label="example-replay",
        )
        rows.append(
            [name, res.arrivals, res.requests_completed,
             res.ttft.median_s, res.ttft.p95_s]
        )
    print(
        format_table(
            ["router", "arrivals", "done", "ttft p50", "ttft p95"],
            rows,
            floatfmt=".3f",
            title=f"Replayed trace on {PODS}x 1xA100-80GB Llama-2-13b:",
        )
    )

    # Phase 3: the same run as a reviewable scenario-spec artifact.
    arrivals_rows = [
        [float(t), int(i), int(o), int(b)]
        for t, i, o, b in zip(
            replayable.times_s[:200],
            replayable.input_tokens[:200],
            replayable.output_tokens[:200],
            replayable.batch_size[:200],
        )
    ]
    spec_dict = {
        "name": "replay-example",
        "duration_s": 60.0,
        "llm": "Llama-2-13b",
        "profile": "1xA100-80GB",
        "pods": PODS,
        "max_batch_weight": 20_000,
        "workload": {"requests": 20_000},
        "traffic": {"kind": "replay", "arrivals": arrivals_rows},
        "router": "weight-aware",
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "replay-example.json")
        with open(path, "w") as fh:
            json.dump(spec_dict, fh)
        spec = ScenarioSpec.load(path)
        res = spec.run()
    print(
        f"\nScenario {spec.name!r} from file: {res.arrivals} arrivals, "
        f"{res.requests_completed} completed, p95 TTFT {res.ttft.p95_s:.3f}s "
        f"under {res.router} routing"
    )
    print(f"\n[example finished in {time.time() - t0:.1f}s]")


if __name__ == "__main__":
    main()
