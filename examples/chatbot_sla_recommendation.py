#!/usr/bin/env python
"""Cluster-user workflow: GPU recommendation for an unseen chatbot LLM.

A user wants to deploy a new LLM chatbot service (tight TTFT — the
response must start quickly; relaxed ITL — tokens only need to beat
human reading speed; paper §II-A) for 200 concurrent users. The GPU
recommendation tool (paper §IV) trains the weighted, monotone GBM
performance model on historical characterization data of *other* LLMs
and recommends the cheapest (GPU profile, pod count) satisfying the SLA
— without ever benchmarking the new LLM.

Run:  python examples/chatbot_sla_recommendation.py
"""

from repro import quickstart_generator
from repro.characterization import CharacterizationConfig, CharacterizationTool
from repro.hardware import aws_like_pricing, default_profiles
from repro.models import LLM_CATALOG, get_llm
from repro.recommendation import (
    GPURecommendationTool,
    LatencyConstraints,
    PerfModelHyperparams,
)
from repro.recommendation.pilot import LLMPilotRecommender
from repro.utils.tables import format_table

UNSEEN_LLM = "Llama-2-13b"  # the LLM the user wants to deploy
TOTAL_USERS = 200
# Chatbot SLA: responsive first token, relaxed inter-token latency.
CONSTRAINTS = LatencyConstraints(nttft_s=0.050, itl_s=0.080)


def main() -> None:
    generator = quickstart_generator(n_requests=60_000, seed=0)

    # --- offline: characterize the *other* LLMs (historical data) ---------
    train_llms = [m for name, m in LLM_CATALOG.items() if name != UNSEEN_LLM]
    print(f"Building historical dataset from {len(train_llms)} training LLMs ...")
    tool = CharacterizationTool(
        generator, CharacterizationConfig(duration_s=40.0, seed=0)
    )
    outcome = tool.run(train_llms)
    print(f"{len(outcome.dataset)} historical measurements collected.\n")

    # --- online: recommend for the unseen LLM ------------------------------
    pilot = LLMPilotRecommender(
        constraints=CONSTRAINTS,
        hyperparams=PerfModelHyperparams(n_estimators=200, max_depth=4),
    )
    pilot.fit(outcome.dataset, dict(LLM_CATALOG))

    recommender = GPURecommendationTool(
        perf_model=pilot.model_,
        pricing=aws_like_pricing(),
        constraints=CONSTRAINTS,
        max_request_weight=generator.max_request_weight(),
    )
    unseen = get_llm(UNSEEN_LLM)
    rec = recommender.recommend(unseen, default_profiles(), total_users=TOTAL_USERS)

    print(
        f"SLA: nTTFT <= {CONSTRAINTS.nttft_s * 1e3:.0f} ms/token, "
        f"ITL <= {CONSTRAINTS.itl_s * 1e3:.0f} ms, U = {TOTAL_USERS} users"
    )
    rows = [
        [a.profile, a.umax, a.n_pods, a.pod_cost, a.total_cost]
        for a in sorted(rec.assessments, key=lambda a: a.total_cost)
    ]
    print(
        format_table(
            ["profile", "pred. umax/pod", "pods", "$/h per pod", "$/h total"],
            rows,
            floatfmt=".2f",
            title=f"\nAssessments for unseen LLM {unseen.name}:",
        )
    )
    if rec.feasible:
        print(
            f"\nRecommendation: {rec.n_pods} pod(s) on {rec.profile} "
            f"at ${rec.total_cost:.2f}/hour."
        )
    else:
        print("\nNo profile can satisfy the SLA — relax the constraints.")


if __name__ == "__main__":
    main()
