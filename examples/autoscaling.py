#!/usr/bin/env python
"""Autoscaling walkthrough: an elastic fleet rides a day/night cycle.

The paper sizes a deployment once, for the peak. This walkthrough drives
one Llama-2-13b deployment through two diurnal periods of traffic and
compares four ways of running it:

1. a static fleet sized for the peak (the paper's answer),
2. reactive threshold scaling on the windowed p95 TTFT,
3. HPA-style target-utilization scaling, and
4. predictive scaling that extrapolates the windowed arrival-rate series
   past the pod cold-start delay,

printing each policy's scale-event timeline and the pod-seconds it
billed. A further run adds SLO-aware admission control to an
*under*-provisioned fleet to show load shedding holding the tail latency
at the cost of rejected work. The final phase hands the same deployment
to the elastic recommender, which prices every configuration (pod-second
bill + SLO penalty) and picks the cheapest one that holds the SLO —
reporting the full pod-hours-vs-SLO trade curve and the savings against
the peak-sized static fleet.

Run:  python examples/autoscaling.py
"""

import time

from repro import quickstart_generator
from repro.cluster import Deployment
from repro.hardware import aws_like_pricing, parse_profile
from repro.models import get_llm
from repro.recommendation import (
    CostObjective,
    ElasticRecommender,
    LinearSLOPenalty,
)
from repro.simulation import (
    AdmissionController,
    Autoscaler,
    AutoscaleConfig,
    DiurnalTraffic,
    LeastLoadedRouter,
    PredictivePolicy,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

SEED = 0
PERIOD_S = 240.0
DURATION_S = 480.0
PEAK_PODS = 4


def make_traffic(label):
    return DiurnalTraffic(
        3.0,
        rng=derive_rng(SEED, "example-autoscale", label),
        amplitude=0.8,
        period_s=PERIOD_S,
    )


def make_autoscaler(policy):
    return Autoscaler(
        policy,
        AutoscaleConfig(
            decision_interval_s=15.0,
            min_pods=1,
            max_pods=6,
            cold_start_s=10.0,
            metrics_window_s=20.0,
        ),
    )


def describe(name, res):
    states = [p.state for p in res.per_pod]
    print(
        f"\n== {name}: p95 TTFT {res.ttft.p95_s:.2f}s, "
        f"{res.pod_seconds:.0f} pod-seconds "
        f"({len(states)} pods provisioned, {states.count('retired')} retired), "
        f"{res.requests_completed} completed"
    )
    if res.scale_events:
        timeline = ", ".join(
            f"{e.time_s:.0f}s:{e.from_pods}->{e.to_pods}" for e in res.scale_events
        )
        print(f"   scale events: {timeline}")


def main() -> None:
    t0 = time.time()
    generator = quickstart_generator(n_requests=60_000, seed=SEED)
    llm = get_llm("Llama-2-13b")
    profile = parse_profile("1xA100-80GB")

    def deployment(n_pods):
        return Deployment(
            llm=llm,
            profile=profile,
            n_pods=n_pods,
            max_batch_weight=20_000,
            generator=generator,
            seed=SEED,
        )

    static = deployment(PEAK_PODS).simulate(
        make_traffic("static"), duration_s=DURATION_S, stream_label="autoscale"
    )
    describe(f"static fleet sized for peak ({PEAK_PODS} pods)", static)

    elastic = deployment(1)
    policies = {
        "threshold (p95 TTFT <= 2s)": ThresholdPolicy(slo_p95_ttft_s=2.0),
        "target-utilization (50%)": TargetUtilizationPolicy(target=0.5),
        "predictive (rate extrapolation)": PredictivePolicy(
            requests_per_pod_per_s=1.0, horizon_s=30.0, fit_windows=4
        ),
    }
    rows = [["static-peak", static.ttft.p95_s, static.pod_seconds, 0]]
    for name, policy in policies.items():
        res = elastic.simulate(
            make_traffic(name),
            duration_s=DURATION_S,
            stream_label="autoscale",
            autoscaler=make_autoscaler(policy),
        )
        res.verify_conservation()
        describe(name, res)
        rows.append([policy.name, res.ttft.p95_s, res.pod_seconds, len(res.scale_events)])

    print(
        "\n"
        + format_table(
            ["policy", "ttft p95 (s)", "pod-seconds", "events"],
            rows,
            floatfmt=".2f",
            title="Summary (lower pod-seconds at acceptable p95 wins):",
        )
    )

    # An under-provisioned fleet (2 pods, no autoscaler) with SLO-aware
    # admission control: shedding keeps the served tail bounded.
    shedding = deployment(2).simulate(
        make_traffic("admission"),
        duration_s=DURATION_S,
        router=AdmissionController(
            LeastLoadedRouter(), slo_p95_ttft_s=5.0, window_s=20.0
        ),
        stream_label="autoscale",
    )
    shedding.verify_conservation()
    print(
        f"\n== admission control on 2 static pods: "
        f"{shedding.shed}/{shedding.arrivals} arrivals shed, "
        f"served p95 TTFT {shedding.ttft.p95_s:.2f}s"
    )

    # Phase: elastic recommendation. Instead of eyeballing the summary
    # table above, price every configuration (pod-second bill + SLO
    # penalty on the run's p95 TTFT) and let the recommender pick the
    # cheapest one that holds the SLO — including the static ladder, so
    # "stay static" wins whenever elasticity does not pay.
    slo_s = 20.0
    objective = CostObjective(
        pricing=aws_like_pricing(),
        penalty=LinearSLOPenalty(slo_p95_ttft_s=slo_s, penalty_per_hour=200.0),
    )
    recommender = ElasticRecommender(
        deployment(1),
        lambda: make_traffic("elastic"),
        objective,
        slo_p95_ttft_s=slo_s,
        duration_s=DURATION_S,
        metrics_window_s=20.0,
        stream_label="autoscale",
    )
    rec = recommender.recommend(static_pods=PEAK_PODS)
    rows = [
        [p.label, p.pod_hours, p.compute_cost, p.slo_penalty, p.total_cost,
         p.p95_ttft_s, "yes" if p.meets_slo else "NO"]
        for p in rec.curve
    ]
    print(
        "\n"
        + format_table(
            ["config", "pod-h", "compute $", "penalty $", "total $",
             "ttft p95", "slo"],
            rows,
            floatfmt=".3f",
            title=(
                f"Elastic recommendation (p95 TTFT SLO {slo_s:.0f}s, "
                f"{DURATION_S:.0f}s window):"
            ),
        )
    )
    print(
        f"== recommended: {rec.chosen.label} — saves ${rec.savings:.3f} "
        f"({rec.savings_fraction:.0%}) vs the peak-sized static fleet"
    )

    print(f"\n[{time.time() - t0:.1f}s wall]")


if __name__ == "__main__":
    main()
