#!/usr/bin/env python
"""Cluster-administrator workflow: offline characterization campaign.

The administrator benchmarks a set of LLM inference services across the
cluster's GPU profiles (paper §III / Fig 2): the tool checks feasibility
(Table III), tunes the batch weight per profile, runs the load-testing
ladder and assembles the characterization dataset, which is saved to
disk for the GPU recommendation tool to train on.

Run:  python examples/admin_characterization.py [output.npz]
"""

import sys
import time

from repro import quickstart_generator
from repro.characterization import (
    CharacterizationConfig,
    CharacterizationTool,
)
from repro.hardware import default_profiles
from repro.models import LLM_CATALOG
from repro.utils.tables import format_matrix


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "characterization.npz"

    # A smaller grid than the full paper campaign keeps the example quick;
    # pass more LLMs / longer durations for a production-quality dataset.
    llm_names = [
        "google/flan-t5-xl",
        "google/flan-t5-xxl",
        "Llama-2-7b",
        "Llama-2-13b",
        "bigcode/starcoder",
    ]
    llms = [LLM_CATALOG[name] for name in llm_names]
    profiles = default_profiles()

    generator = quickstart_generator(n_requests=60_000, seed=0)
    tool = CharacterizationTool(
        generator,
        CharacterizationConfig(duration_s=45.0, seed=0),
    )

    # --- Table III-style feasibility grid --------------------------------
    matrix = tool.feasibility_matrix(llms, profiles)
    rows = []
    for llm in llms:
        rows.append([matrix[(llm.name, p.name)].symbol for p in profiles])
    print(
        format_matrix(
            [llm.name for llm in llms],
            [p.name for p in profiles],
            rows,
            corner="LLM \\ profile",
            title="Feasibility (Y = ok, x = out of memory, - = unsupported):",
        )
    )

    # --- full campaign -----------------------------------------------------
    print("\nRunning characterization campaign ...")
    t0 = time.time()
    outcome = tool.run(llms, profiles=profiles)
    wall = time.time() - t0
    ds = outcome.dataset
    print(
        f"Collected {len(ds)} measurements over {len(outcome.tuned_weights)} "
        f"feasible (LLM, profile) pairs in {wall:.1f}s wall-clock."
    )
    print(
        "Estimated real-cluster overhead: "
        f"{outcome.total_overhead_s / 3600:.1f}h parallelized over GPUs "
        f"({outcome.serial_overhead_s / 3600:.1f}h serial) — the paper "
        "estimates ~8h for its full 10-LLM campaign."
    )
    ds.save(out_path)
    print(f"Characterization dataset written to {out_path}")


if __name__ == "__main__":
    main()
