#!/usr/bin/env python
"""Multi-tenancy: competing tenants on a shared GPU cluster.

The paper's conclusion names multi-tenancy as LLM-Pilot's next step:
multiple users compete to deploy LLM inference services on the same
hardware. This example composes the reproduction's pieces end to end:

1. characterize historical LLMs (offline),
2. produce per-tenant ranked deployment options with the recommendation
   tool (each tenant wants a different unseen LLM and SLA),
3. schedule all tenants onto a finite GPU inventory, comparing the
   greedy first-come-first-served policy against the global best-fit.

Run:  python examples/multi_tenant_cluster.py
"""

from repro import quickstart_generator
from repro.characterization import CharacterizationConfig, CharacterizationTool
from repro.cluster import ClusterInventory, MultiTenantScheduler, TenantRequest
from repro.hardware import aws_like_pricing, default_profiles
from repro.models import LLM_CATALOG, get_llm
from repro.recommendation import (
    GPURecommendationTool,
    LatencyConstraints,
    PerfModelHyperparams,
)
from repro.recommendation.pilot import LLMPilotRecommender
from repro.utils.tables import format_table

TENANTS = [
    # (name, unseen LLM, users, nTTFT constraint, ITL constraint)
    ("chatbot-team", "Llama-2-13b", 200, 0.050, 0.080),
    ("code-assist", "bigcode/starcoder", 100, 0.100, 0.050),
    ("summarizer", "google/flan-t5-xxl", 150, 0.200, 0.040),
]

INVENTORY = {"H100-80GB": 4, "A100-40GB": 8, "A10-24GB": 8, "T4-16GB": 12,
             "V100-16GB": 8}


def main() -> None:
    generator = quickstart_generator(n_requests=60_000, seed=0)
    pricing = aws_like_pricing()
    profiles = default_profiles()
    lookup = dict(LLM_CATALOG)

    requests = []
    for tenant, llm_name, users, l1, l2 in TENANTS:
        constraints = LatencyConstraints(nttft_s=l1, itl_s=l2)
        train_llms = [m for n, m in LLM_CATALOG.items() if n != llm_name]
        tool = CharacterizationTool(
            generator, CharacterizationConfig(duration_s=30.0, seed=0)
        )
        dataset = tool.run(train_llms).dataset

        pilot = LLMPilotRecommender(
            constraints=constraints,
            hyperparams=PerfModelHyperparams(n_estimators=150),
        )
        pilot.fit(dataset, lookup)
        recommender = GPURecommendationTool(
            perf_model=pilot.model_,
            pricing=pricing,
            constraints=constraints,
            max_request_weight=generator.max_request_weight(),
        )
        rec = recommender.recommend(get_llm(llm_name), profiles, total_users=users)
        requests.append(TenantRequest.from_recommendation(tenant, rec))
        print(
            f"{tenant}: {len(requests[-1].options)} feasible options, "
            f"standalone choice {rec.profile} x{rec.n_pods} (${rec.total_cost:.2f}/h)"
        )

    for policy in ("greedy", "best_fit"):
        inventory = ClusterInventory(capacity=dict(INVENTORY))
        scheduler = MultiTenantScheduler(inventory)
        result = (
            scheduler.schedule_greedy(requests)
            if policy == "greedy"
            else scheduler.schedule_best_fit(requests)
        )
        rows = [
            [p.tenant, p.profile, p.n_pods, p.total_cost] for p in result.placements
        ]
        for tenant in result.unplaced:
            rows.append([tenant, "(unplaced)", 0, float("nan")])
        print(
            format_table(
                ["tenant", "profile", "pods", "$/h"],
                rows,
                floatfmt=".2f",
                title=(
                    f"\n{policy} schedule — total ${result.total_cost:.2f}/h, "
                    f"placed {result.n_placed}/{len(requests)}:"
                ),
            )
        )
        util = inventory.utilization()
        print("GPU utilization: " + ", ".join(f"{k} {v * 100:.0f}%" for k, v in util.items()))


if __name__ == "__main__":
    main()
