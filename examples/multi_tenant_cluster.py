#!/usr/bin/env python
"""Multi-tenancy: competing tenants on a shared GPU cluster.

The paper's conclusion names multi-tenancy as LLM-Pilot's next step:
multiple users compete to deploy LLM inference services on the same
hardware. This example composes the reproduction's pieces end to end:

1. characterize historical LLMs (offline),
2. produce per-tenant ranked deployment options with the recommendation
   tool (each tenant wants a different unseen LLM and SLA),
3. schedule all tenants onto a finite GPU inventory, comparing the
   greedy first-come-first-served policy against the global best-fit,
4. co-simulate the scheduled tenants on ONE shared virtual clock: each
   tenant gets its own diurnal traffic, autoscaler and admission
   control, all drawing pods from the same finite inventory — and one
   tenant turns noisy neighbor with heavy bursts, so the report shows
   who keeps their p95 SLO when the cluster gets contended.

Run:  python examples/multi_tenant_cluster.py
"""

from repro import quickstart_generator
from repro.characterization import (
    BatchWeightTuner,
    CharacterizationConfig,
    CharacterizationTool,
)
from repro.cluster import (
    ClusterInventory,
    Deployment,
    MultiTenantScheduler,
    TenantRequest,
)
from repro.hardware import aws_like_pricing, default_profiles, parse_profile
from repro.models import LLM_CATALOG, get_llm
from repro.recommendation import (
    GPURecommendationTool,
    LatencyConstraints,
    PerfModelHyperparams,
)
from repro.recommendation.pilot import LLMPilotRecommender
from repro.simulation import (
    AdmissionController,
    Autoscaler,
    AutoscaleConfig,
    BurstyTraffic,
    DiurnalTraffic,
    LeastLoadedRouter,
    ThresholdPolicy,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

TENANTS = [
    # (name, unseen LLM, users, nTTFT constraint, ITL constraint)
    ("chatbot-team", "Llama-2-13b", 200, 0.050, 0.080),
    ("code-assist", "bigcode/starcoder", 100, 0.100, 0.050),
    ("summarizer", "google/flan-t5-xxl", 150, 0.200, 0.040),
]

INVENTORY = {"H100-80GB": 4, "A100-40GB": 8, "A10-24GB": 8, "T4-16GB": 12,
             "V100-16GB": 8}


def main() -> None:
    generator = quickstart_generator(n_requests=60_000, seed=0)
    pricing = aws_like_pricing()
    profiles = default_profiles()
    lookup = dict(LLM_CATALOG)

    requests = []
    for tenant, llm_name, users, l1, l2 in TENANTS:
        constraints = LatencyConstraints(nttft_s=l1, itl_s=l2)
        train_llms = [m for n, m in LLM_CATALOG.items() if n != llm_name]
        tool = CharacterizationTool(
            generator, CharacterizationConfig(duration_s=30.0, seed=0)
        )
        dataset = tool.run(train_llms).dataset

        pilot = LLMPilotRecommender(
            constraints=constraints,
            hyperparams=PerfModelHyperparams(n_estimators=150),
        )
        pilot.fit(dataset, lookup)
        recommender = GPURecommendationTool(
            perf_model=pilot.model_,
            pricing=pricing,
            constraints=constraints,
            max_request_weight=generator.max_request_weight(),
        )
        rec = recommender.recommend(get_llm(llm_name), profiles, total_users=users)
        requests.append(TenantRequest.from_recommendation(tenant, rec))
        print(
            f"{tenant}: {len(requests[-1].options)} feasible options, "
            f"standalone choice {rec.profile} x{rec.n_pods} (${rec.total_cost:.2f}/h)"
        )

    schedules = {}
    for policy in ("greedy", "best_fit"):
        inventory = ClusterInventory(capacity=dict(INVENTORY))
        scheduler = MultiTenantScheduler(inventory)
        result = (
            scheduler.schedule_greedy(requests)
            if policy == "greedy"
            else scheduler.schedule_best_fit(requests)
        )
        schedules[policy] = result
        rows = [
            [p.tenant, p.profile, p.n_pods, p.total_cost] for p in result.placements
        ]
        for tenant in result.unplaced:
            rows.append([tenant, "(unplaced)", 0, float("nan")])
        print(
            format_table(
                ["tenant", "profile", "pods", "$/h"],
                rows,
                floatfmt=".2f",
                title=(
                    f"\n{policy} schedule — total ${result.total_cost:.2f}/h, "
                    f"placed {result.n_placed}/{len(requests)}:"
                ),
            )
        )
        util = inventory.utilization()
        print("GPU utilization: " + ", ".join(f"{k} {v * 100:.0f}%" for k, v in util.items()))

    co_simulate(schedules["best_fit"], generator)


# Phase 4 traffic: diurnal day/night load per tenant; the noisy neighbor
# instead fires heavy bursts at its deployment.
DIURNAL_RATE_PER_S = 1.5
NOISY_TENANT = "summarizer"
NOISY_BURST_RATE_PER_S = 8.0
DURATION_S = 180.0
SLO_P95_TTFT_S = 5.0


def co_simulate(schedule, generator, seed=0) -> None:
    """Phase 4: the scheduled tenants contend on one shared clock."""
    deployments, traffics, routers, autoscalers, slos = {}, {}, {}, {}, {}
    for placement in schedule.placements:
        tenant, profile = placement.tenant, parse_profile(placement.profile)
        llm = get_llm(dict((t[0], t[1]) for t in TENANTS)[tenant])
        deployments[tenant] = Deployment(
            llm=llm,
            profile=profile,
            n_pods=placement.n_pods,
            max_batch_weight=BatchWeightTuner(llm, profile).tune().max_batch_weight,
            generator=generator,
            seed=seed,
        )
        rng = derive_rng(seed, "cluster-example", tenant)
        if tenant == NOISY_TENANT:
            traffics[tenant] = BurstyTraffic(
                NOISY_BURST_RATE_PER_S, rng=rng, mean_on_s=30.0, mean_off_s=30.0
            )
        else:
            traffics[tenant] = DiurnalTraffic(
                DIURNAL_RATE_PER_S, rng=rng, amplitude=0.8, period_s=120.0
            )
        routers[tenant] = AdmissionController(
            LeastLoadedRouter(), slo_p95_ttft_s=SLO_P95_TTFT_S, window_s=20.0
        )
        autoscalers[tenant] = Autoscaler(
            ThresholdPolicy(slo_p95_ttft_s=SLO_P95_TTFT_S),
            AutoscaleConfig(
                decision_interval_s=15.0,
                max_pods=2 * placement.n_pods + 2,
                cold_start_s=10.0,
                metrics_window_s=20.0,
            ),
        )
        slos[tenant] = SLO_P95_TTFT_S

    # The operator bought exactly the GPUs the schedule packed: a burst
    # can only scale up into headroom another tenant's trough frees.
    capacity: dict[str, int] = {}
    for placement in schedule.placements:
        profile = parse_profile(placement.profile)
        capacity[profile.gpu.name] = (
            capacity.get(profile.gpu.name, 0) + profile.count * placement.n_pods
        )
    sim = schedule.to_cluster_sim(
        deployments, traffics, capacity,
        routers=routers, autoscalers=autoscalers, slos=slos,
    )
    res = sim.run(duration_s=DURATION_S)
    res.verify_conservation()

    pricing = aws_like_pricing()
    cost = res.cost(pricing)
    rows = []
    for tenant in res.tenants:
        r = res.results[tenant]
        denied = [e for e in r.scale_events if e.constraint]
        rows.append(
            [
                tenant + (" (noisy)" if tenant == NOISY_TENANT else ""),
                res.profiles[tenant],
                r.n_pods,
                r.arrivals,
                r.shed,
                r.ttft.p95_s,
                "yes" if res.meets_slo(tenant) else "NO",
                len(denied),
                cost[tenant],
            ]
        )
    print(
        format_table(
            ["tenant", "profile", "pods", "arrivals", "shed", "ttft p95",
             "slo", "denied", "$"],
            rows,
            floatfmt=".2f",
            title=(
                f"\nco-simulation — {DURATION_S:.0f}s shared clock, "
                f"{NOISY_TENANT} bursting at {NOISY_BURST_RATE_PER_S}/s, "
                f"total ${res.total_cost(pricing):.2f}:"
            ),
        )
    )
    peak = res.peak_occupancy()
    print(
        "Peak GPU occupancy: "
        + ", ".join(f"{g} {peak[g]}/{c}" for g, c in res.capacity.items() if peak[g])
    )


if __name__ == "__main__":
    main()
