#!/usr/bin/env python
"""Workload-generator fidelity study (paper §V-A).

Demonstrates the three properties the paper evaluates:

1. the joint binned model preserves the marginal CDFs of request
   parameters (Fig 6),
2. ignoring cross-parameter correlation (independent marginals) distorts
   measured performance,
3. the generator is far smaller and faster than replaying the traces.

Run:  python examples/workload_fidelity.py
"""

import time


from repro.analysis import compare_marginals, spearman_matrix
from repro.characterization.loadtest import run_load_test
from repro.hardware import parse_profile
from repro.inference import ContinuousBatchingEngine
from repro.models import get_llm
from repro.traces import synthesize_traces
from repro.utils.tables import format_table
from repro.workload import TraceReplaySampler, WorkloadGenerator


def main() -> None:
    traces = synthesize_traces(n_requests=100_000, seed=0)
    generator = WorkloadGenerator.fit(traces)
    model = generator.model

    # --- fidelity -------------------------------------------------------
    comparisons = compare_marginals(
        traces, generator, params=("input_tokens", "batch_size", "temperature")
    )
    rows = [[c.param, c.ks_distance] for c in comparisons.values()]
    print(format_table(["parameter", "KS distance"], rows, floatfmt=".4f",
                       title="Marginal CDF fidelity (Fig 6):"))

    corr, params = spearman_matrix(traces)
    i, o = params.index("input_tokens"), params.index("output_tokens")
    joint = model.sample(50_000, rng=1)
    indep = model.sample(50_000, rng=1, independent=True)
    from scipy import stats
    rho_joint = stats.spearmanr(joint["input_tokens"], joint["output_tokens"]).statistic
    rho_indep = stats.spearmanr(indep["input_tokens"], indep["output_tokens"]).statistic
    print(
        f"\nSpearman(input, output): traces {corr[i, o]:+.3f}, "
        f"joint sampling {rho_joint:+.3f}, independent sampling {rho_indep:+.3f}"
    )

    # --- performance impact of correlation (§V-A) -------------------------
    llm = get_llm("Llama-2-13b")
    profile = parse_profile("1xA100-80GB")
    W = 60_000
    results = {}
    for mode in ("joint", "independent"):
        gen = WorkloadGenerator(model, independent=(mode == "independent"))
        metrics = []
        for users in (8, 32, 128):
            engine = ContinuousBatchingEngine(llm, profile, max_batch_weight=W, seed=2)
            res = run_load_test(engine, gen, users, duration_s=40.0, seed=4)
            metrics.append(res)
        results[mode] = metrics
    rows = []
    for k, users in enumerate((8, 32, 128)):
        j, ind = results["joint"][k], results["independent"][k]
        rows.append([
            users,
            j.throughput_tokens_per_s, ind.throughput_tokens_per_s,
            j.ttft_median_s * 1e3, ind.ttft_median_s * 1e3,
        ])
    print(format_table(
        ["users", "tput joint", "tput indep", "TTFT joint (ms)", "TTFT indep (ms)"],
        rows, floatfmt=".1f",
        title="\nJoint vs independent sampling on Llama-2-13b / 1xA100-80GB:",
    ))

    # --- size and speed (§V-A) ---------------------------------------------
    replay = TraceReplaySampler(traces)
    t0 = time.time()
    for _ in range(5):
        replay.sample_requests(1000, rng=0)
    t_replay = (time.time() - t0) / 5
    t0 = time.time()
    for _ in range(5):
        generator.sample_requests(1000, rng=0)
    t_gen = (time.time() - t0) / 5
    print(
        f"\nStorage: generator {generator.nbytes() / 1e6:.2f} MB vs "
        f"traces {traces.nbytes() / 1e6:.1f} MB "
        f"({traces.nbytes() / generator.nbytes():.0f}x smaller)"
    )
    print(
        f"Sampling 1000 requests: generator {t_gen * 1e3:.1f} ms vs "
        f"trace replay {t_replay * 1e3:.1f} ms "
        f"({t_replay / max(t_gen, 1e-9):.1f}x faster)"
    )
    print(
        f"Joint bins: {model.n_nonempty_bins:,} non-empty of "
        f"{model.n_theoretical_bins:.3g} theoretically possible "
        f"(sparsity {model.sparsity:.2e})"
    )


if __name__ == "__main__":
    main()
