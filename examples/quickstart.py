#!/usr/bin/env python
"""Quickstart: characterize one LLM on one GPU profile.

Walks the full LLM-Pilot §III pipeline on a single (LLM, GPU profile)
combination:

1. synthesize production-like traces and fit the workload generator,
2. check feasibility and tune the maximum batch weight (binary search
   against OOM corner cases),
3. run the load-testing ladder (1..128 concurrent users),
4. print the TTFT / nTTFT / ITL / throughput table.

Run:  python examples/quickstart.py [llm-name] [profile-name]
"""

import sys
import time

from repro import quickstart_generator
from repro.characterization import (
    CharacterizationConfig,
    CharacterizationTool,
)
from repro.hardware import parse_profile
from repro.models import get_llm, list_llms
from repro.utils.tables import format_table


def main() -> None:
    llm_name = sys.argv[1] if len(sys.argv) > 1 else "Llama-2-13b"
    profile_name = sys.argv[2] if len(sys.argv) > 2 else "1xA100-40GB"
    llm = get_llm(llm_name)
    profile = parse_profile(profile_name)

    print(f"Known LLMs: {', '.join(list_llms())}\n")
    print(f"Characterizing {llm.name} on {profile.name} ...")

    t0 = time.time()
    generator = quickstart_generator(n_requests=60_000, seed=0)
    print(
        f"Workload generator fitted in {time.time() - t0:.1f}s: "
        f"{generator.model.n_nonempty_bins:,} non-empty joint bins "
        f"({generator.nbytes() / 1e6:.2f} MB), "
        f"max request weight {generator.max_request_weight():,} tokens"
    )

    tool = CharacterizationTool(
        generator, CharacterizationConfig(duration_s=60.0, seed=0)
    )
    t0 = time.time()
    report, records = tool.characterize_pair(llm, profile)
    if not report.feasible:
        print(f"Combination infeasible ({report.status.name}): {report.reason}")
        return

    print(
        f"Tuned maximum batch weight: {report.max_batch_weight:,} tokens; "
        f"load testing took {time.time() - t0:.1f}s wall-clock\n"
    )
    rows = [
        [
            r.concurrent_users,
            r.ttft_median_s,
            r.nttft_median_s * 1e3,
            r.itl_median_s * 1e3,
            r.throughput_tokens_per_s,
        ]
        for r in records
    ]
    print(
        format_table(
            ["users", "TTFT (s)", "nTTFT (ms)", "ITL (ms)", "tokens/s"],
            rows,
            floatfmt=".2f",
        )
    )


if __name__ == "__main__":
    main()
