"""Reproduction of **LLM-Pilot: Characterize and Optimize Performance of
your LLM Inference Services** (Lazuka, Anghel, Parnell — SC 2024).

Package layout
--------------

* :mod:`repro.hardware` — GPU catalog, profiles, pricing.
* :mod:`repro.models` — LLM architecture catalog (Table III's 10 LLMs).
* :mod:`repro.traces` — synthetic production-trace substrate (Table II).
* :mod:`repro.workload` — the workload generator (§III-B).
* :mod:`repro.inference` — continuous-batching inference-server simulator.
* :mod:`repro.simulation` — event-driven simulation core: traffic models,
  metric collection, shared-clock fleet simulation with pluggable routers.
* :mod:`repro.cluster` — k8s-like deployments / pods / load balancing.
* :mod:`repro.characterization` — the performance characterization tool (§III).
* :mod:`repro.ml` — from-scratch trees / forests / monotone GBM / MLP / CF.
* :mod:`repro.recommendation` — the GPU recommendation tool (§IV).
* :mod:`repro.baselines` — Static, RF, PARIS, Selecta, Morphling, PerfNet(V2).
* :mod:`repro.evaluation` — Eq. (5)-(7) metrics + nested CV harness (Fig 8).
* :mod:`repro.analysis` — correlation / importance / CDF studies.

Quickstart
----------

>>> from repro import quickstart_generator
>>> from repro.models import get_llm
>>> from repro.hardware import parse_profile
>>> from repro.characterization import CharacterizationTool
>>> gen = quickstart_generator(n_requests=30_000, seed=0)
>>> tool = CharacterizationTool(gen)
>>> report, records = tool.characterize_pair(
...     get_llm("Llama-2-7b"), parse_profile("1xA100-40GB"))
"""

from repro.traces import synthesize_traces, TraceConfig
from repro.workload import WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "quickstart_generator",
    "synthesize_traces",
    "TraceConfig",
    "WorkloadGenerator",
    "__version__",
]


def quickstart_generator(n_requests: int = 100_000, seed: int = 0) -> WorkloadGenerator:
    """Synthesize traces and fit a workload generator in one call."""
    traces = synthesize_traces(n_requests=n_requests, seed=seed)
    return WorkloadGenerator.fit(traces)
