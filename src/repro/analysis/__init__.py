"""Statistical analyses backing the paper's studies: Spearman correlation
(Fig 3), RF importance (§III-A, Fig 4) and CDF fidelity (Fig 6)."""

from repro.analysis.correlation import spearman_matrix, DEFAULT_CORRELATION_PARAMS
from repro.analysis.importance import (
    ImportanceStudyResult,
    latency_importance_study,
    KnobStudyResult,
    deployment_knob_study,
)
from repro.analysis.cdf import CDFComparison, empirical_cdf, compare_marginals

__all__ = [
    "spearman_matrix",
    "DEFAULT_CORRELATION_PARAMS",
    "ImportanceStudyResult",
    "latency_importance_study",
    "KnobStudyResult",
    "deployment_knob_study",
    "CDFComparison",
    "empirical_cdf",
    "compare_marginals",
]
