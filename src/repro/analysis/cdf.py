"""Marginal CDF fidelity of the workload generator (paper Fig 6).

Compares the empirical marginal distribution of each request parameter in
the traces against the marginal realized by the workload generator's
samples, via the Kolmogorov-Smirnov distance and explicit CDF curves
(the series a Fig 6 plot would draw).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.schema import TraceDataset
from repro.workload.generator import WorkloadGenerator

__all__ = ["CDFComparison", "empirical_cdf", "compare_marginals"]


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probabilities) of an empirical CDF."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ValueError("empty sample")
    probs = np.arange(1, len(values) + 1) / len(values)
    return values, probs


def _cdf_at(sample: np.ndarray, points: np.ndarray) -> np.ndarray:
    sample = np.sort(sample)
    return np.searchsorted(sample, points, side="right") / len(sample)


@dataclass
class CDFComparison:
    """Fidelity of one parameter's generated marginal."""

    param: str
    ks_distance: float
    grid: np.ndarray
    cdf_trace: np.ndarray
    cdf_generated: np.ndarray


def compare_marginals(
    traces: TraceDataset,
    generator: WorkloadGenerator,
    params: tuple[str, ...] = ("input_tokens", "batch_size", "temperature"),
    n_samples: int = 50_000,
    seed: int = 0,
    grid_points: int = 256,
) -> dict[str, CDFComparison]:
    """Fig 6: empirical vs generated marginal CDFs for selected parameters."""
    cols = generator.sample_columns(n_samples, rng=seed)
    out: dict[str, CDFComparison] = {}
    for p in params:
        if p not in traces.columns or p not in cols:
            raise KeyError(f"parameter {p!r} missing from traces or generator")
        trace_vals = traces.columns[p].astype(float)
        gen_vals = cols[p].astype(float)
        lo = min(trace_vals.min(), gen_vals.min())
        hi = max(trace_vals.max(), gen_vals.max())
        grid = np.linspace(lo, hi, grid_points)
        cdf_t = _cdf_at(trace_vals, grid)
        cdf_g = _cdf_at(gen_vals, grid)
        out[p] = CDFComparison(
            param=p,
            ks_distance=float(np.max(np.abs(cdf_t - cdf_g))),
            grid=grid,
            cdf_trace=cdf_t,
            cdf_generated=cdf_g,
        )
    return out
