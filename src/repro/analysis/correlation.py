"""Spearman rank correlation between request parameters (paper Fig 3)."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.traces.schema import TraceDataset

__all__ = ["spearman_matrix", "DEFAULT_CORRELATION_PARAMS"]

#: The parameters the paper's Fig 3 correlates: the latency-dominant ones.
DEFAULT_CORRELATION_PARAMS = (
    "input_tokens",
    "output_tokens",
    "batch_size",
    "decoding_method",
    "temperature",
    "top_k",
    "top_p",
    "max_new_tokens",
)


def spearman_matrix(
    traces: TraceDataset, params: tuple[str, ...] = DEFAULT_CORRELATION_PARAMS
) -> tuple[np.ndarray, list[str]]:
    """(correlation matrix, parameter names) over the trace collection."""
    present = [p for p in params if p in traces.columns]
    if len(present) < 2:
        raise ValueError("need at least two present parameters")
    X = traces.param_matrix(present)
    corr, _ = stats.spearmanr(X)
    corr = np.atleast_2d(np.asarray(corr, dtype=float))
    # spearmanr collapses to a scalar for 2 columns.
    if corr.shape != (len(present), len(present)):
        full = np.eye(len(present))
        full[0, 1] = full[1, 0] = float(corr.ravel()[0])
        corr = full
    return corr, present
