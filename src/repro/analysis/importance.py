"""Random-forest importance studies (paper §III-A and Fig 4).

Two studies:

* :func:`latency_importance_study` — train an RF on the trace collection
  to predict per-request latency from all request parameters; report the
  R^2 and the MDI importance ranking (the paper finds R^2 ~ 0.93 with
  output tokens > input tokens > batch size > sampling parameters).
* :func:`deployment_knob_study` — run load tests for one LLM/GPU while
  varying the number of CPU cores, pod memory, maximum batch weight and
  concurrent users; train RFs for TTFT and ITL and compare the knobs'
  MDI scores (the paper finds CPU/memory ~300x below batch weight,
  justifying LLM-Pilot's trivial rules for those resources).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.loadtest import run_load_test
from repro.characterization.tuner import BatchWeightTuner
from repro.hardware.profile import GPUProfile
from repro.inference.engine import ContinuousBatchingEngine
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.models.llm import LLMSpec
from repro.traces.schema import TraceDataset
from repro.utils.rng import spawn_seed
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "ImportanceStudyResult",
    "latency_importance_study",
    "KnobStudyResult",
    "deployment_knob_study",
]


@dataclass
class ImportanceStudyResult:
    """Outcome of the trace latency importance study."""

    r2: float
    importances: dict[str, float]

    def ranking(self) -> list[str]:
        return sorted(self.importances, key=self.importances.get, reverse=True)


def latency_importance_study(
    traces: TraceDataset,
    n_estimators: int = 40,
    max_depth: int = 14,
    max_rows: int | None = 40_000,
    seed: int = 0,
) -> ImportanceStudyResult:
    """§III-A: RF predicting request latency from all request parameters.

    The serviced LLM's identity is part of each trace entry ("all details
    of the request"), so it joins the feature set — latency obviously
    depends on which model served the request.
    """
    params = traces.param_names()
    X = traces.param_matrix(params)
    if "llm_index" in traces.columns:
        X = np.column_stack([X, traces["llm_index"].astype(float)])
        params = params + ["llm_index"]
    y = traces["latency_s"]
    if max_rows is not None and len(y) > max_rows:
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(y), size=max_rows, replace=False)
        X, y = X[idx], y[idx]
    forest = RandomForestRegressor(
        n_estimators=n_estimators,
        max_depth=max_depth,
        random_state=seed,
    ).fit(X, y)
    r2 = r2_score(y, forest.predict(X))
    importances = dict(zip(params, forest.feature_importances_.tolist()))
    return ImportanceStudyResult(r2=r2, importances=importances)


@dataclass
class KnobStudyResult:
    """Outcome of the deployment-knob sensitivity study (Fig 4)."""

    importances_ttft: dict[str, float]
    importances_itl: dict[str, float]
    rows: list[dict[str, float]] = field(default_factory=list)

    def knob_ratio(self, metric: str = "ttft") -> float:
        """MDI(batch weight) / max(MDI(cpu), MDI(memory)) — the paper
        reports >300x for both latency targets."""
        imp = self.importances_ttft if metric == "ttft" else self.importances_itl
        nuisance = max(imp["cpu_cores"], imp["memory_gb"], 1e-12)
        return imp["max_batch_weight"] / nuisance


def deployment_knob_study(
    llm: LLMSpec,
    profile: GPUProfile,
    generator: WorkloadGenerator,
    user_counts: tuple[int, ...] = (1, 4, 16, 64),
    weight_multipliers: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    cpu_core_options: tuple[int, ...] = (2, 4, 8, 16),
    memory_options: tuple[float, ...] = (64.0, 128.0, 250.0, 500.0),
    replicates: int = 2,
    duration_s: float = 30.0,
    seed: int = 0,
    n_estimators: int = 30,
) -> KnobStudyResult:
    """Fig 4: vary CPU cores, memory, batch weight and load; rank by MDI.

    Batch weights sweep multiples of the workload's largest request weight
    (capped at the tuned maximum) so the knob operates in its *binding*
    region — fractions of the memory-limited maximum would be vacuous for
    multi-query-attention models whose KV cache barely constrains.

    Every (batch weight, users) cell is measured under ``replicates``
    different randomly drawn (CPU, memory) settings, each with its own
    measurement-noise stream — so the CPU/memory columns vary across rows
    but can only ever explain noise, exactly as on the real testbed.
    """
    tuned = BatchWeightTuner(llm, profile).tune()
    if not tuned.feasible:
        raise ValueError(f"{llm.name} is infeasible on {profile.name}")
    rng = np.random.default_rng(spawn_seed(seed, "knob-study"))
    rows: list[dict[str, float]] = []
    floor = generator.max_request_weight()
    for frac in weight_multipliers:
        weight = min(int(floor * frac), tuned.max_batch_weight)
        for users in user_counts:
            # Same workload and scheduling dynamics for the whole cell; only
            # the measurement-noise stream varies with the CPU/memory draw
            # (a controlled experiment, as a real Fig 4 sweep would be).
            cell_seed = spawn_seed(seed, "knob-cell", frac, users)
            for rep in range(replicates):
                cpu = int(rng.choice(cpu_core_options))
                mem = float(rng.choice(memory_options))
                engine = ContinuousBatchingEngine(
                    llm=llm, profile=profile, max_batch_weight=weight, seed=cell_seed
                )
                res = run_load_test(
                    engine,
                    generator,
                    concurrent_users=users,
                    duration_s=duration_s,
                    seed=cell_seed,
                    noise_seed=spawn_seed(seed, "knob-noise", frac, users, cpu, mem, rep),
                )
                rows.append(
                    {
                        "cpu_cores": float(cpu),
                        "memory_gb": mem,
                        "max_batch_weight": float(weight),
                        "concurrent_users": float(users),
                        "ttft": res.ttft_median_s,
                        "itl": res.itl_median_s,
                    }
                )

    features = ("cpu_cores", "memory_gb", "max_batch_weight", "concurrent_users")
    X = np.array([[r[f] for f in features] for r in rows])
    importances = {}
    for target in ("ttft", "itl"):
        y = np.array([r[target] for r in rows])
        ok = np.isfinite(y)
        # Leaves must span more rows than one replicate group, otherwise
        # MDI credits whichever nuisance column happens to separate the
        # replicates' measurement noise (the classic small-n MDI bias).
        forest = RandomForestRegressor(
            n_estimators=n_estimators,
            max_depth=4,
            min_samples_leaf=max(replicates + 1, 3),
            random_state=seed,
        ).fit(X[ok], y[ok])
        importances[target] = dict(zip(features, forest.feature_importances_.tolist()))
    return KnobStudyResult(
        importances_ttft=importances["ttft"],
        importances_itl=importances["itl"],
        rows=rows,
    )
