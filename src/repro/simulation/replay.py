"""Trace-replay traffic: drive simulations from recorded arrival logs.

The synthetic traffic models answer "what if arrivals looked like X";
replay answers the sizing question the paper actually poses — what
happens to *this* fleet under the arrival process a production platform
actually recorded. The pieces:

* an :class:`ArrivalLog` is the minimal columnar arrival schema —
  per-request timestamp, input/output token counts, client batch size,
  optional tenant and session ids. It loads from plain CSV or JSONL
  files, or bridges from a :class:`~repro.traces.schema.TraceDataset`
  via :meth:`ArrivalLog.from_trace` (which delegates the selection and
  time-rebasing to ``TraceDataset.to_arrivals``);
* logs are transformed, not mutated: :meth:`ArrivalLog.warp` time-warps
  by a speed-up factor (a months-long trace compresses into a
  simulatable window), :meth:`ArrivalLog.clip` cuts the horizon, and
  :meth:`ArrivalLog.bootstrap` resamples requests and inter-arrival
  gaps with a fixed seed to scale a trace up or down while preserving
  its marginal shapes;
* :class:`ReplayTraffic` is the
  :class:`~repro.simulation.traffic.TrafficModel` that feeds a log's
  arrivals to the :class:`~repro.simulation.fleet.FleetSimulator` —
  requests carry the log's own token counts (and therefore their
  recorded weight) into routing, which is what makes weight-aware
  routing (:class:`~repro.simulation.fleet.WeightAwareRouter`)
  possible: the front end can see each request's cost, not just the
  queue depths behind it.

Replay is open-loop and fully deterministic: two runs over the same log
produce identical arrival sequences, which is what lets the elastic
recommender sweep candidates against a replayed trace as a controlled
experiment.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.simulation.traffic import RequestSource, TrafficModel
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # import cycle: the engine itself imports this package
    from repro.inference.request import InferenceRequest
    from repro.traces.schema import TraceDataset

__all__ = ["ArrivalLog", "RecordedTraffic", "ReplayTraffic"]

#: Columns a CSV/JSONL arrival log may carry, in canonical order.
_REQUIRED_COLUMNS = ("timestamp", "input_tokens", "output_tokens")
_OPTIONAL_COLUMNS = ("batch_size", "tenant", "session")


@dataclass
class ArrivalLog:
    """A recorded arrival process: one request per row, sorted by time.

    ``times_s`` is rebased so the first arrival lands at t=0 (what a
    simulation window expects); ``tenant`` and ``session`` are optional
    string/int identity columns carried through transformations, so one
    platform-wide log can be split per tenant for the cluster
    co-simulation (:meth:`for_tenant`).
    """

    times_s: np.ndarray
    input_tokens: np.ndarray
    output_tokens: np.ndarray
    batch_size: np.ndarray | None = None
    tenant: np.ndarray | None = None
    session: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.times_s = np.asarray(self.times_s, dtype=np.float64)
        self.input_tokens = np.asarray(self.input_tokens, dtype=np.int64)
        self.output_tokens = np.asarray(self.output_tokens, dtype=np.int64)
        if self.batch_size is None:
            self.batch_size = np.ones(self.times_s.size, dtype=np.int64)
        else:
            self.batch_size = np.asarray(self.batch_size, dtype=np.int64)
        n = self.times_s.size
        for name in ("input_tokens", "output_tokens", "batch_size"):
            col = getattr(self, name)
            if col.size != n:
                raise ValueError(
                    f"ragged arrival log: {name} has {col.size} rows, "
                    f"timestamps {n}"
                )
            if n and col.min() < 1:
                raise ValueError(f"{name} must be >= 1 everywhere")
        for name in ("tenant", "session"):
            col = getattr(self, name)
            if col is not None:
                col = np.asarray(col)
                setattr(self, name, col)
                if col.size != n:
                    raise ValueError(
                        f"ragged arrival log: {name} has {col.size} rows, "
                        f"timestamps {n}"
                    )
        if n:
            if np.any(np.diff(self.times_s) < 0):
                raise ValueError("arrival times must be sorted ascending")
            if self.times_s[0] < 0:
                raise ValueError("arrival times must be >= 0")

    # ---- basic accessors --------------------------------------------------

    def __len__(self) -> int:
        return int(self.times_s.size)

    @property
    def duration_s(self) -> float:
        """Span from the first to the last arrival (0 for <2 rows)."""
        if len(self) < 2:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0])

    @property
    def mean_rate_per_s(self) -> float:
        """Mean arrival rate over the log's span (NaN when undefined)."""
        span = self.duration_s
        if span <= 0:
            return float("nan")
        return (len(self) - 1) / span

    @property
    def weights(self) -> np.ndarray:
        """Per-request cost: ``(input + output tokens) * batch_size``."""
        return (self.input_tokens + self.output_tokens) * self.batch_size

    def select(self, mask: np.ndarray) -> "ArrivalLog":
        """Row subset (boolean mask or index array), times rebased to 0."""
        times = self.times_s[mask]
        return ArrivalLog(
            times_s=times - (times[0] if times.size else 0.0),
            input_tokens=self.input_tokens[mask],
            output_tokens=self.output_tokens[mask],
            batch_size=self.batch_size[mask],
            tenant=None if self.tenant is None else self.tenant[mask],
            session=None if self.session is None else self.session[mask],
        )

    def for_tenant(self, name: str) -> "ArrivalLog":
        """The rows recorded for one tenant (requires a tenant column)."""
        if self.tenant is None:
            raise ValueError("arrival log has no tenant column")
        return self.select(self.tenant.astype(str) == str(name))

    # ---- transformations --------------------------------------------------

    def warp(self, speedup: float) -> "ArrivalLog":
        """Time-warp: divide every arrival time by ``speedup``.

        ``speedup > 1`` compresses the log (a 5-month trace replayed in
        minutes); ``< 1`` stretches it. Token counts are untouched, so
        warping raises the *offered load*, not the per-request work.
        """
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        return ArrivalLog(
            times_s=self.times_s / speedup,
            input_tokens=self.input_tokens,
            output_tokens=self.output_tokens,
            batch_size=self.batch_size,
            tenant=self.tenant,
            session=self.session,
        )

    def warp_to_rate(self, rate_per_s: float) -> "ArrivalLog":
        """Warp so the mean arrival rate becomes ``rate_per_s``."""
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
        current = self.mean_rate_per_s
        if not np.isfinite(current) or current <= 0:
            raise ValueError(
                "cannot rescale a log whose mean arrival rate is not a "
                f"positive finite number: {len(self)} arrival(s) spanning "
                f"{self.duration_s:g}s give a mean rate of {current:g}/s"
            )
        return self.warp(rate_per_s / current)

    def clip(self, horizon_s: float) -> "ArrivalLog":
        """Keep only the arrivals in the first ``horizon_s`` seconds.

        The window is half-open — ``[0, horizon_s)`` — to match the
        simulation horizon, so an arrival stamped exactly at the horizon
        belongs to the *next* window and is dropped, never replayed
        twice by clip-then-replay flows.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        return self.select(self.times_s < horizon_s)

    def bootstrap(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        rate_per_s: float | None = None,
    ) -> "ArrivalLog":
        """Seeded resample: ``n`` arrivals drawn from this log's rows.

        Request parameters (token counts, batch, identity columns) and
        inter-arrival gaps are bootstrapped independently with
        replacement, so the resampled log preserves the original's
        marginal request-size and gap distributions at any scale.
        ``rate_per_s`` additionally rescales the resampled times to that
        mean rate. Deterministic for a fixed seed.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if len(self) == 0:
            raise ValueError("cannot bootstrap an empty log")
        rng = as_rng(rng)
        rows = rng.integers(0, len(self), size=n)
        gaps = np.diff(self.times_s)
        if gaps.size == 0:
            gaps = np.array([1.0])
        times = np.concatenate(
            [[0.0], np.cumsum(rng.choice(gaps, size=n - 1, replace=True))]
        )
        resampled = ArrivalLog(
            times_s=times,
            input_tokens=self.input_tokens[rows],
            output_tokens=self.output_tokens[rows],
            batch_size=self.batch_size[rows],
            tenant=None if self.tenant is None else self.tenant[rows],
            session=None if self.session is None else self.session[rows],
        )
        if rate_per_s is not None:
            resampled = resampled.warp_to_rate(rate_per_s)
        return resampled

    # ---- construction -----------------------------------------------------

    @classmethod
    def from_columns(cls, columns: dict[str, np.ndarray]) -> "ArrivalLog":
        """Build from raw columns: sorts by timestamp and rebases to 0."""
        for required in _REQUIRED_COLUMNS:
            if required not in columns:
                raise ValueError(f"arrival log missing column {required!r}")
        ts = np.asarray(columns["timestamp"], dtype=np.float64)
        order = np.argsort(ts, kind="stable")
        ts = ts[order]

        def col(name):
            value = columns.get(name)
            return None if value is None else np.asarray(value)[order]

        return cls(
            times_s=ts - (ts[0] if ts.size else 0.0),
            input_tokens=col("input_tokens"),
            output_tokens=col("output_tokens"),
            batch_size=col("batch_size"),
            tenant=col("tenant"),
            session=col("session"),
        )

    @classmethod
    def from_trace(
        cls,
        traces: "TraceDataset",
        llm: str | int | None = None,
        start_s: float | None = None,
        duration_s: float | None = None,
    ) -> "ArrivalLog":
        """Bridge from the trace layer: replay what a platform recorded.

        Delegates selection (one LLM or the whole platform, an optional
        absolute-time window) and time-rebasing to
        :meth:`~repro.traces.schema.TraceDataset.to_arrivals`; the trace
        ``user_id`` becomes the log's session column.
        """
        cols = traces.to_arrivals(llm=llm, start_s=start_s, duration_s=duration_s)
        return cls(
            times_s=cols["timestamp"],
            input_tokens=cols["input_tokens"],
            output_tokens=cols["output_tokens"],
            batch_size=cols["batch_size"],
            session=cols["user_id"],
        )

    # ---- persistence ------------------------------------------------------

    def _rows(self):
        """Canonical per-row dicts (only the columns this log carries)."""
        for i in range(len(self)):
            row = {
                "timestamp": float(self.times_s[i]),
                "input_tokens": int(self.input_tokens[i]),
                "output_tokens": int(self.output_tokens[i]),
                "batch_size": int(self.batch_size[i]),
            }
            if self.tenant is not None:
                row["tenant"] = str(self.tenant[i])
            if self.session is not None:
                row["session"] = str(self.session[i])
            yield row

    def save(self, path: str) -> None:
        """Write as ``.csv`` or ``.jsonl`` (chosen by file extension)."""
        if _is_jsonl(path):
            with open(path, "w") as fh:
                for row in self._rows():
                    fh.write(json.dumps(row) + "\n")
            return
        if not path.endswith(".csv"):
            raise ValueError(f"unsupported arrival-log extension: {path!r}")
        fields = ["timestamp", "input_tokens", "output_tokens", "batch_size"]
        if self.tenant is not None:
            fields.append("tenant")
        if self.session is not None:
            fields.append("session")
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fields)
            writer.writeheader()
            for row in self._rows():
                writer.writerow(row)

    @classmethod
    def load(cls, path: str) -> "ArrivalLog":
        """Read a ``.csv`` or ``.jsonl`` arrival log.

        The schema is deliberately plain so real platform logs can be
        exported with one query: required columns ``timestamp`` (seconds,
        any epoch — times are rebased), ``input_tokens``,
        ``output_tokens``; optional ``batch_size`` (missing/blank rows
        default to 1), ``tenant`` and ``session`` (missing/blank rows
        default to ``""``, and the column is kept if *any* row has it).
        """
        if _is_jsonl(path):
            with open(path) as fh:
                records = [json.loads(line) for line in fh if line.strip()]
        elif path.endswith(".csv"):
            with open(path, newline="") as fh:
                records = list(csv.DictReader(fh))
        else:
            raise ValueError(f"unsupported arrival-log extension: {path!r}")
        if not records:
            raise ValueError(f"empty arrival log: {path!r}")
        columns: dict[str, list] = {}
        for name in _REQUIRED_COLUMNS:
            missing = next(
                (i for i, r in enumerate(records) if r.get(name) in (None, "")),
                None,
            )
            if missing is not None:
                raise ValueError(
                    f"arrival log {path!r} missing column {name!r} (row {missing})"
                )
            columns[name] = [float(r[name]) for r in records]
        for name in _OPTIONAL_COLUMNS:
            if any(r.get(name) not in (None, "") for r in records):
                default = 1 if name == "batch_size" else ""
                columns[name] = [
                    default if r.get(name) in (None, "") else r[name]
                    for r in records
                ]
        if "batch_size" in columns:
            columns["batch_size"] = [int(float(b)) for b in columns["batch_size"]]
        return cls.from_columns({k: np.asarray(v) for k, v in columns.items()})


def _is_jsonl(path: str) -> bool:
    return path.endswith((".jsonl", ".ndjson"))


class ReplayTraffic(TrafficModel):
    """Open-loop traffic that replays a recorded :class:`ArrivalLog`.

    Arrivals are scheduled at exactly the log's (optionally time-warped
    and horizon-clipped) timestamps, and each request carries the log's
    own token counts and client batch size — so its weight, the cost a
    weight-aware front end routes on, is the recorded one rather than a
    fresh draw from the workload generator. Requests exceeding the
    serving platform's maximum batch weight are truncated
    proportionally, mirroring the platform-side truncation the
    synthetic :class:`~repro.simulation.traffic.RequestSource` applies.
    """

    name = "replay"

    def __init__(
        self,
        log: ArrivalLog,
        speedup: float = 1.0,
        horizon_s: float | None = None,
    ) -> None:
        if speedup != 1.0:
            log = log.warp(speedup)
        if horizon_s is not None:
            log = log.clip(horizon_s)
        if len(log) == 0:
            raise ValueError("replay log has no arrivals inside the horizon")
        self.log = log
        self.speedup = float(speedup)
        self._i = 0
        self._next_id = 0

    @property
    def remaining(self) -> int:
        """Arrivals not yet injected into the simulation."""
        return len(self.log) - self._i

    def peek(self) -> float | None:
        """Time of the next replayed arrival (None once exhausted)."""
        if self._i >= len(self.log):
            return None
        return float(self.log.times_s[self._i])

    def pop(self, source: RequestSource) -> tuple[float, "InferenceRequest"]:
        """Consume the next arrival as ``(time, request)`` from the log.

        ``source`` supplies only the platform's max batch weight (for
        truncation); requests are built from the log's own columns, not
        drawn from the workload stream.
        """
        from repro.inference.request import InferenceRequest

        t = self.peek()
        if t is None:
            raise RuntimeError("replay log exhausted")
        i = self._i
        inp = int(self.log.input_tokens[i])
        out = int(self.log.output_tokens[i])
        # Platform-side truncation: clamp the client batch first (a
        # batch alone can exceed the weight cap), then scale the token
        # counts proportionally so the recorded input/output shape
        # survives. The per-element budget keeps the final weight
        # under the cap even after the >=1-token floors.
        batch = min(int(self.log.batch_size[i]), max(1, source.max_weight // 2))
        if (inp + out) * batch > source.max_weight:
            budget = source.max_weight // batch
            scale = budget / (inp + out)
            inp = max(1, int(inp * scale))
            out = max(1, int(out * scale))
            if inp + out > budget:
                inp = max(1, budget - 1)
                out = max(1, budget - inp)
        request = InferenceRequest(
            request_id=self._next_id,
            input_tokens=inp,
            output_tokens=out,
            batch_size=batch,
        )
        self._i += 1
        self._next_id += 1
        return t, request


class RecordedTraffic(TrafficModel):
    """A pre-materialized open-loop arrival stream, replayable for free.

    Candidate sweeps (:class:`~repro.recommendation.elastic.ElasticRecommender`)
    run the *identical* seeded arrival process against every candidate —
    which today means regenerating it from scratch per candidate: every
    inter-arrival draw, every workload-stream token draw, repeated N
    times for N candidates. :meth:`record` runs the generation exactly
    once — draining a factory-fresh traffic model through the same
    ``peek``/``pop`` protocol the fleet loop uses, against the same
    seeded :class:`~repro.simulation.traffic.RequestSource` the
    deployment would hand that fleet — and captures the resulting
    ``(time, request)`` sequence. :meth:`replay` then mints cursors that
    walk the shared arrays, one per candidate, at zero generation cost;
    forked sweep workers inherit the arrays through fork.

    Bit-identity argument: an open-loop model's arrivals are consumed in
    time order by ``pop``, its ``initial_arrivals`` population is empty
    and ``on_complete`` never fires — so the workload stream's RNG is
    consumed *only* by the pops, in the same order, whether they happen
    during recording or inside a simulation. The fleet never materializes
    scheduled arrivals at or beyond its horizon (``warmup + duration``),
    so recording up to the same horizon reproduces exactly the arrivals
    a fresh model would have delivered — and after exhaustion
    :meth:`peek` returns ``None``, just as a fresh model past the
    horizon behaves. Replayed requests are shared objects; the engine
    treats requests as immutable, so sharing is safe.
    """

    def __init__(
        self,
        name: str,
        times_s: "list[float]",
        requests: "list[InferenceRequest]",
        sticky: bool = False,
    ) -> None:
        self.name = str(name)
        self.sticky = bool(sticky)
        self._times = times_s
        self._requests = requests
        self._i = 0

    @classmethod
    def record(
        cls, traffic: TrafficModel, source: RequestSource, horizon_s: float
    ) -> "RecordedTraffic":
        """Drain ``traffic`` up to ``horizon_s`` into a replayable stream.

        ``traffic`` must be purely open-loop (no t=0 population, no
        completion-driven follow-ups) — those hooks depend on simulation
        state that recording cannot observe, so a model that overrides
        them cannot be captured as a fixed sequence.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        kind = type(traffic)
        if (
            kind.initial_arrivals is not TrafficModel.initial_arrivals
            or kind.on_complete is not TrafficModel.on_complete
        ):
            raise ValueError(
                f"cannot record {traffic.name!r} traffic: only purely "
                "open-loop (scheduled-arrival) models replay as a fixed "
                "sequence"
            )
        times: list[float] = []
        requests: list["InferenceRequest"] = []
        while True:
            t = traffic.peek()
            if t is None or t >= horizon_s:
                break
            t, request = traffic.pop(source)
            times.append(float(t))
            requests.append(request)
        return cls(traffic.name, times, requests, sticky=traffic.sticky)

    def replay(self) -> "RecordedTraffic":
        """A fresh cursor over the shared recorded arrays."""
        return RecordedTraffic(self.name, self._times, self._requests, self.sticky)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def remaining(self) -> int:
        """Arrivals not yet injected into the simulation."""
        return len(self._times) - self._i

    def peek(self) -> float | None:
        """Time of the next recorded arrival (None once exhausted)."""
        if self._i >= len(self._times):
            return None
        return self._times[self._i]

    def pop(self, source: RequestSource) -> tuple[float, "InferenceRequest"]:
        """The next recorded ``(time, request)``; ``source`` is unused.

        The weight cap was already applied when the stream was recorded
        (by the model that generated it), so the replayed request is
        byte-identical to what a fresh model would have built.
        """
        i = self._i
        if i >= len(self._times):
            raise RuntimeError("recorded traffic exhausted")
        self._i = i + 1
        return self._times[i], self._requests[i]
