"""Unified result surface: the ``SimResult`` protocol + one serializer.

``FleetResult`` and ``ClusterResult`` grew up separately, and the CLI
grew a hand-rolled JSON emitter per subcommand alongside them. This
module is the shared contract both result types now implement:

* :class:`SimResult` — the protocol every runnable result satisfies:
  a ``kind`` tag, ``to_dict()`` (the one JSON payload, stable schema
  documented in ``docs/cli.md``), ``summary()`` (a one-line human
  digest) and ``verify()`` (the conservation check under its uniform
  name);
* the field serializers (:func:`latency_dict`,
  :func:`scale_event_dict`, :func:`fault_event_dict`) so latency
  tails, scale events and fault events serialize identically wherever
  they appear;
* :func:`to_json` — the single emitter ``repro-pilot simulate`` /
  ``autoscale`` / ``cluster-sim --json`` all flow through.

Everything here is duck-typed on purpose: the module imports none of
the simulation layers, so it can be shared by all of them without
import cycles.
"""

from __future__ import annotations

import json
import math
from typing import Protocol, runtime_checkable

__all__ = [
    "SimResult",
    "json_float",
    "latency_dict",
    "scale_event_dict",
    "fault_event_dict",
    "to_json",
]


@runtime_checkable
class SimResult(Protocol):
    """What every runnable simulation result exposes.

    ``kind`` tags the payload (``"fleet"`` / ``"cluster"``) so tooling
    can dispatch on one field; ``to_dict`` returns the JSON-safe
    payload (NaN/inf replaced by ``None``), ``summary`` a one-line
    human digest and ``verify`` raises on any conservation violation.
    """

    kind: str

    def to_dict(self, **options) -> dict: ...

    def summary(self) -> str: ...

    def verify(self) -> None: ...


def json_float(value: float | None) -> float | None:
    """NaN/inf -> None: bare non-finite floats are not strict JSON."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def latency_dict(stats) -> dict:
    """One latency tail (:class:`~repro.simulation.metrics.LatencyStats`)."""
    return {
        "count": int(stats.count),
        "median_s": json_float(stats.median_s),
        "p95_s": json_float(stats.p95_s),
        "p99_s": json_float(stats.p99_s),
        "mean_s": json_float(stats.mean_s),
    }


def scale_event_dict(event) -> dict:
    """One autoscaler decision (:class:`~repro.simulation.fleet.ScaleEvent`)."""
    return {
        "time_s": event.time_s,
        "from_pods": event.from_pods,
        "to_pods": event.to_pods,
        "reason": event.reason,
        "requested": event.requested,
        "constraint": event.constraint,
    }


def fault_event_dict(event) -> dict:
    """One applied fault (:class:`~repro.simulation.faults.FaultEvent`)."""
    return {
        "time_s": event.time_s,
        "kind": event.kind,
        "pod": event.pod,
        "zone": event.zone,
        "requeued": event.requeued,
        "lost": event.lost,
        "factor": event.factor,
        "restart_s": event.restart_s,
    }


def to_json(result: SimResult, **options) -> str:
    """The one JSON emitter: ``result.to_dict(**options)``, indented."""
    return json.dumps(result.to_dict(**options), indent=2)
