"""Traffic models: who sends requests, and when.

A :class:`TrafficModel` decouples the *arrival process* from the engine
and the driver loop. The paper's harness (§III-C3) is closed-loop —
``u`` users, one request in flight each — which is
:class:`ClosedLoopTraffic`. Open-loop scenarios schedule timed arrivals
independently of completions: stationary Poisson
(:class:`PoissonTraffic`), sinusoidally rate-modulated
(:class:`DiurnalTraffic`) and 2-state MMPP on/off bursts
(:class:`BurstyTraffic`).

Requests themselves are drawn from a :class:`RequestSource`, which wraps
a :class:`~repro.workload.generator.WorkloadGenerator` stream and applies
the platform-side truncation of requests that exceed the server's
maximum batch weight.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import cycle: the engine itself imports this package
    from repro.inference.request import InferenceRequest, RequestResult
    from repro.workload.generator import WorkloadGenerator

__all__ = [
    "RequestSource",
    "TrafficModel",
    "ClosedLoopTraffic",
    "PoissonTraffic",
    "DiurnalTraffic",
    "BurstyTraffic",
    "split_users",
    "round_robin_assignment",
]


def split_users(n_users: int, n_pods: int) -> list[int]:
    """Users per pod under round-robin balancing (sums to ``n_users``).

    This is the static form of what a sticky closed-loop run produces
    dynamically: round-robin routing of the t=0 population with
    follow-ups pinned to their pod (``ClosedLoopTraffic.sticky``) leaves
    exactly these per-pod user counts.
    """
    if n_pods < 1:
        raise ValueError(f"n_pods must be >= 1, got {n_pods}")
    if n_users < 0:
        raise ValueError(f"n_users must be >= 0, got {n_users}")
    base, extra = divmod(n_users, n_pods)
    return [base + (1 if i < extra else 0) for i in range(n_pods)]


def round_robin_assignment(n_users: int, n_pods: int) -> list[int]:
    """Pod index for each user id under round-robin assignment."""
    if n_pods < 1:
        raise ValueError(f"n_pods must be >= 1, got {n_pods}")
    return [u % n_pods for u in range(n_users)]


class RequestSource:
    """Draws workload requests, truncating any that exceed ``max_weight``."""

    def __init__(
        self,
        generator: WorkloadGenerator,
        rng: np.random.Generator,
        max_weight: int,
    ) -> None:
        self.generator = generator
        self.max_weight = int(max_weight)
        self._rng = rng
        self._stream = generator.request_stream(rng=rng)
        self.drawn = 0

    def next_request(self) -> InferenceRequest:
        req = next(self._stream)
        if req.weight > self.max_weight:
            # Platform-side truncation; only reachable in independent
            # sampling mode (joint mode is bounded by the tuned weight).
            req = self.generator.sample_requests(
                1, rng=self._rng, first_id=req.request_id, max_weight=self.max_weight
            )[0]
        self.drawn += 1
        return req


class TrafficModel(ABC):
    """Arrival process driving a simulation.

    Two kinds of arrivals exist, and a model may use either or both:

    * **initial/completion-driven** — :meth:`initial_arrivals` submits a
      population at t=0 and :meth:`on_complete` may return a follow-up
      request on every completion (closed-loop behaviour);
    * **scheduled** — :meth:`peek` exposes the next timed arrival and
      :meth:`pop` consumes it (open-loop behaviour). Requests are drawn
      lazily at injection time so the workload stream's draw order
      matches a hand-written driver loop exactly.
    """

    name: str = "traffic"
    #: When True, completion-driven follow-ups stay on the pod that served
    #: the completed request (per-user session affinity) instead of being
    #: re-routed. Only the initial arrivals go through the router.
    sticky: bool = False

    def initial_arrivals(self, source: RequestSource) -> list[InferenceRequest]:
        """Requests submitted at virtual time zero."""
        return []

    def peek(self) -> float | None:
        """Time of the next scheduled arrival, or None if there is none."""
        return None

    def pop(self, source: RequestSource) -> tuple[float, InferenceRequest]:
        """Consume the next scheduled arrival as ``(time, request)``."""
        raise NotImplementedError(f"{self.name} has no scheduled arrivals")

    def on_complete(
        self, result: RequestResult, now: float, source: RequestSource
    ) -> InferenceRequest | None:
        """Optional follow-up request triggered by a completion."""
        return None


class ClosedLoopTraffic(TrafficModel):
    """The paper's harness: ``users`` clients, one request in flight each.

    On completion a client immediately submits its next request, so the
    offered load adapts to the service rate and overload shows up as a
    throughput plateau rather than unbounded queueing.

    ``sticky`` (the default) keeps each user on the pod the router first
    assigned them to, as the paper's per-pod user populations do; with
    ``sticky=False`` every follow-up request is re-routed, modelling a
    sessionless front end.
    """

    name = "closed-loop"

    def __init__(self, users: int, sticky: bool = True) -> None:
        if users < 1:
            raise ValueError(f"users must be >= 1, got {users}")
        self.users = int(users)
        self.sticky = bool(sticky)

    def initial_arrivals(self, source: RequestSource) -> list[InferenceRequest]:
        return [source.next_request() for _ in range(self.users)]

    def on_complete(
        self, result: RequestResult, now: float, source: RequestSource
    ) -> InferenceRequest | None:
        return source.next_request()


class _ScheduledTraffic(TrafficModel):
    """Base for open-loop models: lazily materialized arrival times."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._next: float | None = None
        self._started = False

    @abstractmethod
    def _first_arrival(self) -> float: ...

    @abstractmethod
    def _next_arrival(self, after: float) -> float: ...

    def peek(self) -> float | None:
        if not self._started:
            self._next = self._first_arrival()
            self._started = True
        return self._next

    def pop(self, source: RequestSource) -> tuple[float, InferenceRequest]:
        t = self.peek()
        if t is None:
            raise RuntimeError("no scheduled arrival to pop")
        request = source.next_request()
        self._next = self._next_arrival(t)
        return t, request


class PoissonTraffic(_ScheduledTraffic):
    """Stationary open-loop traffic: Poisson arrivals at a fixed rate."""

    name = "poisson"

    def __init__(self, rate_per_s: float, rng: np.random.Generator) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
        super().__init__(rng)
        self.rate_per_s = float(rate_per_s)

    def _first_arrival(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate_per_s))

    def _next_arrival(self, after: float) -> float:
        return after + float(self._rng.exponential(1.0 / self.rate_per_s))


class DiurnalTraffic(_ScheduledTraffic):
    """Sinusoidally modulated arrivals (a day/night load cycle).

    A non-homogeneous Poisson process with rate
    ``base * (1 + amplitude * sin(2*pi*t/period + phase))``, sampled by
    thinning against the peak rate, so arrival statistics are exact.
    """

    name = "diurnal"

    def __init__(
        self,
        base_rate_per_s: float,
        rng: np.random.Generator,
        amplitude: float = 0.8,
        period_s: float = 600.0,
        phase_rad: float = 0.0,
    ) -> None:
        if base_rate_per_s <= 0:
            raise ValueError(f"base_rate_per_s must be positive, got {base_rate_per_s}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        super().__init__(rng)
        self.base_rate_per_s = float(base_rate_per_s)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.phase_rad = float(phase_rad)

    def rate_at(self, t: float) -> float:
        phase = 2.0 * np.pi * t / self.period_s + self.phase_rad
        return self.base_rate_per_s * (1.0 + self.amplitude * np.sin(phase))

    def _thin(self, t: float) -> float:
        peak = self.base_rate_per_s * (1.0 + self.amplitude)
        while True:
            t += float(self._rng.exponential(1.0 / peak))
            if self._rng.uniform() * peak <= self.rate_at(t):
                return t

    def _first_arrival(self) -> float:
        return self._thin(0.0)

    def _next_arrival(self, after: float) -> float:
        return self._thin(after)


class BurstyTraffic(_ScheduledTraffic):
    """2-state MMPP: exponentially distributed ON bursts and OFF lulls.

    In the ON state arrivals are Poisson at ``on_rate_per_s``; in the OFF
    state at ``off_rate_per_s`` (possibly zero). Dwell times in each
    state are exponential with the given means — the classic on/off
    burst model front ends see from retry storms and batch clients.
    """

    name = "bursty"

    def __init__(
        self,
        on_rate_per_s: float,
        rng: np.random.Generator,
        off_rate_per_s: float = 0.0,
        mean_on_s: float = 20.0,
        mean_off_s: float = 40.0,
        start_on: bool = True,
    ) -> None:
        if on_rate_per_s <= 0:
            raise ValueError(f"on_rate_per_s must be positive, got {on_rate_per_s}")
        if off_rate_per_s < 0:
            raise ValueError(f"off_rate_per_s must be >= 0, got {off_rate_per_s}")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("state dwell means must be positive")
        super().__init__(rng)
        self.on_rate_per_s = float(on_rate_per_s)
        self.off_rate_per_s = float(off_rate_per_s)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self._on = bool(start_on)
        self._state_end: float | None = None

    def _dwell(self) -> float:
        mean = self.mean_on_s if self._on else self.mean_off_s
        return float(self._rng.exponential(mean))

    def _advance(self, t: float) -> float:
        if self._state_end is None:
            self._state_end = self._dwell()
        while True:
            rate = self.on_rate_per_s if self._on else self.off_rate_per_s
            if rate > 0:
                candidate = t + float(self._rng.exponential(1.0 / rate))
                if candidate <= self._state_end:
                    return candidate
            # No arrival before the state flips: jump to the transition.
            t = self._state_end
            self._on = not self._on
            self._state_end = t + self._dwell()

    def _first_arrival(self) -> float:
        return self._advance(0.0)

    def _next_arrival(self, after: float) -> float:
        return self._advance(after)
