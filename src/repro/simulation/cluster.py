"""Multi-tenant co-simulation: N tenants contending on one shared clock.

The paper's conclusion names multi-tenancy as LLM-Pilot's next step —
"multiple users compete to deploy LLM inference services on the same
hardware resources". The static answer to that (which tenants *fit*) is
the packing problem ``repro.cluster.scheduler`` solves; this module
answers the dynamic question: what happens to each tenant's latency,
throughput and bill when their autoscalers compete for the same finite
GPUs *in time*.

* :class:`ClusterInventory` is the finite per-GPU-type ledger,
  generalized from the scheduler's static packing state into a
  clock-aware resource ledger whose allocations and releases are
  recorded as :class:`InventoryEvent`\\ s;
* a :class:`TenantGroup` embeds one tenant's
  :class:`~repro.simulation.fleet.FleetSimulator` — its own traffic
  model, router, admission controller and autoscaler — in the cluster
  loop, with a GPU profile naming what each of its pods occupies;
* the :class:`ClusterSimulator` drives every tenant's fleet through the
  fleet's co-simulation interface on ONE virtual clock, globally
  ordering autoscale decisions by virtual time so tenants observe each
  other only through the inventory: a scale-up the ledger cannot fill is
  *denied* or *clipped* (recorded on the tenant's
  :class:`~repro.simulation.fleet.ScaleEvent`), and GPUs freed by one
  tenant's retirement become another tenant's scale-up headroom;
* the :class:`ClusterResult` carries per-tenant
  :class:`~repro.simulation.fleet.FleetResult`\\ s plus the cluster-level
  series — per-GPU-type occupancy over time, aggregate pod-seconds and
  the hourly-priced bill via :mod:`repro.hardware.pricing`.

A cluster of one tenant degenerates to ``FleetSimulator.run``: the loop
is the same extracted pieces, so the single-tenant path stays
golden-identical to the standalone fleet.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.hardware.pricing import CloudCatalog, PricingTable
from repro.hardware.profile import parse_profile
from repro.simulation.cloud import (
    BurstPolicy,
    CloudLedger,
    CloudUsageEvent,
    spot_preemption_specs,
)
from repro.simulation.faults import FaultEvent, FaultInjector
from repro.simulation.fleet import FleetResult, FleetSimulator, ScaleEvent
from repro.simulation.frontier import ClusterFrontier
from repro.simulation.results import fault_event_dict, json_float

__all__ = [
    "InventoryEvent",
    "ClusterInventory",
    "TenantGroup",
    "ClusterResult",
    "ClusterSimulator",
]


@dataclass(frozen=True)
class InventoryEvent:
    """One attributed change of the cluster ledger, on the shared clock.

    ``delta`` counts GPUs of type ``gpu`` (positive = allocated,
    negative = released); ``reason`` is ``"initial"`` for the t=0 tenant
    allocation, ``"scale-up"`` for autoscaler grants and ``"scale-down"``
    for cancelled cold starts and retired pods.
    """

    time_s: float
    tenant: str
    gpu: str
    delta: int
    reason: str


@dataclass
class ClusterInventory:
    """Finite GPU inventory, by GPU type name.

    Doubles as the static packing state of the multi-tenant scheduler
    (anonymous :meth:`allocate`/:meth:`release`, e.g. during the
    best-fit search) and as the clock-aware ledger of the cluster
    co-simulation: calls that name a ``tenant`` are stamped with virtual
    time and appended to :attr:`events`, so occupancy over time is
    reconstructible after a run.
    """

    capacity: dict[str, int]
    used: dict[str, int] = field(default_factory=dict)
    events: list[InventoryEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, count in self.capacity.items():
            if count < 0:
                raise ValueError(f"negative capacity for {name}")
            self.used.setdefault(name, 0)

    def available(self, gpu_name: str) -> int:
        """GPUs of this type not currently allocated."""
        return self.capacity.get(gpu_name, 0) - self.used.get(gpu_name, 0)

    def can_fit(self, profile_name: str, pods: int) -> bool:
        """Would ``pods`` pods of ``profile_name`` fit the remaining stock?"""
        profile = parse_profile(profile_name)
        return self.available(profile.gpu.name) >= profile.count * pods

    def fillable_pods(self, profile_name: str) -> int:
        """How many whole pods of ``profile_name`` the remaining stock fills."""
        profile = parse_profile(profile_name)
        return self.available(profile.gpu.name) // profile.count

    def allocate(
        self,
        profile_name: str,
        pods: int,
        tenant: str = "",
        time_s: float = 0.0,
        reason: str = "static",
    ) -> None:
        """Take ``pods`` pods' worth of GPUs (raises when it cannot fit).

        With a ``tenant`` the allocation is stamped with ``time_s`` and
        logged as an :class:`InventoryEvent`; anonymous calls (the
        scheduler's packing search) mutate the ledger silently.
        """
        profile = parse_profile(profile_name)
        need = profile.count * pods
        if self.available(profile.gpu.name) < need:
            raise ValueError(
                f"cannot allocate {need} x {profile.gpu.name}: only "
                f"{self.available(profile.gpu.name)} available"
            )
        self.used[profile.gpu.name] = self.used.get(profile.gpu.name, 0) + need
        if tenant and need:
            self.events.append(
                InventoryEvent(time_s, tenant, profile.gpu.name, need, reason)
            )

    def release(
        self,
        profile_name: str,
        pods: int,
        tenant: str = "",
        time_s: float = 0.0,
        reason: str = "static",
    ) -> None:
        """Hand back ``pods`` pods' worth of GPUs (the inverse of allocate)."""
        profile = parse_profile(profile_name)
        need = profile.count * pods
        if self.used.get(profile.gpu.name, 0) < need:
            raise ValueError("releasing more GPUs than allocated")
        self.used[profile.gpu.name] -= need
        if tenant and need:
            self.events.append(
                InventoryEvent(time_s, tenant, profile.gpu.name, -need, reason)
            )

    def utilization(self) -> dict[str, float]:
        """Fraction of each GPU type's capacity currently in use."""
        return {
            name: (self.used.get(name, 0) / cap if cap else 0.0)
            for name, cap in self.capacity.items()
        }


@dataclass
class TenantGroup:
    """One tenant embedded in the cluster loop.

    ``fleet`` carries the tenant's own traffic model, router (possibly
    an admission controller) and autoscaler; ``profile`` names the GPU
    profile each of its pods occupies in the shared inventory (e.g.
    ``"2xA100-40GB"``); ``slo_p95_ttft_s`` is the tenant's latency
    target, recorded for reporting only.
    """

    name: str
    fleet: FleetSimulator
    profile: str
    slo_p95_ttft_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        parse_profile(self.profile)  # validate early


@dataclass
class ClusterResult:
    """Per-tenant outcomes plus the cluster-level contention record.

    Implements the :class:`~repro.simulation.results.SimResult`
    protocol (``kind``/``to_dict``/``summary``/``verify``), so the CLI
    serializes it through the same path as a standalone fleet run.
    """

    kind: ClassVar[str] = "cluster"

    duration_s: float
    warmup_s: float
    time_s: float
    capacity: dict[str, int]
    tenants: list[str]
    results: dict[str, FleetResult]
    profiles: dict[str, str]
    slos: dict[str, float | None]
    end_provisioned: dict[str, int]
    events: list[InventoryEvent] = field(default_factory=list, repr=False)
    base_used: dict[str, int] = field(default_factory=dict, repr=False)
    sim_events: int = 0
    wall_time_s: float = 0.0
    # Cloud-burst tier (absent on pure on-prem runs): the rented-capacity
    # event ledger, the catalog prices were taken from, and each
    # bursting tenant's purchasing mode (tenants without a burst policy
    # are absent from the mapping).
    cloud_events: list[CloudUsageEvent] = field(default_factory=list, repr=False)
    cloud_catalog: CloudCatalog | None = None
    cloud_modes: dict[str, str] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Co-simulator throughput: engine steps per wall-clock second.

        The cluster-level counterpart of
        :attr:`~repro.simulation.fleet.FleetResult.events_per_second`:
        ``sim_events`` sums every tenant fleet's scheduler iterations,
        ``wall_time_s`` covers the shared-clock loop from the first
        allocation to result assembly. 0.0 when timing was not captured.
        """
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.sim_events / self.wall_time_s

    @property
    def pod_seconds_total(self) -> float:
        """Provisioned pod-seconds summed over every tenant."""
        return sum(r.pod_seconds for r in self.results.values())

    @property
    def arrivals_total(self) -> int:
        """Requests offered to the cluster, summed over every tenant."""
        return sum(r.arrivals for r in self.results.values())

    def contended_scale_events(self) -> list[tuple[str, ScaleEvent]]:
        """Every denied or clipped scale-up, attributed to its tenant."""
        out = []
        for tenant in self.tenants:
            for event in self.results[tenant].scale_events:
                if event.constraint:
                    out.append((tenant, event))
        return out

    def billing(self, pricing: PricingTable) -> dict[str, dict]:
        """Per-tenant, per-tier bill line items for the simulated window.

        Each tenant maps to an ``on_prem`` line (owned pod-seconds at the
        profile's c(G)) and, when the tenant burst, a ``cloud`` line
        (rented pod-seconds at the catalog's per-mode price) plus the
        ``total``. Tenants that never burst carry ``cloud: None``, so a
        pure on-prem bill reads exactly as before the cloud tier existed.
        """
        out: dict[str, dict] = {}
        for tenant in self.tenants:
            result = self.results[tenant]
            profile = parse_profile(self.profiles[tenant])
            on_prem_hourly = pricing.pod_cost(profile)
            on_prem_cost = result.on_prem_pod_seconds / 3600.0 * on_prem_hourly
            line = {
                "on_prem": {
                    "pod_seconds": result.on_prem_pod_seconds,
                    "hourly_per_pod": on_prem_hourly,
                    "cost": on_prem_cost,
                },
                "cloud": None,
                "total": on_prem_cost,
            }
            if result.cloud_pod_seconds > 0:
                if self.cloud_catalog is None:
                    raise ValueError(
                        f"tenant {tenant!r} has cloud pod-seconds but the "
                        f"result carries no cloud catalog to price them"
                    )
                mode = self.cloud_modes.get(tenant, "on-demand")
                cloud_hourly = self.cloud_catalog.pod_cost(profile, mode)
                cloud_cost = result.cloud_pod_seconds / 3600.0 * cloud_hourly
                line["cloud"] = {
                    "pod_seconds": result.cloud_pod_seconds,
                    "mode": mode,
                    "hourly_per_pod": cloud_hourly,
                    "cost": cloud_cost,
                }
                line["total"] = on_prem_cost + cloud_cost
            out[tenant] = line
        return out

    def cost(self, pricing: PricingTable) -> dict[str, float]:
        """Each tenant's bill: per-tier pod-seconds priced at that tier.

        On-prem pod-seconds are priced at the profile's c(G); cloud-burst
        pod-seconds at the result's catalog under the tenant's purchasing
        mode. Reduces to the pure on-prem bill when no tenant burst.
        """
        return {
            tenant: line["total"] for tenant, line in self.billing(pricing).items()
        }

    def total_cost(self, pricing: PricingTable) -> float:
        """The whole cluster's bill for the simulated window."""
        return sum(self.cost(pricing).values())

    def occupancy_series(self, gpu_name: str) -> tuple[np.ndarray, np.ndarray]:
        """(time_s, GPUs in use) step series for one GPU type.

        Replaying the event list is O(events); benchmarks and the
        conservation verifier call this repeatedly on a finished (hence
        immutable) result, so the series is computed once per
        ``gpu_name`` and cached. Treat the returned arrays as read-only.
        """
        cache = self.__dict__.setdefault("_occupancy_cache", {})
        series = cache.get(gpu_name)
        if series is None:
            running = self.base_used.get(gpu_name, 0)
            times = [0.0]
            used = [running]
            for event in sorted(self.events, key=lambda e: e.time_s):
                if event.gpu != gpu_name:
                    continue
                running += event.delta
                times.append(event.time_s)
                used.append(running)
            series = (np.array(times), np.array(used))
            cache[gpu_name] = series
        return series

    def peak_occupancy(self) -> dict[str, int]:
        """Max GPUs simultaneously in use, per GPU type."""
        peaks = {}
        for gpu in self.capacity:
            _, used = self.occupancy_series(gpu)
            peaks[gpu] = int(used.max())
        return peaks

    def peak_pods(self) -> dict[str, int]:
        """Max pods each tenant simultaneously held, replayed from the ledger.

        Counts every provisioned pod (serving, cold-starting, draining)
        since all of them hold GPUs. This is what the feedback scheduler
        pre-reserves: the demand the inventory actually *granted* the
        tenant, as opposed to what its autoscaler asked for.
        """
        held = {t: 0 for t in self.tenants}
        peak = {t: 0 for t in self.tenants}
        for event in self.events:
            if event.tenant not in held:
                continue
            held[event.tenant] += event.delta
            peak[event.tenant] = max(peak[event.tenant], held[event.tenant])
        return {
            t: peak[t] // parse_profile(self.profiles[t]).count
            for t in self.tenants
        }

    def contended_counts(self) -> dict[str, int]:
        """Denied + clipped scale-up events per tenant (0 when none)."""
        counts = {t: 0 for t in self.tenants}
        for tenant, _ in self.contended_scale_events():
            counts[tenant] += 1
        return counts

    def meets_slo(self, tenant: str) -> bool | None:
        """Did the tenant's p95 TTFT stay within its target (None: no SLO)."""
        slo = self.slos.get(tenant)
        if slo is None:
            return None
        return bool(self.results[tenant].ttft.p95_s <= slo)

    def fault_events(self) -> list[tuple[str, FaultEvent]]:
        """Every fault event, attributed to its tenant, in time order."""
        out = []
        for tenant in self.tenants:
            for event in self.results[tenant].fault_events:
                out.append((tenant, event))
        out.sort(key=lambda pair: pair[1].time_s)
        return out

    def recovery_time_s(self, tenant: str, window_s: float = 10.0) -> float | None:
        """Tenant's post-fault recovery time against its declared SLO.

        None when the tenant has no SLO or suffered no disruptive
        fault. A faulted tenant whose run dropped its samples raises
        (``keep_samples=True`` is required) — silently answering None
        there would be indistinguishable from a fault-free run.
        """
        slo = self.slos.get(tenant)
        if slo is None:
            return None
        return self.results[tenant].recovery_time_s(slo, window_s)

    def degraded_slo_attainment(
        self, tenant: str, window_s: float = 10.0
    ) -> float | None:
        """Tenant's post-fault windowed SLO attainment (None: see above)."""
        slo = self.slos.get(tenant)
        if slo is None:
            return None
        return self.results[tenant].degraded_slo_attainment(slo, window_s)

    def verify(self) -> None:
        """Uniform SimResult name for :meth:`verify_conservation`."""
        self.verify_conservation()

    def to_dict(
        self, pricing: PricingTable | None = None, window_s: float = 10.0
    ) -> dict:
        """The uniform JSON payload (see docs/cli.md for the schema).

        Without a ``pricing`` table the per-tenant ``cost`` and cluster
        ``total_cost`` fields are None.
        """
        billing = self.billing(pricing) if pricing is not None else None
        tenants = []
        for tenant in self.tenants:
            result = self.results[tenant]
            # A faulted tenant without samples would raise from the
            # recovery metrics (keep_samples=False is the cluster-run
            # default); the JSON payload reports null for them instead.
            measurable = result.metrics is not None or not any(
                e.disruptive for e in result.fault_events
            )
            line = None if billing is None else billing[tenant]
            tenants.append(
                {
                    "name": tenant,
                    "profile": self.profiles[tenant],
                    "pods_end": self.end_provisioned[tenant],
                    "arrivals": result.arrivals,
                    "shed": result.shed,
                    "lost": result.lost,
                    "requeued": result.requeued,
                    "requests_completed": result.requests_completed,
                    "throughput_tokens_per_s": json_float(
                        result.throughput_tokens_per_s
                    ),
                    "ttft_p95_s": json_float(result.ttft.p95_s),
                    "meets_slo": self.meets_slo(tenant),
                    "pod_seconds": result.pod_seconds,
                    "cloud_pod_seconds": result.cloud_pod_seconds,
                    "cost": None if line is None else line["total"],
                    "billing": line,
                    "recovery_time_s": json_float(
                        self.recovery_time_s(tenant, window_s)
                    )
                    if measurable
                    else None,
                    "degraded_slo_attainment": json_float(
                        self.degraded_slo_attainment(tenant, window_s)
                    )
                    if measurable
                    else None,
                }
            )
        cloud = None
        if self.cloud_catalog is not None:
            cloud = {
                "modes": dict(self.cloud_modes),
                "usage_events": len(self.cloud_events),
                "cloud_pod_seconds_total": sum(
                    r.cloud_pod_seconds for r in self.results.values()
                ),
                "quota_gpus": {
                    gpu: self.cloud_catalog.quota_gpus(gpu)
                    for gpu in sorted(self.cloud_catalog.instances)
                },
            }
        occupancy = {}
        for gpu in sorted(self.capacity):
            times, used = self.occupancy_series(gpu)
            occupancy[gpu] = {
                "t": [float(v) for v in times],
                "used": [int(v) for v in used],
            }
        tenant_ttft = {}
        for tenant in self.tenants:
            metrics = self.results[tenant].metrics
            if metrics is None:
                continue
            t, p95 = metrics.ttft_p95_series(window_s)
            tenant_ttft[tenant] = {
                "t": [float(v) for v in t],
                "p95_s": [float(v) for v in p95],
            }
        return {
            "kind": self.kind,
            "duration_s": self.duration_s,
            "capacity": dict(self.capacity),
            "total_cost": None
            if billing is None
            else sum(line["total"] for line in billing.values()),
            "peak_occupancy": self.peak_occupancy(),
            "cloud": cloud,
            "tenants": tenants,
            "contended_scale_events": [
                {
                    "time_s": event.time_s,
                    "tenant": tenant,
                    "constraint": event.constraint,
                    "from_pods": event.from_pods,
                    "requested": event.requested,
                    "to_pods": event.to_pods,
                }
                for tenant, event in self.contended_scale_events()
            ],
            "fault_events": [
                {"tenant": tenant, **fault_event_dict(event)}
                for tenant, event in self.fault_events()
            ],
            "series": {
                "window_s": float(window_s),
                "occupancy": occupancy,
                "tenant_ttft_p95": tenant_ttft,
            },
        }

    def summary(self) -> str:
        """One-line human digest (uniform across SimResult kinds)."""
        line = (
            f"{len(self.tenants)} tenants ({self.duration_s:.0f}s): "
            f"{self.arrivals_total} arrivals, "
            f"{len(self.contended_scale_events())} contended scale-ups"
        )
        faults = self.fault_events()
        if faults:
            line += f", {len(faults)} fault events"
        cloud_ps = sum(r.cloud_pod_seconds for r in self.results.values())
        if cloud_ps > 0:
            line += f", {cloud_ps:.0f} cloud pod-seconds burst"
        return line

    def verify_conservation(self) -> None:
        """Raise if any tenant leaked requests or the ledger went wrong.

        Checks, in order: per-tenant request conservation (arrivals ==
        admitted + shed == completed + in-flight + shed), the on-prem
        ledger replay (occupancy never negative and never above capacity
        at any event, in causal order), the cloud ledger replay (rented
        GPUs never negative and never above the catalog's account quota),
        and that each tenant's net allocated GPUs — on-prem plus rented —
        equal what its still-provisioned pods occupy at the end.
        """
        for result in self.results.values():
            result.verify_conservation()
        running = dict(self.base_used)
        net: dict[str, int] = {}
        for event in self.events:
            running[event.gpu] = running.get(event.gpu, 0) + event.delta
            if running[event.gpu] < 0:
                raise ValueError(
                    f"inventory leak: {event.gpu} below zero at t={event.time_s}"
                )
            if running[event.gpu] > self.capacity.get(event.gpu, 0):
                raise ValueError(
                    f"inventory over-allocated: {event.gpu} at "
                    f"{running[event.gpu]} > capacity "
                    f"{self.capacity.get(event.gpu, 0)} at t={event.time_s}"
                )
            net[event.tenant] = net.get(event.tenant, 0) + event.delta
        rented: dict[str, int] = {}
        for event in self.cloud_events:
            rented[event.gpu] = rented.get(event.gpu, 0) + event.delta
            if rented[event.gpu] < 0:
                raise ValueError(
                    f"cloud ledger leak: {event.gpu} below zero at "
                    f"t={event.time_s}"
                )
            if self.cloud_catalog is not None:
                quota = self.cloud_catalog.quota_gpus(event.gpu)
                if quota is not None and rented[event.gpu] > quota:
                    raise ValueError(
                        f"cloud quota exceeded: {event.gpu} at "
                        f"{rented[event.gpu]} > quota {quota} at "
                        f"t={event.time_s}"
                    )
            net[event.tenant] = net.get(event.tenant, 0) + event.delta
        for tenant in self.tenants:
            per_pod = parse_profile(self.profiles[tenant]).count
            holds = self.end_provisioned[tenant] * per_pod
            if net.get(tenant, 0) != holds:
                raise ValueError(
                    f"ledger mismatch for {tenant}: net allocation "
                    f"{net.get(tenant, 0)} != {holds} GPUs held at end"
                )


class ClusterSimulator:
    """Runs N tenant fleets on one virtual clock over a shared inventory.

    Each tenant's initial pods are allocated from the inventory at t=0
    (raising if they do not fit — feed placements through the
    multi-tenant scheduler first); thereafter every tenant autoscaler
    ask is filled, clipped or denied by what the ledger holds at that
    virtual instant. Decisions across tenants are processed in global
    (time, tenant-order) order, so contention is deterministic for
    seeded runs.
    """

    def __init__(
        self,
        tenants: list[TenantGroup],
        inventory: ClusterInventory,
        fast: bool = True,
        cloud: CloudLedger | None = None,
        burst: BurstPolicy | dict[str, BurstPolicy] | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("ClusterSimulator needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if burst is not None and cloud is None:
            raise ValueError("a burst policy needs a cloud ledger to rent from")
        self.tenants = list(tenants)
        self.inventory = inventory
        # Cloud-burst tier (simulation.cloud): ``cloud`` is the rented
        # capacity ledger, ``burst`` the cluster-wide policy (or a
        # per-tenant mapping; unmapped tenants never burst). Without
        # them the simulator is the pure on-prem machine it always was.
        self.cloud = cloud
        if isinstance(burst, BurstPolicy):
            self._burst = {name: burst for name in names}
        else:
            self._burst = dict(burst or {})
        unknown = set(self._burst) - set(names)
        if unknown:
            raise ValueError(f"burst policies for unknown tenants: {sorted(unknown)}")
        self._spot_wired = False
        # Fast cluster loop: a ClusterFrontier replaces the per-event
        # O(tenants) scans. Bit-identical by construction (see
        # simulation.frontier); the oracle scan loop stays selectable
        # for parity suites and equivalence benchmarks, exactly like
        # the fleet's own fast flag.
        self.fast = bool(fast)

    def _bind(self, group: TenantGroup) -> None:
        """Subject one tenant's elasticity to the shared ledger(s).

        Both cluster loops (fast and oracle) reach capacity only through
        these closures, so the burst decision is bit-identical across
        them by construction: on-prem fills first, and only the
        shortfall of a denied/clipped scale-up is offered to the cloud
        tier under the tenant's burst policy. A scale-up fully covered
        by bursting records no ``denied``/``clipped`` constraint — the
        tenant got every pod it asked for, just not for free.
        """
        policy = self._burst.get(group.name)
        profile = parse_profile(group.profile)

        def acquire(want: int, t: float) -> int:
            grant = min(want, self.inventory.fillable_pods(group.profile))
            burst = 0
            shortfall = want - grant
            if (
                shortfall > 0
                and policy is not None
                and self.cloud.catalog.offers(profile.gpu.name)
            ):
                price = self.cloud.catalog.pod_cost(profile, policy.mode)
                ask = policy.burst_pods(
                    shortfall, self.cloud.held_pods(group.name), price
                )
                burst = min(ask, self.cloud.fillable_pods(group.profile))
                if burst > 0:
                    # Serials are assigned sequentially after this grant
                    # returns: the first ``grant`` new pods sit on-prem,
                    # the last ``burst`` are rented (and, having the
                    # highest serials, are first in line for
                    # newest-first scale-down — rented capacity is
                    # returned before owned capacity idles).
                    start = group.fleet.next_serial + grant
                    group.fleet.mark_cloud(range(start, start + burst))
                    self.cloud.allocate(
                        group.profile,
                        burst,
                        tenant=group.name,
                        time_s=t,
                        mode=policy.mode,
                    )
            if grant > 0:
                self.inventory.allocate(
                    group.profile,
                    grant,
                    tenant=group.name,
                    time_s=t,
                    reason="scale-up",
                )
            return grant + burst

        def release(
            pods: int,
            t: float,
            serials: list[int] | None = None,
            reason: str = "scale-down",
        ) -> None:
            cloud_pods = 0
            if serials is not None and group.fleet.cloud_serials:
                cloud_pods = sum(
                    1 for s in serials if s in group.fleet.cloud_serials
                )
            if cloud_pods:
                self.cloud.release(
                    group.profile,
                    cloud_pods,
                    tenant=group.name,
                    time_s=t,
                    mode=policy.mode if policy is not None else "on-demand",
                    reason=reason if reason == "spot-preempt" else "scale-down",
                )
            if pods - cloud_pods:
                self.inventory.release(
                    group.profile,
                    pods - cloud_pods,
                    tenant=group.name,
                    time_s=t,
                    reason="scale-down",
                )

        group.fleet.bind_capacity(acquire, release)

    def _wire_spot_preemptions(self, t_end: float) -> None:
        """Merge seeded spot-preemption schedules into spot tenants' faults.

        One independent Poisson stream per tenant bursting in ``spot``
        mode, derived from the cloud ledger's seed and the tenant name,
        at the catalog's per-type interruption rate. The schedule flows
        through the ordinary fault-injection path (victims resolve to
        cloud pods at fire time), so fast and oracle runs — which share
        the seed — see the identical schedule. Idempotent across
        repeated ``run`` calls on one simulator.
        """
        if self._spot_wired or self.cloud is None:
            return
        self._spot_wired = True
        for group in self.tenants:
            policy = self._burst.get(group.name)
            if policy is None or policy.mode != "spot":
                continue
            profile = parse_profile(group.profile)
            if not self.cloud.catalog.offers(profile.gpu.name):
                continue
            rate = self.cloud.catalog.spot_interruptions_per_hour(
                profile.gpu.name
            )
            specs = spot_preemption_specs(
                rate, t_end, self.cloud.seed, group.name
            )
            if not specs:
                continue
            injector = group.fleet.faults
            if injector is None:
                group.fleet.faults = FaultInjector(
                    specs, seed=self.cloud.seed
                )
            else:
                group.fleet.faults = FaultInjector(
                    injector.specs + specs, seed=injector.seed
                )

    def run(
        self,
        duration_s: float,
        warmup_s: float = 0.0,
        keep_samples: bool = False,
    ) -> ClusterResult:
        """Co-simulate a ``warmup_s + duration_s`` window of virtual time.

        The loop is the fleet's own event loop lifted one level: inject
        every tenant's due arrivals, find the globally earliest busy
        pod, run every autoscale decision due at or before that frontier
        (cheapest virtual time first, across tenants), then step that
        one pod. Tenants interact *only* through the inventory, so
        per-tenant causality is exactly the standalone fleet's.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if warmup_s < 0:
            raise ValueError(f"warmup_s must be >= 0, got {warmup_s}")
        t_end = warmup_s + duration_s
        wall_start = _time.perf_counter()
        base_used = dict(self.inventory.used)
        ledger_mark = len(self.inventory.events)
        granted: list[TenantGroup] = []
        for group in self.tenants:
            try:
                self.inventory.allocate(
                    group.profile,
                    len(group.fleet.pods),
                    tenant=group.name,
                    time_s=0.0,
                    reason="initial",
                )
            except ValueError as exc:
                # Roll back the earlier tenants' grants so a failed run
                # leaves the caller's inventory exactly as it found it:
                # the anonymous releases restore the counts, truncating
                # the event list drops the now-spurious initial entries.
                for done in granted:
                    self.inventory.release(done.profile, len(done.fleet.pods))
                del self.inventory.events[ledger_mark:]
                raise ValueError(
                    f"initial allocation for tenant {group.name!r} does not "
                    f"fit the inventory: {exc}"
                ) from exc
            granted.append(group)
        self._wire_spot_preemptions(t_end)
        for group in self.tenants:
            self._bind(group)
            group.fleet.begin(duration_s, warmup_s)

        if self.fast:
            self._run_fast(t_end)
        else:
            self._run_oracle(t_end)
        for group in self.tenants:
            group.fleet.drain_pending()

        results = {
            g.name: g.fleet.collect(duration_s, warmup_s, keep_samples)
            for g in self.tenants
        }
        sim_events = sum(r.sim_events for r in results.values())
        wall_time_s = _time.perf_counter() - wall_start
        return ClusterResult(
            duration_s=duration_s,
            warmup_s=warmup_s,
            time_s=max(r.time_s for r in results.values()),
            capacity=dict(self.inventory.capacity),
            tenants=[g.name for g in self.tenants],
            results=results,
            profiles={g.name: g.profile for g in self.tenants},
            slos={g.name: g.slo_p95_ttft_s for g in self.tenants},
            end_provisioned={g.name: g.fleet.provisioned for g in self.tenants},
            events=list(self.inventory.events),
            base_used=base_used,
            sim_events=sim_events,
            wall_time_s=wall_time_s,
            cloud_events=[] if self.cloud is None else list(self.cloud.events),
            cloud_catalog=None if self.cloud is None else self.cloud.catalog,
            cloud_modes={
                name: policy.mode for name, policy in self._burst.items()
            },
        )

    def _run_oracle(self, t_end: float) -> None:
        """The straight-line cluster loop: O(tenants) scans per event.

        Retained verbatim as the golden oracle the fast loop is gated
        against (``fast=False``), exactly as the fleet keeps its scan
        path next to the heap frontier.
        """
        while True:
            for group in self.tenants:
                group.fleet.inject_due(t_end)
            stepping: TenantGroup | None = None
            pod = None
            t_next = float("inf")
            for group in self.tenants:
                candidate = group.fleet.frontier_pod()
                if candidate is not None and candidate.time < t_next:
                    stepping, pod, t_next = group, candidate, candidate.time
            if stepping is None or t_next >= t_end:
                break
            # Control events (faults + autoscale decisions) due anywhere
            # in the cluster run before the frontier pod steps, in
            # global virtual-time order — tenant A's release at t can
            # fund tenant B's grant at t' > t, and a zone outage frees
            # capacity the same way. Within a tenant, a fault at the
            # same instant as a decision fires first, so the decision
            # observes the degraded fleet (exactly as the standalone
            # fleet loop orders them).
            faulted = False
            while True:
                decider: TenantGroup | None = None
                t_ctl = float("inf")
                is_fault = False
                for group in self.tenants:
                    if group.fleet.next_fault < t_ctl:
                        decider, t_ctl, is_fault = group, group.fleet.next_fault, True
                    if group.fleet.next_decision < t_ctl:
                        decider, t_ctl = group, group.fleet.next_decision
                        is_fault = False
                if decider is None or t_ctl > t_next or t_ctl >= t_end:
                    break
                if is_fault:
                    decider.fleet.fault_tick()
                    faulted = True
                else:
                    decider.fleet.autoscale_tick()
            if faulted and not pod.has_work():
                # A fault crashed the frontier pod itself (or evacuated
                # its work): re-resolve the global frontier.
                continue
            stepping.fleet.step_pod(pod)

    def _run_fast(self, t_end: float) -> None:
        """The heap-driven cluster loop: O(log tenants) per event.

        Bit-identical to :meth:`_run_oracle` by construction. Two
        deviations from the oracle's shape make it fast, neither of
        which can change a single observable:

        * ``inject_due`` runs only for tenants mutated since their last
          injection (the ``dirty`` set), not for every tenant on every
          iteration — injection is a per-tenant fixpoint (nothing
          becomes due until the tenant itself steps, scales, faults or
          injects), so the skipped calls were all no-ops. Dirty tenants
          are injected at the top of the next iteration, *not* right
          after the mutating tick: the oracle's control drain observes
          the fleet un-injected, and a decision must see exactly the
          queue state its oracle counterpart saw.
        * the three per-event scans become :class:`ClusterFrontier`
          peeks, whose heap keys replicate the scans' first-minimum and
          fault-before-decision tie-breaks bit-for-bit.
        """
        fleets = [group.fleet for group in self.tenants]
        frontier = ClusterFrontier(fleets)
        dirty = set(range(len(fleets)))
        while True:
            if dirty:
                for index in sorted(dirty):
                    fleets[index].inject_due(t_end)
                    frontier.push(index)
                dirty.clear()
            index, pod = frontier.peek_pod()
            if pod is None:
                break
            t_next = pod.time
            if t_next >= t_end:
                break
            faulted = False
            while True:
                t_ctl, ctl_index, is_fault = frontier.peek_control()
                if ctl_index < 0 or t_ctl > t_next or t_ctl >= t_end:
                    break
                fleet = fleets[ctl_index]
                if is_fault:
                    fleet.fault_tick()
                    faulted = True
                else:
                    fleet.autoscale_tick()
                frontier.push(ctl_index)
                dirty.add(ctl_index)
            if faulted and not pod.has_work():
                # A fault crashed the frontier pod itself (or evacuated
                # its work): re-resolve the global frontier (the dirty
                # tenants are injected first, as the oracle would).
                continue
            fleets[index].step_pod(pod)
            frontier.push(index)
            dirty.add(index)
