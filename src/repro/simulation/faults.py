"""Deterministic fault injection: crashes, slowdowns, zone outages.

The simulator was a fair-weather world: pods never crashed, never
slowed down, and zones never disappeared — so the autoscaling +
admission stack had never been asked the one question production asks
(does the quiet tenant's p95 survive a failure?). This module is the
fault layer:

* a :class:`FaultSpec` declares one scheduled fault — a pod ``crash``
  (in-flight requests requeued or lost, optionally restarted after a
  delay), a transient ``slowdown`` (a time-windowed multiplier on the
  engine's prefill/decode cost) or a correlated ``zone-outage`` (every
  pod in a zone crashes at once);
* a :class:`FaultInjector` expands a list of specs into a time-sorted
  event timeline consumed by the fleet's run loop through the same
  shared-clock interface autoscale decisions use (``next_fault`` /
  ``fault_tick``), so the fast core and the golden oracle see an
  identical fault schedule;
* every applied fault is recorded as a :class:`FaultEvent` on the run's
  result, which is what recovery-time and degraded-window SLO metrics
  are computed from.

Victim selection for untargeted faults (no ``pod``, no ``zone``) draws
from a seeded stream (:func:`repro.utils.rng.derive_rng`), and the
fleet state it selects over is identical under ``fast=True`` and
``fast=False`` — fault schedules are exactly reproducible from the
injector seed alone. A fleet with no injector never consults this
module: the fault-free path stays bit-identical to the pre-fault
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.utils.rng import derive_rng

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultEvent", "FaultInjector"]

#: The fault kinds a spec may declare. ``spot-preempt`` is the cloud
#: tier's reclamation event: it crashes a pod like ``crash`` does, but
#: only cloud-burst pods are eligible victims and the instance is
#: reclaimed by the provider, so no in-place restart is possible.
FAULT_KINDS = ("crash", "slowdown", "zone-outage", "spot-preempt")

#: What happens to a crashed pod's in-flight requests.
FAULT_MODES = ("requeue", "lose")


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault, scheduled at ``time_s`` on the virtual clock.

    ``pod`` pins the fault to one pod serial and ``zone`` to a whole
    zone (at most one of the two); an untargeted ``crash`` or
    ``slowdown`` picks a seeded-random victim among the pods in service
    when it fires. ``mode`` decides the fate of a crashed pod's
    in-flight requests: ``"requeue"`` re-offers them to the front end at
    the crash instant (a client retry — they pass admission again and
    their latency clock restarts), ``"lose"`` drops them, accounted by
    the extended conservation invariant. ``restart_delay_s`` cold-starts
    a replacement pod that many seconds after a crash; without it the
    capacity is gone for good. Slowdowns multiply the victim's
    prefill/decode step cost by ``factor`` for ``duration_s`` seconds.
    """

    kind: str
    time_s: float
    pod: int | None = None
    zone: str | None = None
    mode: str = "requeue"
    restart_delay_s: float | None = None
    duration_s: float | None = None
    factor: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if self.time_s < 0:
            raise ValueError(f"fault time_s must be >= 0, got {self.time_s}")
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known: {sorted(FAULT_MODES)}"
            )
        if self.pod is not None and self.zone is not None:
            raise ValueError("a fault targets a pod or a zone, not both")
        if self.kind == "zone-outage" and self.zone is None:
            raise ValueError("a zone-outage fault needs a zone")
        if self.kind == "crash" and self.zone is not None:
            raise ValueError("a whole-zone crash is kind 'zone-outage'")
        if self.kind == "spot-preempt":
            if self.zone is not None:
                raise ValueError(
                    "spot preemption targets cloud pods, not zones"
                )
            if self.restart_delay_s is not None:
                raise ValueError(
                    "a preempted spot instance is reclaimed by the provider; "
                    "restart_delay_s does not apply (the autoscaler re-bursts "
                    "through the capacity ledger instead)"
                )
        if self.kind == "slowdown":
            if self.duration_s is None or self.duration_s <= 0:
                raise ValueError(
                    f"a slowdown fault needs a positive duration_s, "
                    f"got {self.duration_s}"
                )
            if self.factor is None or self.factor <= 0:
                raise ValueError(
                    f"a slowdown fault needs a positive factor, got {self.factor}"
                )
            if self.restart_delay_s is not None:
                raise ValueError("restart_delay_s does not apply to slowdowns")
        else:
            if self.duration_s is not None:
                raise ValueError("duration_s only applies to slowdown faults")
            if self.factor is not None:
                raise ValueError("factor only applies to slowdown faults")
            if self.restart_delay_s is not None and self.restart_delay_s <= 0:
                raise ValueError(
                    f"restart_delay_s must be positive, got {self.restart_delay_s}"
                )


@dataclass(frozen=True)
class FaultEvent:
    """One applied fault, recorded on the run's result.

    A crash/zone-outage spec produces one event per pod actually killed
    (``requeued``/``lost`` count its in-flight requests, ``restart_s``
    the virtual time its replacement becomes routable); a slowdown
    produces a ``slowdown-start`` and ``slowdown-end`` pair per victim.
    A spec that resolved to no in-service pod is recorded once with
    ``pod=None`` so scheduled-but-ineffective faults stay visible.
    """

    time_s: float
    kind: str  # crash | zone-outage | spot-preempt | slowdown-start | slowdown-end
    pod: int | None = None
    zone: str | None = None
    requeued: int = 0
    lost: int = 0
    factor: float = 1.0
    restart_s: float | None = None

    @property
    def disruptive(self) -> bool:
        """Did this event degrade service (recovery is measured from it)?"""
        return self.kind in (
            "crash",
            "zone-outage",
            "spot-preempt",
            "slowdown-start",
        )


class FaultInjector:
    """Expands fault specs into the timeline one fleet run consumes.

    The fleet calls :meth:`begin` at run start (re-running the same
    injector replays the same schedule), then interleaves
    :attr:`next_time` / :meth:`pop` with its autoscale decisions on the
    shared clock. A slowdown spec contributes two timeline entries
    (window start and end); ties order by (start-before-end, spec
    index), so schedules are deterministic.
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultInjector needs FaultSpecs, got {spec!r}")
        self.seed = int(seed)
        self._timeline: list[tuple[float, int, int, str, FaultSpec]] = []
        self._index = 0
        self._rng = derive_rng(self.seed, "fault-injector")

    @property
    def needs_factory(self) -> bool:
        """Does any spec restart pods (requiring a fleet pod_factory)?"""
        return any(spec.restart_delay_s is not None for spec in self.specs)

    def begin(self) -> None:
        """Reset to the start of the schedule (one call per fleet run)."""
        entries = []
        for index, spec in enumerate(self.specs):
            if spec.kind == "slowdown":
                entries.append((spec.time_s, 0, index, "slow-start", spec))
                entries.append(
                    (spec.time_s + spec.duration_s, 1, index, "slow-end", spec)
                )
            else:
                entries.append((spec.time_s, 0, index, spec.kind, spec))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        self._timeline = entries
        self._index = 0
        self._rng = derive_rng(self.seed, "fault-injector")

    @property
    def next_time(self) -> float:
        """Virtual time of the next scheduled fault (inf when exhausted)."""
        if self._index >= len(self._timeline):
            return float("inf")
        return self._timeline[self._index][0]

    def pop(self) -> tuple[float, str, int, FaultSpec]:
        """Consume the next timeline entry: (time, action, spec index, spec)."""
        time_s, _, index, action, spec = self._timeline[self._index]
        self._index += 1
        return time_s, action, index, spec

    def pick_victim(self, serials: Sequence[int]) -> int:
        """Seeded uniform choice among candidate pod serials.

        The candidates are sorted first, so the draw depends only on
        the fleet's membership (identical under fast and oracle paths),
        never on iteration order.
        """
        ordered = sorted(serials)
        return int(ordered[int(self._rng.integers(len(ordered)))])
