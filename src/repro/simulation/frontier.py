"""Event-frontier index: the fast core's O(log pods) busy-pod lookup.

The fleet event loop steps the busy pod with the smallest virtual time
("the frontier") once per event. The oracle path finds it with an
O(pods) ``min()`` scan over every in-service pod — fine for a handful of
replicas, but the scan runs once per event and once more per arrival
check, so it compounds badly on autoscaled fleets that grow to dozens of
pods. :class:`EventFrontier` replaces both scans with a lazy-invalidation
binary heap keyed on ``(pod.time, service_order)``:

* entries are pushed when a pod becomes busy or its clock moves
  (submit, step); stale entries are *not* removed eagerly — :meth:`peek`
  discards any entry whose pod went idle or whose recorded clock no
  longer matches, which amortizes to O(log pods) per event;
* pod virtual time is monotone, so an entry can go stale but never
  become valid again — lazy invalidation is safe;
* the tie-break is the pod's position in the fleet's in-service order
  (``pods + draining``), which is exactly the pod Python's ``min``
  returns on equal clocks. That makes the heap answer *bit-identical*
  to the oracle scan, not just equivalent — membership changes
  (activation, draining, retirement) renumber positions, so the fleet
  calls :meth:`rebuild` on every such (rare) event.

The module also hosts the one shared definition of pod load used by
every least-loaded selection (routers, drain-victim choice), previously
copy-pasted as ``key=lambda`` closures in three places.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle with the engine
    from repro.inference.engine import ContinuousBatchingEngine
    from repro.simulation.fleet import FleetSimulator

__all__ = [
    "ClusterFrontier",
    "EventFrontier",
    "committed_load",
    "least_loaded_pod",
]


def committed_load(pod: "ContinuousBatchingEngine") -> int:
    """Every token the pod has accepted but not finished.

    The in-flight batch weight plus the weight still waiting in the
    pod's queue — the load measure all least-loaded selections share.
    Reads the engine's private counters directly: the initial routing
    pass evaluates this O(users * pods) times, where two property
    dispatches per pod are measurable. Duck-typed pods (test stubs)
    without those counters fall back to the public accessors.
    """
    try:
        return pod._batch_weight + pod._pending_weight
    except AttributeError:
        return pod.batch_weight_in_use + pod.pending_weight


def least_loaded_pod(candidates: Iterable[int], pods: Sequence) -> int:
    """Index of the least-loaded candidate pod; ties break to the lowest.

    The one shared helper behind every least-loaded selection
    (:class:`~repro.simulation.fleet.LeastLoadedRouter`, the tiered
    :class:`~repro.simulation.fleet.WeightAwareRouter`); load is
    :func:`committed_load`, the same measure the autoscaler's
    drain-victim choice uses.
    """
    return min(candidates, key=lambda i: (committed_load(pods[i]), i))


class EventFrontier:
    """Lazy-invalidation heap over busy pods, keyed on virtual time.

    Owned by a :class:`~repro.simulation.fleet.FleetSimulator` running
    with ``fast=True``. The fleet keeps the index current with three
    hooks: :meth:`rebuild` on any service-membership change,
    :meth:`push` after any event that moves a pod's clock or makes an
    idle pod busy, and :meth:`peek` wherever the oracle path would scan.
    """

    __slots__ = ("_heap", "_order", "_pods")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int]] = []
        self._order: dict[int, int] = {}
        self._pods: list["ContinuousBatchingEngine"] = []

    def rebuild(self, in_service: Sequence["ContinuousBatchingEngine"]) -> None:
        """Re-index after the in-service pod set (or its order) changed.

        O(pods), but only membership events (activation, drain,
        retirement) trigger it — the steady-state loop never does.
        """
        self._pods = list(in_service)
        self._order = {id(pod): i for i, pod in enumerate(self._pods)}
        self._heap = [
            (pod.time, i) for i, pod in enumerate(self._pods) if pod.has_work()
        ]
        heapq.heapify(self._heap)

    def push(self, pod: "ContinuousBatchingEngine") -> None:
        """Record ``pod``'s current clock (after a submit or step).

        Earlier entries for the pod are left in the heap; they are
        discarded lazily by :meth:`peek` since the clock only moves
        forward. Pods outside the indexed service set are ignored.
        """
        # push/peek run 2-3x per simulated event, so both read the
        # engine's private ``_time``/``_queue``/``_active`` directly
        # instead of going through the ``time``/``has_work()``
        # accessors — property and call overhead dominate at this rate.
        order = self._order.get(id(pod))
        if order is not None and (pod._queue or pod._active):
            heapq.heappush(self._heap, (pod._time, order))

    def peek(self) -> "ContinuousBatchingEngine | None":
        """The busy pod with the smallest ``(time, service order)``.

        Discards stale entries (pod went idle, or its clock moved past
        the recorded value) from the top; the returned pod's entry is
        left in place so repeated peeks are O(1).
        """
        heap = self._heap
        pods = self._pods
        while heap:
            entry = heap[0]
            pod = pods[entry[1]]
            if pod._time == entry[0] and (pod._queue or pod._active):
                return pod
            heapq.heappop(heap)
        return None


#: Control-entry kinds of the cluster frontier. A fault beats an
#: autoscale decision at the same (time, tenant) — the oracle scan
#: checks ``next_fault`` before ``next_decision`` with a strict ``<``,
#: so the decision observes the already-degraded fleet.
_KIND_FAULT = 0
_KIND_DECISION = 1


class ClusterFrontier:
    """Lazy-invalidation heaps over tenant fleets for the cluster loop.

    :class:`EventFrontier` lifted one level: where the fleet indexes its
    busy *pods*, this indexes whole *tenants* for the
    :class:`~repro.simulation.cluster.ClusterSimulator`, replacing its
    three O(tenants) scans per event (frontier pod, next fault, next
    decision) with O(log tenants) heap pops.

    Two heaps share the same lazy-invalidation discipline:

    * the **pod heap** holds ``(frontier_time, tenant_index)`` entries —
      one per recorded observation of a tenant's earliest busy pod. An
      entry is stale when the tenant's current frontier time no longer
      equals the recorded one (the tenant stepped away, went idle, or an
      injection pulled its frontier *earlier* — unlike a single pod's
      clock, a tenant frontier is not monotone, which is why
      :meth:`push` must run after every mutation of that tenant so the
      heap always holds a fresh entry at or below the true minimum);
    * the **control heap** holds ``(time, tenant_index, kind)`` entries
      for pending fault and autoscale-decision times, stale as soon as
      the fleet's ``next_fault``/``next_decision`` moved past them.

    Tie-breaks replicate the oracle scans bit-for-bit: equal times
    resolve to the lowest tenant index (the scan's first minimum), and
    within one tenant a fault (kind 0) sorts before a decision (kind 1)
    at the same instant. Validation goes through the fleet's own
    ``frontier_pod()``, so the pod returned for a valid entry is always
    the tenant's *current* frontier pod, whichever pod that is.
    """

    __slots__ = ("_fleets", "_pod_heap", "_ctl_heap")

    def __init__(self, fleets: Sequence["FleetSimulator"]) -> None:
        self._fleets = list(fleets)
        self._pod_heap: list[tuple[float, int]] = []
        self._ctl_heap: list[tuple[float, int, int]] = []
        for index in range(len(self._fleets)):
            self.push(index)

    def push(self, index: int) -> None:
        """Re-record tenant ``index``'s frontier-pod and control times.

        Called after anything that mutates the tenant (inject, step,
        fault tick, autoscale tick). Old entries are left behind for
        :meth:`peek_pod`/:meth:`peek_control` to discard lazily;
        duplicates of a still-valid entry are harmless.
        """
        fleet = self._fleets[index]
        pod = fleet.frontier_pod()
        if pod is not None:
            heapq.heappush(self._pod_heap, (pod.time, index))
        t_fault = fleet.next_fault
        if t_fault != float("inf"):
            heapq.heappush(self._ctl_heap, (t_fault, index, _KIND_FAULT))
        t_decision = fleet.next_decision
        if t_decision != float("inf"):
            heapq.heappush(self._ctl_heap, (t_decision, index, _KIND_DECISION))

    def peek_pod(self) -> tuple[int, "ContinuousBatchingEngine | None"]:
        """``(tenant_index, pod)`` of the globally earliest busy pod.

        ``(-1, None)`` when every tenant is idle. The valid entry is left
        in place so repeated peeks are O(1).
        """
        heap = self._pod_heap
        fleets = self._fleets
        while heap:
            recorded, index = heap[0]
            pod = fleets[index].frontier_pod()
            if pod is not None and pod.time == recorded:
                return index, pod
            heapq.heappop(heap)
        return -1, None

    def peek_control(self) -> tuple[float, int, bool]:
        """``(time, tenant_index, is_fault)`` of the next control event.

        ``(inf, -1, False)`` when nothing is pending. Consecutive
        same-time faults stay valid across ticks (the injector may hold
        several events at one instant), exactly as the oracle re-scan
        would find them.
        """
        heap = self._ctl_heap
        fleets = self._fleets
        while heap:
            recorded, index, kind = heap[0]
            fleet = fleets[index]
            actual = fleet.next_fault if kind == _KIND_FAULT else fleet.next_decision
            if actual == recorded:
                return recorded, index, kind == _KIND_FAULT
            heapq.heappop(heap)
        return float("inf"), -1, False
