"""The curated scenario library: named specs with pinned expectations.

``scenarios/`` at the repository root holds the canonical catalog —
one :class:`~repro.simulation.scenario.ScenarioSpec` YAML file per
named workload (``diurnal-retail``, ``noisy-neighbor``, ...), each
exercising a different slice of the simulator and each carrying an
inline ``expectations:`` block that pins what a healthy run looks
like (p95 TTFT bound, SLO attainment floor, cost ceiling, completion
floor, loss ceiling). This module is the loader and the judge:

* :func:`list_scenarios` / :func:`scenario_path` / :func:`load_by_name`
  discover the catalog, so ``repro-pilot simulate --scenario-name
  diurnal-retail`` runs a curated workload without a path, and a miss
  lists every available name;
* :class:`Expectations` parses a spec's ``expectations:`` block and
  :func:`evaluate_expectations` scores a finished result against it,
  producing a per-check :class:`ExpectationReport` the test matrix
  (``tests/test_library.py``) and the CI scenario-matrix benchmark
  (``benchmarks/bench_scenario_matrix.py``) assert on.

Checks that need per-request samples (SLO attainment) are *skipped*,
not failed, when the run dropped them (``keep_samples=False``); the
matrix always keeps samples so nothing is skipped where it counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.simulation.scenario import ScenarioSpec

__all__ = [
    "DEFAULT_SCENARIO_DIR",
    "Expectations",
    "ExpectationCheck",
    "ExpectationReport",
    "evaluate_expectations",
    "list_scenarios",
    "load_by_name",
    "scenario_path",
]

# src/repro/simulation/library.py -> repository root / scenarios
DEFAULT_SCENARIO_DIR = Path(__file__).resolve().parents[3] / "scenarios"

_SUFFIXES = (".yaml", ".yml", ".json")


def _scenario_files(directory: str | Path | None = None) -> dict[str, Path]:
    """name -> path for every spec file in the library directory."""
    root = Path(directory) if directory is not None else DEFAULT_SCENARIO_DIR
    if not root.is_dir():
        return {}
    out: dict[str, Path] = {}
    for path in sorted(root.iterdir()):
        if path.suffix in _SUFFIXES and not path.name.startswith("."):
            out[path.stem] = path
    return out


def list_scenarios(directory: str | Path | None = None) -> list[str]:
    """Every curated scenario name, sorted (empty if no library dir)."""
    return sorted(_scenario_files(directory))


def scenario_path(name: str, directory: str | Path | None = None) -> Path:
    """The spec file behind one library name.

    A miss raises ``ValueError`` listing every available name, so a
    typo at the CLI reads as a menu, not a stack trace.
    """
    files = _scenario_files(directory)
    if name not in files:
        root = Path(directory) if directory is not None else DEFAULT_SCENARIO_DIR
        available = ", ".join(sorted(files)) if files else "none"
        raise ValueError(
            f"unknown scenario name {name!r} (library: {root}); "
            f"available: {available}"
        )
    return files[name]


def load_by_name(
    name: str, directory: str | Path | None = None
) -> ScenarioSpec:
    """Load one curated scenario through :meth:`ScenarioSpec.load`."""
    return ScenarioSpec.load(str(scenario_path(name, directory)))


@dataclass(frozen=True)
class Expectations:
    """Parsed form of a spec's ``expectations:`` block.

    Every bound is optional; an absent bound is simply not checked.
    ``fast_oracle_parity`` is not a bound at all but a marker the test
    matrix honors by re-running the scenario with ``fast=False`` and
    asserting bit-identical headline metrics.
    """

    p95_ttft_ms_max: float | None = None
    slo_attainment_min: float | None = None
    cost_max_usd: float | None = None
    min_completed: int | None = None
    max_lost: int | None = None
    fast_oracle_parity: bool = False

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Expectations":
        section = spec.expectations or {}
        return cls(
            p95_ttft_ms_max=(
                None
                if section.get("p95_ttft_ms_max") is None
                else float(section["p95_ttft_ms_max"])
            ),
            slo_attainment_min=(
                None
                if section.get("slo_attainment_min") is None
                else float(section["slo_attainment_min"])
            ),
            cost_max_usd=(
                None
                if section.get("cost_max_usd") is None
                else float(section["cost_max_usd"])
            ),
            min_completed=(
                None
                if section.get("min_completed") is None
                else int(section["min_completed"])
            ),
            max_lost=(
                None
                if section.get("max_lost") is None
                else int(section["max_lost"])
            ),
            fast_oracle_parity=bool(section.get("fast_oracle_parity", False)),
        )


@dataclass(frozen=True)
class ExpectationCheck:
    """One evaluated bound: what was required, what was observed.

    ``passed`` is ``None`` when the check could not be computed (the
    run dropped its samples) — skipped, neither green nor red.
    """

    name: str
    bound: float
    observed: float | None
    passed: bool | None

    def describe(self) -> str:
        status = (
            "skipped" if self.passed is None else "ok" if self.passed else "FAIL"
        )
        observed = "n/a" if self.observed is None else f"{self.observed:.4g}"
        return f"{self.name}: {observed} vs {self.bound:.4g} [{status}]"


@dataclass
class ExpectationReport:
    """Every check of one scenario run, in declaration order."""

    scenario: str
    checks: list[ExpectationCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no check failed (skipped checks do not fail)."""
        return all(check.passed is not False for check in self.checks)

    @property
    def failures(self) -> list[ExpectationCheck]:
        return [check for check in self.checks if check.passed is False]

    def summary(self) -> str:
        if not self.checks:
            return f"{self.scenario}: no expectations declared"
        body = "; ".join(check.describe() for check in self.checks)
        return f"{self.scenario}: {body}"


def _ttft_attainment(result, slo_s: float) -> float | None:
    """Fraction of first tokens served within ``slo_s`` (None: no samples)."""
    if result.metrics is None:
        return None
    samples, _ = result.metrics.ttft_samples()
    if samples.size == 0:
        return None
    return float((samples <= slo_s).mean())


def _fleet_observations(spec: ScenarioSpec, result, pricing) -> dict:
    from repro.hardware.profile import parse_profile

    hourly = pricing.pod_cost(parse_profile(spec.profile))
    slo_s = None if spec.slo_ttft_ms is None else float(spec.slo_ttft_ms) / 1e3
    return {
        "p95_ttft_ms": float(result.ttft.p95_s) * 1e3,
        "slo_attainment": (
            None if slo_s is None else _ttft_attainment(result, slo_s)
        ),
        "cost_usd": result.pod_seconds / 3600.0 * hourly,
        "completed": int(result.completed_total),
        "lost": int(result.lost),
    }


def _cluster_observations(spec: ScenarioSpec, result, pricing) -> dict:
    worst_p95 = max(
        float(result.results[t].ttft.p95_s) for t in result.tenants
    )
    attainments = []
    for tenant in result.tenants:
        slo = result.slos.get(tenant)
        if slo is None:
            continue
        attainments.append(_ttft_attainment(result.results[tenant], slo))
    attainment: float | None
    if not attainments:
        attainment = None
    elif any(a is None for a in attainments):
        attainment = None
    else:
        attainment = min(attainments)
    return {
        "p95_ttft_ms": worst_p95 * 1e3,
        "slo_attainment": attainment,
        "cost_usd": float(result.total_cost(pricing)),
        "completed": sum(
            int(result.results[t].completed_total) for t in result.tenants
        ),
        "lost": sum(int(result.results[t].lost) for t in result.tenants),
    }


def evaluate_expectations(
    spec: ScenarioSpec, result, pricing=None
) -> ExpectationReport:
    """Score a finished run against its spec's ``expectations:`` block.

    ``result`` is the :class:`~repro.simulation.fleet.FleetResult` or
    :class:`~repro.simulation.cluster.ClusterResult` of running *this*
    spec; cluster costs (and fleet pod-seconds) are priced with
    ``pricing`` (default: the AWS-like on-prem table). Latency bounds
    evaluate against the *worst* tenant of a cluster run — a curated
    scenario is only healthy if every tenant is.
    """
    from repro.hardware.pricing import aws_like_pricing

    pricing = pricing or aws_like_pricing()
    expectations = Expectations.from_spec(spec)
    observed = (
        _cluster_observations(spec, result, pricing)
        if result.kind == "cluster"
        else _fleet_observations(spec, result, pricing)
    )
    report = ExpectationReport(scenario=spec.name)

    def check(name, bound, value, ok) -> None:
        if bound is None:
            return
        passed = None if value is None else bool(ok(value, bound))
        report.checks.append(
            ExpectationCheck(
                name=name, bound=float(bound), observed=value, passed=passed
            )
        )

    check(
        "p95_ttft_ms_max",
        expectations.p95_ttft_ms_max,
        observed["p95_ttft_ms"],
        lambda v, b: v <= b,
    )
    check(
        "slo_attainment_min",
        expectations.slo_attainment_min,
        observed["slo_attainment"],
        lambda v, b: v >= b,
    )
    check(
        "cost_max_usd",
        expectations.cost_max_usd,
        observed["cost_usd"],
        lambda v, b: v <= b,
    )
    check(
        "min_completed",
        expectations.min_completed,
        float(observed["completed"]),
        lambda v, b: v >= b,
    )
    check(
        "max_lost",
        expectations.max_lost,
        float(observed["lost"]),
        lambda v, b: v <= b,
    )
    return report
