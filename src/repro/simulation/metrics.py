"""Metric collection for simulated load tests.

The engine used to hoard its own metric buffers (``_itl_gaps``,
``_ttft_records``); they now live in a :class:`MetricsCollector` the
engine emits events into. The collector owns three concerns:

* **sample accumulation** — per-token inter-token gaps, per-request TTFT
  (with input-token counts for nTTFT) and completed-request records,
  stored in amortized-O(1) growable arrays so hot analysis loops can call
  :meth:`itl_samples` repeatedly without re-concatenating anything;
* **tail statistics** — alongside the paper's medians, p95/p99
  tails via :class:`LatencyStats`;
* **windowed time series** — per-window token counts, so non-stationary
  traffic (diurnal, bursty) can be inspected over time instead of only
  as one end-of-run aggregate.

TTFT samples additionally carry the virtual time they were recorded at,
so autoscaling policies and admission controllers can ask for the
*trailing-window* tail (:meth:`MetricsCollector.ttft_since`) instead of
the whole-run aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import cycle: the engine itself imports this module
    from repro.inference.request import RequestResult

__all__ = ["LatencyStats", "MetricsCollector"]


class _GrowableArray:
    """Append-only float/int buffer with amortized-O(1) growth.

    ``values()`` returns a zero-copy slice of the live prefix, so
    repeated statistics over the samples collected so far cost nothing
    beyond the statistic itself. Returned views are stable snapshots:
    cells are never rewritten — growth reallocates and ``clear()``
    drops the buffer rather than reusing it — so a view taken before a
    reset still holds the old samples afterwards.
    """

    def __init__(self, dtype=np.float64, capacity: int = 1024) -> None:
        self._dtype = dtype
        self._capacity = capacity
        self._buf = np.empty(capacity, dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._buf.size:
            return
        capacity = self._buf.size
        while capacity < need:
            capacity *= 2
        grown = np.empty(capacity, dtype=self._dtype)
        grown[: self._n] = self._buf[: self._n]
        self._buf = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._buf[self._n] = value
        self._n += 1

    def extend(self, values: np.ndarray) -> None:
        self._reserve(len(values))
        self._buf[self._n : self._n + len(values)] = values
        self._n += len(values)

    def write_slots(self, n: int) -> np.ndarray:
        """Reserve ``n`` cells and return them as a writable view.

        Zero-copy variant of :meth:`extend` for producers that can
        compute their samples directly into the buffer (the vectorized
        decode kernel); the caller must fill every returned cell.
        """
        self._reserve(n)
        start = self._n
        self._n = start + n
        return self._buf[start : self._n]

    def clear(self) -> None:
        # Fresh allocation, not _n = 0: views handed out before the
        # clear must keep their contents (warmup snapshots).
        self._buf = np.empty(self._capacity, dtype=self._dtype)
        self._n = 0

    def values(self) -> np.ndarray:
        return self._buf[: self._n]


@dataclass(frozen=True)
class LatencyStats:
    """Median and tail percentiles of one latency metric."""

    count: int
    median_s: float
    p95_s: float
    p99_s: float
    mean_s: float

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "LatencyStats":
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            nan = float("nan")
            return cls(count=0, median_s=nan, p95_s=nan, p99_s=nan, mean_s=nan)
        p50, p95, p99 = np.percentile(samples, (50.0, 95.0, 99.0))
        return cls(
            count=int(samples.size),
            median_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            mean_s=float(samples.mean()),
        )

    def as_row(self, prefix: str) -> dict[str, float]:
        return {
            f"{prefix}_median_s": self.median_s,
            f"{prefix}_p95_s": self.p95_s,
            f"{prefix}_p99_s": self.p99_s,
        }


class MetricsCollector:
    """Accumulates latency/throughput events emitted by an engine.

    One collector observes one engine (pod); fleet-level aggregates are
    produced by :meth:`merged` over the per-pod collectors.
    """

    def __init__(self, window_s: float = 10.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = float(window_s)
        self._itl = _GrowableArray()
        self._ttft = _GrowableArray()
        self._ttft_inputs = _GrowableArray(dtype=np.int64)
        self._ttft_times = _GrowableArray()
        # Record times are monotone for a collector fed by one engine;
        # merged() concatenates several streams and clears this so
        # ttft_since falls back from binary search to a full scan.
        self._ttft_times_sorted = True
        self._window_tokens: dict[int, int] = {}
        self.completed: list["RequestResult"] = []
        self.tokens_recorded = 0

    # ---- event sinks (called by the engine / simulator) -----------------

    def record_first_token(self, ttft_s: float, input_tokens: int, now: float) -> None:
        self._ttft.append(ttft_s)
        self._ttft_inputs.append(input_tokens)
        self._ttft_times.append(now)

    def record_gaps(self, gaps: np.ndarray, now: float) -> None:
        self._itl.extend(gaps)

    def gap_sink(self, n: int) -> np.ndarray:
        """Writable destination for ``n`` ITL gap samples (zero-copy).

        Equivalent to building an ``n``-sized array and passing it to
        :meth:`record_gaps`, minus the intermediate copy; used by the
        fast decode kernel, which subtracts straight into the buffer.
        """
        return self._itl.write_slots(n)

    def record_tokens(self, n_tokens: int, now: float) -> None:
        self.tokens_recorded += n_tokens
        window = int(now / self.window_s)
        self._window_tokens[window] = self._window_tokens.get(window, 0) + n_tokens

    def record_completion(self, result: "RequestResult") -> None:
        self.completed.append(result)

    def reset(self) -> None:
        """Drop every collected sample (warmup support)."""
        self._itl.clear()
        self._ttft.clear()
        self._ttft_inputs.clear()
        self._ttft_times.clear()
        self._ttft_times_sorted = True
        self._window_tokens.clear()
        self.completed.clear()
        self.tokens_recorded = 0

    # ---- sample access ----------------------------------------------------

    def itl_samples(self) -> np.ndarray:
        """All inter-token gaps recorded so far (zero-copy view)."""
        return self._itl.values()

    def ttft_samples(self) -> tuple[np.ndarray, np.ndarray]:
        """(ttft_seconds, input_tokens) for every first token served."""
        return self._ttft.values(), self._ttft_inputs.values()

    def ttft_since(self, t: float) -> np.ndarray:
        """TTFT samples recorded at virtual time >= ``t`` (trailing window).

        For a single engine's collector record times are monotone and the
        cut is a binary search plus a zero-copy slice; a merged collector
        holds interleaved per-pod streams and takes the O(n) mask path.
        """
        times = self._ttft_times.values()
        if self._ttft_times_sorted:
            lo = int(np.searchsorted(times, t, side="left"))
            return self._ttft.values()[lo:]
        return self._ttft.values()[times >= t]

    def e2e_samples(self, min_submitted_at: float = 0.0) -> np.ndarray:
        return np.array(
            [r.e2e_latency for r in self.completed if r.submitted_at >= min_submitted_at]
        )

    # ---- statistics --------------------------------------------------------

    def ttft_stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self._ttft.values())

    def itl_stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self._itl.values())

    def e2e_stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.e2e_samples())

    def ttft_p95_series(self, window_s: float = 10.0) -> tuple[np.ndarray, np.ndarray]:
        """(window_start_s, p95 TTFT) over fixed windows of record time.

        Windows with no first-token record are omitted (an idle window
        has no tail). Bins by each sample's recorded virtual time, which
        needs no sort order — merged multi-pod collectors work too. This
        is the primitive fault-recovery metrics are computed from:
        recovery is the first post-fault window whose p95 re-enters the
        SLO.
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        times = self._ttft_times.values()
        if times.size == 0:
            return np.empty(0), np.empty(0)
        samples = self._ttft.values()
        windows = np.floor_divide(times, window_s).astype(np.int64)
        starts = []
        tails = []
        for window in np.unique(windows):
            starts.append(window * window_s)
            tails.append(float(np.percentile(samples[windows == window], 95.0)))
        return np.asarray(starts, dtype=float), np.asarray(tails)

    def throughput_timeseries(self) -> tuple[np.ndarray, np.ndarray]:
        """(window_start_s, tokens_per_s) arrays over the recorded run."""
        if not self._window_tokens:
            return np.empty(0), np.empty(0)
        lo = min(self._window_tokens)
        hi = max(self._window_tokens)
        windows = np.arange(lo, hi + 1)
        tokens = np.array([self._window_tokens.get(int(w), 0) for w in windows])
        return windows * self.window_s, tokens / self.window_s

    @classmethod
    def merged(cls, collectors: list["MetricsCollector"]) -> "MetricsCollector":
        """Pool the samples of several per-pod collectors into one."""
        window_s = collectors[0].window_s if collectors else 10.0
        out = cls(window_s=window_s)
        out._ttft_times_sorted = len(collectors) <= 1
        for c in collectors:
            out._itl.extend(c._itl.values())
            out._ttft.extend(c._ttft.values())
            out._ttft_inputs.extend(c._ttft_inputs.values())
            out._ttft_times.extend(c._ttft_times.values())
            out.completed.extend(c.completed)
            out.tokens_recorded += c.tokens_recorded
            for window, tokens in c._window_tokens.items():
                out._window_tokens[window] = out._window_tokens.get(window, 0) + tokens
        return out
