"""Shared-clock fleet simulation: N pods, one virtual timeline.

``cluster.Deployment`` used to "simulate" multi-pod deployments by
statically splitting users across engines that never shared a clock —
fine for the paper's closed-loop Table I, but unable to express a front
end routing open-loop or bursty traffic over replicas. The
:class:`FleetSimulator` co-simulates every pod on one virtual clock:

* arrivals come from a :class:`~repro.simulation.traffic.TrafficModel`
  (scheduled open-loop arrivals and/or completion-driven closed-loop
  resubmissions);
* a pluggable :class:`Router` picks the pod for every arrival;
* the event loop always steps the busy pod with the smallest virtual
  time, so cross-pod causality (an arrival routed at time t can only be
  influenced by state no later than t) is preserved.

With a single pod the loop is step-for-step identical to the paper's
hand-written closed-loop/open-loop drivers, which is what lets
``characterization.loadtest`` delegate here without changing any seeded
output.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.simulation.metrics import LatencyStats, MetricsCollector
from repro.simulation.traffic import RequestSource, TrafficModel

if TYPE_CHECKING:  # import cycle: the engine itself imports this package
    from repro.inference.engine import ContinuousBatchingEngine
    from repro.inference.request import InferenceRequest

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "JoinShortestQueueRouter",
    "ROUTERS",
    "PodStats",
    "FleetResult",
    "FleetSimulator",
]


class Router:
    """Chooses the pod index for each arrival."""

    name: str = "router"

    def route(
        self,
        request: InferenceRequest,
        arrival_time: float,
        pods: list[ContinuousBatchingEngine],
    ) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget routing state before a fresh run."""


class RoundRobinRouter(Router):
    """Cycle through pods regardless of their load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request, arrival_time, pods) -> int:
        i = self._next % len(pods)
        self._next += 1
        return i

    def reset(self) -> None:
        self._next = 0


class LeastLoadedRouter(Router):
    """Pick the pod with the least committed work, by batch weight.

    Load is the weight of the in-flight batch plus the weight still
    waiting in the pod's queue, i.e. every token the pod has accepted but
    not finished; ties break toward the lowest pod index.
    """

    name = "least-loaded"

    def route(self, request, arrival_time, pods) -> int:
        return min(
            range(len(pods)),
            key=lambda i: (pods[i].batch_weight_in_use + pods[i].pending_weight, i),
        )


class JoinShortestQueueRouter(Router):
    """Classic JSQ: pick the pod with the fewest requests in the system."""

    name = "join-shortest-queue"

    def route(self, request, arrival_time, pods) -> int:
        return min(
            range(len(pods)),
            key=lambda i: (pods[i].queue_depth + pods[i].active_requests, i),
        )


#: Router registry for CLIs and benchmarks.
ROUTERS: dict[str, type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
}


@dataclass
class PodStats:
    """Per-pod outcome of a fleet run."""

    pod: int
    arrivals_routed: int
    requests_completed: int
    tokens_generated: int
    throughput_tokens_per_s: float
    queue_depth_end: int
    active_requests_end: int
    time_s: float
    ttft: LatencyStats
    itl: LatencyStats


@dataclass
class FleetResult:
    """Aggregate + per-pod outcome of one fleet simulation."""

    n_pods: int
    traffic: str
    router: str
    duration_s: float
    warmup_s: float
    time_s: float
    arrivals: int
    requests_completed: int
    tokens_generated: int
    throughput_tokens_per_s: float
    ttft: LatencyStats
    itl: LatencyStats
    e2e: LatencyStats
    per_pod: list[PodStats] = field(default_factory=list, repr=False)
    metrics: MetricsCollector | None = field(default=None, repr=False)

    def as_row(self) -> dict[str, float]:
        row = {
            "n_pods": float(self.n_pods),
            "arrivals": float(self.arrivals),
            "requests_completed": float(self.requests_completed),
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
        }
        row.update(self.ttft.as_row("ttft"))
        row.update(self.itl.as_row("itl"))
        row.update(self.e2e.as_row("e2e"))
        return row


class FleetSimulator:
    """Co-simulates N pods under one traffic model and router."""

    def __init__(
        self,
        pods: list[ContinuousBatchingEngine],
        traffic: TrafficModel,
        router: Router,
        source: RequestSource,
    ) -> None:
        if not pods:
            raise ValueError("FleetSimulator needs at least one pod")
        self.pods = list(pods)
        self.traffic = traffic
        self.router = router
        self.source = source
        self.arrivals = 0
        self.routed_counts = [0] * len(self.pods)
        self.initial_routed_counts = [0] * len(self.pods)
        self._seq = 0

    # ---- event loop -------------------------------------------------------

    def run(
        self,
        duration_s: float,
        warmup_s: float = 0.0,
        keep_samples: bool = True,
        assemble_result: bool = True,
    ) -> FleetResult | None:
        """Simulate a ``warmup_s + duration_s`` window of virtual time.

        Metric collection restarts at the warmup boundary (exactly as the
        single-pod harness does); scheduled arrivals stop at the end of
        the window, and the run ends once every pod's clock has reached
        it (or all work and arrivals are exhausted). With
        ``keep_samples=False`` the returned result carries only the
        aggregate statistics, not the merged per-request sample
        collector — retain-many sweeps should use that to avoid pinning
        O(requests) memory per result. ``assemble_result=False`` skips
        result assembly entirely (an O(samples) merge plus percentile
        sorts) and returns None — for callers that read the pod
        engines/collectors directly, like the single-pod load-test
        wrappers.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if warmup_s < 0:
            raise ValueError(f"warmup_s must be >= 0, got {warmup_s}")
        for pod in self.pods:
            if pod.time > 0 or pod.has_work():
                raise ValueError("FleetSimulator requires fresh engines")
        self.router.reset()

        t_end = warmup_s + duration_s
        pending: list[tuple[float, int, int | None, "InferenceRequest"]] = []
        for request in self.traffic.initial_arrivals(self.source):
            self._dispatch(request, 0.0)
        # Where the router placed the initial population (for closed-loop
        # traffic this is the per-pod user assignment, since follow-ups
        # are sticky by default).
        self.initial_routed_counts = list(self.routed_counts)

        warmed_up = warmup_s == 0.0
        while True:
            self._inject_due(pending, t_end)
            busy = [i for i, pod in enumerate(self.pods) if pod.has_work()]
            if not busy:
                break
            pod_index = min(busy, key=lambda i: self.pods[i].time)
            stepping = self.pods[pod_index]
            if stepping.time >= t_end:
                break
            if not warmed_up and stepping.time >= warmup_s:
                for pod in self.pods:
                    pod.reset_metrics()
                warmed_up = True
            finished = stepping.step()
            for result in finished:
                follow_up = self.traffic.on_complete(result, stepping.time, self.source)
                if follow_up is not None:
                    self._seq += 1
                    hint = pod_index if self.traffic.sticky else None
                    heapq.heappush(
                        pending, (stepping.time, self._seq, hint, follow_up)
                    )
        # Follow-ups drawn by completions right at the window edge can
        # still be pending (their arrival lies beyond a lagging pod's
        # clock when the loop exits). Dispatch them so every request
        # drawn from the source is accounted as an arrival, exactly as
        # the single-pod driver submits boundary-crossing resubmissions.
        while pending:
            t, _, hint, request = heapq.heappop(pending)
            self._dispatch(request, t, pod_hint=hint)
        if not assemble_result:
            return None
        return self._result(duration_s, warmup_s, keep_samples)

    def _inject_due(
        self,
        pending: list[tuple[float, int, int | None, "InferenceRequest"]],
        cutoff: float,
    ) -> None:
        """Submit every arrival that is due at the current fleet frontier.

        An arrival at time t is due once no busy pod's clock is behind t
        (the pod chosen by the router is then guaranteed not to observe
        it in its past). When the whole fleet is idle the next arrival is
        due immediately — virtual time fast-forwards to it. Scheduled
        arrivals beyond ``cutoff`` are never materialized;
        completion-driven resubmissions (already materialized) always
        drain.
        """
        while True:
            t_sched = self.traffic.peek()
            if t_sched is not None and t_sched >= cutoff:
                t_sched = None
            t_pend = pending[0][0] if pending else None
            if t_pend is None and t_sched is None:
                return
            use_pending = t_pend is not None and (t_sched is None or t_pend <= t_sched)
            t = t_pend if use_pending else t_sched
            busy_times = [pod.time for pod in self.pods if pod.has_work()]
            if busy_times and t > min(busy_times):
                return
            if use_pending:
                t, _, hint, request = heapq.heappop(pending)
            else:
                t, request = self.traffic.pop(self.source)
                hint = None
            self._dispatch(request, t, pod_hint=hint)

    def _dispatch(
        self,
        request: "InferenceRequest",
        arrival_time: float,
        pod_hint: int | None = None,
    ) -> None:
        i = (
            pod_hint
            if pod_hint is not None
            else self.router.route(request, arrival_time, self.pods)
        )
        pod = self.pods[i]
        if pod.time < arrival_time:
            pod.advance_to(arrival_time)
        pod.submit(request, arrival_time=arrival_time)
        self.arrivals += 1
        self.routed_counts[i] += 1

    # ---- result assembly --------------------------------------------------

    def _result(
        self, duration_s: float, warmup_s: float, keep_samples: bool
    ) -> FleetResult:
        t_end = warmup_s + duration_s
        time_s = max(max(pod.time for pod in self.pods), t_end)
        elapsed = time_s - warmup_s
        collectors = [pod.metrics for pod in self.pods]
        merged = MetricsCollector.merged(collectors)
        tokens = sum(pod.stats.tokens_generated for pod in self.pods)
        per_pod = []
        for i, pod in enumerate(self.pods):
            completed = [
                r for r in pod.metrics.completed if r.submitted_at >= warmup_s
            ]
            per_pod.append(
                PodStats(
                    pod=i,
                    arrivals_routed=self.routed_counts[i],
                    requests_completed=len(completed),
                    tokens_generated=pod.stats.tokens_generated,
                    throughput_tokens_per_s=pod.stats.tokens_generated / elapsed,
                    queue_depth_end=pod.queue_depth,
                    active_requests_end=pod.active_requests,
                    time_s=pod.time,
                    ttft=pod.metrics.ttft_stats(),
                    itl=pod.metrics.itl_stats(),
                )
            )
        return FleetResult(
            n_pods=len(self.pods),
            traffic=self.traffic.name,
            router=self.router.name,
            duration_s=elapsed,
            warmup_s=warmup_s,
            time_s=time_s,
            arrivals=self.arrivals,
            requests_completed=sum(p.requests_completed for p in per_pod),
            tokens_generated=tokens,
            throughput_tokens_per_s=tokens / elapsed,
            ttft=merged.ttft_stats(),
            itl=merged.itl_stats(),
            e2e=LatencyStats.from_samples(merged.e2e_samples(warmup_s)),
            per_pod=per_pod,
            metrics=merged if keep_samples else None,
        )
