"""Shared-clock fleet simulation: N pods, one virtual timeline.

``cluster.Deployment`` used to "simulate" multi-pod deployments by
statically splitting users across engines that never shared a clock —
fine for the paper's closed-loop Table I, but unable to express a front
end routing open-loop or bursty traffic over replicas. The
:class:`FleetSimulator` co-simulates every pod on one virtual clock:

* arrivals come from a :class:`~repro.simulation.traffic.TrafficModel`
  (scheduled open-loop arrivals and/or completion-driven closed-loop
  resubmissions);
* a pluggable :class:`Router` picks the pod for every arrival; a router
  that also implements ``admit()`` (the
  :class:`~repro.simulation.autoscale.AdmissionController`) may shed or
  defer arrivals before they reach a pod;
* an optional :class:`~repro.simulation.autoscale.Autoscaler` resizes
  the fleet on a fixed decision interval of the shared clock: new pods
  become routable after a cold-start delay, removed pods drain (finish
  the work already routed to them, reject new routes) and retire;
* the event loop always steps the busy pod with the smallest virtual
  time, so cross-pod causality (an arrival routed at time t can only be
  influenced by state no later than t) is preserved.

With a single pod and no autoscaler the loop is step-for-step identical
to the paper's hand-written closed-loop/open-loop drivers, which is what
lets ``characterization.loadtest`` delegate here without changing any
seeded output.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ClassVar, Iterable

import numpy as np

from repro.simulation.faults import FaultEvent, FaultInjector, FaultSpec
from repro.simulation.frontier import (
    EventFrontier,
    committed_load,
    least_loaded_pod,
)
from repro.simulation.metrics import LatencyStats, MetricsCollector
from repro.simulation.results import (
    fault_event_dict,
    json_float,
    latency_dict,
    scale_event_dict,
)
from repro.simulation.traffic import RequestSource, TrafficModel

if TYPE_CHECKING:  # import cycle: the engine itself imports this package
    from repro.inference.engine import ContinuousBatchingEngine
    from repro.inference.request import InferenceRequest
    from repro.simulation.autoscale import Autoscaler, FleetView

__all__ = [
    "committed_load",
    "least_loaded_pod",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "JoinShortestQueueRouter",
    "WeightAwareRouter",
    "ROUTERS",
    "ScaleEvent",
    "PodStats",
    "FleetResult",
    "FleetSimulator",
]


class Router:
    """Chooses the pod index for each arrival."""

    name: str = "router"

    def route(
        self,
        request: InferenceRequest,
        arrival_time: float,
        pods: list[ContinuousBatchingEngine],
    ) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget routing state before a fresh run."""


class RoundRobinRouter(Router):
    """Cycle through pods regardless of their load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request, arrival_time, pods) -> int:
        i = self._next % len(pods)
        self._next += 1
        return i

    def reset(self) -> None:
        self._next = 0


class LeastLoadedRouter(Router):
    """Pick the pod with the least committed work, by batch weight.

    Load is the weight of the in-flight batch plus the weight still
    waiting in the pod's queue, i.e. every token the pod has accepted but
    not finished; ties break toward the lowest pod index.
    """

    name = "least-loaded"

    def route(self, request, arrival_time, pods) -> int:
        return least_loaded_pod(range(len(pods)), pods)


class JoinShortestQueueRouter(Router):
    """Classic JSQ: pick the pod with the fewest requests in the system."""

    name = "join-shortest-queue"

    def route(self, request, arrival_time, pods) -> int:
        return min(
            range(len(pods)),
            key=lambda i: (pods[i].queue_depth + pods[i].active_requests, i),
        )


class WeightAwareRouter(Router):
    """Route on estimated request cost: isolate heavy requests.

    Queue-depth routing (JSQ) treats a 4000-token summarization request
    and a 20-token lookup as equal units, so under heavy-tailed request
    sizes — exactly what replayed production traces exhibit — light
    requests end up queued behind elephants and the TTFT tail blows up.
    This router uses the per-request weight the arrival carries (for
    trace replay, the *recorded* token counts): requests above an
    online threshold are confined to a dedicated heavy tier (the
    ``heavy_pod_fraction`` of the fleet with the highest pod indices)
    while light requests keep the rest — size-interval assignment.
    The threshold is learned from a trailing window of observed weights
    so that the heavy tier's *share of total token weight* matches its
    share of pods (SITA-E balancing): the few elephants above it load
    their tier exactly as much as the many mice load theirs, and the
    count-p95 of latency sits safely inside the protected light tier.
    Within a tier, the pod with the least committed token weight wins,
    so each tier is itself least-loaded.

    Until ``warmup`` arrivals have been observed (or when the fleet has
    a single pod) the router degrades to plain least-loaded: with no
    weight history there is no defensible threshold.
    """

    name = "weight-aware"

    def __init__(
        self,
        heavy_pod_fraction: float = 0.25,
        warmup: int = 64,
        window: int = 512,
    ) -> None:
        if not 0.0 < heavy_pod_fraction < 1.0:
            raise ValueError(
                f"heavy_pod_fraction must be in (0, 1), got {heavy_pod_fraction}"
            )
        if warmup < 1 or window < 1:
            raise ValueError("warmup and window must be >= 1")
        self.heavy_pod_fraction = float(heavy_pod_fraction)
        self.warmup = int(warmup)
        self.window = int(window)
        self._weights: list[int] = []
        self._seen = 0

    @staticmethod
    def _least_loaded(candidates: list[int], pods) -> int:
        return least_loaded_pod(candidates, pods)

    def _threshold(self, heavy_share: float) -> float:
        """Weight above which the top tail carries ``heavy_share`` of load.

        Splits the windowed weights so the heaviest requests summing to
        ``heavy_share`` of total token weight sit strictly above the
        returned threshold — the SITA-E cutoff for the current mix. The
        threshold is the largest weight still inside the light group.
        """
        ordered = np.sort(np.asarray(self._weights, dtype=np.float64))
        cumulative = np.cumsum(ordered)
        light_target = (1.0 - heavy_share) * cumulative[-1]
        index = max(int(np.searchsorted(cumulative, light_target)), 1)
        return float(ordered[index - 1])

    def route(self, request, arrival_time, pods) -> int:
        weight = request.weight
        self._seen += 1
        self._weights.append(weight)
        if len(self._weights) > self.window:
            del self._weights[0]
        if len(pods) < 2 or self._seen < self.warmup:
            return self._least_loaded(list(range(len(pods))), pods)
        n_heavy = max(1, round(self.heavy_pod_fraction * len(pods)))
        n_heavy = min(n_heavy, len(pods) - 1)
        threshold = self._threshold(n_heavy / len(pods))
        if threshold >= max(self._weights):
            # Degenerate window (near-constant weights): no request
            # would classify as heavy, so tiering would idle the heavy
            # pods. Fall back to fleet-wide least-loaded.
            return self._least_loaded(list(range(len(pods))), pods)
        # The heavy tier sits at the top of the pod list; under
        # autoscaling that is the newest pods, which also drain first.
        split = len(pods) - n_heavy
        if weight > threshold:
            return self._least_loaded(list(range(split, len(pods))), pods)
        return self._least_loaded(list(range(split)), pods)

    def reset(self) -> None:
        self._weights = []
        self._seen = 0


#: Router registry for CLIs and benchmarks.
ROUTERS: dict[str, type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    WeightAwareRouter.name: WeightAwareRouter,
}


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision that (tried to) change the pod count.

    ``requested`` is the provisioned count the policy asked for; it only
    differs from ``to_pods`` when a finite cluster inventory could not
    fill the ask, in which case ``constraint`` records the outcome:
    ``"clipped"`` (partially filled) or ``"denied"`` (nothing granted).
    Standalone fleets always have ``requested is None`` and an empty
    ``constraint``.
    """

    time_s: float
    from_pods: int
    to_pods: int
    reason: str
    requested: int | None = None
    constraint: str = ""

    @property
    def direction(self) -> str:
        target = self.to_pods if self.requested is None else self.requested
        return "up" if target > self.from_pods else "down"

    @property
    def denied(self) -> bool:
        return self.constraint == "denied"

    @property
    def clipped(self) -> bool:
        return self.constraint == "clipped"


@dataclass
class PodStats:
    """Per-pod outcome of a fleet run."""

    pod: int
    arrivals_routed: int
    requests_completed: int
    tokens_generated: int
    throughput_tokens_per_s: float
    queue_depth_end: int
    active_requests_end: int
    time_s: float
    ttft: LatencyStats
    itl: LatencyStats
    state: str = "serving"
    zone: str = "zone-0"


@dataclass
class FleetResult:
    """Aggregate + per-pod outcome of one fleet simulation.

    ``arrivals`` counts every request *offered* to the front end;
    ``admitted`` the ones that reached a pod, ``shed`` the ones rejected
    by admission control (``arrivals == admitted + shed``, checked by
    :meth:`verify_conservation`). ``requests_completed`` counts
    completions of requests submitted inside the measured window (as the
    load-test harness reports), while ``completed_total`` counts every
    completion of the whole run — that is what conservation is stated
    over, together with the work still in flight at the end and the
    requests a crash destroyed (``lost``). ``requeued`` counts crash
    survivors re-offered to the front end; they are already part of the
    arrival/admission tallies, so they inform no invariant, only scale.

    Implements the :class:`~repro.simulation.results.SimResult`
    protocol (``kind``/``to_dict``/``summary``/``verify``).
    """

    kind: ClassVar[str] = "fleet"

    n_pods: int
    traffic: str
    router: str
    duration_s: float
    warmup_s: float
    time_s: float
    arrivals: int
    requests_completed: int
    tokens_generated: int
    throughput_tokens_per_s: float
    ttft: LatencyStats
    itl: LatencyStats
    e2e: LatencyStats
    admitted: int = 0
    shed: int = 0
    deferrals: int = 0
    completed_total: int = 0
    in_flight_end: int = 0
    pod_seconds: float = 0.0
    sim_events: int = 0
    wall_time_s: float = 0.0
    scale_events: list[ScaleEvent] = field(default_factory=list, repr=False)
    per_pod: list[PodStats] = field(default_factory=list, repr=False)
    metrics: MetricsCollector | None = field(default=None, repr=False)
    lost: int = 0
    requeued: int = 0
    fault_events: list[FaultEvent] = field(default_factory=list, repr=False)
    cloud_pod_seconds: float = 0.0

    @property
    def pod_hours(self) -> float:
        return self.pod_seconds / 3600.0

    @property
    def on_prem_pod_seconds(self) -> float:
        """Pod-seconds billed on owned hardware (total minus cloud-burst)."""
        return max(0.0, self.pod_seconds - self.cloud_pod_seconds)

    @property
    def events_per_second(self) -> float:
        """Simulator throughput: engine steps per wall-clock second.

        ``sim_events`` counts scheduler iterations (the unit of work the
        event loop executes); ``wall_time_s`` is real time from
        ``begin()`` to result assembly. The uniform throughput figure
        every benchmark reports. 0.0 when timing was not captured.
        """
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.sim_events / self.wall_time_s

    def verify_conservation(self) -> None:
        """Raise if any offered request was lost or double-counted.

        Every offered arrival is either admitted or shed, and every
        admitted request is either completed or still in flight (queued
        or decoding) when the run ends. Shed and drained requests can
        therefore never inflate throughput: tokens only come from
        admitted work, counted once per owning pod.
        """
        if self.admitted + self.shed != self.arrivals:
            raise ValueError(
                f"admission leak: admitted {self.admitted} + shed {self.shed} "
                f"!= arrivals {self.arrivals}"
            )
        if self.completed_total + self.in_flight_end + self.lost != self.admitted:
            raise ValueError(
                f"request leak: completed {self.completed_total} + in-flight "
                f"{self.in_flight_end} + lost {self.lost} "
                f"!= admitted {self.admitted}"
            )

    def verify(self) -> None:
        """Uniform SimResult name for :meth:`verify_conservation`."""
        self.verify_conservation()

    def ttft_p95_series(self, window_s: float = 10.0) -> tuple[np.ndarray, np.ndarray]:
        """(window_start_s, p95 TTFT) arrays; needs ``keep_samples=True``."""
        if self.metrics is None:
            raise ValueError(
                "windowed recovery metrics need a run with keep_samples=True"
            )
        return self.metrics.ttft_p95_series(window_s)

    def recovery_time_s(
        self, slo_p95_ttft_s: float, window_s: float = 10.0
    ) -> float | None:
        """Worst-case post-fault SLO recovery time, in seconds.

        For every disruptive fault event, the time from the fault to the
        end of the first sampled window starting at or after it whose
        windowed p95 TTFT is back within ``slo_p95_ttft_s``. Returns the
        worst across faults, ``inf`` when some fault's tail never
        re-entered the SLO in the observed windows, and None for a
        fault-free run. Needs ``keep_samples=True``.
        """
        disruptive = [e for e in self.fault_events if e.disruptive]
        if not disruptive:
            return None
        if self.metrics is None:
            raise ValueError(
                "recovery_time_s needs per-request samples but this run "
                "dropped them; re-run with keep_samples=True"
            )
        starts, tails = self.ttft_p95_series(window_s)
        worst = 0.0
        for event in disruptive:
            recovered = float("inf")
            for start, tail in zip(starts, tails):
                if start < event.time_s:
                    continue
                if tail <= slo_p95_ttft_s:
                    recovered = start + window_s - event.time_s
                    break
            worst = max(worst, recovered)
        return worst

    def degraded_slo_attainment(
        self, slo_p95_ttft_s: float, window_s: float = 10.0
    ) -> float | None:
        """Fraction of post-first-fault windows whose p95 TTFT met the SLO.

        None for a fault-free run or when no window overlaps the
        degraded span. Needs ``keep_samples=True``.
        """
        disruptive = [e for e in self.fault_events if e.disruptive]
        if not disruptive:
            return None
        if self.metrics is None:
            raise ValueError(
                "degraded_slo_attainment needs per-request samples but this "
                "run dropped them; re-run with keep_samples=True"
            )
        first_fault = min(e.time_s for e in disruptive)
        starts, tails = self.ttft_p95_series(window_s)
        overlapping = starts + window_s > first_fault
        if not overlapping.any():
            return None
        return float(np.mean(tails[overlapping] <= slo_p95_ttft_s))

    def to_dict(
        self, slo_p95_ttft_s: float | None = None, window_s: float = 10.0
    ) -> dict:
        """The uniform JSON payload (see docs/cli.md for the schema).

        The ``recovery`` block is populated when an SLO is given, the
        run kept its samples, and at least one fault event fired;
        otherwise it is None.
        """
        series = None
        if self.metrics is not None:
            ttft_t, ttft_p95 = self.metrics.ttft_p95_series(window_s)
            tput_t, tput = self.metrics.throughput_timeseries()
            series = {
                "window_s": float(window_s),
                "ttft_p95": {
                    "t": [float(v) for v in ttft_t],
                    "p95_s": [float(v) for v in ttft_p95],
                },
                "throughput": {
                    "t": [float(v) for v in tput_t],
                    "tokens_per_s": [float(v) for v in tput],
                },
            }
        recovery = None
        if (
            slo_p95_ttft_s is not None
            and self.metrics is not None
            and any(e.disruptive for e in self.fault_events)
        ):
            recovery = {
                "slo_p95_ttft_s": float(slo_p95_ttft_s),
                "window_s": float(window_s),
                "recovery_time_s": json_float(
                    self.recovery_time_s(slo_p95_ttft_s, window_s)
                ),
                "degraded_slo_attainment": json_float(
                    self.degraded_slo_attainment(slo_p95_ttft_s, window_s)
                ),
            }
        return {
            "kind": self.kind,
            "n_pods": self.n_pods,
            "traffic": self.traffic,
            "router": self.router,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "time_s": self.time_s,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "shed": self.shed,
            "deferrals": self.deferrals,
            "requests_completed": self.requests_completed,
            "completed_total": self.completed_total,
            "in_flight_end": self.in_flight_end,
            "lost": self.lost,
            "requeued": self.requeued,
            "tokens_generated": self.tokens_generated,
            "throughput_tokens_per_s": json_float(self.throughput_tokens_per_s),
            "pod_seconds": self.pod_seconds,
            "cloud_pod_seconds": self.cloud_pod_seconds,
            "ttft": latency_dict(self.ttft),
            "itl": latency_dict(self.itl),
            "e2e": latency_dict(self.e2e),
            "scale_events": [scale_event_dict(e) for e in self.scale_events],
            "fault_events": [fault_event_dict(e) for e in self.fault_events],
            "recovery": recovery,
            "series": series,
            "per_pod": [
                {
                    "pod": p.pod,
                    "zone": p.zone,
                    "state": p.state,
                    "arrivals_routed": p.arrivals_routed,
                    "requests_completed": p.requests_completed,
                    "tokens_generated": p.tokens_generated,
                    "throughput_tokens_per_s": json_float(p.throughput_tokens_per_s),
                    "queue_depth_end": p.queue_depth_end,
                    "active_requests_end": p.active_requests_end,
                }
                for p in self.per_pod
            ],
        }

    def summary(self) -> str:
        """One-line human digest (uniform across SimResult kinds)."""
        line = (
            f"{self.n_pods} pods ({self.traffic}/{self.router}, "
            f"{self.duration_s:.0f}s): {self.arrivals} arrivals, "
            f"{self.requests_completed} completed, "
            f"{self.throughput_tokens_per_s:.1f} tok/s, "
            f"TTFT p95 {self.ttft.p95_s:.3f}s"
        )
        if self.fault_events:
            line += (
                f", {len(self.fault_events)} fault events "
                f"({self.requeued} requeued, {self.lost} lost)"
            )
        return line

    def as_row(self) -> dict[str, float]:
        row = {
            "n_pods": float(self.n_pods),
            "arrivals": float(self.arrivals),
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "requests_completed": float(self.requests_completed),
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "pod_seconds": self.pod_seconds,
        }
        row.update(self.ttft.as_row("ttft"))
        row.update(self.itl.as_row("itl"))
        row.update(self.e2e.as_row("e2e"))
        return row


class FleetSimulator:
    """Co-simulates N pods under one traffic model and router.

    With ``autoscaler`` set, ``pod_factory`` must be able to mint a fresh
    engine for any pod serial (stable seeds per serial keep runs
    reproducible); the initial ``pods`` occupy serials ``0..len-1``.
    """

    def __init__(
        self,
        pods: list[ContinuousBatchingEngine],
        traffic: TrafficModel,
        router: Router,
        source: RequestSource,
        autoscaler: "Autoscaler | None" = None,
        pod_factory: Callable[[int], "ContinuousBatchingEngine"] | None = None,
        fast: bool = True,
        faults: FaultInjector | None = None,
        zone_of: Callable[[int], str] | None = None,
    ) -> None:
        if not pods:
            raise ValueError("FleetSimulator needs at least one pod")
        if autoscaler is not None and pod_factory is None:
            raise ValueError("an autoscaled fleet needs a pod_factory")
        if faults is not None and faults.needs_factory and pod_factory is None:
            raise ValueError("faults with restart_delay_s need a pod_factory")
        self.pods = list(pods)
        self.traffic = traffic
        self.router = router
        self.source = source
        self.autoscaler = autoscaler
        self.pod_factory = pod_factory
        # Admission control is duck-typed off the router to keep the
        # Router protocol minimal (see autoscale.AdmissionController).
        self._admission = router if hasattr(router, "admit") else None
        self.arrivals = 0
        self.shed = 0
        self.deferrals = 0
        self.routed_counts = [0] * len(self.pods)
        self.initial_routed_counts = [0] * len(self.pods)
        self.scale_events: list[ScaleEvent] = []
        # Every engine ever provisioned, in serial order; self.pods is
        # the routable subset, _starting/_draining/_retired the rest.
        self._all_pods = list(self.pods)
        self._serials = {id(pod): i for i, pod in enumerate(self.pods)}
        self._routable = set(range(len(self.pods)))
        self._starting: list[tuple[float, int, "ContinuousBatchingEngine"]] = []
        self._draining: list["ContinuousBatchingEngine"] = []
        self._completions = 0
        self._seq = 0
        self._pending: list = []
        self._pod_seconds = 0.0
        self._billed_to = 0.0
        # Cloud-burst tier (simulation.cloud): serials whose capacity was
        # rented rather than owned. Billed separately so mixed bills can
        # price the tiers apart; empty for every non-bursting fleet, in
        # which case no cloud accounting runs at all.
        self.cloud_serials: set[int] = set()
        self._cloud_pod_seconds = 0.0
        self._window_arrivals: dict[int, int] = {}
        self._arrival_window_s = (
            autoscaler.config.metrics_window_s if autoscaler else 10.0
        )
        # Capacity hooks (see bind_capacity): a cluster inventory may
        # clip or deny scale-ups and reclaim GPUs on retirement. Unbound
        # (the standalone case) every ask is granted in full.
        self._acquire: Callable[[int, float], int] | None = None
        self._release: Callable[..., None] | None = None
        self._warmed_up = True
        self._warmup_s = 0.0
        self._next_decision = float("inf")
        # Fault layer (simulation.faults): a seeded injector feeds the
        # run loop crash / slowdown / zone-outage events on the shared
        # clock; zone_of maps a pod serial to its zone label (restart
        # replacements inherit the crashed pod's zone via overrides).
        self.faults = faults
        self._zone_of = zone_of
        self._zone_overrides: dict[int, str] = {}
        self.fault_events: list[FaultEvent] = []
        self.lost = 0
        self.requeued = 0
        self._crashed: set[int] = set()
        self._slow_targets: dict[int, list[int]] = {}
        self._next_fault = float("inf")
        # Fast core: O(log pods) frontier lookups through a lazily
        # invalidated heap instead of the oracle's O(pods) min() scans.
        # Bit-identical by construction (see simulation.frontier); the
        # oracle path stays selectable for equivalence benchmarks.
        self.fast = bool(fast)
        self._frontier = EventFrontier()
        self._events = 0
        self._wall_start = _time.perf_counter()

    def bind_capacity(
        self,
        acquire: Callable[[int, float], int],
        release: Callable[..., None],
    ) -> None:
        """Subject this fleet's elasticity to a finite resource ledger.

        ``acquire(n, t)`` is consulted before provisioning ``n`` extra
        pods at virtual time ``t`` and returns how many were granted
        (0..n); ``release(n, t, serials)`` hands capacity back when pods
        retire or a cold start is cancelled, with the serials of the
        released pods so a ledger that tracks tiers (on-prem vs
        cloud-burst, see :mod:`repro.simulation.cloud`) can credit the
        right one. Used by the cluster co-simulation to make tenants
        contend for one :class:`ClusterInventory`.
        """
        self._acquire = acquire
        self._release = release

    @property
    def next_serial(self) -> int:
        """The serial the next provisioned pod will get.

        Pod serials are assigned sequentially in provisioning order, so
        a capacity ledger that grants a scale-up synchronously (inside
        ``acquire``) can pre-attribute the about-to-be-minted serials —
        the cloud tier marks the last ``burst`` of them as rented via
        :meth:`mark_cloud`.
        """
        return len(self._all_pods)

    def mark_cloud(self, serials: Iterable[int]) -> None:
        """Record these pod serials as cloud-burst (rented) capacity."""
        self.cloud_serials.update(int(s) for s in serials)

    @property
    def all_pods(self) -> list["ContinuousBatchingEngine"]:
        """Every engine ever provisioned, in pod-serial order."""
        return list(self._all_pods)

    @property
    def provisioned(self) -> int:
        """Pods currently billed: serving, cold-starting or draining."""
        return len(self.pods) + len(self._starting) + len(self._draining)

    def arrival_rate_series(
        self, before_s: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(window_start_s, arrivals_per_s) offered-traffic series.

        ``before_s`` drops the window containing it (and any later ones):
        at a decision boundary the current window is only partially
        observed and would bias a rate estimate low.
        """
        cut = int(before_s / self._arrival_window_s) if before_s is not None else None
        windows = [w for w in self._window_arrivals if cut is None or w < cut]
        if not windows:
            return np.empty(0), np.empty(0)
        lo, hi = min(windows), max(windows)
        span = np.arange(lo, hi + 1)
        counts = np.array([self._window_arrivals.get(int(w), 0) for w in span])
        return span * self._arrival_window_s, counts / self._arrival_window_s

    # ---- event loop -------------------------------------------------------

    def run(
        self,
        duration_s: float,
        warmup_s: float = 0.0,
        keep_samples: bool = True,
        assemble_result: bool = True,
    ) -> FleetResult | None:
        """Simulate a ``warmup_s + duration_s`` window of virtual time.

        Metric collection restarts at the warmup boundary (exactly as the
        single-pod harness does); scheduled arrivals stop at the end of
        the window, and the run ends once every pod's clock has reached
        it (or all work and arrivals are exhausted). With
        ``keep_samples=False`` the returned result carries only the
        aggregate statistics, not the merged per-request sample
        collector — retain-many sweeps should use that to avoid pinning
        O(requests) memory per result. ``assemble_result=False`` skips
        result assembly entirely (an O(samples) merge plus percentile
        sorts) and returns None — for callers that read the pod
        engines/collectors directly, like the single-pod load-test
        wrappers.
        """
        t_end = warmup_s + duration_s
        self.begin(duration_s, warmup_s)
        # The loop body runs once per simulated event; bind the three
        # per-event calls as locals (and peek the heap directly under
        # the fast core) to keep the dispatch overhead off the oracle
        # vs fast comparison as much as possible.
        inject_due = self._inject_due
        step_pod = self.step_pod
        peek = self._frontier.peek if self.fast else self.frontier_pod
        while True:
            inject_due(t_end)
            stepping = peek()
            if stepping is None or stepping._time >= t_end:
                break
            # Faults and autoscale decisions are both control events on
            # the shared clock; the earlier fires first, a fault winning
            # same-instant ties so the decision observes the degraded
            # fleet. With no injector ``_next_fault`` is inf and this is
            # the plain decision loop, bit-identical to the pre-fault
            # simulator.
            faulted = False
            while True:
                if self._next_fault <= self._next_decision:
                    due, is_fault = self._next_fault, True
                else:
                    due, is_fault = self._next_decision, False
                if due > stepping._time or due >= t_end:
                    break
                if is_fault:
                    self.fault_tick()
                    faulted = True
                else:
                    self.autoscale_tick()
            if faulted and not stepping.has_work():
                # A control event crashed the frontier pod itself (or
                # evacuated its work): re-resolve the frontier.
                continue
            step_pod(stepping)
        self.drain_pending()
        if not assemble_result:
            return None
        return self._result(duration_s, warmup_s, keep_samples)

    # ---- co-simulation interface ------------------------------------------
    #
    # ``run`` above is exactly these pieces glued together for one
    # tenant; the cluster co-simulation (repro.simulation.cluster) drives
    # N fleets through the same methods on one shared clock, globally
    # ordering autoscale decisions so tenants contend for inventory in
    # virtual-time order.

    def begin(self, duration_s: float, warmup_s: float = 0.0) -> None:
        """Validate, reset routing/scaling state, submit the t=0 population."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if warmup_s < 0:
            raise ValueError(f"warmup_s must be >= 0, got {warmup_s}")
        for pod in self.pods:
            if pod.time > 0 or pod.has_work():
                raise ValueError("FleetSimulator requires fresh engines")
        self.router.reset()
        self._events = 0
        self._wall_start = _time.perf_counter()
        if self.fast:
            self._frontier.rebuild(self._in_service())
        if self.autoscaler is not None:
            self.autoscaler.reset()
        self._next_decision = (
            self.autoscaler.config.decision_interval_s
            if self.autoscaler is not None
            else float("inf")
        )
        self.fault_events = []
        self.lost = 0
        self.requeued = 0
        self._crashed = set()
        self._zone_overrides = {}
        self._slow_targets = {}
        if self.faults is not None:
            self.faults.begin()
            self._next_fault = self.faults.next_time
        else:
            self._next_fault = float("inf")
        for request in self.traffic.initial_arrivals(self.source):
            self._dispatch(request, 0.0)
        # Where the router placed the initial population (for closed-loop
        # traffic this is the per-pod user assignment, since follow-ups
        # are sticky by default).
        self.initial_routed_counts = list(self.routed_counts)
        self._warmup_s = warmup_s
        self._warmed_up = warmup_s == 0.0

    def inject_due(self, cutoff: float) -> None:
        """Materialize every arrival due at this fleet's busy frontier."""
        self._inject_due(cutoff)

    def frontier_pod(self) -> "ContinuousBatchingEngine | None":
        """The busy pod with the smallest clock — the next one to step.

        None when the fleet is idle. Autoscale decisions never change
        which pod is busiest (activated pods start idle, draining pods
        stay in service), so the frontier found before processing due
        decisions is still the pod to hand to :meth:`step_pod` after.

        The fast core answers from the :class:`EventFrontier` heap in
        O(log pods) amortized; the oracle path scans. The heap's
        tie-break replicates the scan's first-minimum-in-service-order
        semantics, so both paths return the *same* pod on equal clocks.
        """
        if self.fast:
            return self._frontier.peek()
        busy = [pod for pod in self._in_service() if pod.has_work()]
        if not busy:
            return None
        return min(busy, key=lambda pod: pod.time)

    @property
    def next_decision(self) -> float:
        """Virtual time of the next autoscale decision (inf when none)."""
        return self._next_decision

    def autoscale_tick(self) -> None:
        """Run the decision due at ``next_decision`` and schedule the next."""
        self._autoscale_tick(self._next_decision)
        self._next_decision += self.autoscaler.config.decision_interval_s

    @property
    def next_fault(self) -> float:
        """Virtual time of the next fault event (inf when none)."""
        return self._next_fault

    def fault_tick(self) -> None:
        """Apply the fault due at ``next_fault`` and schedule the next.

        Part of the co-simulation interface: the cluster loop orders
        fault ticks and autoscale decisions across all tenants in global
        virtual-time order, exactly as :meth:`run` does for one fleet.
        """
        t, action, index, spec = self.faults.pop()
        if action == "slow-start":
            self._fault_slow_start(spec, t, index)
        elif action == "slow-end":
            self._fault_slow_end(spec, t, index)
        else:
            self._fault_crash(spec, t, action)
        self._next_fault = self.faults.next_time

    def pod_zone(self, serial: int) -> str:
        """Zone label of pod ``serial`` (restart replacements inherit)."""
        zone = self._zone_overrides.get(serial)
        if zone is not None:
            return zone
        return self._zone_of(serial) if self._zone_of is not None else "zone-0"

    def step_pod(self, stepping: "ContinuousBatchingEngine") -> None:
        """Step the frontier pod once; handle its completions."""
        self._events += 1
        if not self._warmed_up and stepping.time >= self._warmup_s:
            # Reset every engine ever provisioned, not just the ones
            # still in service: a pod retired before the warmup
            # boundary must not leak its warmup samples into the
            # merged result either.
            for pod in self._all_pods:
                pod.reset_metrics()
            self._warmed_up = True
        finished = stepping.step()
        self._completions += len(finished)
        for result in finished:
            follow_up = self.traffic.on_complete(result, stepping.time, self.source)
            if follow_up is not None:
                self._seq += 1
                hint = self._serials[id(stepping)] if self.traffic.sticky else None
                heapq.heappush(
                    self._pending,
                    (stepping.time, self._seq, hint, follow_up, False),
                )
        if self._draining:
            self._retire_drained(stepping.time)
        if self.fast:
            # The step moved the pod's clock: its old heap entry is now
            # stale, so record the new frontier position (if still busy).
            self._frontier.push(stepping)

    def drain_pending(self) -> None:
        """Flush boundary-crossing resubmissions after the loop exits.

        Follow-ups drawn by completions right at the window edge can
        still be pending (their arrival lies beyond a lagging pod's
        clock when the loop exits). Dispatch them so every request
        drawn from the source is accounted as an arrival, exactly as
        the single-pod driver submits boundary-crossing resubmissions.
        They bypass admission control: shedding at the boundary would
        break arrival accounting parity with the single-pod driver.
        """
        while self._pending:
            t, _, hint, request, counted = heapq.heappop(self._pending)
            self._dispatch(request, t, pod_hint=hint, force=True, counted=counted)

    def collect(
        self, duration_s: float, warmup_s: float = 0.0, keep_samples: bool = True
    ) -> FleetResult:
        """Assemble the :class:`FleetResult` after an externally driven run."""
        return self._result(duration_s, warmup_s, keep_samples)

    def _in_service(self) -> list["ContinuousBatchingEngine"]:
        """Pods that may still be doing work: routable + draining."""
        return self.pods + self._draining if self._draining else self.pods

    def _inject_due(self, cutoff: float) -> None:
        """Submit every arrival that is due at the current fleet frontier.

        An arrival at time t is due once no busy pod's clock is behind t
        (the pod chosen by the router is then guaranteed not to observe
        it in its past). When the whole fleet is idle the next arrival is
        due immediately — virtual time fast-forwards to it. Scheduled
        arrivals beyond ``cutoff`` are never materialized;
        completion-driven resubmissions and deferred retries (already
        materialized) always drain.
        """
        while True:
            t_sched = self.traffic.peek()
            if t_sched is not None and t_sched >= cutoff:
                t_sched = None
            t_pend = self._pending[0][0] if self._pending else None
            if t_pend is None and t_sched is None:
                return
            use_pending = t_pend is not None and (t_sched is None or t_pend <= t_sched)
            t = t_pend if use_pending else t_sched
            if self.fast:
                frontier = self._frontier.peek()
                if frontier is not None and t > frontier._time:
                    return
            else:
                busy_times = [
                    pod.time for pod in self._in_service() if pod.has_work()
                ]
                if busy_times and t > min(busy_times):
                    return
            if use_pending:
                t, _, hint, request, counted = heapq.heappop(self._pending)
            else:
                t, request = self.traffic.pop(self.source)
                hint, counted = None, False
            self._dispatch(request, t, pod_hint=hint, counted=counted)

    def _dispatch(
        self,
        request: "InferenceRequest",
        arrival_time: float,
        pod_hint: int | None = None,
        force: bool = False,
        counted: bool = False,
    ) -> None:
        """Offer one arrival to the front end.

        ``pod_hint`` is a pod *serial* (sticky session affinity); a hint
        pointing at a draining or retired pod falls back to the router.
        ``counted`` marks deferred retries whose first offer was already
        tallied; ``force`` bypasses admission control (end-of-run drain).
        """
        self._activate_ready(arrival_time)
        if not counted:
            self.arrivals += 1
            window = int(arrival_time / self._arrival_window_s)
            self._window_arrivals[window] = self._window_arrivals.get(window, 0) + 1
        pod = None
        if pod_hint is not None and pod_hint in self._routable:
            pod = self._all_pods[pod_hint]
        if pod is None:
            if not self.pods:
                # Every routable pod is down (zone outage). Park the
                # arrival until the first replacement activates; with no
                # restart or scale-up pending it can never be served.
                if not self._starting:
                    raise ValueError(
                        "no routable pods and no restart pending: a fault "
                        "killed the whole fleet"
                    )
                ready = self._starting[0][0]
                self._seq += 1
                heapq.heappush(
                    self._pending,
                    (max(arrival_time, ready), self._seq, None, request, True),
                )
                return
            if pod_hint is None and not force and self._admission is not None:
                decision = self._admission.admit(request, arrival_time, self.pods)
                if decision == "shed":
                    self.shed += 1
                    return
                if decision == "defer":
                    self.deferrals += 1
                    self._seq += 1
                    heapq.heappush(
                        self._pending,
                        (
                            arrival_time + self._admission.retry_delay_s,
                            self._seq,
                            None,
                            request,
                            True,
                        ),
                    )
                    return
            i = self.router.route(request, arrival_time, self.pods)
            pod = self.pods[i]
        was_busy = pod.has_work()
        if pod.time < arrival_time:
            pod.advance_to(arrival_time)
        pod.submit(request, arrival_time=arrival_time)
        if self.fast and not was_busy:
            # The submit turned an idle pod busy (possibly moving its
            # clock first): it joins the event frontier now. Pods that
            # were already busy keep their valid heap entry — a busy
            # pod's clock never moves on submit.
            self._frontier.push(pod)
        self.routed_counts[self._serials[id(pod)]] += 1

    # ---- fault handling ---------------------------------------------------

    def _fault_serials(self, spec: FaultSpec) -> list[int]:
        """In-service pod serials the fault spec resolves to, sorted.

        Explicit ``pod`` targets apply only while that pod is in service
        (a crashed or retired pod cannot crash again); ``zone`` targets
        hit every in-service pod in the zone; untargeted specs draw one
        seeded-random victim from the injector's stream. A
        ``spot-preempt`` spec resolves only among cloud-burst pods —
        the provider reclaims rented capacity, never owned hardware —
        including rented pods already draining (a spot reclaim does not
        wait for a graceful scale-down to finish).
        """
        serials = sorted(
            self._routable | {self._serials[id(pod)] for pod in self._draining}
        )
        if spec.kind == "spot-preempt":
            serials = [s for s in serials if s in self.cloud_serials]
        if spec.pod is not None:
            return [spec.pod] if spec.pod in serials else []
        if spec.zone is not None:
            return [s for s in serials if self.pod_zone(s) == spec.zone]
        if not serials:
            return []
        return [self.faults.pick_victim(serials)]

    def _fault_crash(self, spec: FaultSpec, t: float, kind: str) -> None:
        """Kill every pod the spec resolves to at virtual time ``t``.

        In-flight work is requeued (a client retry: it re-enters the
        front end at the crash instant, passes admission again, and its
        latency clock restarts) or counted lost, per ``spec.mode``. With
        ``restart_delay_s`` a replacement engine cold-starts in the
        crashed pod's zone on the same held capacity — the hardware
        reboots in place, so no inventory transaction occurs; without a
        restart the capacity is released back to the ledger. Draining
        pods can crash too (their residual work is destroyed the same
        way) but are never restarted — the autoscaler had already
        retired them.
        """
        self._bill(t)
        restart = spec.restart_delay_s
        # A zone outage also hits pods still cold-starting in the zone:
        # a permanent outage cancels them (capacity released), one with
        # a restart window just pushes their ready time out.
        if spec.zone is not None and self._starting:
            keep: list[tuple[float, int, "ContinuousBatchingEngine"]] = []
            cancelled: list[int] = []
            for ready, serial, pod in self._starting:
                if self.pod_zone(serial) != spec.zone:
                    keep.append((ready, serial, pod))
                elif restart is None:
                    cancelled.append(serial)
                else:
                    keep.append((max(ready, t + restart), serial, pod))
            if len(keep) != len(self._starting) or restart is not None:
                self._starting = sorted(keep, key=lambda e: (e[0], e[1]))
            if cancelled and self._release is not None:
                self._release(len(cancelled), t, cancelled)
        crashed = 0
        for serial in self._fault_serials(spec):
            pod = self._all_pods[serial]
            if serial in self._routable:
                role = "serving"
                self.pods.remove(pod)
                self._routable.discard(serial)
            elif pod in self._draining:
                role = "draining"
                self._draining.remove(pod)
            else:  # pragma: no cover - _fault_serials only yields in-service
                continue
            crashed += 1
            self._crashed.add(serial)
            queued, active = pod.evacuate()
            requeued = lost = 0
            if spec.mode == "lose":
                lost = len(queued) + len(active)
                self.lost += lost
            else:
                for request in queued + active:
                    self._seq += 1
                    heapq.heappush(self._pending, (t, self._seq, None, request, True))
                requeued = len(queued) + len(active)
                self.requeued += requeued
            restart_s = None
            if restart is not None and role == "serving":
                restart_s = t + restart
                new_serial = len(self._all_pods)
                replacement = self.pod_factory(new_serial)
                if replacement.time > 0 or replacement.has_work():
                    raise ValueError("pod_factory must return fresh engines")
                self._all_pods.append(replacement)
                self._serials[id(replacement)] = new_serial
                self.routed_counts.append(0)
                self._zone_overrides[new_serial] = self.pod_zone(serial)
                self._starting.append((restart_s, new_serial, replacement))
                if serial in self.cloud_serials:
                    # An in-place restart keeps the held capacity, so the
                    # replacement occupies the same rented instance.
                    self.cloud_serials.add(new_serial)
            elif self._release is not None:
                self._release(1, t, [serial], kind)
            self.fault_events.append(
                FaultEvent(
                    time_s=t,
                    kind=kind,
                    pod=serial,
                    zone=self.pod_zone(serial),
                    requeued=requeued,
                    lost=lost,
                    restart_s=restart_s,
                )
            )
        if crashed:
            if restart is not None:
                self._starting.sort(key=lambda e: (e[0], e[1]))
            if self.fast:
                self._frontier.rebuild(self._in_service())
        else:
            # Nothing in service matched (empty zone, pod already gone):
            # record the scheduled event so fault schedules stay visible.
            self.fault_events.append(
                FaultEvent(time_s=t, kind=kind, pod=spec.pod, zone=spec.zone)
            )

    def _fault_slow_start(self, spec: FaultSpec, t: float, index: int) -> None:
        """Open a slowdown window: multiply the victims' step costs."""
        targets = self._fault_serials(spec)
        self._slow_targets[index] = targets
        for serial in targets:
            self._all_pods[serial].slow_factor = spec.factor
            self.fault_events.append(
                FaultEvent(
                    time_s=t,
                    kind="slowdown-start",
                    pod=serial,
                    zone=self.pod_zone(serial),
                    factor=spec.factor,
                )
            )

    def _fault_slow_end(self, spec: FaultSpec, t: float, index: int) -> None:
        """Close a slowdown window opened by the matching slow-start."""
        for serial in self._slow_targets.pop(index, []):
            self._all_pods[serial].slow_factor = 1.0
            self.fault_events.append(
                FaultEvent(
                    time_s=t,
                    kind="slowdown-end",
                    pod=serial,
                    zone=self.pod_zone(serial),
                    factor=1.0,
                )
            )

    # ---- elasticity -------------------------------------------------------

    def _bill(self, now: float) -> None:
        """Accrue pod-seconds for the provisioned fleet up to ``now``.

        Cloud-burst pods accrue a second, separate meter so mixed bills
        can price the rented tier apart from owned hardware; a fleet
        that never burst skips that accounting entirely.
        """
        if now > self._billed_to:
            dt = now - self._billed_to
            self._pod_seconds += dt * self.provisioned
            if self.cloud_serials:
                self._cloud_pod_seconds += dt * self._provisioned_cloud()
            self._billed_to = now

    def _provisioned_cloud(self) -> int:
        """Cloud-burst pods currently billed (serving, starting, draining)."""
        cloud = self.cloud_serials
        count = sum(1 for serial in self._routable if serial in cloud)
        count += sum(1 for _, serial, _ in self._starting if serial in cloud)
        count += sum(
            1 for pod in self._draining if self._serials[id(pod)] in cloud
        )
        return count

    def _activate_ready(self, now: float) -> None:
        """Move cold-started pods whose ready time has passed into service."""
        activated = False
        while self._starting and self._starting[0][0] <= now:
            ready, serial, pod = self._starting.pop(0)
            pod.advance_to(ready)
            self.pods.append(pod)
            self._routable.add(serial)
            activated = True
        if activated and self.fast:
            # Appending to self.pods shifts every draining pod's
            # position in the in-service order — the heap's tie-break —
            # so the index must be rebuilt.
            self._frontier.rebuild(self._in_service())

    def _retire_drained(self, now: float) -> None:
        """Retire draining pods that have finished their residual work."""
        still = []
        retired: list[int] = []
        for pod in self._draining:
            if pod.has_work():
                still.append(pod)
            else:
                # The pod actually went idle at its own clock, which can
                # precede the frontier we detect it at: bill to the
                # frontier, then refund the idle tail.
                serial = self._serials[id(pod)]
                self._bill(now)
                self._pod_seconds -= max(0.0, now - pod.time)
                if serial in self.cloud_serials:
                    self._cloud_pod_seconds -= max(0.0, now - pod.time)
                retired.append(serial)
        self._draining = still
        if retired and self.fast:
            self._frontier.rebuild(self._in_service())
        if retired and self._release is not None:
            self._release(len(retired), now, retired)

    def _autoscale_tick(self, t: float) -> None:
        """One decision boundary: observe, decide, resize."""
        self._activate_ready(t)
        self._retire_drained(t)
        view = self._view(t)
        desired = self.autoscaler.desired_pods(view)
        current = len(self.pods) + len(self._starting)
        if desired == current:
            return
        self._bill(t)
        requested: int | None = None
        constraint = ""
        to_pods = desired
        if desired > current:
            want = desired - current
            granted = want
            if self._acquire is not None:
                granted = self._acquire(want, t)
                if granted < want:
                    requested = desired
                    constraint = "denied" if granted == 0 else "clipped"
                    to_pods = current + granted
            cold = self.autoscaler.config.cold_start_s
            for _ in range(granted):
                serial = len(self._all_pods)
                pod = self.pod_factory(serial)
                if pod.time > 0 or pod.has_work():
                    raise ValueError("pod_factory must return fresh engines")
                self._all_pods.append(pod)
                self._serials[id(pod)] = serial
                self.routed_counts.append(0)
                self._starting.append((t + cold, serial, pod))
            # Appends are monotone in the fault-free world, but a zone
            # outage may have pushed an older entry's ready time past
            # these; _activate_ready pops from the front, so keep the
            # list ready-ordered (a no-op sort when already sorted).
            self._starting.sort(key=lambda e: (e[0], e[1]))
        else:
            delta = current - desired
            # Cancel pods still cold-starting first (newest first) —
            # but never the last provisioned pod: after a fault emptied
            # the routable set, the earliest cold start is the only
            # path back to service. (Fault-free, pods is never empty,
            # so this guard cannot bind.)
            cancelled: list[int] = []
            while delta and self._starting and len(self.pods) + len(self._starting) > 1:
                _, serial, _ = self._starting.pop()
                cancelled.append(serial)
                delta -= 1
            if cancelled and self._release is not None:
                self._release(len(cancelled), t, cancelled)
            # ...then drain serving pods, lightest committed load first,
            # newest first on ties; never drain the last routable pod.
            # (Draining pods keep their GPUs until they retire.)
            drained = False
            while delta and len(self.pods) > 1:
                victim = min(
                    self.pods,
                    key=lambda p: (committed_load(p), -self._serials[id(p)]),
                )
                self.pods.remove(victim)
                self._routable.discard(self._serials[id(victim)])
                self._draining.append(victim)
                drained = True
                delta -= 1
            if drained and self.fast:
                self._frontier.rebuild(self._in_service())
        self.scale_events.append(
            ScaleEvent(
                time_s=t,
                from_pods=current,
                to_pods=to_pods,
                reason=self.autoscaler.policy.name,
                requested=requested,
                constraint=constraint,
            )
        )

    def _view(self, t: float) -> "FleetView":
        from repro.simulation.autoscale import FleetView, recent_ttft_samples

        window = self.autoscaler.config.metrics_window_s
        samples = recent_ttft_samples(self._in_service(), t, window)
        p95 = float(np.percentile(samples, 95.0)) if samples.size else float("nan")
        if self.pods:
            utilization = float(
                np.mean(
                    [p.batch_weight_in_use / p.max_batch_weight for p in self.pods]
                )
            )
        else:
            utilization = float("nan")
        times, rates = self.arrival_rate_series(before_s=t)
        return FleetView(
            time=t,
            pods=len(self.pods),
            starting=len(self._starting),
            draining=len(self._draining),
            queue_depth=sum(p.queue_depth for p in self.pods),
            active_requests=sum(p.active_requests for p in self.pods),
            utilization=utilization,
            p95_ttft_s=p95,
            arrival_times_s=times,
            arrival_rates_per_s=rates,
        )

    # ---- result assembly --------------------------------------------------

    def _result(
        self, duration_s: float, warmup_s: float, keep_samples: bool
    ) -> FleetResult:
        t_end = warmup_s + duration_s
        time_s = max(max(pod.time for pod in self._all_pods), t_end)
        self._bill(time_s)
        elapsed = time_s - warmup_s
        collectors = [pod.metrics for pod in self._all_pods]
        merged = MetricsCollector.merged(collectors)
        tokens = sum(pod.stats.tokens_generated for pod in self._all_pods)
        draining = set(map(id, self._draining))
        starting = {id(pod) for _, _, pod in self._starting}
        per_pod = []
        for serial, pod in enumerate(self._all_pods):
            completed = [
                r for r in pod.metrics.completed if r.submitted_at >= warmup_s
            ]
            if serial in self._crashed:
                state = "crashed"
            elif serial in self._routable:
                state = "serving"
            elif id(pod) in draining:
                state = "draining"
            elif id(pod) in starting:
                state = "starting"
            else:
                state = "retired"
            per_pod.append(
                PodStats(
                    pod=serial,
                    arrivals_routed=self.routed_counts[serial],
                    requests_completed=len(completed),
                    tokens_generated=pod.stats.tokens_generated,
                    throughput_tokens_per_s=pod.stats.tokens_generated / elapsed,
                    queue_depth_end=pod.queue_depth,
                    active_requests_end=pod.active_requests,
                    time_s=pod.time,
                    ttft=pod.metrics.ttft_stats(),
                    itl=pod.metrics.itl_stats(),
                    state=state,
                    zone=self.pod_zone(serial),
                )
            )
        in_flight = sum(
            pod.queue_depth + pod.active_requests for pod in self._all_pods
        )
        return FleetResult(
            n_pods=len(self.pods),
            traffic=self.traffic.name,
            router=self.router.name,
            duration_s=elapsed,
            warmup_s=warmup_s,
            time_s=time_s,
            arrivals=self.arrivals,
            admitted=self.arrivals - self.shed,
            shed=self.shed,
            deferrals=self.deferrals,
            completed_total=self._completions,
            in_flight_end=in_flight,
            requests_completed=sum(p.requests_completed for p in per_pod),
            tokens_generated=tokens,
            throughput_tokens_per_s=tokens / elapsed,
            pod_seconds=self._pod_seconds,
            cloud_pod_seconds=self._cloud_pod_seconds,
            sim_events=self._events,
            wall_time_s=_time.perf_counter() - self._wall_start,
            scale_events=list(self.scale_events),
            lost=self.lost,
            requeued=self.requeued,
            fault_events=list(self.fault_events),
            ttft=merged.ttft_stats(),
            itl=merged.itl_stats(),
            e2e=LatencyStats.from_samples(merged.e2e_samples(warmup_s)),
            per_pod=per_pod,
            metrics=merged if keep_samples else None,
        )
