"""Event-driven simulation core: traffic models, metric collection and
shared-clock fleet simulation with pluggable routing.

This package is the substrate under the characterization harness
(single-pod load tests), the cluster layer (multi-pod deployments,
multi-tenant co-simulation) and the ``repro-pilot simulate`` /
``cluster-sim`` CLIs: one event loop, many scenarios. Arrivals come
from synthetic :mod:`~repro.simulation.traffic` models or from recorded
arrival logs replayed by :mod:`~repro.simulation.replay`, and whole
experiments — fleet or cluster — are expressible as declarative
:mod:`~repro.simulation.scenario` specs runnable from one config file.
Deterministic fault injection (:mod:`~repro.simulation.faults`) layers
pod crashes, transient slowdowns and zone outages onto any of these
runs, and every result object speaks the common
:class:`~repro.simulation.results.SimResult` protocol.
"""

from repro.simulation.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from repro.simulation.metrics import LatencyStats, MetricsCollector
from repro.simulation.results import SimResult, to_json
from repro.simulation.traffic import (
    RequestSource,
    TrafficModel,
    ClosedLoopTraffic,
    PoissonTraffic,
    DiurnalTraffic,
    BurstyTraffic,
    split_users,
    round_robin_assignment,
)
from repro.simulation.frontier import (
    ClusterFrontier,
    EventFrontier,
    committed_load,
    least_loaded_pod,
)
from repro.simulation.fleet import (
    Router,
    RoundRobinRouter,
    LeastLoadedRouter,
    JoinShortestQueueRouter,
    WeightAwareRouter,
    ROUTERS,
    ScaleEvent,
    PodStats,
    FleetResult,
    FleetSimulator,
)
from repro.simulation.replay import ArrivalLog, RecordedTraffic, ReplayTraffic
from repro.simulation.autoscale import (
    AUTOSCALE_POLICIES,
    AdmissionController,
    AutoscaleConfig,
    AutoscalePolicy,
    Autoscaler,
    FleetView,
    NoOpPolicy,
    PredictivePolicy,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.simulation.cloud import (
    BurstPolicy,
    CloudLedger,
    CloudUsageEvent,
    HybridCapacity,
    spot_preemption_specs,
)
from repro.simulation.cluster import (
    ClusterInventory,
    ClusterResult,
    ClusterSimulator,
    InventoryEvent,
    TenantGroup,
)
from repro.simulation.scenario import ScenarioSpec, load_scenario
from repro.simulation.library import (
    DEFAULT_SCENARIO_DIR,
    Expectations,
    ExpectationCheck,
    ExpectationReport,
    evaluate_expectations,
    list_scenarios,
    load_by_name,
    scenario_path,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "SimResult",
    "to_json",
    "ClusterFrontier",
    "EventFrontier",
    "committed_load",
    "least_loaded_pod",
    "ArrivalLog",
    "RecordedTraffic",
    "ReplayTraffic",
    "ScenarioSpec",
    "load_scenario",
    "DEFAULT_SCENARIO_DIR",
    "Expectations",
    "ExpectationCheck",
    "ExpectationReport",
    "evaluate_expectations",
    "list_scenarios",
    "load_by_name",
    "scenario_path",
    "WeightAwareRouter",
    "BurstPolicy",
    "CloudLedger",
    "CloudUsageEvent",
    "HybridCapacity",
    "spot_preemption_specs",
    "ClusterInventory",
    "ClusterResult",
    "ClusterSimulator",
    "InventoryEvent",
    "TenantGroup",
    "split_users",
    "round_robin_assignment",
    "LatencyStats",
    "MetricsCollector",
    "RequestSource",
    "TrafficModel",
    "ClosedLoopTraffic",
    "PoissonTraffic",
    "DiurnalTraffic",
    "BurstyTraffic",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "JoinShortestQueueRouter",
    "ROUTERS",
    "ScaleEvent",
    "PodStats",
    "FleetResult",
    "FleetSimulator",
    "AUTOSCALE_POLICIES",
    "AdmissionController",
    "AutoscaleConfig",
    "AutoscalePolicy",
    "Autoscaler",
    "FleetView",
    "NoOpPolicy",
    "PredictivePolicy",
    "TargetUtilizationPolicy",
    "ThresholdPolicy",
]
