"""Autoscaling policies and SLO-aware admission control.

The paper recommends a *fixed* pod count per tenant (§IV); production
front ends instead resize the fleet as traffic moves. This module adds
the elastic layer on top of the shared-clock substrate:

* an :class:`AutoscalePolicy` maps a :class:`FleetView` — the windowed
  metrics the :class:`~repro.simulation.fleet.FleetSimulator` exposes at
  each decision boundary — to a desired pod count. Three adaptive
  policies ship alongside the no-op baseline: a reactive threshold on
  the trailing-window p95 TTFT, HPA-style target-utilization step
  scaling, and a predictive policy that extrapolates the windowed
  arrival-rate series;
* an :class:`Autoscaler` binds a policy to an :class:`AutoscaleConfig`
  (decision interval, pod bounds, cold-start delay, metrics window) and
  clamps/records every decision as a :class:`ScaleEvent`;
* an :class:`AdmissionController` wraps any router and sheds (or defers)
  arrivals while the fleet's trailing-window tail latency breaches the
  SLO, so overload degrades by rejecting work instead of by unbounded
  queueing.

Every policy is a pure function of the view — no RNG — so a seeded
simulation produces an identical scale-event log on every run.

Policies ask for pods; the substrate decides what is *grantable*. In a
standalone fleet every clamped ask is filled; inside the multi-tenant
:class:`~repro.simulation.cluster.ClusterSimulator` the shared
:class:`~repro.simulation.cluster.ClusterInventory` may fill it only
partially (``ScaleEvent.constraint == "clipped"``) or not at all
(``"denied"``), which is how cross-tenant contention becomes observable
in a tenant's scale-event log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.simulation.fleet import Router, ScaleEvent

if TYPE_CHECKING:  # import cycle: the engine itself imports this package
    from repro.inference.engine import ContinuousBatchingEngine
    from repro.inference.request import InferenceRequest

__all__ = [
    "FleetView",
    "ScaleEvent",
    "AutoscalePolicy",
    "NoOpPolicy",
    "ThresholdPolicy",
    "TargetUtilizationPolicy",
    "PredictivePolicy",
    "AUTOSCALE_POLICIES",
    "AutoscaleConfig",
    "Autoscaler",
    "AdmissionController",
]


@dataclass(frozen=True)
class FleetView:
    """Windowed fleet state handed to a policy at one decision boundary.

    ``p95_ttft_s`` is the tail over the trailing metrics window (NaN when
    no first token was served in it); ``arrival_times_s`` /
    ``arrival_rates_per_s`` are the fleet's windowed arrival-rate series
    up to ``time``. ``utilization`` is the mean committed batch-weight
    fraction across routable pods.
    """

    time: float
    pods: int
    starting: int
    draining: int
    queue_depth: int
    active_requests: int
    utilization: float
    p95_ttft_s: float
    arrival_times_s: np.ndarray = field(repr=False)
    arrival_rates_per_s: np.ndarray = field(repr=False)

    @property
    def provisioned(self) -> int:
        """Pods the tenant is paying for: serving plus cold-starting."""
        return self.pods + self.starting


def recent_ttft_samples(
    pods: list[ContinuousBatchingEngine], now: float, window_s: float
) -> np.ndarray:
    """Pool every pod's TTFT samples from the trailing window.

    The one place the windowed-tail sample set is assembled — both the
    autoscaler's FleetView and the admission controller derive their p95
    from this.
    """
    recent = [pod.metrics.ttft_since(now - window_s) for pod in pods]
    return np.concatenate(recent) if recent else np.empty(0)


class AutoscalePolicy:
    """Maps a :class:`FleetView` to a desired provisioned pod count."""

    name: str = "policy"

    def desired_pods(self, view: FleetView) -> int:
        """The pod count this policy wants, given the observed view."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget policy state before a fresh run."""


class NoOpPolicy(AutoscalePolicy):
    """Keep whatever is provisioned — the paper's static deployment."""

    name = "static"

    def desired_pods(self, view: FleetView) -> int:
        return view.provisioned


class ThresholdPolicy(AutoscalePolicy):
    """Reactive threshold on the trailing-window p95 TTFT.

    Scale up by ``step`` while the windowed tail breaches the SLO; scale
    down by ``step`` once it sits below ``low_fraction`` of the SLO *and*
    no work is queued (queued work means the tail is about to rise).
    """

    name = "threshold"

    def __init__(
        self,
        slo_p95_ttft_s: float,
        low_fraction: float = 0.5,
        step: int = 1,
    ) -> None:
        if slo_p95_ttft_s <= 0:
            raise ValueError(f"slo_p95_ttft_s must be positive, got {slo_p95_ttft_s}")
        if not 0.0 < low_fraction < 1.0:
            raise ValueError(f"low_fraction must be in (0, 1), got {low_fraction}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.slo_p95_ttft_s = float(slo_p95_ttft_s)
        self.low_fraction = float(low_fraction)
        self.step = int(step)

    def desired_pods(self, view: FleetView) -> int:
        if math.isnan(view.p95_ttft_s):
            # No first token served in the window. An idle fleet (nothing
            # queued or decoding either) is over-provisioned; anything
            # else is a warm-up transient — hold.
            if view.queue_depth == 0 and view.active_requests == 0:
                return view.provisioned - self.step
            return view.provisioned
        if view.p95_ttft_s > self.slo_p95_ttft_s:
            return view.provisioned + self.step
        if (
            view.p95_ttft_s < self.low_fraction * self.slo_p95_ttft_s
            and view.queue_depth == 0
        ):
            return view.provisioned - self.step
        return view.provisioned


class TargetUtilizationPolicy(AutoscalePolicy):
    """HPA-style step scaling toward a target batch-weight utilization.

    ``desired = ceil(pods * utilization / target)`` — the classic
    horizontal-pod-autoscaler formula — with a dead band of
    ``tolerance`` around the target to prevent flapping.
    """

    name = "target-utilization"

    def __init__(self, target: float = 0.6, tolerance: float = 0.1) -> None:
        if not 0.0 < target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {target}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.target = float(target)
        self.tolerance = float(tolerance)

    def desired_pods(self, view: FleetView) -> int:
        if view.pods == 0 or math.isnan(view.utilization):
            return view.provisioned
        ratio = view.utilization / self.target
        if abs(ratio - 1.0) <= self.tolerance:
            return view.provisioned
        desired = math.ceil(view.pods * ratio)
        if desired >= view.pods:
            # Pods already warming count toward the scale-up, so one
            # sustained breach doesn't add a pod every decision interval.
            return max(desired, view.provisioned)
        return desired


class PredictivePolicy(AutoscalePolicy):
    """Extrapolates the windowed arrival-rate series past the cold start.

    A least-squares line through the last ``fit_windows`` points of the
    arrival-rate series is evaluated ``horizon_s`` ahead (so capacity is
    ready *when the cold start completes*, not when the breach shows up);
    the forecast is converted to pods via the per-pod service capacity
    ``requests_per_pod_per_s`` with a ``safety`` head-room factor.
    """

    name = "predictive"

    def __init__(
        self,
        requests_per_pod_per_s: float,
        horizon_s: float = 30.0,
        fit_windows: int = 6,
        safety: float = 1.2,
    ) -> None:
        if requests_per_pod_per_s <= 0:
            raise ValueError(
                f"requests_per_pod_per_s must be positive, got {requests_per_pod_per_s}"
            )
        if horizon_s < 0:
            raise ValueError(f"horizon_s must be >= 0, got {horizon_s}")
        if fit_windows < 2:
            raise ValueError(f"fit_windows must be >= 2, got {fit_windows}")
        if safety <= 0:
            raise ValueError(f"safety must be positive, got {safety}")
        self.requests_per_pod_per_s = float(requests_per_pod_per_s)
        self.horizon_s = float(horizon_s)
        self.fit_windows = int(fit_windows)
        self.safety = float(safety)

    def forecast_rate(self, view: FleetView) -> float:
        """Arrival rate predicted ``horizon_s`` past the decision time."""
        times = view.arrival_times_s[-self.fit_windows :]
        rates = view.arrival_rates_per_s[-self.fit_windows :]
        if times.size == 0:
            return 0.0
        if times.size == 1:
            return float(rates[0])
        slope, intercept = np.polyfit(times, rates, 1)
        return float(slope * (view.time + self.horizon_s) + intercept)

    def desired_pods(self, view: FleetView) -> int:
        if view.arrival_times_s.size == 0:
            # No completed observation window yet (e.g. the first
            # decision tick inside a long metrics window): hold rather
            # than mistake missing data for zero traffic.
            return view.provisioned
        rate = max(self.forecast_rate(view), 0.0)
        return math.ceil(self.safety * rate / self.requests_per_pod_per_s)


#: Policy registry for CLIs and benchmarks (constructors take the
#: policy-specific knobs, so the registry maps names to classes).
AUTOSCALE_POLICIES: dict[str, type[AutoscalePolicy]] = {
    NoOpPolicy.name: NoOpPolicy,
    ThresholdPolicy.name: ThresholdPolicy,
    TargetUtilizationPolicy.name: TargetUtilizationPolicy,
    PredictivePolicy.name: PredictivePolicy,
}


@dataclass(frozen=True)
class AutoscaleConfig:
    """Mechanics shared by every policy: when and how pods change."""

    decision_interval_s: float = 15.0
    min_pods: int = 1
    max_pods: int = 16
    cold_start_s: float = 10.0
    metrics_window_s: float = 30.0

    def __post_init__(self) -> None:
        if self.decision_interval_s <= 0:
            raise ValueError(
                f"decision_interval_s must be positive, got {self.decision_interval_s}"
            )
        if self.min_pods < 1:
            raise ValueError(f"min_pods must be >= 1, got {self.min_pods}")
        if self.max_pods < self.min_pods:
            raise ValueError(
                f"max_pods {self.max_pods} must be >= min_pods {self.min_pods}"
            )
        if self.cold_start_s < 0:
            raise ValueError(f"cold_start_s must be >= 0, got {self.cold_start_s}")
        if self.metrics_window_s <= 0:
            raise ValueError(
                f"metrics_window_s must be positive, got {self.metrics_window_s}"
            )


class Autoscaler:
    """A policy bound to its mechanics; consulted by the fleet loop."""

    def __init__(
        self, policy: AutoscalePolicy, config: AutoscaleConfig | None = None
    ) -> None:
        self.policy = policy
        self.config = config or AutoscaleConfig()

    def desired_pods(self, view: FleetView) -> int:
        """The policy's ask, clamped to the configured pod bounds."""
        desired = self.policy.desired_pods(view)
        return max(self.config.min_pods, min(self.config.max_pods, desired))

    def reset(self) -> None:
        """Forget policy state before a fresh run."""
        self.policy.reset()


class AdmissionController(Router):
    """SLO-aware admission control wrapped around any router.

    While the fleet's trailing-window p95 TTFT breaches
    ``slo_p95_ttft_s``, new arrivals are **shed** (rejected outright) or,
    in ``mode="defer"``, re-offered ``retry_delay_s`` later up to
    ``max_defers`` times before being shed — a client-side retry with
    backoff. Sticky closed-loop follow-ups and routing itself are
    delegated to the wrapped router untouched.

    The controller needs ``min_samples`` first tokens inside the window
    before it trusts the tail estimate; an idle or freshly started fleet
    admits everything. The tail is re-estimated at most once per
    ``refresh_s`` of virtual time (the estimate cannot move much faster
    than the window it is computed over), keeping admission O(1) per
    arrival instead of O(window samples).
    """

    def __init__(
        self,
        inner: Router,
        slo_p95_ttft_s: float,
        window_s: float = 30.0,
        mode: str = "shed",
        retry_delay_s: float = 5.0,
        max_defers: int = 3,
        min_samples: int = 8,
        refresh_s: float = 1.0,
    ) -> None:
        if slo_p95_ttft_s <= 0:
            raise ValueError(f"slo_p95_ttft_s must be positive, got {slo_p95_ttft_s}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if mode not in ("shed", "defer"):
            raise ValueError(f"mode must be 'shed' or 'defer', got {mode!r}")
        if retry_delay_s <= 0:
            raise ValueError(f"retry_delay_s must be positive, got {retry_delay_s}")
        if max_defers < 0:
            raise ValueError(f"max_defers must be >= 0, got {max_defers}")
        if refresh_s < 0:
            raise ValueError(f"refresh_s must be >= 0, got {refresh_s}")
        self.inner = inner
        self.slo_p95_ttft_s = float(slo_p95_ttft_s)
        self.window_s = float(window_s)
        self.mode = mode
        self.retry_delay_s = float(retry_delay_s)
        self.max_defers = int(max_defers)
        self.min_samples = int(min_samples)
        self.refresh_s = float(refresh_s)
        self.admitted = 0
        self.shed = 0
        self.deferred = 0
        self._defers: dict[int, int] = {}
        self._p95_cache = float("nan")
        self._p95_at = float("-inf")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"admission({self.inner.name})"

    def reset(self) -> None:
        """Forget admission and inner-router state before a fresh run."""
        self.inner.reset()
        self.admitted = 0
        self.shed = 0
        self.deferred = 0
        self._defers.clear()
        self._p95_cache = float("nan")
        self._p95_at = float("-inf")

    def windowed_p95_ttft(
        self, now: float, pods: list[ContinuousBatchingEngine]
    ) -> float:
        """Fleet p95 TTFT over the trailing window (NaN below min_samples).

        Cached per ``refresh_s`` of virtual time; arrivals inside the
        same refresh quantum reuse the previous estimate.
        """
        if now - self._p95_at < self.refresh_s:
            return self._p95_cache
        samples = recent_ttft_samples(pods, now, self.window_s)
        if samples.size < self.min_samples:
            p95 = float("nan")
        else:
            p95 = float(np.percentile(samples, 95.0))
        self._p95_at = now
        self._p95_cache = p95
        return p95

    def admit(
        self,
        request: InferenceRequest,
        arrival_time: float,
        pods: list[ContinuousBatchingEngine],
    ) -> str:
        """``"admit"``, ``"shed"`` or ``"defer"`` for one arrival."""
        p95 = self.windowed_p95_ttft(arrival_time, pods)
        if math.isnan(p95) or p95 <= self.slo_p95_ttft_s:
            self.admitted += 1
            self._defers.pop(request.request_id, None)
            return "admit"
        if self.mode == "defer":
            seen = self._defers.get(request.request_id, 0)
            if seen < self.max_defers:
                self._defers[request.request_id] = seen + 1
                self.deferred += 1
                return "defer"
            self._defers.pop(request.request_id, None)
        self.shed += 1
        return "shed"

    def route(self, request, arrival_time, pods) -> int:
        return self.inner.route(request, arrival_time, pods)
