"""Declarative scenario specs: a whole simulation from one config file.

Every fleet and cluster experiment in this repo is the same handful of
decisions — which LLM on which GPU profile, how many pods, what traffic,
which router, admission control, autoscaling, and (for clusters) which
tenants share which inventory. A :class:`ScenarioSpec` captures those
decisions as one small declarative mapping (a Python dict, a JSON file,
or a YAML file when PyYAML is installed) and builds the ready-to-run
:class:`~repro.simulation.fleet.FleetSimulator` or
:class:`~repro.simulation.cluster.ClusterSimulator` from it — so every
benchmark and example scenario is a reviewable config artifact instead
of a page of construction code, and ``repro-pilot simulate/cluster-sim
--scenario FILE`` runs it end to end from the file alone.

A minimal fleet scenario::

    {"name": "replay-smoke",
     "duration_s": 30.0,
     "llm": "Llama-2-13b", "profile": "1xA100-40GB", "pods": 2,
     "workload": {"requests": 5000},
     "traffic": {"kind": "poisson", "rate_per_s": 2.0},
     "router": "weight-aware"}

``traffic.kind`` may be any synthetic model (``closed`` / ``poisson`` /
``diurnal`` / ``bursty``) or ``replay``, which drives the run from a
recorded arrival log (a CSV/JSONL path, inline ``arrivals`` rows, or a
``trace`` ``.npz`` bridged through
:meth:`~repro.simulation.replay.ArrivalLog.from_trace`) with time-warp,
horizon and seeded-bootstrap knobs. Adding a ``tenants`` list (plus a
GPU ``capacity`` map) turns the spec into a multi-tenant cluster
co-simulation; tenant entries inherit the top-level fields they do not
override. A ``faults`` section (``seed`` / ``zones`` / ``events``)
injects deterministic pod crashes, transient slowdowns and zone
outages into the run. A cluster scenario may add a ``cloud`` section
(mode / quota / catalog / burst caps) to let denied scale-ups burst to
an elastic, priced cloud tier with seeded spot preemptions. See
``docs/scenarios.md`` for the full reference.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.simulation.autoscale import (
    AUTOSCALE_POLICIES,
    AdmissionController,
    Autoscaler,
    AutoscaleConfig,
    PredictivePolicy,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.simulation.faults import FaultInjector, FaultSpec
from repro.simulation.fleet import ROUTERS, FleetResult, FleetSimulator, Router
from repro.simulation.replay import ArrivalLog, ReplayTraffic
from repro.simulation.traffic import (
    BurstyTraffic,
    ClosedLoopTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    TrafficModel,
)
from repro.utils.rng import derive_rng, spawn_seed

if TYPE_CHECKING:
    from repro.simulation.cluster import ClusterResult, ClusterSimulator
    from repro.workload.generator import WorkloadGenerator

__all__ = ["ScenarioSpec", "load_scenario"]

_TOP_KEYS = set(
    "name seed duration_s warmup_s llm profile pods max_batch_weight "
    "workload traffic router admission autoscaler slo_ttft_ms tenants "
    "capacity faults cloud expectations".split()
)
_TENANT_KEYS = set(
    "name llm profile pods max_batch_weight traffic router admission "
    "autoscaler slo_ttft_ms faults".split()
)
_TRAFFIC_KEYS = {
    "closed": {"users", "sticky"},
    "poisson": {"rate_per_s"},
    "diurnal": {"rate_per_s", "amplitude", "period_s", "phase_rad"},
    "bursty": set("rate_per_s off_rate_per_s mean_on_s mean_off_s start_on".split()),
    "replay": set(
        "path arrivals trace llm tenant speedup rate_per_s horizon_s "
        "bootstrap".split()
    ),
}
_ADMISSION_KEYS = set("mode slo_ttft_ms window_s retry_delay_s max_defers".split())
_AUTOSCALER_KEYS = set(
    "policy min_pods max_pods interval_s cold_start_s metrics_window_s "
    "slo_ttft_ms target requests_per_pod_per_s".split()
)
_WORKLOAD_KEYS = {"traces", "requests"}
_FAULTS_KEYS = {"seed", "zones", "events"}
_FAULT_EVENT_KEYS = {
    "crash": {"time_s", "pod", "mode", "restart_delay_s"},
    "slowdown": {"time_s", "pod", "zone", "duration_s", "factor"},
    "zone-outage": {"time_s", "zone", "mode", "restart_delay_s"},
    "spot-preempt": {"time_s", "pod", "mode"},
}
_CLOUD_KEYS = set(
    "mode max_cloud_pods price_cap_per_pod_hour quota "
    "spot_interruptions_per_hour seed catalog".split()
)
_CLOUD_CATALOG_KEYS = set(
    "on_demand spot reserved quota_gpus spot_interruptions_per_hour".split()
)
_EXPECTATION_KEYS = set(
    "p95_ttft_ms_max slo_attainment_min cost_max_usd min_completed "
    "max_lost fast_oracle_parity".split()
)


def _check_keys(mapping: dict, allowed: set[str], where: str) -> None:
    unknown = set(mapping) - allowed
    if unknown:
        raise ValueError(
            f"unknown key(s) in {where}: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _fault_spec(event: dict) -> FaultSpec:
    """One validated :class:`FaultSpec` from a scenario ``events`` entry."""
    return FaultSpec(
        kind=str(event["kind"]),
        time_s=float(event["time_s"]),
        pod=(None if event.get("pod") is None else int(event["pod"])),
        zone=(None if event.get("zone") is None else str(event["zone"])),
        mode=str(event.get("mode", "requeue")),
        restart_delay_s=(
            None
            if event.get("restart_delay_s") is None
            else float(event["restart_delay_s"])
        ),
        duration_s=(
            None if event.get("duration_s") is None else float(event["duration_s"])
        ),
        factor=(None if event.get("factor") is None else float(event["factor"])),
    )


@dataclass
class ScenarioSpec:
    """One validated scenario, ready to build and run.

    Construct via :meth:`from_dict` (which validates every section and
    raises ``ValueError`` naming the offending key) or :meth:`load`
    (JSON or, when PyYAML is available, YAML files). ``tenants`` being
    non-empty makes this a cluster scenario (:attr:`is_cluster`), in
    which case ``capacity`` must name the finite GPU inventory.
    """

    name: str
    duration_s: float
    traffic: dict | None = None
    seed: int = 0
    warmup_s: float = 0.0
    llm: str = "Llama-2-13b"
    profile: str = "1xA100-40GB"
    pods: int = 2
    max_batch_weight: int = 12_000
    workload: dict = field(default_factory=dict)
    router: str | dict = "least-loaded"
    admission: dict | None = None
    autoscaler: dict | None = None
    slo_ttft_ms: float | None = None
    faults: dict | None = None
    tenants: list[dict] = field(default_factory=list)
    capacity: dict[str, int] = field(default_factory=dict)
    cloud: dict | None = None
    expectations: dict | None = None

    # ---- construction -----------------------------------------------------

    @classmethod
    def from_dict(cls, spec: dict) -> "ScenarioSpec":
        """Validate a raw mapping into a :class:`ScenarioSpec`."""
        if not isinstance(spec, dict):
            raise ValueError(f"scenario spec must be a mapping, got {type(spec)}")
        _check_keys(spec, _TOP_KEYS, "scenario")
        if "duration_s" not in spec:
            raise ValueError("scenario needs a duration_s")
        out = cls(
            name=str(spec.get("name", "scenario")),
            duration_s=float(spec["duration_s"]),
            traffic=spec.get("traffic"),
            seed=int(spec.get("seed", 0)),
            warmup_s=float(spec.get("warmup_s", 0.0)),
            llm=str(spec.get("llm", cls.llm)),
            profile=str(spec.get("profile", cls.profile)),
            pods=int(spec.get("pods", cls.pods)),
            max_batch_weight=int(spec.get("max_batch_weight", cls.max_batch_weight)),
            workload=dict(spec.get("workload") or {}),
            router=spec.get("router", "least-loaded"),
            admission=spec.get("admission"),
            autoscaler=spec.get("autoscaler"),
            slo_ttft_ms=(float(spec["slo_ttft_ms"]) if "slo_ttft_ms" in spec else None),
            faults=spec.get("faults"),
            tenants=[dict(t) for t in spec.get("tenants") or []],
            capacity={str(k): int(v) for k, v in (spec.get("capacity") or {}).items()},
            cloud=spec.get("cloud"),
            expectations=spec.get("expectations"),
        )
        out._validate()
        return out

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Parse a scenario file: ``.json`` always, ``.yaml``/``.yml``
        when PyYAML is importable (a clear error otherwise).

        Parse and validation errors are re-raised with ``path`` prefixed
        so a failure inside a batch of spec files names its file.
        """
        with open(path) as fh:
            text = fh.read()
        try:
            if path.endswith((".yaml", ".yml")):
                try:
                    import yaml
                except ImportError as exc:  # pragma: no cover - env dependent
                    raise ValueError(
                        f"is a YAML scenario but PyYAML is not "
                        "installed; use a .json spec or install pyyaml"
                    ) from exc
                try:
                    raw = yaml.safe_load(text)
                except yaml.YAMLError as exc:
                    # Not a ValueError subclass: without this wrap, a
                    # malformed file would escape without its path.
                    raise ValueError(f"invalid YAML: {exc}") from exc
            else:
                raw = json.loads(text)
            return cls.from_dict(raw)
        except (ValueError, TypeError) as exc:
            raise ValueError(f"{path}: {exc}") from exc

    def _validate(self) -> None:
        """Check every section, collecting failures so a bad spec reports
        all of its problems in one ``ValueError`` (joined with ``; ``)
        instead of one per edit-run-fix round trip. A spec with a single
        problem raises exactly the message that check always raised."""
        errors: list[str] = []

        def check(fn, *args) -> None:
            try:
                fn(*args)
            except ValueError as exc:
                errors.append(str(exc))

        def require(ok: bool, message: str) -> None:
            if not ok:
                errors.append(message)

        require(
            self.duration_s > 0,
            f"duration_s must be positive, got {self.duration_s}",
        )
        require(self.warmup_s >= 0, f"warmup_s must be >= 0, got {self.warmup_s}")
        require(self.pods >= 1, f"pods must be >= 1, got {self.pods}")
        check(_check_keys, self.workload, _WORKLOAD_KEYS, "workload")
        check(self._validate_faults, self.faults, "scenario faults")
        check(self._validate_cloud)
        check(self._validate_expectations)
        if self.cloud is not None and not self.tenants:
            errors.append(
                "a cloud section needs tenants: bursting is a cluster "
                "decision (single fleets use HybridCapacity directly)"
            )
        if self.tenants:
            require(
                bool(self.capacity),
                "a cluster scenario (tenants) needs a capacity map",
            )
            names = []
            for tenant in self.tenants:
                check(_check_keys, tenant, _TENANT_KEYS, "tenant")
                if "name" not in tenant:
                    errors.append("every tenant needs a name")
                    continue
                names.append(tenant["name"])
                check(
                    self._validate_traffic,
                    tenant.get("traffic", self.traffic),
                    f"tenant {tenant['name']!r}",
                )
                if "faults" in tenant:
                    check(
                        self._validate_faults,
                        tenant["faults"],
                        f"tenant {tenant['name']!r} faults",
                    )
            require(
                len(set(names)) == len(names), f"duplicate tenant names: {names}"
            )
        else:
            check(self._validate_traffic, self.traffic, "scenario")
        for section in (self.admission, *(t.get("admission") for t in self.tenants)):
            if section is not None:
                check(_check_keys, section, _ADMISSION_KEYS, "admission")
        for section in (self.autoscaler, *(t.get("autoscaler") for t in self.tenants)):
            if section is not None:
                check(_check_keys, section, _AUTOSCALER_KEYS, "autoscaler")
                policy = section.get("policy", "threshold")
                require(
                    policy in AUTOSCALE_POLICIES,
                    f"unknown autoscaler policy {policy!r}; "
                    f"known: {sorted(AUTOSCALE_POLICIES)}",
                )
        for router in (self.router, *(t.get("router") for t in self.tenants)):
            if router is None:
                continue
            kind = router.get("kind") if isinstance(router, dict) else router
            if kind not in ROUTERS:
                errors.append(f"unknown router {kind!r}; known: {sorted(ROUTERS)}")
            elif isinstance(router, dict):
                accepted = set(
                    inspect.signature(ROUTERS[kind].__init__).parameters
                ) - {"self"}
                check(
                    _check_keys,
                    {k: v for k, v in router.items() if k != "kind"},
                    accepted,
                    f"router[{kind}]",
                )
        if errors:
            raise ValueError("; ".join(errors))

    @staticmethod
    def _validate_traffic(traffic: dict | None, where: str) -> None:
        if not isinstance(traffic, dict) or "kind" not in traffic:
            raise ValueError(f"{where} needs a traffic mapping with a 'kind'")
        kind = traffic["kind"]
        if kind not in _TRAFFIC_KEYS:
            raise ValueError(
                f"unknown traffic kind {kind!r} in {where}; "
                f"known: {sorted(_TRAFFIC_KEYS)}"
            )
        _check_keys(
            {k: v for k, v in traffic.items() if k != "kind"},
            _TRAFFIC_KEYS[kind],
            f"{where} traffic[{kind}]",
        )
        if kind == "closed" and "users" not in traffic:
            raise ValueError(f"closed-loop traffic in {where} needs 'users'")
        if kind != "closed" and kind != "replay" and "rate_per_s" not in traffic:
            raise ValueError(f"{kind} traffic in {where} needs 'rate_per_s'")
        if kind == "replay":
            sources = [k for k in ("path", "arrivals", "trace") if k in traffic]
            if len(sources) != 1:
                raise ValueError(
                    f"replay traffic in {where} needs exactly one of "
                    f"'path', 'arrivals' or 'trace', got {sources or 'none'}"
                )
            if "llm" in traffic and "trace" not in traffic:
                raise ValueError(
                    f"replay 'llm' in {where} only applies to a 'trace' "
                    "source (CSV/JSONL logs are already per-service)"
                )

    @staticmethod
    def _validate_faults(section: dict | None, where: str) -> None:
        if section is None:
            return
        if not isinstance(section, dict):
            raise ValueError(f"{where} must be a mapping, got {type(section)}")
        _check_keys(section, _FAULTS_KEYS, where)
        if int(section.get("zones", 1)) < 1:
            raise ValueError(f"{where} zones must be >= 1, got {section['zones']}")
        events = section.get("events", [])
        if not isinstance(events, list):
            raise ValueError(f"{where} events must be a list, got {type(events)}")
        for i, event in enumerate(events):
            label = f"{where} event[{i}]"
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(f"{label} needs a mapping with a 'kind'")
            kind = event["kind"]
            if kind not in _FAULT_EVENT_KEYS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in {label}; "
                    f"known: {sorted(_FAULT_EVENT_KEYS)}"
                )
            _check_keys(
                {k: v for k, v in event.items() if k != "kind"},
                _FAULT_EVENT_KEYS[kind],
                label,
            )
            if "time_s" not in event:
                raise ValueError(f"{label} needs a time_s")
            try:
                # Field semantics (pod-vs-zone targeting, slowdown knobs,
                # positive delays) are FaultSpec's own contract.
                _fault_spec(event)
            except ValueError as exc:
                raise ValueError(f"{label}: {exc}") from exc

    def _validate_expectations(self) -> None:
        """The ``expectations`` section, when present, is a mapping of
        known bound names to non-negative numbers (plus the boolean
        ``fast_oracle_parity`` marker). Evaluation lives in
        :mod:`repro.simulation.library`; only the shape is checked here
        so a curated scenario file fails at load, not mid-matrix."""
        section = self.expectations
        if section is None:
            return
        if not isinstance(section, dict):
            raise ValueError(
                f"expectations must be a mapping, got {type(section)}"
            )
        _check_keys(section, _EXPECTATION_KEYS, "expectations")
        for key, value in section.items():
            if key == "fast_oracle_parity":
                if not isinstance(value, bool):
                    raise ValueError(
                        f"expectations fast_oracle_parity must be a "
                        f"boolean, got {value!r}"
                    )
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"expectations {key} must be a number, got {value!r}"
                )
            if float(value) < 0:
                raise ValueError(
                    f"expectations {key} must be >= 0, got {value}"
                )
        if "slo_attainment_min" in section:
            attainment = float(section["slo_attainment_min"])
            if attainment > 1.0:
                raise ValueError(
                    f"expectations slo_attainment_min is a fraction, "
                    f"got {attainment}"
                )
            has_slo = self.slo_ttft_ms is not None or (
                self.tenants
                and all("slo_ttft_ms" in t for t in self.tenants)
            )
            if not has_slo:
                raise ValueError(
                    "expectations slo_attainment_min needs slo_ttft_ms "
                    "on the scenario (or on every tenant)"
                )

    def _validate_cloud(self) -> None:
        from repro.hardware.pricing import CLOUD_PRICING_MODES

        section = self.cloud
        if section is None:
            return
        if not isinstance(section, dict):
            raise ValueError(f"cloud must be a mapping, got {type(section)}")
        _check_keys(section, _CLOUD_KEYS, "cloud")
        mode = section.get("mode", "on-demand")
        if mode not in CLOUD_PRICING_MODES:
            raise ValueError(
                f"unknown cloud mode {mode!r}; "
                f"known: {sorted(CLOUD_PRICING_MODES)}"
            )
        if int(section.get("max_cloud_pods", 0)) < 0:
            raise ValueError(
                f"cloud max_cloud_pods must be >= 0, "
                f"got {section['max_cloud_pods']}"
            )
        if float(section.get("price_cap_per_pod_hour", 0.0)) < 0:
            raise ValueError(
                f"cloud price_cap_per_pod_hour must be >= 0, "
                f"got {section['price_cap_per_pod_hour']}"
            )
        quota = section.get("quota") or {}
        if not isinstance(quota, dict):
            raise ValueError(f"cloud quota must be a mapping, got {type(quota)}")
        for gpu, cap in quota.items():
            if int(cap) < 0:
                raise ValueError(f"cloud quota for {gpu} must be >= 0, got {cap}")
        catalog = section.get("catalog")
        if catalog is not None:
            if not isinstance(catalog, dict) or not catalog:
                raise ValueError("cloud catalog must be a non-empty mapping")
            for gpu, entry in catalog.items():
                if not isinstance(entry, dict):
                    raise ValueError(
                        f"cloud catalog entry for {gpu} must be a mapping"
                    )
                _check_keys(entry, _CLOUD_CATALOG_KEYS, f"cloud catalog[{gpu}]")
                for mode_key in ("on_demand", "spot", "reserved"):
                    if mode_key not in entry:
                        raise ValueError(
                            f"cloud catalog[{gpu}] needs a {mode_key} price"
                        )

    def build_cloud(self) -> "tuple | None":
        """The (CloudLedger, BurstPolicy) pair of the ``cloud`` section.

        None when the scenario declares no cloud tier. The catalog is
        the AWS-like default unless the section supplies its own; the
        ``quota`` mapping overlays account GPU caps either way, and the
        ledger's seed (spot-preemption schedules) defaults to the
        scenario seed.
        """
        from repro.hardware.pricing import (
            CloudCatalog,
            CloudInstanceType,
            aws_like_cloud_catalog,
        )
        from repro.simulation.cloud import BurstPolicy, CloudLedger

        if self.cloud is None:
            return None
        section = self.cloud
        quota = {
            str(gpu): int(cap) for gpu, cap in (section.get("quota") or {}).items()
        }
        rate = section.get("spot_interruptions_per_hour")
        if section.get("catalog"):
            instances = {}
            for gpu, entry in section["catalog"].items():
                entry_rate = entry.get(
                    "spot_interruptions_per_hour",
                    0.0 if rate is None else float(rate),
                )
                instances[str(gpu)] = CloudInstanceType(
                    gpu=str(gpu),
                    on_demand=float(entry["on_demand"]),
                    spot=float(entry["spot"]),
                    reserved=float(entry["reserved"]),
                    quota_gpus=quota.get(
                        str(gpu), entry.get("quota_gpus")
                    ),
                    spot_interruptions_per_hour=float(entry_rate),
                )
            catalog = CloudCatalog(instances=instances)
        else:
            catalog = aws_like_cloud_catalog(
                quota_gpus=quota,
                spot_interruptions_per_hour=(
                    0.05 if rate is None else float(rate)
                ),
            )
        policy = BurstPolicy(
            mode=str(section.get("mode", "on-demand")),
            max_cloud_pods=(
                None
                if section.get("max_cloud_pods") is None
                else int(section["max_cloud_pods"])
            ),
            price_cap_per_pod_hour=(
                None
                if section.get("price_cap_per_pod_hour") is None
                else float(section["price_cap_per_pod_hour"])
            ),
        )
        ledger = CloudLedger(
            catalog=catalog, seed=int(section.get("seed", self.seed))
        )
        return ledger, policy

    @property
    def is_cluster(self) -> bool:
        """True when this spec describes a multi-tenant co-simulation."""
        return bool(self.tenants)

    # ---- builders ---------------------------------------------------------

    def build_generator(self) -> "WorkloadGenerator":
        """The workload generator behind every synthetic request draw.

        Fitted to the ``workload.traces`` ``.npz`` collection when given,
        else to a freshly synthesized trace of ``workload.requests``
        (default 50k) rows under the scenario seed — so a spec file with
        no side files is still fully self-contained.
        """
        from repro.traces import TraceConfig, TraceDataset, TraceSynthesizer
        from repro.workload.generator import WorkloadGenerator

        if self.workload.get("traces"):
            traces = TraceDataset.load(self.workload["traces"])
        else:
            config = TraceConfig(n_requests=int(self.workload.get("requests", 50_000)))
            traces = TraceSynthesizer(config=config, seed=self.seed).generate()
        return WorkloadGenerator.fit(traces)

    def build_traffic(
        self, traffic: dict | None = None, label: str = ""
    ) -> TrafficModel:
        """One traffic model from a traffic mapping (seeded per label)."""
        traffic = dict(self.traffic if traffic is None else traffic)
        kind = traffic.pop("kind")
        rng = derive_rng(self.seed, "scenario-traffic", label, kind)
        if kind == "closed":
            return ClosedLoopTraffic(
                int(traffic["users"]), sticky=bool(traffic.get("sticky", True))
            )
        if kind == "poisson":
            return PoissonTraffic(float(traffic["rate_per_s"]), rng=rng)
        if kind == "diurnal":
            return DiurnalTraffic(
                float(traffic["rate_per_s"]),
                rng=rng,
                amplitude=float(traffic.get("amplitude", 0.8)),
                period_s=float(traffic.get("period_s", 600.0)),
                phase_rad=float(traffic.get("phase_rad", 0.0)),
            )
        if kind == "bursty":
            return BurstyTraffic(
                float(traffic["rate_per_s"]),
                rng=rng,
                off_rate_per_s=float(traffic.get("off_rate_per_s", 0.0)),
                mean_on_s=float(traffic.get("mean_on_s", 20.0)),
                mean_off_s=float(traffic.get("mean_off_s", 40.0)),
                start_on=bool(traffic.get("start_on", True)),
            )
        return self._build_replay(traffic, label)

    def _build_replay(self, traffic: dict, label: str) -> ReplayTraffic:
        """Replay traffic: load the log, then apply the spec's transforms."""
        if "path" in traffic:
            log = ArrivalLog.load(traffic["path"])
        elif "arrivals" in traffic:
            rows = traffic["arrivals"]
            log = ArrivalLog.from_columns(
                {
                    "timestamp": [r[0] for r in rows],
                    "input_tokens": [r[1] for r in rows],
                    "output_tokens": [r[2] for r in rows],
                    "batch_size": [r[3] if len(r) > 3 else 1 for r in rows],
                }
            )
        else:
            from repro.traces import TraceDataset

            log = ArrivalLog.from_trace(
                TraceDataset.load(traffic["trace"]), llm=traffic.get("llm")
            )
        if traffic.get("tenant") is not None:
            log = log.for_tenant(traffic["tenant"])
        if traffic.get("bootstrap") is not None:
            boot = dict(traffic["bootstrap"])
            _check_keys(boot, {"n", "rate_per_s", "seed"}, "replay bootstrap")
            log = log.bootstrap(
                int(boot["n"]),
                rng=derive_rng(
                    int(boot.get("seed", self.seed)), "scenario-bootstrap", label
                ),
                rate_per_s=boot.get("rate_per_s"),
            )
        if traffic.get("rate_per_s") is not None:
            log = log.warp_to_rate(float(traffic["rate_per_s"]))
        return ReplayTraffic(
            log,
            speedup=float(traffic.get("speedup", 1.0)),
            horizon_s=traffic.get("horizon_s"),
        )

    def _build_router(self, router: str | dict | None) -> Router:
        spec = self.router if router is None else router
        if isinstance(spec, dict):
            kwargs = {k: v for k, v in spec.items() if k != "kind"}
            return ROUTERS[spec["kind"]](**kwargs)
        return ROUTERS[spec]()

    def _default_slo_ms(self) -> float:
        """SLO the admission/threshold sections fall back to.

        The spec-level ``slo_ttft_ms`` (when given) drives shedding and
        threshold scaling too — one number, like the CLI's
        ``--slo-ttft-ms`` — so the fleet protects the SLO it reports on.
        """
        return 2000.0 if self.slo_ttft_ms is None else float(self.slo_ttft_ms)

    def _wrap_admission(self, router: Router, admission: dict | None) -> Router:
        if admission is None:
            return router
        return AdmissionController(
            router,
            slo_p95_ttft_s=float(admission.get("slo_ttft_ms", self._default_slo_ms()))
            / 1e3,
            window_s=float(admission.get("window_s", 30.0)),
            mode=admission.get("mode", "shed"),
            retry_delay_s=float(admission.get("retry_delay_s", 5.0)),
            max_defers=int(admission.get("max_defers", 3)),
        )

    def _build_autoscaler(self, section: dict | None) -> Autoscaler | None:
        if section is None:
            return None
        policy_name = section.get("policy", "threshold")
        if policy_name == "threshold":
            policy = ThresholdPolicy(
                slo_p95_ttft_s=float(section.get("slo_ttft_ms", self._default_slo_ms()))
                / 1e3
            )
        elif policy_name == "target-utilization":
            policy = TargetUtilizationPolicy(target=float(section.get("target", 0.6)))
        elif policy_name == "predictive":
            policy = PredictivePolicy(
                requests_per_pod_per_s=float(
                    section.get("requests_per_pod_per_s", 2.0)
                ),
                horizon_s=float(section.get("cold_start_s", 10.0)),
            )
        else:
            policy = AUTOSCALE_POLICIES[policy_name]()
        return Autoscaler(
            policy,
            AutoscaleConfig(
                decision_interval_s=float(section.get("interval_s", 15.0)),
                min_pods=int(section.get("min_pods", 1)),
                max_pods=int(section.get("max_pods", 16)),
                cold_start_s=float(section.get("cold_start_s", 10.0)),
                metrics_window_s=float(section.get("metrics_window_s", 30.0)),
            ),
        )

    def _build_faults(self, section: dict | None, label: str) -> FaultInjector | None:
        """One seeded fault injector from a ``faults`` section.

        ``None`` when the section is absent or declares no events. The
        victim-pick stream is derived from the section's own ``seed``
        (default: scenario seed) and the fleet/tenant label, so two
        tenants inheriting one top-level section draw independent
        victims while staying reproducible.
        """
        if section is None or not section.get("events"):
            return None
        specs = [_fault_spec(event) for event in section["events"]]
        return FaultInjector(
            specs,
            seed=spawn_seed(
                int(section.get("seed", self.seed)), "scenario-faults", label
            ),
        )

    @staticmethod
    def _zones(section: dict | None) -> int:
        return int(section.get("zones", 1)) if section else 1

    def _deployment(
        self,
        generator,
        llm: str,
        profile: str,
        pods: int,
        max_batch_weight: int,
        n_zones: int = 1,
        fast: bool = True,
    ):
        from repro.cluster.deployment import Deployment
        from repro.hardware.profile import parse_profile
        from repro.models import get_llm

        return Deployment(
            llm=get_llm(llm),
            profile=parse_profile(profile),
            n_pods=pods,
            max_batch_weight=max_batch_weight,
            generator=generator,
            seed=self.seed,
            fast=fast,
            n_zones=n_zones,
        )

    def build_fleet(self, generator=None, fast: bool = True) -> FleetSimulator:
        """The single-tenant form: one ready-to-run fleet simulator.

        ``fast=False`` selects the straight-line golden-oracle event
        loop (bit-identical results; for verification).
        """
        if self.is_cluster:
            raise ValueError(
                f"scenario {self.name!r} declares tenants; build_cluster() "
                "is the entry point for cluster scenarios"
            )
        generator = generator or self.build_generator()
        deployment = self._deployment(
            generator,
            self.llm,
            self.profile,
            self.pods,
            self.max_batch_weight,
            n_zones=self._zones(self.faults),
            fast=fast,
        )
        router = self._wrap_admission(self._build_router(None), self.admission)
        return deployment.fleet(
            self.build_traffic(label=self.name),
            router=router,
            stream_label=self.name,
            autoscaler=self._build_autoscaler(self.autoscaler),
            faults=self._build_faults(self.faults, self.name),
        )

    def build_cluster(self, generator=None, fast: bool = True) -> "ClusterSimulator":
        """The multi-tenant form: tenants contending for one inventory.

        Tenant entries inherit every top-level field they do not
        override (llm, profile, pods, traffic, router, admission,
        autoscaler, slo_ttft_ms, max_batch_weight, faults).
        ``fast=False`` selects the oracle engine/cluster loops
        (bit-identical results; for verification).
        """
        from repro.simulation.cluster import ClusterInventory, ClusterSimulator

        if not self.is_cluster:
            raise ValueError(
                f"scenario {self.name!r} has no tenants; build_fleet() "
                "is the entry point for single-fleet scenarios"
            )
        generator = generator or self.build_generator()
        groups = []
        for tenant in self.tenants:
            fault_section = tenant.get("faults", self.faults)
            deployment = self._deployment(
                generator,
                tenant.get("llm", self.llm),
                tenant.get("profile", self.profile),
                int(tenant.get("pods", self.pods)),
                int(tenant.get("max_batch_weight", self.max_batch_weight)),
                n_zones=self._zones(fault_section),
                fast=fast,
            )
            router = self._wrap_admission(
                self._build_router(tenant.get("router", self.router)),
                tenant.get("admission", self.admission),
            )
            slo_ms = tenant.get("slo_ttft_ms", self.slo_ttft_ms)
            groups.append(
                deployment.tenant_group(
                    tenant["name"],
                    self.build_traffic(
                        tenant.get("traffic", self.traffic), label=tenant["name"]
                    ),
                    router=router,
                    autoscaler=self._build_autoscaler(
                        tenant.get("autoscaler", self.autoscaler)
                    ),
                    slo_p95_ttft_s=None if slo_ms is None else float(slo_ms) / 1e3,
                    faults=self._build_faults(fault_section, tenant["name"]),
                )
            )
        cloud = self.build_cloud()
        return ClusterSimulator(
            groups,
            ClusterInventory(capacity=dict(self.capacity)),
            fast=fast,
            cloud=None if cloud is None else cloud[0],
            burst=None if cloud is None else cloud[1],
        )

    def run(
        self,
        keep_samples: bool = False,
        generator=None,
        fast: bool = True,
    ) -> "FleetResult | ClusterResult":
        """Build and run the scenario; conservation-checked result.

        Returns a :class:`~repro.simulation.fleet.FleetResult` for fleet
        scenarios and a :class:`~repro.simulation.cluster.ClusterResult`
        for cluster scenarios. A pre-fitted workload ``generator`` (for
        callers running many scenarios off one trace collection) and the
        fast/oracle toggle pass straight through to the builders.
        """
        if self.is_cluster:
            result = self.build_cluster(generator=generator, fast=fast).run(
                duration_s=self.duration_s,
                warmup_s=self.warmup_s,
                keep_samples=keep_samples,
            )
        else:
            result = self.build_fleet(generator=generator, fast=fast).run(
                duration_s=self.duration_s,
                warmup_s=self.warmup_s,
                keep_samples=keep_samples,
            )
        result.verify_conservation()
        return result


def load_scenario(path: str) -> ScenarioSpec:
    """Module-level alias for :meth:`ScenarioSpec.load` (CLI entry)."""
    return ScenarioSpec.load(path)
