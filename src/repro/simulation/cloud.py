"""The elastic cloud capacity tier of the cluster co-simulation.

On-prem capacity is one finite :class:`~repro.simulation.cluster.ClusterInventory`;
production fleets *burst*: when a scale-up cannot be filled from owned
GPUs, the shortfall is rented from a priced cloud catalog instead of
queueing on-prem. This module carries the pieces the cluster loop needs:

* a :class:`BurstPolicy` decides, per denied/clipped scale-up, how many
  of the missing pods to rent — bounded by a pod cap and a price cap,
  under one purchasing mode (on-demand / spot / reserved);
* a :class:`CloudLedger` is the rented-capacity counterpart of the
  on-prem inventory: per-GPU-type usage against the catalog's account
  quotas, every change recorded as a :class:`CloudUsageEvent` so mixed
  bills and conservation checks can replay it after the run;
* :func:`spot_preemption_specs` expands a catalog's spot-interruption
  rate into a seeded Poisson schedule of ``"spot-preempt"``
  :class:`~repro.simulation.faults.FaultSpec`\\ s, which flow through the
  ordinary fault-injection path (victims restricted to cloud pods), so
  request conservation holds when a spot pod is reclaimed mid-flight;
* :class:`HybridCapacity` binds a *standalone* fleet to the same
  on-prem-first / cloud-overflow discipline, which is how the elastic
  recommender scores candidates against mixed bills without spinning up
  a whole cluster simulation.

Both cluster loops (fast and oracle) reach capacity only through the
acquire/release closures the simulator installs, so burst decisions are
bit-identical across them by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.pricing import CLOUD_PRICING_MODES, CloudCatalog
from repro.hardware.profile import parse_profile
from repro.simulation.faults import FaultSpec
from repro.simulation.fleet import FleetSimulator
from repro.utils.rng import derive_rng

__all__ = [
    "BurstPolicy",
    "CloudUsageEvent",
    "CloudLedger",
    "HybridCapacity",
    "spot_preemption_specs",
]


@dataclass(frozen=True)
class BurstPolicy:
    """When and how far to burst a denied/clipped scale-up to the cloud.

    ``mode`` picks the purchasing mode for every rental this policy
    makes. ``max_cloud_pods`` caps the pods a tenant may hold in the
    cloud at once (``None`` = unbounded, the account quota still
    applies). ``price_cap_per_pod_hour`` refuses to rent at all when the
    pod-hour price under ``mode`` exceeds it — the "queue on-prem, the
    cloud is too expensive right now" decision.
    """

    mode: str = "on-demand"
    max_cloud_pods: int | None = None
    price_cap_per_pod_hour: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in CLOUD_PRICING_MODES:
            raise ValueError(
                f"unknown cloud pricing mode {self.mode!r}; "
                f"expected one of {', '.join(CLOUD_PRICING_MODES)}"
            )
        if self.max_cloud_pods is not None and self.max_cloud_pods < 0:
            raise ValueError(
                f"max_cloud_pods must be >= 0, got {self.max_cloud_pods}"
            )
        if (
            self.price_cap_per_pod_hour is not None
            and self.price_cap_per_pod_hour < 0
        ):
            raise ValueError(
                f"price_cap_per_pod_hour must be >= 0, "
                f"got {self.price_cap_per_pod_hour}"
            )

    def burst_pods(
        self, shortfall: int, held_cloud_pods: int, pod_price_per_hour: float
    ) -> int:
        """How many of ``shortfall`` missing pods this policy rents.

        ``held_cloud_pods`` is what the tenant already rents (counted
        against ``max_cloud_pods``); ``pod_price_per_hour`` is the
        catalog's pod-hour price under :attr:`mode`, checked against the
        price cap. The account quota is the ledger's business, not the
        policy's — the ledger clips the returned ask further.
        """
        if shortfall <= 0:
            return 0
        if (
            self.price_cap_per_pod_hour is not None
            and pod_price_per_hour > self.price_cap_per_pod_hour
        ):
            return 0
        ask = shortfall
        if self.max_cloud_pods is not None:
            ask = min(ask, max(0, self.max_cloud_pods - held_cloud_pods))
        return ask


@dataclass(frozen=True)
class CloudUsageEvent:
    """One attributed change of rented cloud capacity, on the shared clock.

    The cloud-tier mirror of
    :class:`~repro.simulation.cluster.InventoryEvent`: ``delta`` counts
    GPUs of type ``gpu`` (positive = rented, negative = returned),
    ``mode`` the purchasing mode, and ``reason`` is ``"burst"`` for
    rentals, ``"scale-down"`` for returns from cancelled cold starts and
    retired pods, and ``"spot-preempt"`` when the provider reclaimed the
    instance.
    """

    time_s: float
    tenant: str
    gpu: str
    delta: int
    mode: str
    reason: str


@dataclass
class CloudLedger:
    """Rented capacity, by GPU type, against the catalog's account quotas.

    The elastic counterpart of the on-prem inventory ledger: usage may
    grow without bound for unmetered types, a type with ``quota_gpus``
    set clips every rental at the account cap, and each tenant's
    currently-rented pod count is tracked so burst policies can enforce
    per-tenant caps. ``seed`` drives the spot-preemption schedules
    derived from this ledger's catalog.
    """

    catalog: CloudCatalog
    seed: int = 0
    used: dict[str, int] = field(default_factory=dict)
    events: list[CloudUsageEvent] = field(default_factory=list)
    held: dict[str, int] = field(default_factory=dict)

    def available_gpus(self, gpu_name: str) -> int | None:
        """GPUs of this type still rentable (``None`` = unmetered)."""
        if not self.catalog.offers(gpu_name):
            return 0
        quota = self.catalog.quota_gpus(gpu_name)
        if quota is None:
            return None
        return max(0, quota - self.used.get(gpu_name, 0))

    def fillable_pods(self, profile_name: str) -> int:
        """How many whole pods of ``profile_name`` the quota still fills.

        Unmetered types report a practically-unbounded count; types the
        provider does not rent at all report 0.
        """
        profile = parse_profile(profile_name)
        headroom = self.available_gpus(profile.gpu.name)
        if headroom is None:
            return 1 << 30
        return headroom // profile.count

    def held_pods(self, tenant: str) -> int:
        """Pods this tenant currently rents (all purchasing modes)."""
        return self.held.get(tenant, 0)

    def allocate(
        self,
        profile_name: str,
        pods: int,
        tenant: str,
        time_s: float,
        mode: str,
        reason: str = "burst",
    ) -> None:
        """Rent ``pods`` pods' worth of GPUs (raises past the quota)."""
        profile = parse_profile(profile_name)
        need = profile.count * pods
        headroom = self.available_gpus(profile.gpu.name)
        if headroom is not None and need > headroom:
            raise ValueError(
                f"cloud quota exceeded for {profile.gpu.name}: need {need}, "
                f"quota headroom {headroom}"
            )
        if need:
            self.used[profile.gpu.name] = (
                self.used.get(profile.gpu.name, 0) + need
            )
            self.held[tenant] = self.held.get(tenant, 0) + pods
            self.events.append(
                CloudUsageEvent(
                    time_s, tenant, profile.gpu.name, need, mode, reason
                )
            )

    def release(
        self,
        profile_name: str,
        pods: int,
        tenant: str,
        time_s: float,
        mode: str,
        reason: str = "scale-down",
    ) -> None:
        """Return ``pods`` pods' worth of GPUs (the inverse of allocate)."""
        profile = parse_profile(profile_name)
        need = profile.count * pods
        if self.used.get(profile.gpu.name, 0) < need:
            raise ValueError("returning more cloud GPUs than rented")
        if self.held.get(tenant, 0) < pods:
            raise ValueError(f"tenant {tenant!r} returns pods it never rented")
        if need:
            self.used[profile.gpu.name] -= need
            self.held[tenant] -= pods
            self.events.append(
                CloudUsageEvent(
                    time_s, tenant, profile.gpu.name, -need, mode, reason
                )
            )


def spot_preemption_specs(
    rate_per_hour: float,
    horizon_s: float,
    seed: int,
    *labels: str,
    mode: str = "requeue",
) -> list[FaultSpec]:
    """A seeded Poisson schedule of untargeted ``"spot-preempt"`` faults.

    ``rate_per_hour`` is the catalog's per-instance interruption rate;
    event times are drawn over ``[0, horizon_s)`` from the stream
    ``derive_rng(seed, "spot-preemptions", *labels)``, so the schedule
    is exactly reproducible and independent per (seed, label) — one
    label per tenant keeps tenants' preemption draws uncorrelated.
    Victims resolve at fire time to the tenant's cloud pods only; a
    preemption that fires while no cloud pod is held is recorded as an
    ineffective fault event, exactly like a crash with no in-service
    victim.
    """
    if rate_per_hour < 0:
        raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    if rate_per_hour == 0:
        return []
    rng = derive_rng(seed, "spot-preemptions", *labels)
    rate_per_s = rate_per_hour / 3600.0
    specs: list[FaultSpec] = []
    t = float(rng.exponential(1.0 / rate_per_s))
    while t < horizon_s:
        specs.append(FaultSpec(kind="spot-preempt", time_s=t, mode=mode))
        t += float(rng.exponential(1.0 / rate_per_s))
    return specs


class HybridCapacity:
    """Bind a standalone fleet to on-prem-first / cloud-overflow capacity.

    The single-fleet counterpart of the cluster simulator's burst
    wiring, used by the elastic recommender to score candidates against
    mixed bills: the first ``on_prem_pods`` concurrently-provisioned
    pods are owned hardware, and every pod beyond that is rented from
    ``ledger`` under ``policy`` — or denied, when policy, per-tenant
    cap, or account quota refuse, exactly as a cluster tenant would be
    clipped.
    """

    def __init__(
        self,
        on_prem_pods: int,
        ledger: CloudLedger,
        policy: BurstPolicy,
        profile_name: str,
        tenant: str = "fleet",
    ) -> None:
        if on_prem_pods < 0:
            raise ValueError(f"on_prem_pods must be >= 0, got {on_prem_pods}")
        self.on_prem_pods = int(on_prem_pods)
        self.ledger = ledger
        self.policy = policy
        self.profile_name = profile_name
        self.profile = parse_profile(profile_name)
        self.tenant = tenant
        self._on_prem_used = 0
        self._fleet: FleetSimulator | None = None

    def bind(self, fleet: FleetSimulator) -> None:
        """Install the hybrid acquire/release closures on ``fleet``.

        The fleet's initial pods are seated on-prem; they must fit under
        ``on_prem_pods`` (an initial fleet larger than the owned tier
        would silently start life in the cloud, which no operator
        means).
        """
        if len(fleet.pods) > self.on_prem_pods:
            raise ValueError(
                f"initial fleet of {len(fleet.pods)} pods exceeds the "
                f"{self.on_prem_pods}-pod on-prem tier"
            )
        self._fleet = fleet
        self._on_prem_used = len(fleet.pods)
        fleet.bind_capacity(self._acquire, self._release)

    def _acquire(self, want: int, t: float) -> int:
        fleet = self._fleet
        assert fleet is not None
        grant = min(want, self.on_prem_pods - self._on_prem_used)
        burst = 0
        shortfall = want - grant
        if shortfall > 0 and self.ledger.catalog.offers(self.profile.gpu.name):
            price = self.ledger.catalog.pod_cost(self.profile, self.policy.mode)
            ask = self.policy.burst_pods(
                shortfall, self.ledger.held_pods(self.tenant), price
            )
            burst = min(ask, self.ledger.fillable_pods(self.profile_name))
            if burst > 0:
                fleet.mark_cloud(
                    range(
                        fleet.next_serial + grant,
                        fleet.next_serial + grant + burst,
                    )
                )
                self.ledger.allocate(
                    self.profile_name,
                    burst,
                    tenant=self.tenant,
                    time_s=t,
                    mode=self.policy.mode,
                )
        self._on_prem_used += grant
        return grant + burst

    def _release(
        self,
        pods: int,
        t: float,
        serials: list[int] | None = None,
        reason: str = "scale-down",
    ) -> None:
        fleet = self._fleet
        assert fleet is not None
        cloud_n = 0
        if serials is not None and fleet.cloud_serials:
            cloud_n = sum(1 for s in serials if s in fleet.cloud_serials)
        if cloud_n:
            self.ledger.release(
                self.profile_name,
                cloud_n,
                tenant=self.tenant,
                time_s=t,
                mode=self.policy.mode,
                reason="spot-preempt" if reason == "spot-preempt" else "scale-down",
            )
        self._on_prem_used -= pods - cloud_n
