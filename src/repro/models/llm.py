"""LLM architecture descriptions.

Each LLM is described by the feature set the paper's recommendation tool
consumes (§IV-B1): model type, encoder-decoder vs decoder-only, numbers of
parameters / layers / positions / heads, flash-attention usage, vocabulary
size, relative-attention parameters and training data type — plus the
architectural fields the inference cost model needs (hidden size, KV-head
count, feed-forward size, TGIS tensor-parallel support).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LLMSpec"]

_DTYPE_BYTES = {"float16": 2, "bfloat16": 2, "float32": 4}


@dataclass(frozen=True)
class LLMSpec:
    """Architecture card for one LLM."""

    name: str
    model_type: str  # e.g. "t5", "llama", "gpt_neox", "codegen", "mpt"
    is_encoder_decoder: bool
    n_params_billion: float
    n_layers: int  # decoder layers (enc-dec models also have n_encoder_layers)
    n_encoder_layers: int
    n_heads: int
    n_kv_heads: int  # 1 for multi-query attention (e.g. starcoder)
    d_model: int
    d_ff: int
    n_positions: int
    vocab_size: int
    uses_flash_attention: bool
    relative_attention_max_distance: int  # 0 when absolute/rotary positions
    relative_attention_num_buckets: int
    dtype: str  # training/serving data type
    tgis_tensor_parallel_supported: bool = True

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPE_BYTES:
            raise ValueError(f"unsupported dtype {self.dtype!r} for {self.name}")
        if self.n_params_billion <= 0:
            raise ValueError(f"n_params must be positive for {self.name}")
        if self.n_kv_heads < 1 or self.n_kv_heads > self.n_heads:
            raise ValueError(f"invalid n_kv_heads for {self.name}")

    # ---- memory model -------------------------------------------------

    @property
    def bytes_per_param(self) -> int:
        return _DTYPE_BYTES[self.dtype]

    @property
    def weights_bytes(self) -> float:
        """Bytes needed to hold the model weights in serving precision."""
        return self.n_params_billion * 1e9 * self.bytes_per_param

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes stored per sequence token.

        K and V per decoder layer, over the model's KV heads (multi-query
        models such as starcoder store a single KV head, which is why they
        sustain much larger batch weights on the same GPU).
        """
        return 2.0 * self.n_layers * self.n_kv_heads * self.head_dim * self.bytes_per_param

    @property
    def flops_per_token(self) -> float:
        """Approximate forward-pass FLOPs per processed token (2 * params)."""
        return 2.0 * self.n_params_billion * 1e9

    # ---- feature engineering ------------------------------------------

    def feature_dict(self) -> dict[str, float]:
        """Numeric features describing the LLM (paper §IV-B1)."""
        return {
            "llm_n_params_billion": self.n_params_billion,
            "llm_is_encoder_decoder": 1.0 if self.is_encoder_decoder else 0.0,
            "llm_n_layers": float(self.n_layers),
            "llm_n_encoder_layers": float(self.n_encoder_layers),
            "llm_n_heads": float(self.n_heads),
            "llm_n_kv_heads": float(self.n_kv_heads),
            "llm_d_model": float(self.d_model),
            "llm_d_ff": float(self.d_ff),
            "llm_n_positions": float(self.n_positions),
            "llm_vocab_size": float(self.vocab_size),
            "llm_flash_attention": 1.0 if self.uses_flash_attention else 0.0,
            "llm_rel_attn_max_distance": float(self.relative_attention_max_distance),
            "llm_rel_attn_num_buckets": float(self.relative_attention_num_buckets),
            "llm_dtype_bytes": float(self.bytes_per_param),
            "llm_kv_bytes_per_token": self.kv_bytes_per_token,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
