"""LLM architecture catalog (the 10 models of the paper's Table III)."""

from repro.models.llm import LLMSpec
from repro.models.catalog import LLM_CATALOG, get_llm, list_llms

__all__ = ["LLMSpec", "LLM_CATALOG", "get_llm", "list_llms"]
