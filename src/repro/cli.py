"""Command-line interface: ``repro-pilot``.

Subcommands mirror the two roles the paper defines (§I):

* cluster administrator (offline):
  - ``traces``        synthesize a production-like trace collection;
  - ``characterize``  run the characterization campaign, save the dataset;
* cluster user (online):
  - ``recommend``     recommend (GPU profile, pods) for an unseen LLM;
  - ``evaluate``      leave-one-LLM-out Fig 8-style method comparison;
* utility:
  - ``info``          workload-generator and catalog statistics;
  - ``simulate``      fleet-level what-if simulation: N pods on a shared
    virtual clock under closed-loop / Poisson / diurnal / bursty traffic
    — or a recorded arrival log replayed via ``--traffic replay`` — with
    a pluggable front-end router; ``--scenario FILE`` instead runs a
    declarative scenario spec (see ``docs/scenarios.md``) end to end;
  - ``autoscale``     the same fleet under an autoscaling policy
    (threshold / target-utilization / predictive) and optional SLO-aware
    admission control, reporting the scale-event log and pod-hour bill;
  - ``cluster-sim``   multi-tenant co-simulation: N tenants, each with
    its own traffic, router/admission and autoscaler, contending for one
    finite GPU inventory on one shared virtual clock — reports per-tenant
    outcomes, denied/clipped scale-ups and per-GPU-type occupancy;
    accepts ``--scenario FILE`` for declarative cluster specs;
  - ``report``        render any ``--json`` result file — or a scenario
    run live — into one self-contained HTML report (inline SVG charts,
    no network references); ``simulate``, ``cluster-sim`` and ``report``
    also take ``--scenario-name`` to run a curated scenario from the
    repository's ``scenarios/`` library by name;
  - ``recommend-elastic``  autoscaler-in-the-loop sizing: sweep
    (policy, min_pods, max_pods) candidates under a traffic model, score
    each by pod-second bill + SLO penalty, and report the trade curve,
    the chosen config and its savings vs the peak-sized static fleet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.characterization import (
    CharacterizationConfig,
    CharacterizationTool,
    PerfDataset,
)
from repro.hardware import (
    CLOUD_PRICING_MODES,
    aws_like_cloud_catalog,
    aws_like_pricing,
    default_profiles,
    list_gpus,
    parse_profile,
)
from repro.models import LLM_CATALOG, get_llm, list_llms
from repro.recommendation import (
    CostObjective,
    ElasticRecommender,
    GPURecommendationTool,
    LatencyConstraints,
    LinearSLOPenalty,
    PerfModelHyperparams,
    StepSLOPenalty,
)
from repro.cluster import Deployment
from repro.recommendation.pilot import LLMPilotRecommender
from repro.report import render_report
from repro.simulation import (
    AUTOSCALE_POLICIES,
    ROUTERS,
    AdmissionController,
    ArrivalLog,
    Autoscaler,
    AutoscaleConfig,
    BurstPolicy,
    BurstyTraffic,
    ClosedLoopTraffic,
    CloudLedger,
    ClusterInventory,
    ClusterSimulator,
    DiurnalTraffic,
    FaultInjector,
    FaultSpec,
    NoOpPolicy,
    PoissonTraffic,
    PredictivePolicy,
    ReplayTraffic,
    ScenarioSpec,
    TargetUtilizationPolicy,
    TenantGroup,
    ThresholdPolicy,
    scenario_path,
    to_json,
)
from repro.traces import TraceConfig, TraceDataset, TraceSynthesizer
from repro.utils.parallel import fork_map
from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.tables import format_table
from repro.workload import WorkloadGenerator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pilot",
        description="LLM-Pilot reproduction: characterize and recommend.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_traces = sub.add_parser("traces", help="synthesize a trace collection")
    p_traces.add_argument("--requests", type=int, default=100_000)
    p_traces.add_argument("--seed", type=int, default=0)
    p_traces.add_argument("--out", required=True, help="output .npz path")

    p_char = sub.add_parser("characterize", help="run a characterization campaign")
    p_char.add_argument("--traces", help=".npz trace collection (else synthesized)")
    p_char.add_argument("--requests", type=int, default=100_000)
    p_char.add_argument(
        "--llm",
        action="append",
        dest="llms",
        help="LLM name (repeatable; default: full catalog)",
    )
    p_char.add_argument("--duration", type=float, default=120.0)
    p_char.add_argument("--seed", type=int, default=0)
    p_char.add_argument("--out", required=True, help="output dataset .npz path")

    p_rec = sub.add_parser("recommend", help="recommend hardware for an unseen LLM")
    p_rec.add_argument("--dataset", required=True, help="characterization .npz")
    p_rec.add_argument("--llm", required=True)
    p_rec.add_argument("--users", type=int, default=200)
    p_rec.add_argument("--nttft-ms", type=float, default=100.0)
    p_rec.add_argument("--itl-ms", type=float, default=50.0)
    p_rec.add_argument("--requests", type=int, default=100_000)
    p_rec.add_argument("--seed", type=int, default=0)
    p_rec.add_argument("--tune", action="store_true", help="tune HPs (slow)")

    p_info = sub.add_parser("info", help="catalog and generator statistics")
    p_info.add_argument("--requests", type=int, default=50_000)
    p_info.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser("simulate", help="fleet-level traffic simulation")
    p_sim.add_argument(
        "--scenario",
        help="declarative scenario spec (.json/.yaml); overrides other flags",
    )
    p_sim.add_argument(
        "--scenario-name",
        metavar="NAME",
        help="run a curated scenario from the repository's scenarios/ "
        "library by name (see docs/scenarios.md)",
    )
    _add_fleet_args(p_sim)
    _add_fault_args(p_sim)
    _add_json_arg(p_sim)

    p_auto = sub.add_parser(
        "autoscale", help="elastic fleet simulation under a scaling policy"
    )
    _add_fleet_args(p_auto)
    _add_policy_args(p_auto)
    _add_fault_args(p_auto)
    _add_json_arg(p_auto)

    p_cluster = sub.add_parser(
        "cluster-sim",
        help="multi-tenant co-simulation on a finite GPU inventory",
    )
    p_cluster.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="FILE",
        help="declarative cluster scenario spec (.json/.yaml); replaces "
        "--tenant/--capacity; repeatable — several scenarios run as a "
        "batch (see --jobs)",
    )
    p_cluster.add_argument(
        "--scenario-name",
        action="append",
        dest="scenario_names",
        metavar="NAME",
        help="curated scenario from the scenarios/ library by name "
        "(repeatable; appended to --scenario files as one batch)",
    )
    p_cluster.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for a multi-scenario batch; results are "
        "printed in scenario order and identical to --jobs 1",
    )
    p_cluster.add_argument(
        "--tenant",
        action="append",
        dest="tenants",
        metavar="NAME:LLM:PROFILE:PODS:TRAFFIC:PARAM",
        help=(
            "one tenant (repeatable), e.g. "
            "'chat:Llama-2-13b:1xA100-40GB:2:poisson:2.0'; TRAFFIC is "
            "closed/poisson/diurnal/bursty, PARAM the user count (closed) "
            "or arrival rate/s"
        ),
    )
    p_cluster.add_argument(
        "--capacity",
        action="append",
        dest="capacity",
        metavar="GPU=N",
        help="GPU inventory (repeatable), e.g. 'A100-40GB=8'",
    )
    _add_policy_args(p_cluster, allow_none=True)
    p_cluster.add_argument("--router", choices=sorted(ROUTERS), default="least-loaded")
    p_cluster.add_argument("--max-batch-weight", type=int, default=12_000)
    _add_shape_args(p_cluster)
    p_cluster.add_argument("--duration", type=float, default=120.0)
    p_cluster.add_argument("--warmup", type=float, default=0.0)
    p_cluster.add_argument(
        "--no-fast-cluster",
        action="store_true",
        help="run the O(tenants)-scan oracle cluster loop instead of the "
        "heap-frontier fast path (bit-identical; for verification)",
    )
    _add_workload_args(p_cluster)
    _add_fault_args(p_cluster)
    p_cluster.add_argument(
        "--cloud",
        action="store_true",
        help="enable the elastic cloud capacity tier: scale-ups the "
        "inventory denies or clips burst into a priced cloud catalog "
        "instead of queueing on-prem",
    )
    _add_cloud_args(p_cluster)
    p_cluster.add_argument(
        "--cloud-spot-rate",
        type=float,
        default=0.05,
        metavar="PER_HOUR",
        help="spot-interruption rate per rented instance-hour (spot mode "
        "injects seeded spot-preempt faults at this rate)",
    )
    p_cluster.add_argument(
        "--cloud-seed",
        type=int,
        default=0,
        help="seed for the cloud ledger's spot-preemption schedules",
    )
    _add_json_arg(p_cluster)

    p_report = sub.add_parser(
        "report",
        help="render a simulation result to a self-contained HTML report",
    )
    p_report.add_argument(
        "input",
        nargs="?",
        metavar="RESULT.json",
        help="a JSON result file written by simulate/autoscale/cluster-sim "
        "--json (omit to run a scenario live instead)",
    )
    p_report.add_argument(
        "--scenario",
        metavar="FILE",
        help="run this scenario spec live and report its result",
    )
    p_report.add_argument(
        "--scenario-name",
        metavar="NAME",
        help="run a curated scenario from the scenarios/ library by name",
    )
    p_report.add_argument(
        "--out",
        metavar="FILE.html",
        help="output path (default: derived from the input file or "
        "scenario name, in the working directory)",
    )
    p_report.add_argument("--title", help="report title (default: derived)")

    p_elastic = sub.add_parser(
        "recommend-elastic",
        help="autoscaler-in-the-loop (policy, min_pods, max_pods) recommendation",
    )
    _add_fleet_args(p_elastic, pods=False)
    p_elastic.add_argument(
        "--slo-ttft-ms",
        type=float,
        default=10_000.0,
        help="end-to-end p95 TTFT SLO for the whole run, ms",
    )
    p_elastic.add_argument(
        "--penalty",
        choices=["linear", "step"],
        default="linear",
        help="SLO-penalty shape on the run's p95 TTFT",
    )
    p_elastic.add_argument(
        "--penalty-per-hour",
        type=float,
        default=50.0,
        help="$/h charged by the SLO penalty when breached",
    )
    p_elastic.add_argument(
        "--penalty-per-shed",
        type=float,
        default=0.0,
        help="$ charged per request rejected by admission control",
    )
    p_elastic.add_argument(
        "--static-pods",
        type=int,
        default=0,
        help="peak-sized static baseline (0: find it by simulation)",
    )
    p_elastic.add_argument(
        "--search-max",
        type=int,
        default=8,
        help="largest static fleet the sizing ladder tries",
    )
    p_elastic.add_argument(
        "--headroom",
        type=int,
        default=2,
        help="candidate max_pods above the static baseline",
    )
    _add_autoscaler_mechanics(p_elastic)
    p_elastic.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the candidate sweep; the "
        "recommendation is byte-identical to --jobs 1",
    )
    p_elastic.add_argument(
        "--no-arrival-cache",
        action="store_true",
        help="regenerate the seeded arrival stream per candidate instead "
        "of recording it once and replaying it (bit-identical; for "
        "verification)",
    )
    p_elastic.add_argument(
        "--prune",
        action="store_true",
        help="skip candidates whose compute-bill floor already exceeds an "
        "SLO-meeting incumbent's total cost (each skip is logged and "
        "reported)",
    )
    p_elastic.add_argument(
        "--on-prem-pods",
        type=int,
        default=0,
        metavar="N",
        help="hybrid sweep: the first N provisioned pods are owned "
        "hardware, overflow rents from the cloud catalog and candidates "
        "are scored against the mixed bill (0: purely on-prem)",
    )
    _add_cloud_args(p_elastic)
    _add_json_arg(p_elastic)

    return parser


def _add_fleet_args(p: argparse.ArgumentParser, pods: bool = True) -> None:
    """Flags shared by the fleet-simulation subcommands.

    ``recommend-elastic`` opts out of ``--pods``: the sweep itself owns
    the pod count per candidate (``--static-pods`` pins the baseline),
    so accepting the flag would silently ignore it.
    """
    p.add_argument("--llm", default="Llama-2-13b")
    p.add_argument("--profile", default="1xA100-40GB")
    if pods:
        p.add_argument("--pods", type=int, default=2)
    p.add_argument("--max-batch-weight", type=int, default=12_000)
    p.add_argument("--router", choices=sorted(ROUTERS), default="least-loaded")
    p.add_argument(
        "--traffic",
        choices=["closed", "poisson", "diurnal", "bursty", "replay"],
        default="poisson",
    )
    p.add_argument("--users", type=int, default=16, help="closed-loop population")
    p.add_argument(
        "--rate",
        type=float,
        default=2.0,
        help="arrival rate/s (base rate for diurnal, burst rate for bursty)",
    )
    _add_shape_args(p)
    p.add_argument(
        "--arrivals",
        help="recorded arrival log (.csv/.jsonl) for --traffic replay",
    )
    p.add_argument(
        "--speedup",
        type=float,
        default=1.0,
        help="replay time-warp factor (>1 compresses the log)",
    )
    p.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="clip the replayed log to its first HORIZON seconds",
    )
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--warmup", type=float, default=0.0)
    _add_workload_args(p)


def _add_shape_args(p: argparse.ArgumentParser) -> None:
    """Shape knobs of the non-stationary synthetic traffic models."""
    p.add_argument("--amplitude", type=float, default=0.8, help="diurnal swing")
    p.add_argument("--period", type=float, default=300.0, help="diurnal period s")
    p.add_argument("--mean-on", type=float, default=20.0, help="bursty ON dwell s")
    p.add_argument("--mean-off", type=float, default=40.0, help="bursty OFF dwell s")


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    """Where synthetic request bodies come from (shared by every sim)."""
    p.add_argument("--traces", help=".npz trace collection (else synthesized)")
    p.add_argument("--requests", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=0)


def _add_autoscaler_mechanics(p: argparse.ArgumentParser) -> None:
    """Timing knobs every autoscaled simulation shares."""
    p.add_argument(
        "--interval", type=float, default=15.0, help="decision interval s"
    )
    p.add_argument(
        "--cold-start", type=float, default=10.0, help="pod cold-start delay s"
    )
    p.add_argument(
        "--metrics-window",
        type=float,
        default=30.0,
        help="trailing window for windowed tails and arrival rates, s",
    )


def _add_policy_args(p: argparse.ArgumentParser, allow_none: bool = False) -> None:
    """Autoscaling policy + admission flags (autoscale, cluster-sim)."""
    p.add_argument(
        "--policy",
        choices=(
            ["none", *sorted(AUTOSCALE_POLICIES)]
            if allow_none
            else sorted(AUTOSCALE_POLICIES)
        ),
        default="threshold",
        help=(
            "per-tenant autoscaling policy ('none': static fleets)"
            if allow_none
            else "autoscaling policy"
        ),
    )
    p.add_argument("--min-pods", type=int, default=1)
    p.add_argument("--max-pods", type=int, default=16)
    _add_autoscaler_mechanics(p)
    p.add_argument(
        "--slo-ttft-ms",
        type=float,
        default=2000.0,
        help="p95 TTFT target for the threshold policy and admission control",
    )
    p.add_argument(
        "--target-util",
        type=float,
        default=0.6,
        help="batch-weight utilization target (target-utilization policy)",
    )
    p.add_argument(
        "--pod-rate",
        type=float,
        default=2.0,
        help="per-pod request capacity /s (predictive policy)",
    )
    p.add_argument(
        "--admission",
        choices=["off", "shed", "defer"],
        default="off",
        help="SLO-aware admission control in front of the router",
    )


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    """Quick fault-injection flags (the declarative form lives in
    scenario files; combining both is rejected at runtime)."""
    p.add_argument(
        "--fault",
        action="append",
        dest="faults",
        metavar="KIND@TIME[:K=V,...]",
        help="inject one fault (repeatable): KIND is crash / slowdown / "
        "zone-outage / spot-preempt, TIME is seconds into the run; "
        "options after ':' "
        "are comma-separated key=value pairs from pod, zone, mode "
        "(requeue/lose), restart, duration, factor — e.g. "
        "'crash@30:restart=10', 'slowdown@20:duration=30,factor=4', "
        "'zone-outage@60:zone=zone-1,restart=15'",
    )
    p.add_argument(
        "--zones",
        type=int,
        default=1,
        help="spread pods round-robin over N availability zones",
    )


def _add_cloud_args(p: argparse.ArgumentParser) -> None:
    """Cloud-tier flags shared by cluster-sim and recommend-elastic.

    (``--fault spot-preempt@T`` rides the ordinary ``--fault`` flag.)
    """
    p.add_argument(
        "--cloud-mode",
        choices=list(CLOUD_PRICING_MODES),
        default="on-demand",
        help="purchasing mode for every cloud rental",
    )
    p.add_argument(
        "--cloud-quota",
        action="append",
        dest="cloud_quota",
        metavar="GPU=N",
        help="account quota in GPUs for one cloud instance type "
        "(repeatable; unlisted types are unmetered)",
    )
    p.add_argument(
        "--max-cloud-pods",
        type=int,
        default=None,
        metavar="N",
        help="cap on the cloud pods one tenant may hold at once",
    )


def _parse_cloud_quota(items) -> dict[str, int] | None:
    if not items:
        return None
    quota: dict[str, int] = {}
    for item in items:
        gpu, _, count = item.partition("=")
        if not count or not count.lstrip("-").isdigit():
            raise ValueError(f"cloud quota spec must be GPU=N, got {item!r}")
        quota[gpu] = int(count)
    return quota


def _add_json_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )


def _load_or_make_traces(args) -> TraceDataset:
    if getattr(args, "traces", None):
        return TraceDataset.load(args.traces)
    config = TraceConfig(n_requests=args.requests)
    return TraceSynthesizer(config=config, seed=args.seed).generate()


def _cmd_traces(args) -> int:
    config = TraceConfig(n_requests=args.requests)
    traces = TraceSynthesizer(config=config, seed=args.seed).generate()
    traces.save(args.out)
    s = traces.summary()
    print(
        f"Wrote {s['n_requests']:,} requests ({s['n_users']:,} users, "
        f"{s['n_llms']} LLMs, {s['time_period_months']:.1f} months) to {args.out}"
    )
    return 0


def _cmd_characterize(args) -> int:
    traces = _load_or_make_traces(args)
    generator = WorkloadGenerator.fit(traces)
    llm_names = args.llms or list_llms()
    try:
        llms = [get_llm(name) for name in llm_names]
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tool = CharacterizationTool(
        generator,
        CharacterizationConfig(duration_s=args.duration, seed=args.seed),
    )
    outcome = tool.run(llms)
    outcome.dataset.save(args.out)
    print(
        f"Characterized {len(outcome.tuned_weights)} feasible pairs "
        f"({len(outcome.dataset)} measurements) -> {args.out}; "
        f"estimated cluster overhead {outcome.total_overhead_s / 3600:.1f}h "
        "(parallelized)"
    )
    return 0


def _cmd_recommend(args) -> int:
    dataset = PerfDataset.load(args.dataset)
    try:
        llm = get_llm(args.llm)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.llm in dataset.llms():
        dataset = dataset.exclude_llm(args.llm)
        print(f"note: excluded {args.llm}'s own rows from the training data")
    if not dataset.llms():
        print("error: no training LLMs left in the dataset", file=sys.stderr)
        return 2
    constraints = LatencyConstraints(
        nttft_s=args.nttft_ms / 1e3, itl_s=args.itl_ms / 1e3
    )
    traces = _load_or_make_traces(args)
    generator = WorkloadGenerator.fit(traces)

    pilot = LLMPilotRecommender(
        constraints=constraints,
        hyperparams=PerfModelHyperparams(),
        tune=args.tune,
    )
    pilot.fit(dataset, dict(LLM_CATALOG))
    tool = GPURecommendationTool(
        perf_model=pilot.model_,
        pricing=aws_like_pricing(),
        constraints=constraints,
        max_request_weight=generator.max_request_weight(),
    )
    rec = tool.recommend(llm, default_profiles(), total_users=args.users)
    rows = [
        [a.profile, a.umax, a.n_pods, a.total_cost]
        for a in sorted(rec.assessments, key=lambda a: a.total_cost)
    ]
    print(
        format_table(
            ["profile", "pred. umax", "pods", "$/h"],
            rows,
            floatfmt=".2f",
            title=(
                f"Assessments for {llm.name} (U={args.users}, "
                f"nTTFT<={args.nttft_ms:.0f}ms, ITL<={args.itl_ms:.0f}ms):"
            ),
        )
    )
    if rec.feasible:
        print(
            f"Recommendation: {rec.n_pods} pod(s) on {rec.profile} "
            f"(${rec.total_cost:.2f}/h)"
        )
        return 0
    print("No profile satisfies the constraints.")
    return 1


def _cmd_info(args) -> int:
    config = TraceConfig(n_requests=args.requests)
    traces = TraceSynthesizer(config=config, seed=args.seed).generate()
    generator = WorkloadGenerator.fit(traces)
    model = generator.model
    print(f"LLM catalog ({len(list_llms())}): " + ", ".join(list_llms()))
    print(f"GPU types ({len(list_gpus())}): " + ", ".join(list_gpus()))
    print(f"GPU profiles: {len(default_profiles())}")
    print(
        f"Workload generator: {model.n_nonempty_bins:,} joint bins of "
        f"{model.n_theoretical_bins:.3g} possible "
        f"({generator.nbytes() / 1e6:.2f} MB), "
        f"max request weight {generator.max_request_weight():,} tokens"
    )
    sample = model.sample(10_000, rng=0)
    print(
        "Sampled request means: "
        f"input {np.mean(sample['input_tokens']):.0f}, "
        f"output {np.mean(sample['output_tokens']):.0f} tokens, "
        f"batch {np.mean(sample['batch_size']):.2f}"
    )
    return 0


def _build_traffic(kind: str, param, rng, args):
    """One traffic model; ``param`` is the user count (closed), the
    arrival-log path (replay) or the rate/s (everything else)."""
    if kind == "closed":
        return ClosedLoopTraffic(int(param))
    if kind == "poisson":
        return PoissonTraffic(float(param), rng=rng)
    if kind == "diurnal":
        return DiurnalTraffic(
            float(param), rng=rng, amplitude=args.amplitude, period_s=args.period
        )
    if kind == "bursty":
        return BurstyTraffic(
            float(param), rng=rng, mean_on_s=args.mean_on, mean_off_s=args.mean_off
        )
    if kind == "replay":
        if param is None or param == "":
            raise ValueError("--traffic replay needs --arrivals FILE")
        log = param if isinstance(param, ArrivalLog) else ArrivalLog.load(str(param))
        return ReplayTraffic(
            log,
            speedup=getattr(args, "speedup", 1.0),
            horizon_s=getattr(args, "horizon", None),
        )
    raise ValueError(f"unknown traffic kind {kind!r}")


def _traffic_param(args):
    """The positional knob of the selected traffic kind."""
    if args.traffic == "closed":
        return args.users
    if args.traffic == "replay":
        return args.arrivals
    return args.rate


def _make_traffic(args):
    rng = derive_rng(args.seed, "sim-traffic", args.traffic)
    return _build_traffic(args.traffic, _traffic_param(args), rng, args)


_FAULT_OPTIONS = {"pod", "zone", "mode", "restart", "duration", "factor"}


def _parse_fault(text: str) -> FaultSpec:
    """``--fault KIND@TIME[:key=value,...]`` -> a validated FaultSpec."""
    head, _, opts = text.partition(":")
    kind, at, time_s = head.partition("@")
    if not at or not kind or not time_s:
        raise ValueError(
            f"fault spec must be KIND@TIME[:key=value,...], got {text!r}"
        )
    kwargs = {}
    for item in opts.split(",") if opts else []:
        key, eq, value = item.partition("=")
        if not eq or not key:
            raise ValueError(f"fault option must be key=value, got {item!r}")
        kwargs[key] = value
    unknown = set(kwargs) - _FAULT_OPTIONS
    if unknown:
        raise ValueError(
            f"unknown fault option(s) in {text!r}: {sorted(unknown)}; "
            f"allowed: {sorted(_FAULT_OPTIONS)}"
        )
    return FaultSpec(
        kind=kind,
        time_s=float(time_s),
        pod=int(kwargs["pod"]) if "pod" in kwargs else None,
        zone=kwargs.get("zone"),
        mode=kwargs.get("mode", "requeue"),
        restart_delay_s=float(kwargs["restart"]) if "restart" in kwargs else None,
        duration_s=float(kwargs["duration"]) if "duration" in kwargs else None,
        factor=float(kwargs["factor"]) if "factor" in kwargs else None,
    )


def _make_faults(args, label: object) -> FaultInjector | None:
    """One injector from the ``--fault`` flags (None without any).

    Seeded per fleet/tenant label so cluster tenants sharing one flag
    set draw independent, reproducible victims — mirroring how scenario
    files seed their injectors.
    """
    if not args.faults:
        return None
    specs = [_parse_fault(text) for text in args.faults]
    return FaultInjector(specs, seed=spawn_seed(args.seed, "cli-faults", label))


def _reject_faults_with_scenario(args) -> None:
    if args.faults or args.zones != 1:
        raise ValueError(
            "--fault/--zones configure the flag-built fleet; a --scenario "
            "file declares faults in its own 'faults' section"
        )


def _cmd_simulate(args) -> int:
    try:
        if args.scenario_name:
            if args.scenario:
                raise ValueError(
                    "--scenario and --scenario-name are mutually exclusive"
                )
            args.scenario = str(scenario_path(args.scenario_name))
        if args.scenario:
            # Building (spec parsing, unknown LLM/profile, missing log
            # files) is user input and belongs inside the error handler;
            # running and the conservation check happen after it, so a
            # simulator bug surfaces as a traceback, not "error:".
            _reject_faults_with_scenario(args)
            spec = ScenarioSpec.load(args.scenario)
            if spec.is_cluster:
                raise ValueError(
                    f"scenario {spec.name!r} declares tenants; run it with "
                    "cluster-sim --scenario"
                )
            fleet = spec.build_fleet()
            label, pods = spec.llm, spec.pods
            profile_name = spec.profile
        else:
            traces = _load_or_make_traces(args)
            generator = WorkloadGenerator.fit(traces)
            llm = get_llm(args.llm)
            profile = parse_profile(args.profile)
            deployment = Deployment(
                llm=llm,
                profile=profile,
                n_pods=args.pods,
                max_batch_weight=args.max_batch_weight,
                generator=generator,
                seed=args.seed,
                n_zones=args.zones,
            )
            res = deployment.simulate(
                _make_traffic(args),
                duration_s=args.duration,
                router=ROUTERS[args.router](),
                warmup_s=args.warmup,
                stream_label=args.traffic,
                faults=_make_faults(args, args.traffic),
            )
            label, pods = llm.name, args.pods
            profile_name = profile.name
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.scenario:
        res = fleet.run(
            duration_s=spec.duration_s, warmup_s=spec.warmup_s, keep_samples=True
        )
        # A conservation violation is a simulator bug and should surface
        # as a traceback, not "error:".
        res.verify_conservation()
    if args.json:
        print(to_json(res))
        return 0
    rows = [
        [
            p.pod,
            p.arrivals_routed,
            p.requests_completed,
            p.tokens_generated,
            p.throughput_tokens_per_s,
            p.ttft.median_s,
            p.itl.median_s,
            p.queue_depth_end,
        ]
        for p in res.per_pod
    ]
    print(
        format_table(
            [
                "pod",
                "arrivals",
                "done",
                "tokens",
                "tok/s",
                "ttft p50",
                "itl p50",
                "queue",
            ],
            rows,
            floatfmt=".3f",
            title=(
                f"{label} on {pods}x {profile_name} — "
                f"{res.traffic} traffic, {res.router} routing, "
                f"{res.duration_s:.0f}s window:"
            ),
        )
    )
    print(
        f"Fleet: {res.arrivals} arrivals, {res.requests_completed} completed, "
        f"{res.throughput_tokens_per_s:.1f} tok/s | "
        f"TTFT p50/p95/p99 {res.ttft.median_s:.3f}/{res.ttft.p95_s:.3f}/"
        f"{res.ttft.p99_s:.3f}s | ITL p50/p95/p99 {res.itl.median_s:.4f}/"
        f"{res.itl.p95_s:.4f}/{res.itl.p99_s:.4f}s"
    )
    _print_fault_summary(res)
    return 0


def _print_fault_summary(res) -> None:
    if not res.fault_events:
        return
    shown = ", ".join(
        f"{e.kind}@{e.time_s:.0f}s" for e in res.fault_events[:6]
    ) + (", ..." if len(res.fault_events) > 6 else "")
    print(
        f"Faults: {len(res.fault_events)} event(s) [{shown}] | "
        f"{res.requeued} requests requeued, {res.lost} lost"
    )


def _make_policy(args):
    if args.policy == "threshold":
        return ThresholdPolicy(slo_p95_ttft_s=args.slo_ttft_ms / 1e3)
    if args.policy == "target-utilization":
        return TargetUtilizationPolicy(target=args.target_util)
    if args.policy == "predictive":
        return PredictivePolicy(
            requests_per_pod_per_s=args.pod_rate, horizon_s=args.cold_start
        )
    return NoOpPolicy()


def _cmd_autoscale(args) -> int:
    traces = _load_or_make_traces(args)
    generator = WorkloadGenerator.fit(traces)
    try:
        llm = get_llm(args.llm)
        profile = parse_profile(args.profile)
        deployment = Deployment(
            llm=llm,
            profile=profile,
            n_pods=args.pods,
            max_batch_weight=args.max_batch_weight,
            generator=generator,
            seed=args.seed,
            n_zones=args.zones,
        )
        autoscaler = Autoscaler(
            _make_policy(args),
            AutoscaleConfig(
                decision_interval_s=args.interval,
                min_pods=args.min_pods,
                max_pods=args.max_pods,
                cold_start_s=args.cold_start,
                metrics_window_s=args.metrics_window,
            ),
        )
        router = ROUTERS[args.router]()
        if args.admission != "off":
            router = AdmissionController(
                router,
                slo_p95_ttft_s=args.slo_ttft_ms / 1e3,
                window_s=args.metrics_window,
                mode=args.admission,
            )
        res = deployment.simulate(
            _make_traffic(args),
            duration_s=args.duration,
            router=router,
            warmup_s=args.warmup,
            stream_label=args.traffic,
            autoscaler=autoscaler,
            faults=_make_faults(args, args.traffic),
        )
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Outside the user-input error handler: a conservation violation is
    # a simulator bug and should surface as a traceback, not "error:".
    res.verify_conservation()
    if args.json:
        print(to_json(res, slo_p95_ttft_s=args.slo_ttft_ms / 1e3))
        return 0
    if res.scale_events:
        rows = [
            [f"{e.time_s:.0f}", e.direction, e.from_pods, e.to_pods, e.reason]
            for e in res.scale_events
        ]
        print(
            format_table(
                ["t(s)", "dir", "from", "to", "reason"],
                rows,
                title=f"Scale events ({autoscaler.policy.name} policy):",
            )
        )
    else:
        print(f"No scale events ({autoscaler.policy.name} policy).")
    states = [p.state for p in res.per_pod]
    print(
        f"\n{llm.name} on {profile.name} — {res.traffic} traffic, "
        f"{res.router} routing, {res.duration_s:.0f}s window:\n"
        f"  pods: {args.pods} initial -> {res.n_pods} serving at end "
        f"({len(states)} provisioned overall, "
        f"{states.count('retired')} retired, "
        f"{states.count('draining')} draining); "
        f"{res.pod_seconds:.0f} pod-seconds billed\n"
        f"  arrivals {res.arrivals}: {res.admitted} admitted, {res.shed} shed"
        + (f", {res.deferrals} deferrals" if res.deferrals else "")
        + f"\n  completed {res.requests_completed}, "
        f"{res.throughput_tokens_per_s:.1f} tok/s | "
        f"TTFT p50/p95/p99 {res.ttft.median_s:.3f}/{res.ttft.p95_s:.3f}/"
        f"{res.ttft.p99_s:.3f}s | ITL p95 {res.itl.p95_s:.4f}s"
    )
    _print_fault_summary(res)
    recovery = res.recovery_time_s(args.slo_ttft_ms / 1e3)
    if recovery is not None:
        print(
            "  recovery after worst disruption: "
            + (f"{recovery:.0f}s" if np.isfinite(recovery) else "never (p95 "
               "did not re-enter the SLO)")
        )
    return 0


def _parse_tenant_group(spec: str, args, generator) -> TenantGroup:
    parts = spec.split(":")
    if len(parts) != 6:
        raise ValueError(
            f"tenant spec must be NAME:LLM:PROFILE:PODS:TRAFFIC:PARAM, got {spec!r}"
        )
    name, llm_name, profile_name, pods, kind, param = parts
    deployment = Deployment(
        llm=get_llm(llm_name),
        profile=parse_profile(profile_name),
        n_pods=int(pods),
        max_batch_weight=args.max_batch_weight,
        generator=generator,
        seed=args.seed,
        n_zones=args.zones,
    )
    router = ROUTERS[args.router]()
    if args.admission != "off":
        router = AdmissionController(
            router,
            slo_p95_ttft_s=args.slo_ttft_ms / 1e3,
            window_s=args.metrics_window,
            mode=args.admission,
        )
    autoscaler = None
    if args.policy != "none":
        autoscaler = Autoscaler(
            _make_policy(args),
            AutoscaleConfig(
                decision_interval_s=args.interval,
                min_pods=args.min_pods,
                max_pods=args.max_pods,
                cold_start_s=args.cold_start,
                metrics_window_s=args.metrics_window,
            ),
        )
    traffic = _build_traffic(
        kind, param, derive_rng(args.seed, "cluster-traffic", name), args
    )
    return deployment.tenant_group(
        name,
        traffic,
        router=router,
        autoscaler=autoscaler,
        slo_p95_ttft_s=args.slo_ttft_ms / 1e3,
        faults=_make_faults(args, name),
    )


def _cmd_cluster_sim(args) -> int:
    try:
        if args.jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {args.jobs}")
        if args.scenario_names:
            args.scenarios = list(args.scenarios or []) + [
                str(scenario_path(name)) for name in args.scenario_names
            ]
        if args.scenarios:
            _reject_faults_with_scenario(args)
            if args.cloud:
                raise ValueError(
                    "--cloud cannot combine with --scenario; declare the "
                    "cloud tier in the scenario's cloud: section instead"
                )
            specs = []
            for path in args.scenarios:
                spec = ScenarioSpec.load(path)
                if not spec.is_cluster:
                    raise ValueError(
                        f"scenario {spec.name!r} has no tenants; run it with "
                        "simulate --scenario"
                    )
                specs.append(spec)

            # Build + run inside the handler (an initial allocation that
            # does not fit the inventory is a user error); conservation
            # is verified outside it, like the flag path below. Worker
            # errors propagate out of fork_map into the same handler.
            def run_spec(spec):
                sim = spec.build_cluster()
                return sim.run(duration_s=spec.duration_s, warmup_s=spec.warmup_s)

            names = [spec.name for spec in specs]
            results = fork_map(run_spec, specs, args.jobs)
        else:
            if not args.tenants or not args.capacity:
                raise ValueError(
                    "cluster-sim needs --tenant and --capacity (or --scenario)"
                )
            traces = _load_or_make_traces(args)
            generator = WorkloadGenerator.fit(traces)
            capacity = {}
            for item in args.capacity:
                gpu, _, count = item.partition("=")
                if not count:
                    raise ValueError(f"capacity spec must be GPU=N, got {item!r}")
                capacity[gpu] = int(count)
            groups = [_parse_tenant_group(s, args, generator) for s in args.tenants]
            cloud = burst = None
            if args.cloud:
                catalog = aws_like_cloud_catalog(
                    quota_gpus=_parse_cloud_quota(args.cloud_quota),
                    spot_interruptions_per_hour=args.cloud_spot_rate,
                )
                cloud = CloudLedger(catalog, seed=args.cloud_seed)
                burst = BurstPolicy(
                    mode=args.cloud_mode, max_cloud_pods=args.max_cloud_pods
                )
            sim = ClusterSimulator(
                groups,
                ClusterInventory(capacity=capacity),
                fast=not args.no_fast_cluster,
                cloud=cloud,
                burst=burst,
            )
            names = [None]
            results = [sim.run(duration_s=args.duration, warmup_s=args.warmup)]
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Outside the user-input error handler: a conservation violation is
    # a simulator bug and should surface as a traceback, not "error:".
    for res in results:
        res.verify_conservation()
    pricing = aws_like_pricing()
    if args.json:
        # One serialization path for every simulation result: the
        # SimResult protocol's to_dict (see docs/cli.md for schemas).
        payloads = [res.to_dict(pricing=pricing) for res in results]
        if len(payloads) == 1:
            print(json.dumps(payloads[0], indent=2))
        else:
            # A multi-scenario batch emits one array, scenarios in
            # --scenario order (identical for any --jobs value).
            for payload, name in zip(payloads, names):
                payload["scenario"] = name
            print(json.dumps(payloads, indent=2))
        return 0
    batch = len(results) > 1
    for i, (res, name) in enumerate(zip(results, names)):
        if batch:
            if i:
                print()
            print(f"=== {name} ===")
        print(_render_cluster_sim(res, pricing), end="")
    return 0


def _render_cluster_sim(res, pricing) -> str:
    """Human-readable report of one cluster co-simulation.

    Returned as one string (not printed) so a multi-scenario batch can
    render results in scenario order regardless of completion order.
    """
    cost = res.cost(pricing)
    out = []
    rows = []
    for tenant in res.tenants:
        r = res.results[tenant]
        ok = res.meets_slo(tenant)
        rows.append(
            [
                tenant,
                res.profiles[tenant],
                r.n_pods,
                r.arrivals,
                r.shed,
                r.requests_completed,
                r.throughput_tokens_per_s,
                r.ttft.p95_s,
                "yes" if ok else "NO" if ok is not None else "-",
                r.pod_seconds,
                cost[tenant],
            ]
        )
    out.append(
        format_table(
            [
                "tenant",
                "profile",
                "pods",
                "arrivals",
                "shed",
                "done",
                "tok/s",
                "ttft p95",
                "slo",
                "pod-sec",
                "$",
            ],
            rows,
            floatfmt=".2f",
            title=(
                f"{len(res.tenants)} tenants on one clock — "
                f"{res.duration_s:.0f}s window, total "
                f"${res.total_cost(pricing):.2f}:"
            ),
        )
    )
    contended = res.contended_scale_events()
    if contended:
        rows = [
            [f"{e.time_s:.0f}", t, e.constraint, e.from_pods, e.requested, e.to_pods]
            for t, e in contended
        ]
        out.append(
            format_table(
                ["t(s)", "tenant", "outcome", "from", "asked", "granted"],
                rows,
                title="\nInventory-constrained scale-ups:",
            )
        )
    else:
        out.append("\nNo denied or clipped scale-ups.")
    peak = res.peak_occupancy()
    out.append(
        "Peak GPU occupancy: "
        + ", ".join(f"{gpu} {peak[gpu]}/{cap}" for gpu, cap in res.capacity.items())
    )
    if res.cloud_catalog is not None:
        cloud_ps = sum(res.results[t].cloud_pod_seconds for t in res.tenants)
        out.append(
            f"Cloud burst: {cloud_ps:.0f} pod-seconds rented "
            f"({len(res.cloud_events)} ledger events)"
        )
    fault_events = res.fault_events()
    if fault_events:
        shown = ", ".join(
            f"{tenant}:{event.kind}@{event.time_s:.0f}s"
            for tenant, event in fault_events[:6]
        ) + (", ..." if len(fault_events) > 6 else "")
        out.append(f"Fault events: {len(fault_events)} [{shown}]")
    return "".join(line + "\n" for line in out)


def _cmd_report(args) -> int:
    """Render one result — replayed from ``--json`` output or run live
    from a scenario — into a self-contained HTML file."""
    try:
        sources = [
            s for s in (args.input, args.scenario, args.scenario_name) if s
        ]
        if len(sources) != 1:
            raise ValueError(
                "report needs exactly one input: a RESULT.json file, "
                "--scenario FILE, or --scenario-name NAME"
            )
        spec = None
        if args.input:
            with open(args.input) as fh:
                payload = json.load(fh)
            if isinstance(payload, list):
                raise ValueError(
                    f"{args.input} holds a multi-scenario batch array; "
                    "report renders one result — split the batch or "
                    "re-run the scenario alone"
                )
            if not isinstance(payload, dict):
                raise ValueError(
                    f"{args.input} is not a simulation result payload"
                )
            stem = os.path.splitext(os.path.basename(args.input))[0]
            # render inside the handler: an unknown "kind" in a
            # hand-edited file is user input, not a simulator bug.
            html = render_report(payload, title=args.title)
        else:
            path = (
                str(scenario_path(args.scenario_name))
                if args.scenario_name
                else args.scenario
            )
            spec = ScenarioSpec.load(path)
            stem = spec.name
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if spec is not None:
        res = spec.run(keep_samples=True)
        # A conservation violation is a simulator bug and should
        # surface as a traceback, not "error:".
        res.verify_conservation()
        if res.kind == "cluster":
            payload = res.to_dict(pricing=aws_like_pricing())
        else:
            slo_s = (
                spec.slo_ttft_ms / 1e3 if spec.slo_ttft_ms is not None else None
            )
            payload = res.to_dict(slo_p95_ttft_s=slo_s)
        html = render_report(payload, title=args.title)
    out = args.out or f"{stem}-report.html"
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(html)
    print(f"wrote {out}")
    return 0


def _cmd_recommend_elastic(args) -> int:
    traces = _load_or_make_traces(args)
    generator = WorkloadGenerator.fit(traces)
    slo_s = args.slo_ttft_ms / 1e3
    try:
        llm = get_llm(args.llm)
        profile = parse_profile(args.profile)
        deployment = Deployment(
            llm=llm,
            profile=profile,
            n_pods=1,
            max_batch_weight=args.max_batch_weight,
            generator=generator,
            seed=args.seed,
        )
        penalty_cls = LinearSLOPenalty if args.penalty == "linear" else StepSLOPenalty
        if args.on_prem_pods < 0:
            raise ValueError(
                f"--on-prem-pods must be >= 0, got {args.on_prem_pods}"
            )
        hybrid = args.on_prem_pods > 0
        objective = CostObjective(
            pricing=aws_like_pricing(),
            penalty=penalty_cls(
                slo_p95_ttft_s=slo_s,
                penalty_per_hour=args.penalty_per_hour,
                penalty_per_shed=args.penalty_per_shed,
            ),
            cloud=aws_like_cloud_catalog(
                quota_gpus=_parse_cloud_quota(args.cloud_quota)
            )
            if hybrid
            else None,
            cloud_mode=args.cloud_mode,
        )
        traffic_param = _traffic_param(args)
        if args.traffic == "replay":
            # Parse the recorded log once; every candidate replays the
            # same in-memory ArrivalLog (ReplayTraffic never mutates it).
            if not traffic_param:
                raise ValueError("--traffic replay needs --arrivals FILE")
            traffic_param = ArrivalLog.load(traffic_param)
        recommender = ElasticRecommender(
            deployment,
            # A fresh, identically seeded traffic model per candidate:
            # the sweep is a controlled experiment over one arrival log.
            lambda: _build_traffic(
                args.traffic,
                traffic_param,
                derive_rng(args.seed, "elastic-traffic", args.traffic),
                args,
            ),
            objective,
            slo_p95_ttft_s=slo_s,
            duration_s=args.duration,
            warmup_s=args.warmup,
            decision_interval_s=args.interval,
            cold_start_s=args.cold_start,
            metrics_window_s=args.metrics_window,
            router_factory=lambda: ROUTERS[args.router](),
            stream_label=args.traffic,
            cache_arrivals=not args.no_arrival_cache,
            on_prem_pods=args.on_prem_pods or None,
            burst=BurstPolicy(
                mode=args.cloud_mode, max_cloud_pods=args.max_cloud_pods
            )
            if hybrid
            else None,
        )
        if args.jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {args.jobs}")
        rec = recommender.recommend(
            static_pods=args.static_pods or None,
            search_max=args.search_max,
            headroom=args.headroom,
            jobs=args.jobs,
            prune=args.prune,
        )
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(rec.as_dict(), indent=2))
        return 0 if rec.meets_slo else 1
    rows = [
        [
            p.label,
            p.pod_hours,
            p.compute_cost,
            p.slo_penalty,
            p.total_cost,
            p.p95_ttft_s,
            "yes" if p.meets_slo else "NO",
            p.scale_events,
        ]
        for p in rec.curve
    ]
    print(
        format_table(
            ["config", "pod-h", "compute $", "penalty $", "total $",
             "ttft p95", "slo", "events"],
            rows,
            floatfmt=".3f",
            title=(
                f"Trade curve for {llm.name} on {profile.name} — "
                f"{args.traffic} traffic, {args.duration:.0f}s window, "
                f"p95 TTFT SLO {slo_s:.1f}s:"
            ),
        )
    )
    for skipped in rec.pruned:
        print(
            f"Pruned {skipped.label}: compute-bill floor "
            f"${skipped.cost_floor:.3f} exceeds {skipped.incumbent_label} "
            f"total ${skipped.incumbent_cost:.3f}"
        )
    print(
        f"Recommendation: {rec.chosen.label} "
        f"(${rec.chosen.total_cost:.3f} for the window, p95 TTFT "
        f"{rec.chosen.p95_ttft_s:.2f}s) — saves ${rec.savings:.3f} "
        f"({rec.savings_fraction:.0%}) vs the peak-sized static fleet "
        f"({rec.static.label}, ${rec.static.total_cost:.3f})"
    )
    if not rec.meets_slo:
        print("No evaluated configuration met the SLO.")
        return 1
    return 0


_COMMANDS = {
    "traces": _cmd_traces,
    "characterize": _cmd_characterize,
    "recommend": _cmd_recommend,
    "info": _cmd_info,
    "simulate": _cmd_simulate,
    "autoscale": _cmd_autoscale,
    "cluster-sim": _cmd_cluster_sim,
    "report": _cmd_report,
    "recommend-elastic": _cmd_recommend_elastic,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
