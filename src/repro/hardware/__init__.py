"""GPU hardware substrate: spec catalog, deployment profiles and pricing."""

from repro.hardware.gpu import GPUSpec, GPU_CATALOG, get_gpu, list_gpus
from repro.hardware.profile import GPUProfile, default_profiles, parse_profile
from repro.hardware.pricing import (
    CLOUD_PRICING_MODES,
    CloudCatalog,
    CloudInstanceType,
    PricingTable,
    aws_like_cloud_catalog,
    aws_like_pricing,
)

__all__ = [
    "GPUSpec",
    "GPU_CATALOG",
    "get_gpu",
    "list_gpus",
    "GPUProfile",
    "default_profiles",
    "parse_profile",
    "PricingTable",
    "aws_like_pricing",
    "CLOUD_PRICING_MODES",
    "CloudCatalog",
    "CloudInstanceType",
    "aws_like_cloud_catalog",
]
