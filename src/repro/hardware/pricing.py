"""GPU pricing tables.

The paper uses hourly on-demand GPU instance prices from AWS as the cost
metric c(G) in Eq. (1), and notes that "the user of LLM-Pilot could also
plug in their own pricing table". We ship an AWS-like default table
(per-GPU hourly cost derived from the instance families that carry each
GPU) and support custom tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.profile import GPUProfile

__all__ = ["PricingTable", "aws_like_pricing"]

#: Hourly per-GPU prices (USD), derived from AWS on-demand instance prices
#: divided by GPU count: p5.48xlarge (8xH100), p4d.24xlarge (8xA100-40GB),
#: p4de.24xlarge (8xA100-80GB), g5.xlarge (1xA10), g4dn.xlarge (1xT4),
#: p3.2xlarge (1xV100).
_AWS_PER_GPU_HOURLY: dict[str, float] = {
    "H100-80GB": 12.29,
    "A100-80GB": 5.12,
    "A100-40GB": 4.10,
    "A10-24GB": 1.01,
    "T4-16GB": 0.53,
    "V100-16GB": 3.06,
}


@dataclass(frozen=True)
class PricingTable:
    """Maps GPU types to hourly per-GPU cost; c(G) = count * per-GPU price."""

    per_gpu_hourly: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, price in self.per_gpu_hourly.items():
            if price < 0:
                raise ValueError(f"negative price for {name}: {price}")

    def gpu_price(self, gpu_name: str) -> float:
        try:
            return self.per_gpu_hourly[gpu_name]
        except KeyError:
            known = ", ".join(sorted(self.per_gpu_hourly))
            raise KeyError(
                f"no price for GPU type {gpu_name!r}; priced types: {known}"
            ) from None

    def pod_cost(self, profile: GPUProfile) -> float:
        """Hourly cost of a single pod running on ``profile`` — c(G)."""
        return self.gpu_price(profile.gpu.name) * profile.count

    def deployment_cost(self, profile: GPUProfile, pods: int) -> float:
        """Hourly cost of ``pods`` replicas on ``profile`` — n * c(G)."""
        if pods < 0:
            raise ValueError(f"pod count must be >= 0, got {pods}")
        return self.pod_cost(profile) * pods

    def with_override(self, gpu_name: str, price: float) -> "PricingTable":
        """A copy of the table with one price replaced (custom user tables)."""
        table = dict(self.per_gpu_hourly)
        table[gpu_name] = price
        return PricingTable(per_gpu_hourly=table)


def aws_like_pricing() -> PricingTable:
    """The default AWS-like pricing table used throughout the evaluation."""
    return PricingTable(per_gpu_hourly=dict(_AWS_PER_GPU_HOURLY))
