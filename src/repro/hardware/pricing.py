"""GPU pricing tables — on-prem and cloud.

The paper uses hourly on-demand GPU instance prices from AWS as the cost
metric c(G) in Eq. (1), and notes that "the user of LLM-Pilot could also
plug in their own pricing table". We ship an AWS-like default table
(per-GPU hourly cost derived from the instance families that carry each
GPU) and support custom tables.

:class:`CloudCatalog` is the second, elastic capacity tier: the same
GPU types priced per *purchasing mode* (on-demand / spot / reserved),
with optional per-type GPU quotas and a spot-interruption rate that the
cluster co-simulation turns into seeded ``"spot-preempt"`` fault events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.profile import GPUProfile

__all__ = [
    "PricingTable",
    "aws_like_pricing",
    "CLOUD_PRICING_MODES",
    "CloudInstanceType",
    "CloudCatalog",
    "aws_like_cloud_catalog",
]

#: Hourly per-GPU prices (USD), derived from AWS on-demand instance prices
#: divided by GPU count: p5.48xlarge (8xH100), p4d.24xlarge (8xA100-40GB),
#: p4de.24xlarge (8xA100-80GB), g5.xlarge (1xA10), g4dn.xlarge (1xT4),
#: p3.2xlarge (1xV100).
_AWS_PER_GPU_HOURLY: dict[str, float] = {
    "H100-80GB": 12.29,
    "A100-80GB": 5.12,
    "A100-40GB": 4.10,
    "A10-24GB": 1.01,
    "T4-16GB": 0.53,
    "V100-16GB": 3.06,
}


@dataclass(frozen=True)
class PricingTable:
    """Maps GPU types to hourly per-GPU cost; c(G) = count * per-GPU price."""

    per_gpu_hourly: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, price in self.per_gpu_hourly.items():
            if price < 0:
                raise ValueError(f"negative price for {name}: {price}")

    def gpu_price(self, gpu_name: str) -> float:
        try:
            return self.per_gpu_hourly[gpu_name]
        except KeyError:
            known = ", ".join(sorted(self.per_gpu_hourly))
            raise KeyError(
                f"no price for GPU type {gpu_name!r}; priced types: {known}"
            ) from None

    def pod_cost(self, profile: GPUProfile) -> float:
        """Hourly cost of a single pod running on ``profile`` — c(G)."""
        return self.gpu_price(profile.gpu.name) * profile.count

    def deployment_cost(self, profile: GPUProfile, pods: int) -> float:
        """Hourly cost of ``pods`` replicas on ``profile`` — n * c(G)."""
        if pods < 0:
            raise ValueError(f"pod count must be >= 0, got {pods}")
        return self.pod_cost(profile) * pods

    def with_override(self, gpu_name: str, price: float) -> "PricingTable":
        """A copy of the table with one price replaced (custom user tables)."""
        table = dict(self.per_gpu_hourly)
        table[gpu_name] = price
        return PricingTable(per_gpu_hourly=table)


def aws_like_pricing() -> PricingTable:
    """The default AWS-like pricing table used throughout the evaluation."""
    return PricingTable(per_gpu_hourly=dict(_AWS_PER_GPU_HOURLY))


#: Cloud purchasing modes, in the order the CLI offers them.
CLOUD_PRICING_MODES: tuple[str, ...] = ("on-demand", "spot", "reserved")


@dataclass(frozen=True)
class CloudInstanceType:
    """One rentable GPU type in a :class:`CloudCatalog`.

    Prices are hourly per GPU for each purchasing mode. ``quota_gpus``
    caps how many GPUs of this type the account may hold at once
    (``None`` = unmetered). ``spot_interruptions_per_hour`` is the mean
    rate of the Poisson preemption process applied to *spot* capacity;
    it is ignored for on-demand and reserved purchases.
    """

    gpu: str
    on_demand: float
    spot: float
    reserved: float
    quota_gpus: int | None = None
    spot_interruptions_per_hour: float = 0.0

    def __post_init__(self) -> None:
        for mode in CLOUD_PRICING_MODES:
            price = self.price(mode)
            if price < 0:
                raise ValueError(f"negative {mode} price for {self.gpu}: {price}")
        if self.quota_gpus is not None and self.quota_gpus < 0:
            raise ValueError(f"negative quota for {self.gpu}: {self.quota_gpus}")
        if self.spot_interruptions_per_hour < 0:
            raise ValueError(
                f"negative spot interruption rate for {self.gpu}: "
                f"{self.spot_interruptions_per_hour}"
            )

    def price(self, mode: str) -> float:
        """Hourly per-GPU price for one purchasing ``mode``."""
        try:
            return {
                "on-demand": self.on_demand,
                "spot": self.spot,
                "reserved": self.reserved,
            }[mode]
        except KeyError:
            raise ValueError(
                f"unknown cloud pricing mode {mode!r}; "
                f"expected one of {', '.join(CLOUD_PRICING_MODES)}"
            ) from None


@dataclass(frozen=True)
class CloudCatalog:
    """The elastic capacity tier: rentable GPU types priced per mode.

    The on-prem :class:`PricingTable` answers "what does a GPU I *own*
    cost per hour"; the catalog answers the burst-time question — what
    renting one costs under each purchasing mode, how many the provider
    will lease at once, and how often spot capacity is reclaimed.
    Zero prices are legal (free-tier / sunk-cost modeling).
    """

    instances: dict[str, CloudInstanceType] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, inst in self.instances.items():
            if inst.gpu != name:
                raise ValueError(
                    f"catalog key {name!r} does not match instance gpu {inst.gpu!r}"
                )

    def instance(self, gpu_name: str) -> CloudInstanceType:
        try:
            return self.instances[gpu_name]
        except KeyError:
            known = ", ".join(sorted(self.instances))
            raise KeyError(
                f"no cloud instance for GPU type {gpu_name!r}; "
                f"rentable types: {known}"
            ) from None

    def offers(self, gpu_name: str) -> bool:
        """Whether the provider rents this GPU type at all."""
        return gpu_name in self.instances

    def gpu_price(self, gpu_name: str, mode: str = "on-demand") -> float:
        """Hourly per-GPU rental price under one purchasing mode."""
        return self.instance(gpu_name).price(mode)

    def pod_cost(self, profile: GPUProfile, mode: str = "on-demand") -> float:
        """Hourly rental cost of one pod on ``profile`` under ``mode``."""
        return self.gpu_price(profile.gpu.name, mode) * profile.count

    def quota_gpus(self, gpu_name: str) -> int | None:
        """Account-level GPU cap for this type (``None`` = unmetered)."""
        return self.instance(gpu_name).quota_gpus

    def spot_interruptions_per_hour(self, gpu_name: str) -> float:
        """Mean spot preemptions per instance-hour for this type."""
        return self.instance(gpu_name).spot_interruptions_per_hour

    def with_instance(self, instance: CloudInstanceType) -> "CloudCatalog":
        """A copy of the catalog with one instance type added/replaced."""
        table = dict(self.instances)
        table[instance.gpu] = instance
        return CloudCatalog(instances=table)


#: Cloud rental multipliers over the on-prem table: on-demand rents at the
#: owned-hardware hourly rate, spot at the historical ~30% of on-demand,
#: reserved (1yr, no upfront) at ~60%.
_SPOT_FRACTION = 0.30
_RESERVED_FRACTION = 0.60
_DEFAULT_SPOT_INTERRUPTIONS_PER_HOUR = 0.05


def aws_like_cloud_catalog(
    quota_gpus: dict[str, int] | None = None,
    spot_interruptions_per_hour: float = _DEFAULT_SPOT_INTERRUPTIONS_PER_HOUR,
) -> CloudCatalog:
    """An AWS-like cloud catalog over the same GPU types as the on-prem table.

    ``quota_gpus`` optionally caps individual types (GPU name -> max GPUs
    held at once); unnamed types stay unmetered.
    """
    quota_gpus = quota_gpus or {}
    instances = {
        name: CloudInstanceType(
            gpu=name,
            on_demand=price,
            spot=round(price * _SPOT_FRACTION, 4),
            reserved=round(price * _RESERVED_FRACTION, 4),
            quota_gpus=quota_gpus.get(name),
            spot_interruptions_per_hour=spot_interruptions_per_hour,
        )
        for name, price in _AWS_PER_GPU_HOURLY.items()
    }
    return CloudCatalog(instances=instances)
