"""GPU profiles: the (GPU type, GPU count) pairs considered for deployment.

The paper defines a *GPU profile* as "the number and type of GPUs assigned
to each pod" (§II-C). When the count exceeds one, the LLM's weights and
all computation are sharded across the GPUs tensor-parallel. The paper's
dataset uses 14 profiles: {1,2,4}× for H100, A100-40GB, T4, V100 and
{1,2}× for A10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec, get_gpu

__all__ = ["GPUProfile", "default_profiles", "parse_profile"]


@dataclass(frozen=True)
class GPUProfile:
    """Number and type of GPUs backing one inference-service pod."""

    gpu: GPUSpec
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"GPU count must be >= 1, got {self.count}")

    @property
    def name(self) -> str:
        return f"{self.count}x{self.gpu.name}"

    @property
    def total_memory_gb(self) -> float:
        """Aggregate memory across the tensor-parallel group."""
        return self.gpu.memory_gb * self.count

    @property
    def total_memory_bandwidth_gbps(self) -> float:
        return self.gpu.memory_bandwidth_gbps * self.count

    @property
    def total_fp16_tflops(self) -> float:
        return self.gpu.fp16_tflops * self.count

    @property
    def is_tensor_parallel(self) -> bool:
        return self.count > 1

    def feature_dict(self) -> dict[str, float]:
        """Feature vector entries describing this profile (paper §IV-B1)."""
        feats = self.gpu.feature_dict()
        feats["gpu_count"] = float(self.count)
        feats["profile_total_memory_gb"] = self.total_memory_gb
        feats["profile_total_bandwidth_gbps"] = self.total_memory_bandwidth_gbps
        feats["profile_total_fp16_tflops"] = self.total_fp16_tflops
        return feats

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Per-GPU-type counts matching Table III's 14 profiles.
_DEFAULT_COUNTS: dict[str, tuple[int, ...]] = {
    "H100-80GB": (1, 2, 4),
    "A100-40GB": (1, 2, 4),
    "A10-24GB": (1, 2),
    "T4-16GB": (1, 2, 4),
    "V100-16GB": (1, 2, 4),
}


def default_profiles() -> list[GPUProfile]:
    """The 14 GPU profiles benchmarked in the paper (Table III)."""
    profiles = []
    for gpu_name, counts in _DEFAULT_COUNTS.items():
        gpu = get_gpu(gpu_name)
        for count in counts:
            profiles.append(GPUProfile(gpu=gpu, count=count))
    return profiles


def parse_profile(name: str) -> GPUProfile:
    """Parse a profile name like ``"2xA100-40GB"`` back into a profile."""
    if "x" not in name:
        raise ValueError(f"profile name must look like '2xA100-40GB', got {name!r}")
    count_str, _, gpu_name = name.partition("x")
    try:
        count = int(count_str)
    except ValueError:
        raise ValueError(f"invalid GPU count in profile name {name!r}") from None
    return GPUProfile(gpu=get_gpu(gpu_name), count=count)
