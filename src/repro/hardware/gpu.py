"""GPU specification catalog.

The paper characterizes five GPU types (H100 80GB, A100 40GB, A10 24GB,
T4 16GB, V100 16GB) plus A100 80GB for the pod-scaling experiment
(Table I). Each spec carries the full feature set that the GPU
recommendation tool uses (paper §IV-B1, following Justus et al. [16]):
memory capacity and bandwidth, architecture, core counts, TFLOPS per
data type, compute capability, interface generation, form factor and
NVLink availability.

All specs are public datasheet values; they drive both the inference
cost model (memory capacity/bandwidth, TFLOPS, interconnect) and the
ML feature engineering.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["GPUSpec", "GPU_CATALOG", "get_gpu", "list_gpus"]


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet description of a single GPU type."""

    name: str
    architecture: str
    memory_gb: float
    memory_bandwidth_gbps: float  # GB/s
    cuda_cores: int
    tensor_cores: int
    rt_cores: int
    texture_units: int
    raster_pipelines: int
    streaming_multiprocessors: int
    fp16_tflops: float  # dense tensor-core FP16
    fp32_tflops: float
    tf32_tflops: float
    int8_tops: float
    compute_capability: float
    interface_generation: int  # PCIe generation
    form_factor: str  # "SXM" or "PCIe"
    nvlink: bool
    nvlink_bandwidth_gbps: float  # per-direction aggregate; 0 if no NVLink
    pcie_bandwidth_gbps: float
    tdp_watts: float
    # Architecture generation index used as an ordinal ML feature
    # (Volta=0, Turing=1, Ampere=2, Hopper=3).
    generation_index: int = field(default=0)

    def interconnect_bandwidth_gbps(self) -> float:
        """Effective GPU-to-GPU bandwidth used for tensor-parallel collectives."""
        return self.nvlink_bandwidth_gbps if self.nvlink else self.pcie_bandwidth_gbps

    def feature_dict(self) -> dict[str, float]:
        """Numeric feature vector entries for the recommendation tool."""
        return {
            "gpu_memory_gb": self.memory_gb,
            "gpu_memory_bandwidth_gbps": self.memory_bandwidth_gbps,
            "gpu_cuda_cores": float(self.cuda_cores),
            "gpu_tensor_cores": float(self.tensor_cores),
            "gpu_rt_cores": float(self.rt_cores),
            "gpu_texture_units": float(self.texture_units),
            "gpu_raster_pipelines": float(self.raster_pipelines),
            "gpu_sms": float(self.streaming_multiprocessors),
            "gpu_fp16_tflops": self.fp16_tflops,
            "gpu_fp32_tflops": self.fp32_tflops,
            "gpu_tf32_tflops": self.tf32_tflops,
            "gpu_int8_tops": self.int8_tops,
            "gpu_compute_capability": self.compute_capability,
            "gpu_interface_generation": float(self.interface_generation),
            "gpu_is_sxm": 1.0 if self.form_factor == "SXM" else 0.0,
            "gpu_nvlink": 1.0 if self.nvlink else 0.0,
            "gpu_generation_index": float(self.generation_index),
        }


def _spec(**kwargs) -> GPUSpec:
    return GPUSpec(**kwargs)


#: The GPU types from the paper's Table III (plus A100 80GB from Table I).
GPU_CATALOG: dict[str, GPUSpec] = {
    "H100-80GB": _spec(
        name="H100-80GB",
        architecture="Hopper",
        memory_gb=80.0,
        memory_bandwidth_gbps=3350.0,
        cuda_cores=16896,
        tensor_cores=528,
        rt_cores=0,
        texture_units=528,
        raster_pipelines=24,
        streaming_multiprocessors=132,
        fp16_tflops=989.0,
        fp32_tflops=67.0,
        tf32_tflops=494.0,
        int8_tops=1979.0,
        compute_capability=9.0,
        interface_generation=5,
        form_factor="SXM",
        nvlink=True,
        nvlink_bandwidth_gbps=900.0,
        pcie_bandwidth_gbps=128.0,
        tdp_watts=700.0,
        generation_index=3,
    ),
    "A100-80GB": _spec(
        name="A100-80GB",
        architecture="Ampere",
        memory_gb=80.0,
        memory_bandwidth_gbps=2039.0,
        cuda_cores=6912,
        tensor_cores=432,
        rt_cores=0,
        texture_units=432,
        raster_pipelines=160,
        streaming_multiprocessors=108,
        fp16_tflops=312.0,
        fp32_tflops=19.5,
        tf32_tflops=156.0,
        int8_tops=624.0,
        compute_capability=8.0,
        interface_generation=4,
        form_factor="SXM",
        nvlink=True,
        nvlink_bandwidth_gbps=600.0,
        pcie_bandwidth_gbps=64.0,
        tdp_watts=400.0,
        generation_index=2,
    ),
    "A100-40GB": _spec(
        name="A100-40GB",
        architecture="Ampere",
        memory_gb=40.0,
        memory_bandwidth_gbps=1555.0,
        cuda_cores=6912,
        tensor_cores=432,
        rt_cores=0,
        texture_units=432,
        raster_pipelines=160,
        streaming_multiprocessors=108,
        fp16_tflops=312.0,
        fp32_tflops=19.5,
        tf32_tflops=156.0,
        int8_tops=624.0,
        compute_capability=8.0,
        interface_generation=4,
        form_factor="SXM",
        nvlink=True,
        nvlink_bandwidth_gbps=600.0,
        pcie_bandwidth_gbps=64.0,
        tdp_watts=400.0,
        generation_index=2,
    ),
    "A10-24GB": _spec(
        name="A10-24GB",
        architecture="Ampere",
        memory_gb=24.0,
        memory_bandwidth_gbps=600.0,
        cuda_cores=9216,
        tensor_cores=288,
        rt_cores=72,
        texture_units=288,
        raster_pipelines=96,
        streaming_multiprocessors=72,
        fp16_tflops=125.0,
        fp32_tflops=31.2,
        tf32_tflops=62.5,
        int8_tops=250.0,
        compute_capability=8.6,
        interface_generation=4,
        form_factor="PCIe",
        nvlink=False,
        nvlink_bandwidth_gbps=0.0,
        pcie_bandwidth_gbps=64.0,
        tdp_watts=150.0,
        generation_index=2,
    ),
    "T4-16GB": _spec(
        name="T4-16GB",
        architecture="Turing",
        memory_gb=16.0,
        memory_bandwidth_gbps=320.0,
        cuda_cores=2560,
        tensor_cores=320,
        rt_cores=40,
        texture_units=160,
        raster_pipelines=64,
        streaming_multiprocessors=40,
        fp16_tflops=65.0,
        fp32_tflops=8.1,
        tf32_tflops=0.0,
        int8_tops=130.0,
        compute_capability=7.5,
        interface_generation=3,
        form_factor="PCIe",
        nvlink=False,
        nvlink_bandwidth_gbps=0.0,
        pcie_bandwidth_gbps=32.0,
        tdp_watts=70.0,
        generation_index=1,
    ),
    "V100-16GB": _spec(
        name="V100-16GB",
        architecture="Volta",
        memory_gb=16.0,
        memory_bandwidth_gbps=900.0,
        cuda_cores=5120,
        tensor_cores=640,
        rt_cores=0,
        texture_units=320,
        raster_pipelines=128,
        streaming_multiprocessors=80,
        fp16_tflops=125.0,
        fp32_tflops=15.7,
        tf32_tflops=0.0,
        int8_tops=0.0,
        compute_capability=7.0,
        interface_generation=3,
        form_factor="SXM",
        nvlink=True,
        nvlink_bandwidth_gbps=300.0,
        pcie_bandwidth_gbps=32.0,
        tdp_watts=300.0,
        generation_index=0,
    ),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU type by name, raising ``KeyError`` with suggestions."""
    try:
        return GPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise KeyError(f"unknown GPU type {name!r}; known types: {known}") from None


def list_gpus() -> list[str]:
    """Names of all GPU types in the catalog."""
    return list(GPU_CATALOG)


# Sanity: all numeric datasheet fields must be non-negative.
for _g in GPU_CATALOG.values():
    for _f in fields(_g):
        _v = getattr(_g, _f.name)
        if isinstance(_v, (int, float)) and not isinstance(_v, bool) and _v < 0:
            raise ValueError(f"negative datasheet value {_f.name}={_v} for {_g.name}")
