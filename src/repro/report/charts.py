"""Inline-SVG chart primitives for the HTML run reports.

Hand-rolled on purpose: a report must open from a ``file://`` URL on an
air-gapped machine, so there is no plotting library, no web font, no
script tag and no external reference of any kind — every chart is a
small inline ``<svg>`` styled through the CSS custom properties the
report's ``<style>`` block defines (which is also what makes the dark
variant a *selected* palette step, not an automatic color flip).

The rules encoded here follow the repo's charting conventions: one
y-axis per chart (never dual), thin 2px line marks, recessive hairline
grids, categorical series colors assigned in fixed slot order (never
cycled, at most :data:`MAX_SERIES` series per chart), text always in
ink tokens rather than series colors, a legend whenever two or more
series share a plot, and native ``<title>`` tooltips on point markers
and event rules as the hover layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from xml.sax.saxutils import escape

__all__ = ["Series", "EventMark", "line_chart", "MAX_SERIES"]

# Validated categorical palette (light, dark) per slot, in the one
# fixed assignment order. Entities past the last slot fold into an
# "other" bucket rather than minting new hues.
PALETTE: list[tuple[str, str]] = [
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
]
MAX_SERIES = len(PALETTE)

_W, _H = 720, 220
_ML, _MR, _MT, _MB = 64, 14, 12, 34


@dataclass
class Series:
    """One line on a chart: points plus the fixed palette slot."""

    label: str
    x: list[float]
    y: list[float]
    slot: int = 0
    step: bool = False  # draw as a step function (occupancy, pod counts)


@dataclass
class EventMark:
    """One annotated instant (fault, cloud rental, scale decision)."""

    x: float
    label: str
    kind: str = "info"  # "fault" -> critical rule, else muted


def _fmt(value: float) -> str:
    """Compact tick label: 1200 -> '1.2k', 0.25 -> '0.25'."""
    if abs(value) >= 10_000:
        return f"{value / 1000:.0f}k"
    if abs(value) >= 1000:
        return f"{value / 1000:.1f}k"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.2g}"


def _ticks(hi: float, n: int = 4) -> list[float]:
    """n+1 evenly spaced tick values from 0 to a rounded-up top."""
    if hi <= 0:
        hi = 1.0
    raw = hi / n
    magnitude = 10 ** len(str(int(raw))) / 10 if raw >= 1 else 1.0
    for nice in (1, 2, 2.5, 5, 10):
        if raw <= nice * magnitude:
            step = nice * magnitude
            break
    else:  # pragma: no cover - loop always breaks at 10
        step = raw
    return [step * i for i in range(n + 1)]


def line_chart(
    series: list[Series],
    *,
    title: str,
    y_label: str,
    x_label: str = "time (s)",
    events: list[EventMark] | None = None,
    y_top: float | None = None,
    y_rule: float | None = None,
    y_rule_label: str = "",
) -> str:
    """One titled, self-contained SVG line/step chart.

    ``y_rule`` draws a single horizontal reference rule (an SLO bound,
    a capacity ceiling) with its label in ink, never a second axis.
    Returns the chart wrapped in a ``<figure>`` with an HTML legend
    when the chart carries two or more series.
    """
    series = series[:MAX_SERIES]
    events = list(events or [])
    xs = [v for s in series for v in s.x] + [e.x for e in events]
    ys = [v for s in series for v in s.y]
    if not xs or not ys:
        return (
            f'<figure class="chart"><figcaption>{escape(title)}'
            '</figcaption><p class="muted">no samples recorded</p></figure>'
        )
    x_hi = max(xs) or 1.0
    y_hi = max([*ys, y_rule or 0.0, y_top or 0.0]) * 1.05 or 1.0
    ticks = _ticks(y_hi)
    y_hi = max(ticks[-1], y_hi)
    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB

    def px(x: float) -> float:
        return _ML + plot_w * (x / x_hi)

    def py(y: float) -> float:
        return _MT + plot_h * (1.0 - y / y_hi)

    parts: list[str] = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{escape(title)}">'
    ]
    # Recessive grid + y tick labels (ink tokens, not series colors).
    for tick in ticks:
        y = py(tick)
        parts.append(
            f'<line class="grid" x1="{_ML}" y1="{y:.1f}" '
            f'x2="{_W - _MR}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_ML - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    # x-axis baseline and extent labels.
    parts.append(
        f'<line class="axis" x1="{_ML}" y1="{py(0):.1f}" '
        f'x2="{_W - _MR}" y2="{py(0):.1f}"/>'
    )
    parts.append(
        f'<text class="tick" x="{_ML}" y="{_H - 18}">0</text>'
        f'<text class="tick" x="{_W - _MR}" y="{_H - 18}" '
        f'text-anchor="end">{_fmt(x_hi)}</text>'
        f'<text class="tick" x="{(_ML + _W - _MR) / 2:.0f}" y="{_H - 4}" '
        f'text-anchor="middle">{escape(x_label)}</text>'
    )
    # Rotated y-axis label in secondary ink.
    parts.append(
        f'<text class="tick" transform="rotate(-90)" '
        f'x="{-_H / 2:.0f}" y="12" text-anchor="middle">'
        f"{escape(y_label)}</text>"
    )
    if y_rule is not None and y_rule <= y_hi:
        y = py(y_rule)
        parts.append(
            f'<line class="rule" x1="{_ML}" y1="{y:.1f}" '
            f'x2="{_W - _MR}" y2="{y:.1f}"/>'
        )
        if y_rule_label:
            parts.append(
                f'<text class="tick" x="{_W - _MR}" y="{y - 4:.1f}" '
                f'text-anchor="end">{escape(y_rule_label)}</text>'
            )
    # Event rules: dashed verticals, hover label via native <title>.
    for event in events:
        x = px(min(event.x, x_hi))
        cls = "event-fault" if event.kind == "fault" else "event"
        parts.append(
            f'<g><line class="{cls}" x1="{x:.1f}" y1="{_MT}" '
            f'x2="{x:.1f}" y2="{py(0):.1f}"/>'
            f"<title>{escape(event.label)}</title></g>"
        )
    # Data last, above the chrome: thin 2px lines, sparse point markers
    # with tooltips when the series is small enough to hover.
    for s in series:
        if not s.x:
            continue
        points = list(zip(s.x, s.y))
        cmds = [f"M{px(points[0][0]):.1f},{py(points[0][1]):.1f}"]
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if s.step:
                cmds.append(f"L{px(x1):.1f},{py(y0):.1f}")
            cmds.append(f"L{px(x1):.1f},{py(y1):.1f}")
        if s.step:
            cmds.append(f"L{px(x_hi):.1f},{py(points[-1][1]):.1f}")
        parts.append(
            f'<path class="s{s.slot % MAX_SERIES}" d="{" ".join(cmds)}"/>'
        )
        if len(points) <= 48:
            for x, y in points:
                parts.append(
                    f'<g><circle class="s{s.slot % MAX_SERIES}" '
                    f'cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5"/>'
                    f"<title>{escape(s.label)}: t={_fmt(x)}s, "
                    f"{_fmt(y)}</title></g>"
                )
    parts.append("</svg>")
    legend = ""
    if len(series) >= 2:
        swatches = "".join(
            f'<span class="key"><span class="swatch s{s.slot % MAX_SERIES}">'
            f"</span>{escape(s.label)}</span>"
            for s in series
        )
        legend = f'<div class="legend">{swatches}</div>'
    return (
        f'<figure class="chart"><figcaption>{escape(title)}</figcaption>'
        f"{parts[0]}{''.join(parts[1:])}{legend}</figure>"
    )
