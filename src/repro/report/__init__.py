"""HTML run reports rendered from the uniform ``SimResult`` payloads.

The package has a single entry point, :func:`render_report`, which
accepts either a live result object or a parsed ``--json`` payload and
returns one self-contained HTML document (inline SVG charts, inline
CSS, no network references). See ``docs/cli.md`` for the ``report``
subcommand built on top of it.
"""

from .charts import EventMark, Series, line_chart
from .html import render_report

__all__ = ["render_report", "line_chart", "Series", "EventMark"]
