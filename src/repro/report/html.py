"""Self-contained HTML run reports for fleet and cluster results.

:func:`render_report` turns the uniform ``to_dict`` payload — whether it
came from a live :class:`~repro.simulation.fleet.FleetResult` /
:class:`~repro.simulation.cluster.ClusterResult` or was re-read from a
``--json`` file — into one HTML document with zero external references:
no scripts, no fonts, no stylesheets, no URLs of any kind. The file can
be archived next to the JSON it renders and opened years later from a
``file://`` path on an air-gapped machine.

Rendering exclusively from the payload (never from simulator internals)
is what keeps the live and replayed paths identical: if a metric is not
in the JSON schema, it is not in the report.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from .charts import MAX_SERIES, PALETTE, EventMark, Series, line_chart

__all__ = ["render_report"]

_LIGHT = {
    "surface": "#fcfcfb",
    "ink": "#0b0b0b",
    "ink2": "#52514e",
    "muted": "#898781",
    "grid": "#e1e0d9",
    "baseline": "#c3c2b7",
    "critical": "#d03b3b",
}
_DARK = {
    "surface": "#1a1a19",
    "ink": "#ffffff",
    "ink2": "#c3c2b7",
    "muted": "#898781",
    "grid": "#2c2c2a",
    "baseline": "#383835",
    "critical": "#e66767",
}


def _tokens(theme: dict, slot_colors: list[str]) -> str:
    lines = [f"  --{k}: {v};" for k, v in theme.items()]
    lines += [f"  --s{i}: {c};" for i, c in enumerate(slot_colors)]
    return "\n".join(lines)


def _css() -> str:
    light = _tokens(_LIGHT, [c for c, _ in PALETTE])
    dark = _tokens(_DARK, [c for _, c in PALETTE])
    slots = "\n".join(
        f"svg path.s{i} {{ stroke: var(--s{i}); }}\n"
        f"svg circle.s{i} {{ fill: var(--s{i}); }}\n"
        f".swatch.s{i} {{ background: var(--s{i}); }}"
        for i in range(MAX_SERIES)
    )
    return f"""
:root {{
{light}
}}
@media (prefers-color-scheme: dark) {{ :root {{
{dark}
}} }}
[data-theme="light"] {{
{light}
}}
[data-theme="dark"] {{
{dark}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0 auto; padding: 24px 20px 64px; max-width: 820px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif;
}}
h1 {{ font-size: 22px; margin: 0 0 4px; }}
h2 {{ font-size: 16px; margin: 36px 0 10px; }}
h3 {{ font-size: 14px; margin: 24px 0 8px; }}
p.sub, .muted {{ color: var(--muted); }}
.sub {{ margin: 0 0 20px; }}
nav {{ margin: 12px 0 4px; color: var(--ink2); }}
nav a {{ color: var(--ink2); margin-right: 10px; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 10px; margin: 14px 0; }}
.tile {{
  border: 1px solid var(--grid); border-radius: 6px;
  padding: 8px 14px; min-width: 108px;
}}
.tile .value {{ font-size: 20px; font-weight: 600; }}
.tile .name {{ color: var(--ink2); font-size: 12px; }}
.tile.bad .value {{ color: var(--critical); }}
table {{ border-collapse: collapse; margin: 10px 0; width: 100%; }}
th, td {{
  text-align: right; padding: 4px 10px;
  border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums;
}}
th {{ color: var(--ink2); font-weight: 600; }}
th:first-child, td:first-child {{ text-align: left; }}
td.bad {{ color: var(--critical); }}
figure.chart {{ margin: 14px 0; }}
figcaption {{ color: var(--ink2); font-weight: 600; margin-bottom: 4px; }}
svg {{ width: 100%; height: auto; display: block; }}
svg .grid {{ stroke: var(--grid); stroke-width: 1; }}
svg .axis {{ stroke: var(--baseline); stroke-width: 1; }}
svg .rule {{ stroke: var(--ink2); stroke-width: 1; stroke-dasharray: 6 3; }}
svg .event {{ stroke: var(--muted); stroke-width: 1; stroke-dasharray: 3 3; }}
svg .event-fault {{
  stroke: var(--critical); stroke-width: 1.5; stroke-dasharray: 4 3;
}}
svg text {{ fill: var(--ink2); font: 11px system-ui, sans-serif; }}
svg path {{ fill: none; stroke-width: 2; }}
{slots}
.legend {{ display: flex; flex-wrap: wrap; gap: 14px; margin-top: 6px; }}
.legend .key {{ color: var(--ink2); font-size: 12px; }}
.swatch {{
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px;
}}
footer {{ margin-top: 48px; color: var(--muted); font-size: 12px; }}
""".strip()


def _num(value, digits: int = 2) -> str:
    """Human cell text: None -> em dash, floats trimmed, ints plain."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e6:
            return f"{int(value):,}"
        return f"{value:,.{digits}f}"
    return escape(str(value))


def _tile(name: str, value, *, bad: bool = False, digits: int = 2) -> str:
    cls = "tile bad" if bad else "tile"
    return (
        f'<div class="{cls}"><div class="value">{_num(value, digits)}</div>'
        f'<div class="name">{escape(name)}</div></div>'
    )


def _table(headers: list[str], rows: list[list[str]]) -> str:
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = "".join(f"<tr>{''.join(row)}</tr>" for row in rows)
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _td(value, *, bad: bool = False, digits: int = 2) -> str:
    cls = ' class="bad"' if bad else ""
    return f"<td{cls}>{_num(value, digits)}</td>"


def _fault_label(event: dict) -> str:
    where = event.get("pod")
    where = f"pod {where}" if where is not None else event.get("zone") or ""
    tenant = event.get("tenant")
    prefix = f"[{tenant}] " if tenant else ""
    return (
        f"{prefix}{event['kind']} {where} @ {event['time_s']:.0f}s "
        f"(requeued {event.get('requeued', 0)}, lost {event.get('lost', 0)})"
    ).strip()


def _fault_marks(fault_events: list[dict]) -> list[EventMark]:
    return [
        EventMark(x=e["time_s"], label=_fault_label(e), kind="fault")
        for e in fault_events
    ]


def _fault_section(fault_events: list[dict], *, tenant_col: bool) -> str:
    """#faults: one table row per injected fault, icon + label (never
    color alone) on the disruptive ones."""
    if not fault_events:
        return (
            '<h2 id="faults">Faults</h2>'
            '<p class="muted">No fault events fired during this run.</p>'
        )
    headers = ["time (s)", "kind", "pod", "zone", "requeued", "lost", "effect"]
    if tenant_col:
        headers.insert(1, "tenant")
    rows = []
    for e in fault_events:
        disruptive = (e.get("lost") or 0) > 0 or (e.get("requeued") or 0) > 0
        effect = []
        if e.get("factor") is not None:
            effect.append(f"×{e['factor']:g} slowdown")
        if e.get("restart_s") is not None:
            effect.append(f"restart {e['restart_s']:g}s")
        row = [
            _td(e["time_s"], digits=1),
            f"<td>{'⚠ ' if disruptive else ''}{escape(e['kind'])}</td>",
            _td(e.get("pod")),
            _td(e.get("zone")),
            _td(e.get("requeued"), bad=(e.get("requeued") or 0) > 0),
            _td(e.get("lost"), bad=(e.get("lost") or 0) > 0),
            f"<td>{escape(', '.join(effect)) or '—'}</td>",
        ]
        if tenant_col:
            row.insert(1, f"<td>{escape(str(e.get('tenant', '')))}</td>")
        rows.append(row)
    return f'<h2 id="faults">Faults</h2>{_table(headers, rows)}'


def _latency_table(payload: dict) -> str:
    rows = []
    for name, key in (("TTFT", "ttft"), ("Inter-token", "itl"), ("End-to-end", "e2e")):
        stats = payload[key]
        rows.append(
            [
                f"<td>{name}</td>",
                _td(stats["count"]),
                _td(stats["median_s"], digits=3),
                _td(stats["p95_s"], digits=3),
                _td(stats["p99_s"], digits=3),
                _td(stats["mean_s"], digits=3),
            ]
        )
    return _table(
        ["latency", "count", "median (s)", "p95 (s)", "p99 (s)", "mean (s)"], rows
    )


def _pods_from_scale_events(payload: dict) -> Series | None:
    """Provisioned pod count as a step series built from scale events."""
    events = payload.get("scale_events") or []
    if not events:
        return None
    x = [0.0] + [e["time_s"] for e in events]
    y = [events[0]["from_pods"]] + [e["to_pods"] for e in events]
    return Series(label="pods", x=x, y=y, slot=0, step=True)


def _render_fleet_body(payload: dict) -> str:
    out: list[str] = []
    marks = _fault_marks(payload.get("fault_events") or [])

    nav = (
        '<nav><a href="#overview">overview</a><a href="#latency">latency</a>'
        '<a href="#throughput">throughput</a>'
        '<a href="#scale-events">scale events</a><a href="#faults">faults</a>'
        '<a href="#pods">pods</a></nav>'
    )
    out.append(nav)

    out.append('<h2 id="overview">Overview</h2>')
    ttft_p95 = payload["ttft"]["p95_s"]
    out.append(
        '<div class="tiles">'
        + _tile("arrivals", payload["arrivals"])
        + _tile("completed", payload["requests_completed"])
        + _tile("shed", payload["shed"], bad=payload["shed"] > 0)
        + _tile("lost", payload["lost"], bad=payload["lost"] > 0)
        + _tile(
            "TTFT p95 (s)",
            ttft_p95,
            digits=3,
            bad=_breaches(payload, ttft_p95),
        )
        + _tile("tokens/s", payload["throughput_tokens_per_s"], digits=1)
        + _tile("pod-seconds", payload["pod_seconds"], digits=0)
        + "</div>"
    )
    out.append(
        "<p>"
        + escape(
            f"{payload['n_pods']} pods, {payload['traffic']} traffic, "
            f"{payload['router']} router, {payload['duration_s']:.0f}s "
            f"({payload['warmup_s']:.0f}s warmup)."
        )
        + "</p>"
    )
    recovery = payload.get("recovery")
    if recovery:
        rec = recovery["recovery_time_s"]
        out.append(
            "<p>"
            + escape(
                "Recovery after disruption: "
                + (f"{rec:.1f}s back under SLO" if rec is not None else "not recovered")
                + f", degraded-window SLO attainment "
                + _num(recovery["degraded_slo_attainment"], 3)
                + "."
            )
            + "</p>"
        )

    out.append('<h2 id="latency">Latency</h2>')
    series = payload.get("series")
    slo_s = (payload.get("recovery") or {}).get("slo_p95_ttft_s")
    if series:
        out.append(
            line_chart(
                [
                    Series(
                        label="TTFT p95",
                        x=series["ttft_p95"]["t"],
                        y=series["ttft_p95"]["p95_s"],
                        slot=0,
                    )
                ],
                title=f"TTFT p95 over time ({series['window_s']:.0f}s windows)",
                y_label="seconds",
                events=marks,
                y_rule=slo_s,
                y_rule_label="SLO" if slo_s is not None else "",
            )
        )
    else:
        out.append(
            '<p class="muted">No time series in this payload '
            "(run was summarised without samples).</p>"
        )
    out.append(_latency_table(payload))

    out.append('<h2 id="throughput">Throughput</h2>')
    if series:
        out.append(
            line_chart(
                [
                    Series(
                        label="throughput",
                        x=series["throughput"]["t"],
                        y=series["throughput"]["tokens_per_s"],
                        slot=2,
                    )
                ],
                title="Generated tokens per second",
                y_label="tokens/s",
                events=marks,
            )
        )
    out.append(
        "<p>"
        + escape(
            f"{payload['tokens_generated']:,} tokens generated; "
            f"{payload['admitted']:,} admitted of {payload['arrivals']:,} "
            f"arrivals ({payload['deferrals']:,} deferrals, "
            f"{payload['requeued']:,} requeued)."
        )
        + "</p>"
    )

    out.append('<h2 id="scale-events">Scale events</h2>')
    pods_series = _pods_from_scale_events(payload)
    if pods_series is not None:
        out.append(
            line_chart(
                [pods_series],
                title="Provisioned pods",
                y_label="pods",
                events=marks,
            )
        )
        rows = []
        for e in payload["scale_events"]:
            clipped = e["to_pods"] != e["requested"]
            rows.append(
                [
                    _td(e["time_s"], digits=1),
                    _td(e["from_pods"]),
                    _td(e["requested"]),
                    _td(e["to_pods"], bad=clipped),
                    f"<td>{escape(e['reason'])}</td>",
                    f"<td>{escape(e['constraint'] or '—')}</td>",
                ]
            )
        out.append(
            _table(
                ["time (s)", "from", "requested", "to", "reason", "constraint"],
                rows,
            )
        )
    else:
        out.append('<p class="muted">No autoscaler decisions in this run.</p>')

    out.append(_fault_section(payload.get("fault_events") or [], tenant_col=False))

    out.append('<h2 id="pods">Pods</h2>')
    rows = []
    for p in payload["per_pod"]:
        rows.append(
            [
                f"<td>{_num(p['pod'])}</td>",
                f"<td>{escape(str(p['zone']))}</td>",
                f"<td>{escape(p['state'])}</td>",
                _td(p["arrivals_routed"]),
                _td(p["requests_completed"]),
                _td(p["tokens_generated"]),
                _td(p["throughput_tokens_per_s"], digits=1),
                _td(p["queue_depth_end"]),
            ]
        )
    out.append(
        _table(
            [
                "pod",
                "zone",
                "state",
                "routed",
                "completed",
                "tokens",
                "tokens/s",
                "queue end",
            ],
            rows,
        )
    )
    return "".join(out)


def _breaches(payload: dict, ttft_p95) -> bool:
    slo_s = (payload.get("recovery") or {}).get("slo_p95_ttft_s")
    return slo_s is not None and ttft_p95 is not None and ttft_p95 > slo_s


def _render_cluster_body(payload: dict) -> str:
    out: list[str] = []
    tenants = payload["tenants"]
    fault_events = payload.get("fault_events") or []
    marks = _fault_marks(fault_events)
    series = payload.get("series") or {}

    anchors = [
        ("#overview", "overview"),
        ("#occupancy", "occupancy"),
        ("#tenants", "tenants"),
        ("#contention", "contention"),
        ("#billing", "billing"),
    ]
    if payload.get("cloud"):
        anchors.append(("#cloud", "cloud"))
    anchors.append(("#faults", "faults"))
    out.append(
        "<nav>"
        + "".join(f'<a href="{a}">{escape(t)}</a>' for a, t in anchors)
        + "</nav>"
    )

    out.append('<h2 id="overview">Overview</h2>')
    arrivals = sum(t["arrivals"] for t in tenants)
    completed = sum(t["requests_completed"] for t in tenants)
    lost = sum(t["lost"] for t in tenants)
    slo_misses = sum(1 for t in tenants if t["meets_slo"] is False)
    out.append(
        '<div class="tiles">'
        + _tile("tenants", len(tenants))
        + _tile("arrivals", arrivals)
        + _tile("completed", completed)
        + _tile("lost", lost, bad=lost > 0)
        + _tile("SLO misses", slo_misses, bad=slo_misses > 0)
        + _tile("total cost ($)", payload["total_cost"], digits=4)
        + _tile(
            "contended scale-ups",
            len(payload["contended_scale_events"]),
            bad=bool(payload["contended_scale_events"]),
        )
        + "</div>"
    )
    peak = payload["peak_occupancy"]
    capacity = payload["capacity"]
    out.append(
        "<p>"
        + escape(
            f"{payload['duration_s']:.0f}s run over "
            + ", ".join(
                f"{gpu}: peak {peak.get(gpu, 0)}/{cap} GPUs"
                for gpu, cap in sorted(capacity.items())
            )
            + "."
        )
        + "</p>"
    )

    out.append('<h2 id="occupancy">Occupancy</h2>')
    occupancy = series.get("occupancy") or {}
    if occupancy:
        gpu_series = [
            Series(label=gpu, x=data["t"], y=data["used"], slot=i, step=True)
            for i, (gpu, data) in enumerate(sorted(occupancy.items()))
        ]
        single_cap = (
            capacity[gpu_series[0].label]
            if len(gpu_series) == 1 and gpu_series[0].label in capacity
            else None
        )
        out.append(
            line_chart(
                gpu_series,
                title="GPU occupancy",
                y_label="GPUs in use",
                events=marks,
                y_rule=single_cap,
                y_rule_label="capacity" if single_cap is not None else "",
                y_top=max(capacity.values()) if capacity else None,
            )
        )
    else:
        out.append('<p class="muted">No occupancy series in this payload.</p>')

    out.append('<h2 id="tenants">Tenants</h2>')
    rows = []
    for t in tenants:
        rows.append(
            [
                f'<td><a href="#tenant-{escape(t["name"])}">'
                f'{escape(t["name"])}</a></td>',
                f"<td>{escape(t['profile'])}</td>",
                _td(t["pods_end"]),
                _td(t["arrivals"]),
                _td(t["requests_completed"]),
                _td(t["shed"], bad=t["shed"] > 0),
                _td(t["lost"], bad=t["lost"] > 0),
                _td(t["ttft_p95_s"], digits=3),
                _td(t["meets_slo"], bad=t["meets_slo"] is False),
                _td(t["cost"], digits=4),
            ]
        )
    out.append(
        _table(
            [
                "tenant",
                "profile",
                "pods end",
                "arrivals",
                "completed",
                "shed",
                "lost",
                "TTFT p95 (s)",
                "meets SLO",
                "cost ($)",
            ],
            rows,
        )
    )

    tenant_ttft = series.get("tenant_ttft_p95") or {}
    for i, t in enumerate(tenants):
        name = t["name"]
        out.append(f'<h3 id="tenant-{escape(name)}">Tenant: {escape(name)}</h3>')
        data = tenant_ttft.get(name)
        tenant_marks = [
            EventMark(x=e["time_s"], label=_fault_label(e), kind="fault")
            for e in fault_events
            if e.get("tenant") == name
        ]
        if data:
            out.append(
                line_chart(
                    [
                        Series(
                            label=name,
                            x=data["t"],
                            y=data["p95_s"],
                            slot=i % MAX_SERIES,
                        )
                    ],
                    title=f"{name}: TTFT p95 over time",
                    y_label="seconds",
                    events=tenant_marks,
                )
            )
        else:
            out.append(
                '<p class="muted">No latency series kept for this tenant.</p>'
            )
        out.append(
            "<p>"
            + escape(
                f"{t['requests_completed']:,} completed "
                f"({_num(t['throughput_tokens_per_s'], 1)} tokens/s), "
                f"{t['requeued']:,} requeued, "
                f"{t['pod_seconds']:.0f} pod-seconds"
                + (
                    f" ({t['cloud_pod_seconds']:.0f} on cloud)"
                    if t["cloud_pod_seconds"]
                    else ""
                )
                + "."
            )
            + "</p>"
        )

    out.append('<h2 id="contention">Contention</h2>')
    contended = payload["contended_scale_events"]
    if contended:
        rows = [
            [
                _td(e["time_s"], digits=1),
                f"<td>{escape(e['tenant'])}</td>",
                _td(e["from_pods"]),
                _td(e["requested"]),
                _td(e["to_pods"], bad=True),
                f"<td>{escape(e['constraint'] or '—')}</td>",
            ]
            for e in contended
        ]
        out.append(
            _table(
                ["time (s)", "tenant", "from", "requested", "granted", "constraint"],
                rows,
            )
        )
    else:
        out.append(
            '<p class="muted">No scale-up was denied or clipped by '
            "capacity during this run.</p>"
        )

    out.append('<h2 id="billing">Billing</h2>')
    if payload["total_cost"] is not None:
        rows = []
        for t in tenants:
            line = t["billing"] or {}
            tiers = ", ".join(
                f"{name} {_num(item['cost'], 4)}"
                for name, item in sorted(line.items())
                if name != "total" and item
            )
            rows.append(
                [
                    f"<td>{escape(t['name'])}</td>",
                    _td(t["pod_seconds"], digits=0),
                    _td(t["cloud_pod_seconds"], digits=0),
                    f"<td>{escape(tiers) or '—'}</td>",
                    _td(line.get("total"), digits=4),
                ]
            )
        rows.append(
            [
                "<td><strong>total</strong></td>",
                "<td></td>",
                "<td></td>",
                "<td></td>",
                _td(payload["total_cost"], digits=4),
            ]
        )
        out.append(
            _table(
                ["tenant", "pod-s", "cloud pod-s", "tier breakdown ($)", "cost ($)"],
                rows,
            )
        )
    else:
        out.append(
            '<p class="muted">No pricing table was supplied; '
            "costs are not computed.</p>"
        )

    cloud = payload.get("cloud")
    if cloud:
        out.append('<h2 id="cloud">Cloud</h2>')
        out.append(
            "<p>"
            + escape(
                f"{cloud['usage_events']} cloud usage events, "
                f"{cloud['cloud_pod_seconds_total']:.0f} cloud pod-seconds "
                "total."
            )
            + "</p>"
        )
        rows = [
            [
                f"<td>{escape(tenant)}</td>",
                f"<td>{escape(mode)}</td>",
            ]
            for tenant, mode in sorted(cloud["modes"].items())
        ]
        if rows:
            out.append(_table(["tenant", "cloud mode"], rows))
        quota = cloud.get("quota_gpus") or {}
        if quota:
            out.append(
                "<p>"
                + escape(
                    "Cloud quota: "
                    + ", ".join(
                        f"{gpu}: {n}" for gpu, n in sorted(quota.items())
                    )
                    + " GPUs."
                )
                + "</p>"
            )

    out.append(_fault_section(fault_events, tenant_col=True))
    return "".join(out)


def render_report(result, *, title: str | None = None) -> str:
    """Render a result (or its ``to_dict`` payload) to standalone HTML.

    ``result`` may be a live :class:`SimResult` or the already-parsed
    JSON payload a previous ``--json`` run wrote; both flow through the
    identical dict-driven path. Raises :class:`ValueError` for payloads
    whose ``kind`` the report does not know.
    """
    payload = result if isinstance(result, dict) else result.to_dict()
    kind = payload.get("kind")
    if kind == "fleet":
        body = _render_fleet_body(payload)
        default_title = "Fleet run report"
        subtitle = (
            f"{payload['n_pods']} pods · {payload['traffic']} traffic "
            f"· {payload['router']} router · "
            f"{payload['duration_s']:.0f}s"
        )
    elif kind == "cluster":
        body = _render_cluster_body(payload)
        default_title = "Cluster run report"
        subtitle = (
            f"{len(payload['tenants'])} tenants · "
            f"{payload['duration_s']:.0f}s"
        )
    else:
        raise ValueError(f"cannot render report for result kind {kind!r}")
    title = title or default_title
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>\n{_css()}\n</style>\n"
        "</head><body>\n"
        f"<h1>{escape(title)}</h1>\n"
        f'<p class="sub">{escape(subtitle)}</p>\n'
        f"{body}\n"
        "<footer>Rendered by repro report — fully self-contained, "
        "no external resources.</footer>\n"
        "</body></html>\n"
    )
