"""Small statistical helpers used across the library."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["median", "percentile", "relative_std", "geometric_mean", "harmonic_mean"]


def median(values: Sequence[float] | np.ndarray) -> float:
    """Median of ``values``; NaN for empty input (matches benchmark semantics
    where an experiment that produced no tokens has undefined latency)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.median(arr))


def percentile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """``q``-th percentile (0..100) of ``values``; NaN for empty input."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def relative_std(values: Sequence[float] | np.ndarray) -> float:
    """Relative standard deviation (std / mean), as used by Table I's
    pod-scaling analysis. Returns NaN when the mean is zero."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    m = arr.mean()
    if m == 0:
        return float("nan")
    return float(arr.std() / abs(m))


def geometric_mean(values: Sequence[float] | np.ndarray) -> float:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0 or np.any(arr <= 0):
        return float("nan")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(a: float, b: float) -> float:
    """Harmonic mean of two non-negative numbers; 0 if either is 0."""
    if a <= 0 or b <= 0:
        return 0.0
    return 2.0 * a * b / (a + b)
