"""Shared utilities: deterministic RNG handling, ASCII tables, small stats."""

from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.tables import format_table
from repro.utils.stats import median, percentile, relative_std

__all__ = [
    "derive_rng",
    "spawn_seed",
    "format_table",
    "median",
    "percentile",
    "relative_std",
]
