"""Shared utilities: deterministic RNG handling, ASCII tables, small
stats, and deterministic process-parallel fan-out."""

from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.tables import format_table
from repro.utils.stats import median, percentile, relative_std
from repro.utils.parallel import fork_map

__all__ = [
    "derive_rng",
    "spawn_seed",
    "format_table",
    "fork_map",
    "median",
    "percentile",
    "relative_std",
]
