"""Deterministic random-number management.

Every stochastic component in the library takes an integer seed (or an
``numpy.random.Generator``) so that experiments are exactly reproducible.
Sub-streams are derived by hashing a parent seed together with a string
label, which keeps independent components statistically independent while
remaining stable across runs and machines.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_seed", "derive_rng", "as_rng"]

_MASK64 = (1 << 64) - 1


def spawn_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the parent seed and the labels'
    ``repr``; it is stable across processes and Python versions (unlike
    ``hash``) and avoids correlated streams that arise from naive
    ``seed + i`` schemes.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def derive_rng(seed: int, *labels: object) -> np.random.Generator:
    """Return a ``numpy`` Generator seeded from ``seed`` and ``labels``."""
    return np.random.default_rng(spawn_seed(seed, *labels))


def as_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce an int seed / Generator / None into a Generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        return np.random.default_rng()
    return np.random.default_rng(int(seed_or_rng))
