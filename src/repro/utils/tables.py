"""Plain-text table rendering for benchmark harness output.

The benchmark targets print the same rows/series the paper reports; this
module renders them as aligned ASCII tables so the output is directly
comparable to the paper's tables.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_matrix"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[object]],
    floatfmt: str = ".1f",
    corner: str = "",
    title: str | None = None,
) -> str:
    """Render a labelled matrix (e.g. the Table III feasibility grid)."""
    headers = [corner, *col_labels]
    rows = [[label, *row] for label, row in zip(row_labels, values)]
    return format_table(headers, rows, floatfmt=floatfmt, title=title)
