"""Deterministic process-parallel fan-out for sweep evaluation.

Sweeps in this codebase (elastic recommendation candidates, feedback
capacity candidates, batches of scenario files) share three properties:
every item is evaluated by a pure, deterministically seeded function;
the work payload is riddled with closures (policy factories, traffic
factories) that cannot cross a pickle boundary; and callers depend on
results arriving in *item order*, not completion order, so that
``jobs=N`` output is byte-identical to the serial sweep.

:func:`fork_map` packages the pattern: a fork-context
``ProcessPoolExecutor`` whose workers inherit the function and item
list through a module global set just before the fork, so only integer
indices ever cross the pipe. ``Executor.map`` guarantees index order on
the way back. Platforms without ``fork`` (Windows, some macOS setups)
and ``jobs=1`` run the identical plain loop instead — same call
sequence, same results, no pool.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

__all__ = ["fork_map"]

T = TypeVar("T")
R = TypeVar("R")

#: (fn, items) for the in-flight fork_map, inherited by forked workers.
_TASK: tuple[Callable[[Any], Any], Sequence[Any]] | None = None


def _call_index(index: int) -> Any:
    fn, items = _TASK
    return fn(items[index])


def fork_map(
    fn: Callable[[T], R], items: Sequence[T], jobs: int | None = 1
) -> list[R]:
    """``[fn(item) for item in items]``, optionally across processes.

    Results are always ordered by item index. ``jobs`` is clamped to
    ``len(items)``; ``jobs <= 1``, a single item, a platform without the
    ``fork`` start method, or a nested call from inside a worker all
    fall back to the serial loop — the parallel path is an execution
    detail, never a semantic one. Exceptions raised by ``fn`` propagate
    to the caller; a worker process that dies outright surfaces as
    ``concurrent.futures.process.BrokenProcessPool`` rather than a
    hang.

    ``fn`` and ``items`` may hold arbitrary unpicklable state (they are
    inherited by the fork, not pickled), but each *result* must be
    picklable to travel back.
    """
    global _TASK
    items = list(items)
    jobs = 1 if jobs is None else min(int(jobs), len(items))
    if (
        jobs <= 1
        or len(items) <= 1
        or _TASK is not None
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        return [fn(item) for item in items]
    _TASK = (fn, items)
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            # Batch indices per pipe round-trip: one message per item is
            # measurable overhead on large sweeps, and chunking keeps
            # ``Executor.map``'s index-order guarantee intact.
            chunksize = max(1, len(items) // (jobs * 4))
            return list(pool.map(_call_index, range(len(items)), chunksize=chunksize))
    finally:
        _TASK = None
