"""Load-testing experiments (paper §III-C3).

Each experiment simulates ``u`` concurrent closed-loop users sending
requests from the workload generator to one inference-service pod for a
fixed duration (2 minutes by default). From the logged token timestamps
we extract the paper's four metrics:

* **TTFT** — median time to first output token (queueing + prompt phase),
* **nTTFT** — median of per-request TTFT / input-token count,
* **ITL** — median latency between subsequent output tokens,
* **throughput** — total output tokens generated / experiment duration.

Both entry points are thin wrappers over the event-driven simulation
core (:mod:`repro.simulation`): a single-pod
:class:`~repro.simulation.fleet.FleetSimulator` run under
:class:`~repro.simulation.traffic.ClosedLoopTraffic` or
:class:`~repro.simulation.traffic.PoissonTraffic`. The wrapper keeps the
exact RNG stream layout of the original hand-written driver loops, so
seeded results are bit-for-bit identical to the pre-refactor harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.inference.engine import ContinuousBatchingEngine
from repro.inference.request import RequestResult
from repro.simulation.fleet import FleetSimulator, RoundRobinRouter
from repro.simulation.traffic import ClosedLoopTraffic, PoissonTraffic, RequestSource
from repro.utils.rng import derive_rng
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "LoadTestResult",
    "run_load_test",
    "run_open_loop_test",
    "noisy_medians",
    "DEFAULT_USER_COUNTS",
]

#: The paper's default load ladder: 1, 2, 4, ..., 128 concurrent users.
DEFAULT_USER_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class LoadTestResult:
    """Metrics from one (pod, load) load-testing experiment.

    ``concurrent_users`` is the closed-loop population (0 for open-loop
    runs); open-loop runs report the injected ``arrivals`` and the
    ``offered_rate_per_s`` they were driven at instead.
    """

    concurrent_users: int
    duration_s: float
    ttft_median_s: float
    nttft_median_s: float
    itl_median_s: float
    throughput_tokens_per_s: float
    e2e_median_s: float
    requests_completed: int
    first_tokens_served: int
    tokens_generated: int
    queue_depth_end: int
    arrivals: int = 0
    offered_rate_per_s: float = float("nan")
    results: list[RequestResult] = field(default_factory=list, repr=False)

    def as_row(self) -> dict[str, float]:
        """Flat dict for dataset assembly."""
        return {
            "concurrent_users": float(self.concurrent_users),
            "arrivals": float(self.arrivals),
            "offered_rate_per_s": self.offered_rate_per_s,
            "ttft_median_s": self.ttft_median_s,
            "nttft_median_s": self.nttft_median_s,
            "itl_median_s": self.itl_median_s,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "e2e_median_s": self.e2e_median_s,
        }


def noisy_medians(
    ttft: np.ndarray,
    ttft_inputs: np.ndarray,
    itl: np.ndarray,
    completed: list[RequestResult],
    tokens_generated: int,
    elapsed: float,
    noise_rng: np.random.Generator,
    sigma: float,
) -> tuple[float, float, float, float, float]:
    """The shared metric assembly: medians under client measurement noise.

    The draw order (ttft, nttft, itl, throughput, e2e — each skipped when
    its sample set is empty) is part of the seeded contract; do not
    reorder.
    """

    def noisy(value: float) -> float:
        if not np.isfinite(value) or sigma <= 0:
            return value
        return float(value * noise_rng.lognormal(0.0, sigma))

    ttft_median = noisy(float(np.median(ttft))) if ttft.size else float("nan")
    nttft_median = (
        noisy(float(np.median(ttft / ttft_inputs))) if ttft.size else float("nan")
    )
    itl_median = noisy(float(np.median(itl))) if itl.size else float("nan")
    throughput = noisy(tokens_generated / elapsed)
    e2e = (
        noisy(float(np.median([r.e2e_latency for r in completed])))
        if completed
        else float("nan")
    )
    return ttft_median, nttft_median, itl_median, throughput, e2e


def run_load_test(
    engine: ContinuousBatchingEngine,
    generator: WorkloadGenerator,
    concurrent_users: int,
    duration_s: float = 120.0,
    seed: int = 0,
    keep_results: bool = False,
    measurement_noise_sigma: float = 0.015,
    noise_seed: int | None = None,
    warmup_s: float = 0.0,
) -> LoadTestResult:
    """Run one closed-loop load-testing experiment on a fresh engine.

    Users behave as in the paper's harness: each user has exactly one
    request in flight; on completion it immediately submits the next one.
    ``measurement_noise_sigma`` applies a small lognormal perturbation to
    the reported medians, standing in for client-side measurement noise
    (this is what gives no-effect deployment knobs a tiny non-zero MDI in
    the Fig 4 study, exactly as on a real testbed). ``noise_seed`` decouples
    the measurement-noise stream from the workload stream — controlled
    sensitivity studies rerun the same workload under fresh noise.

    ``warmup_s`` excludes the initial transient: metric collection
    restarts at the warmup boundary and end-to-end latency counts only
    requests *submitted* after it, avoiding the survivor bias a short
    window introduces for saturated systems with long request cycles.
    ``duration_s`` is the measured (post-warmup) window.
    """
    if concurrent_users < 1:
        raise ValueError(f"concurrent_users must be >= 1, got {concurrent_users}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if warmup_s < 0:
        raise ValueError(f"warmup_s must be >= 0, got {warmup_s}")
    if engine.time > 0 or engine.has_work():
        raise ValueError("run_load_test requires a fresh engine")

    rng = derive_rng(seed, "loadtest", concurrent_users)
    source = RequestSource(generator, rng, engine.max_batch_weight)
    fleet = FleetSimulator(
        [engine], ClosedLoopTraffic(concurrent_users), RoundRobinRouter(), source
    )
    fleet.run(duration_s=duration_s, warmup_s=warmup_s, assemble_result=False)

    completed = [r for r in engine.metrics.completed if r.submitted_at >= warmup_s]
    elapsed = max(engine.time, warmup_s + duration_s) - warmup_s
    ttft, ttft_inputs = engine.ttft_samples()
    itl = engine.itl_samples()

    noise_rng = derive_rng(
        seed if noise_seed is None else noise_seed,
        "measurement-noise",
        concurrent_users,
    )
    ttft_median, nttft_median, itl_median, throughput, e2e = noisy_medians(
        ttft,
        ttft_inputs,
        itl,
        completed,
        engine.stats.tokens_generated,
        elapsed,
        noise_rng,
        measurement_noise_sigma,
    )

    return LoadTestResult(
        concurrent_users=concurrent_users,
        duration_s=elapsed,
        ttft_median_s=ttft_median,
        nttft_median_s=nttft_median,
        itl_median_s=itl_median,
        throughput_tokens_per_s=throughput,
        e2e_median_s=e2e,
        requests_completed=len(completed),
        first_tokens_served=int(ttft.size),
        tokens_generated=engine.stats.tokens_generated,
        queue_depth_end=engine.queue_depth,
        arrivals=fleet.arrivals,
        results=completed if keep_results else [],
    )


def run_open_loop_test(
    engine: ContinuousBatchingEngine,
    generator: WorkloadGenerator,
    arrival_rate_per_s: float,
    duration_s: float = 120.0,
    seed: int = 0,
    measurement_noise_sigma: float = 0.015,
) -> LoadTestResult:
    """Open-loop load test: Poisson arrivals at a fixed rate.

    The paper's harness is closed-loop (a fixed population of users, one
    request in flight each). Production front ends often see open-loop
    traffic instead: requests arrive whether or not earlier ones have
    finished, so overload manifests as unbounded queueing rather than a
    throughput plateau. Useful for stress analysis beyond the paper's
    protocol; metrics match :func:`run_load_test`, with the injected
    arrival count in ``arrivals`` and the driving rate in
    ``offered_rate_per_s`` (``concurrent_users`` is 0 — there is no
    closed-loop population).
    """
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival_rate_per_s must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if engine.time > 0 or engine.has_work():
        raise ValueError("run_open_loop_test requires a fresh engine")

    rng = derive_rng(seed, "open-loop", arrival_rate_per_s)
    arrival_rng = derive_rng(seed, "open-loop-arrivals", arrival_rate_per_s)
    source = RequestSource(generator, rng, engine.max_batch_weight)
    fleet = FleetSimulator(
        [engine],
        PoissonTraffic(arrival_rate_per_s, rng=arrival_rng),
        RoundRobinRouter(),
        source,
    )
    fleet.run(duration_s=duration_s, assemble_result=False)

    completed = list(engine.metrics.completed)
    elapsed = max(engine.time, duration_s)
    ttft, ttft_inputs = engine.ttft_samples()
    itl = engine.itl_samples()
    noise_rng = derive_rng(seed, "open-loop-noise", arrival_rate_per_s)
    ttft_median, nttft_median, itl_median, throughput, e2e = noisy_medians(
        ttft,
        ttft_inputs,
        itl,
        completed,
        engine.stats.tokens_generated,
        elapsed,
        noise_rng,
        measurement_noise_sigma,
    )

    return LoadTestResult(
        concurrent_users=0,
        duration_s=elapsed,
        ttft_median_s=ttft_median,
        nttft_median_s=nttft_median,
        itl_median_s=itl_median,
        throughput_tokens_per_s=throughput,
        e2e_median_s=e2e,
        requests_completed=len(completed),
        first_tokens_served=int(ttft.size),
        tokens_generated=engine.stats.tokens_generated,
        queue_depth_end=engine.queue_depth,
        arrivals=fleet.arrivals,
        offered_rate_per_s=arrival_rate_per_s,
    )
