"""The performance characterization dataset (paper §V-B).

One row per (LLM, GPU profile, concurrent-user count) with the four
performance metrics and the tuned maximum batch weight. This is the
training data of the GPU recommendation tool, and the artifact the paper
open-sourced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PerfRecord", "PerfDataset"]


@dataclass(frozen=True)
class PerfRecord:
    """One measurement row."""

    llm: str
    profile: str
    gpu_name: str
    gpu_count: int
    concurrent_users: int
    max_batch_weight: int
    ttft_median_s: float
    nttft_median_s: float
    itl_median_s: float
    throughput_tokens_per_s: float
    e2e_median_s: float


@dataclass
class PerfDataset:
    """Columnar collection of :class:`PerfRecord` rows."""

    records: list[PerfRecord] = field(default_factory=list)

    def add(self, record: PerfRecord) -> None:
        self.records.append(record)

    def extend(self, records: list[PerfRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ---- queries -----------------------------------------------------------

    def llms(self) -> list[str]:
        """Distinct LLM names, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.llm, None)
        return list(seen)

    def profiles(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.profile, None)
        return list(seen)

    def user_counts(self) -> list[int]:
        return sorted({r.concurrent_users for r in self.records})

    def filter(
        self,
        llm: str | None = None,
        profile: str | None = None,
        concurrent_users: int | None = None,
    ) -> "PerfDataset":
        out = [
            r
            for r in self.records
            if (llm is None or r.llm == llm)
            and (profile is None or r.profile == profile)
            and (concurrent_users is None or r.concurrent_users == concurrent_users)
        ]
        return PerfDataset(records=out)

    def exclude_llm(self, llm: str) -> "PerfDataset":
        """All rows except one LLM's — used by leave-one-LLM-out CV."""
        return PerfDataset(records=[r for r in self.records if r.llm != llm])

    def lookup(
        self, llm: str, profile: str, concurrent_users: int
    ) -> PerfRecord | None:
        for r in self.records:
            if (
                r.llm == llm
                and r.profile == profile
                and r.concurrent_users == concurrent_users
            ):
                return r
        return None

    def series(
        self, llm: str, profile: str, metric: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(user counts, metric values) sorted by user count."""
        rows = sorted(
            self.filter(llm=llm, profile=profile).records,
            key=lambda r: r.concurrent_users,
        )
        users = np.array([r.concurrent_users for r in rows])
        values = np.array([getattr(r, metric) for r in rows], dtype=float)
        return users, values

    def column(self, name: str) -> np.ndarray:
        """One column across all rows (numeric columns as float array)."""
        values = [getattr(r, name) for r in self.records]
        if values and isinstance(values[0], str):
            return np.array(values, dtype=object)
        return np.array(values, dtype=float)

    # ---- persistence ------------------------------------------------------------

    _COLUMNS = (
        "llm",
        "profile",
        "gpu_name",
        "gpu_count",
        "concurrent_users",
        "max_batch_weight",
        "ttft_median_s",
        "nttft_median_s",
        "itl_median_s",
        "throughput_tokens_per_s",
        "e2e_median_s",
    )

    def save(self, path: str) -> None:
        arrays = {}
        for col in self._COLUMNS:
            values = [getattr(r, col) for r in self.records]
            if values and isinstance(values[0], str):
                arrays[col] = np.array(values, dtype=object)
            else:
                arrays[col] = np.array(values)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "PerfDataset":
        with np.load(path, allow_pickle=True) as archive:
            n = len(archive["llm"])
            records = [
                PerfRecord(
                    llm=str(archive["llm"][i]),
                    profile=str(archive["profile"][i]),
                    gpu_name=str(archive["gpu_name"][i]),
                    gpu_count=int(archive["gpu_count"][i]),
                    concurrent_users=int(archive["concurrent_users"][i]),
                    max_batch_weight=int(archive["max_batch_weight"][i]),
                    ttft_median_s=float(archive["ttft_median_s"][i]),
                    nttft_median_s=float(archive["nttft_median_s"][i]),
                    itl_median_s=float(archive["itl_median_s"][i]),
                    throughput_tokens_per_s=float(
                        archive["throughput_tokens_per_s"][i]
                    ),
                    e2e_median_s=float(archive["e2e_median_s"][i]),
                )
                for i in range(n)
            ]
        return cls(records=records)
