"""Maximum-batch-weight tuning via binary search (paper §III-C2).

Before starting the inference server, LLM-Pilot binary-searches the
largest maximum batch weight that survives a battery of OOM corner-case
batches (longest prompt, longest generation, maximal batch size,
balanced). Validity is monotone in the weight, so binary search finds
the frontier; the result is the weight the server is started with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.profile import GPUProfile
from repro.inference.memory import MemoryConfig, MemoryModel, corner_case_batches
from repro.models.llm import LLMSpec

__all__ = ["TuningResult", "BatchWeightTuner"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning run."""

    llm: str
    profile: str
    max_batch_weight: int
    search_steps: int
    probes: int  # corner-case batches evaluated
    feasible: bool

    def __bool__(self) -> bool:
        return self.feasible


class BatchWeightTuner:
    """Binary search for the largest OOM-safe maximum batch weight."""

    def __init__(
        self,
        llm: LLMSpec,
        profile: GPUProfile,
        memory_config: MemoryConfig | None = None,
        resolution: int = 64,
        max_input_tokens: int = 4093,
    ) -> None:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.llm = llm
        self.profile = profile
        self.memory = MemoryModel(llm, profile, config=memory_config)
        self.resolution = resolution
        self.max_input_tokens = max_input_tokens
        self._probes = 0

    def is_valid(self, max_batch_weight: int) -> bool:
        """True when all corner-case batches fit without OOM."""
        if max_batch_weight < 2:
            return False
        batches = corner_case_batches(
            max_batch_weight, max_input_tokens=self.max_input_tokens
        )
        self._probes += len(batches)
        return not any(self.memory.would_oom(b) for b in batches)

    def tune(self) -> TuningResult:
        """Binary-search the largest valid maximum batch weight."""
        self._probes = 0
        steps = 0
        if not self.memory.weights_fit or not self.is_valid(2):
            return TuningResult(
                llm=self.llm.name,
                profile=self.profile.name,
                max_batch_weight=0,
                search_steps=steps,
                probes=self._probes,
                feasible=False,
            )
        # Exponential probe upward for the bracketing bound.
        lo, hi = 2, 4
        while self.is_valid(hi):
            lo = hi
            hi *= 2
            steps += 1
            if hi > 1 << 28:  # 268M tokens: unreachable in practice
                break
        # Binary search in (lo valid, hi invalid].
        while hi - lo > self.resolution:
            mid = (lo + hi) // 2
            steps += 1
            if self.is_valid(mid):
                lo = mid
            else:
                hi = mid
        return TuningResult(
            llm=self.llm.name,
            profile=self.profile.name,
            max_batch_weight=lo,
            search_steps=steps,
            probes=self._probes,
            feasible=True,
        )
