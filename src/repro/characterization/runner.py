"""The performance characterization tool (paper §III, Fig 2).

For each (LLM, GPU profile) the tool (1) deploys the inference service,
(2) tunes the maximum batch weight by binary search, and (3) runs the
load-testing ladder (1..128 concurrent users) with the workload
generator, collecting TTFT / nTTFT / ITL / throughput into the
characterization dataset. It also accounts the virtual wall-clock
overhead of characterization (paper §V-B: ~30min/LLM tuning +
20min/LLM load testing, parallelized over GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.characterization.dataset import PerfDataset, PerfRecord
from repro.characterization.feasibility import (
    Feasibility,
    FeasibilityReport,
    check_feasibility,
)
from repro.characterization.loadtest import DEFAULT_USER_COUNTS, run_load_test
from repro.hardware.profile import GPUProfile, default_profiles
from repro.inference.engine import ContinuousBatchingEngine
from repro.models.llm import LLMSpec
from repro.utils.rng import spawn_seed
from repro.workload.generator import WorkloadGenerator

__all__ = ["CharacterizationConfig", "CharacterizationOutcome", "CharacterizationTool"]


@dataclass(frozen=True)
class CharacterizationConfig:
    """Knobs of a characterization campaign."""

    user_counts: tuple[int, ...] = DEFAULT_USER_COUNTS
    duration_s: float = 120.0
    seed: int = 0
    #: Virtual overhead accounting (paper §V-B): binary-search tuning and
    #: pod startup dominate the per-combination setup cost.
    tuning_probe_cost_s: float = 95.0
    deployment_cost_s: float = 60.0


@dataclass
class CharacterizationOutcome:
    """Everything a campaign produced."""

    dataset: PerfDataset
    feasibility: list[FeasibilityReport] = field(default_factory=list)
    tuned_weights: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Estimated wall-clock overhead, per GPU profile (parallelizable).
    overhead_by_profile_s: dict[str, float] = field(default_factory=dict)

    @property
    def total_overhead_s(self) -> float:
        """Campaign duration when profiles run in parallel (max over GPUs)."""
        if not self.overhead_by_profile_s:
            return 0.0
        return max(self.overhead_by_profile_s.values())

    @property
    def serial_overhead_s(self) -> float:
        return sum(self.overhead_by_profile_s.values())


class CharacterizationTool:
    """Drives characterization campaigns over LLM x GPU-profile grids."""

    def __init__(
        self,
        generator: WorkloadGenerator,
        config: CharacterizationConfig | None = None,
    ) -> None:
        self.generator = generator
        self.config = config or CharacterizationConfig()
        self._max_request_weight = generator.max_request_weight()

    # ---- single combination ----------------------------------------------

    def characterize_pair(
        self, llm: LLMSpec, profile: GPUProfile
    ) -> tuple[FeasibilityReport, list[PerfRecord]]:
        """Tune + load-test one (LLM, GPU profile) combination."""
        cfg = self.config
        report = check_feasibility(llm, profile, self._max_request_weight)
        if not report.feasible:
            return report, []

        records = []
        for users in cfg.user_counts:
            seed = spawn_seed(cfg.seed, "charact", llm.name, profile.name, users)
            engine = ContinuousBatchingEngine(
                llm=llm,
                profile=profile,
                max_batch_weight=report.max_batch_weight,
                seed=seed,
            )
            result = run_load_test(
                engine,
                self.generator,
                concurrent_users=users,
                duration_s=cfg.duration_s,
                seed=seed,
            )
            records.append(
                PerfRecord(
                    llm=llm.name,
                    profile=profile.name,
                    gpu_name=profile.gpu.name,
                    gpu_count=profile.count,
                    concurrent_users=users,
                    max_batch_weight=report.max_batch_weight,
                    ttft_median_s=result.ttft_median_s,
                    nttft_median_s=result.nttft_median_s,
                    itl_median_s=result.itl_median_s,
                    throughput_tokens_per_s=result.throughput_tokens_per_s,
                    e2e_median_s=result.e2e_median_s,
                )
            )
        return report, records

    # ---- campaigns -----------------------------------------------------------

    def run(
        self,
        llms: list[LLMSpec],
        profiles: list[GPUProfile] | None = None,
    ) -> CharacterizationOutcome:
        """Characterize every feasible (LLM, profile) combination."""
        profiles = profiles if profiles is not None else default_profiles()
        cfg = self.config
        outcome = CharacterizationOutcome(dataset=PerfDataset())
        for profile in profiles:
            overhead = 0.0
            for llm in llms:
                report, records = self.characterize_pair(llm, profile)
                outcome.feasibility.append(report)
                overhead += cfg.deployment_cost_s + cfg.tuning_probe_cost_s
                if report.feasible:
                    outcome.tuned_weights[(llm.name, profile.name)] = (
                        report.max_batch_weight
                    )
                    outcome.dataset.extend(records)
                    overhead += cfg.duration_s * len(cfg.user_counts)
            outcome.overhead_by_profile_s[profile.name] = overhead
        return outcome

    def feasibility_matrix(
        self,
        llms: list[LLMSpec],
        profiles: list[GPUProfile] | None = None,
    ) -> dict[tuple[str, str], Feasibility]:
        """The Table III grid without running any load tests."""
        profiles = profiles if profiles is not None else default_profiles()
        out = {}
        for llm in llms:
            for profile in profiles:
                report = check_feasibility(llm, profile, self._max_request_weight)
                out[(llm.name, profile.name)] = report.status
        return out
