"""Feasibility of (LLM, GPU profile) combinations — the paper's Table III.

Three statuses, matching the paper's legend:

* ``OK`` (✓): data can be collected;
* ``OOM`` (×): the profile's memory cannot host the LLM while leaving
  enough space to process the largest requests produced by the workload
  generator;
* ``UNSUPPORTED`` (–): software/hardware gates — TGIS did not support
  tensor parallelism for some LLMs, and flash-attention models require
  compute capability >= 8.0 (excluding V100).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.characterization.tuner import BatchWeightTuner
from repro.hardware.profile import GPUProfile
from repro.models.llm import LLMSpec

__all__ = ["Feasibility", "FeasibilityReport", "check_feasibility"]

#: Flash attention needs Turing or newer (T4 at 7.5 works; V100 at 7.0
#: does not — the paper's reason for the missing V100 entries).
_MIN_COMPUTE_CAPABILITY_FLASH = 7.5


class Feasibility(enum.Enum):
    OK = "ok"
    OOM = "oom"
    UNSUPPORTED = "unsupported"

    @property
    def symbol(self) -> str:
        return {"ok": "Y", "oom": "x", "unsupported": "-"}[self.value]


@dataclass(frozen=True)
class FeasibilityReport:
    llm: str
    profile: str
    status: Feasibility
    max_batch_weight: int
    reason: str

    @property
    def feasible(self) -> bool:
        return self.status is Feasibility.OK


def check_feasibility(
    llm: LLMSpec,
    profile: GPUProfile,
    max_request_weight: int,
    max_input_tokens: int = 4093,
) -> FeasibilityReport:
    """Classify one (LLM, GPU profile) combination.

    ``max_request_weight`` is the largest request weight the workload
    generator can produce (``WorkloadGenerator.max_request_weight()``);
    the combination is only usable when the tuned maximum batch weight
    can accommodate it.
    """
    if profile.is_tensor_parallel and not llm.tgis_tensor_parallel_supported:
        return FeasibilityReport(
            llm=llm.name,
            profile=profile.name,
            status=Feasibility.UNSUPPORTED,
            max_batch_weight=0,
            reason="TGIS does not support tensor parallelism for this LLM",
        )
    if (
        llm.uses_flash_attention
        and profile.gpu.compute_capability < _MIN_COMPUTE_CAPABILITY_FLASH
    ):
        return FeasibilityReport(
            llm=llm.name,
            profile=profile.name,
            status=Feasibility.UNSUPPORTED,
            max_batch_weight=0,
            reason=(
                "flash attention requires compute capability >= "
                f"{_MIN_COMPUTE_CAPABILITY_FLASH}, GPU has "
                f"{profile.gpu.compute_capability}"
            ),
        )

    tuner = BatchWeightTuner(llm, profile, max_input_tokens=max_input_tokens)
    result = tuner.tune()
    if not result.feasible:
        return FeasibilityReport(
            llm=llm.name,
            profile=profile.name,
            status=Feasibility.OOM,
            max_batch_weight=0,
            reason="model weights do not fit in the profile's memory",
        )
    if result.max_batch_weight < max_request_weight:
        return FeasibilityReport(
            llm=llm.name,
            profile=profile.name,
            status=Feasibility.OOM,
            max_batch_weight=result.max_batch_weight,
            reason=(
                f"tuned batch weight {result.max_batch_weight} cannot hold the "
                f"largest workload request (weight {max_request_weight})"
            ),
        )
    return FeasibilityReport(
        llm=llm.name,
        profile=profile.name,
        status=Feasibility.OK,
        max_batch_weight=result.max_batch_weight,
        reason="",
    )
