"""Performance characterization tool (paper §III): batch-weight tuning,
load testing, feasibility classification and the characterization dataset."""

from repro.characterization.tuner import BatchWeightTuner, TuningResult
from repro.characterization.loadtest import (
    LoadTestResult,
    run_load_test,
    run_open_loop_test,
    DEFAULT_USER_COUNTS,
)
from repro.characterization.feasibility import (
    Feasibility,
    FeasibilityReport,
    check_feasibility,
)
from repro.characterization.dataset import PerfDataset, PerfRecord
from repro.characterization.runner import (
    CharacterizationConfig,
    CharacterizationOutcome,
    CharacterizationTool,
)

__all__ = [
    "BatchWeightTuner",
    "TuningResult",
    "LoadTestResult",
    "run_load_test",
    "run_open_loop_test",
    "DEFAULT_USER_COUNTS",
    "Feasibility",
    "FeasibilityReport",
    "check_feasibility",
    "PerfDataset",
    "PerfRecord",
    "CharacterizationConfig",
    "CharacterizationOutcome",
    "CharacterizationTool",
]
