"""Workload generator (paper §III-B): joint binned request model, corpus
and request sampling, plus the trace-replay comparator."""

from repro.workload.binning import ParameterBinning, fit_binning, DEFAULT_N_BINS
from repro.workload.model import RequestModel
from repro.workload.corpus import Corpus, default_corpus
from repro.workload.generator import WorkloadGenerator, TraceReplaySampler

__all__ = [
    "ParameterBinning",
    "fit_binning",
    "DEFAULT_N_BINS",
    "RequestModel",
    "Corpus",
    "default_corpus",
    "WorkloadGenerator",
    "TraceReplaySampler",
]
