"""Designated text corpus for request inputs (paper §III-B2).

The workload generator attaches an input text to each request, "generated
based on some designated corpus of texts, truncated to match the number
of input tokens". We ship a small deterministic corpus (public-domain
style English filler plus code-like fragments) and a whitespace tokenizer,
which is all the simulator needs — it only consumes the token count, but
examples and round-trip tests exercise the text path end to end.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["Corpus", "default_corpus"]

_BASE_SENTENCES = (
    "the quick brown fox jumps over the lazy dog near the quiet river bank",
    "large language models generate text one token at a time under heavy load",
    "performance characterization requires realistic workloads and careful tuning",
    "the cluster administrator benchmarks each service before users arrive",
    "memory bandwidth bounds the decode phase while compute bounds the prefill",
    "def process(batch): return [self.generate(request) for request in batch]",
    "continuous batching interleaves requests with diverse token counts",
    "for epoch in range(steps): loss = model.forward(inputs).backward()",
    "summarize the following report into three concise bullet points please",
    "translate the passage into french preserving technical terminology exactly",
)


class Corpus:
    """A cyclic token stream with deterministic truncation to k tokens."""

    def __init__(self, sentences: tuple[str, ...] = _BASE_SENTENCES) -> None:
        if not sentences:
            raise ValueError("corpus needs at least one sentence")
        self._tokens = tuple(
            itertools.chain.from_iterable(s.split() for s in sentences)
        )

    @property
    def n_tokens(self) -> int:
        return len(self._tokens)

    def text_for_tokens(
        self, n_tokens: int, rng: np.random.Generator | int | None = None
    ) -> str:
        """A text with exactly ``n_tokens`` whitespace tokens.

        The starting offset is randomized so concurrent users do not all
        send byte-identical prompts.
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        if n_tokens == 0:
            return ""
        rng = as_rng(rng)
        start = int(rng.integers(0, self.n_tokens))
        picked = [
            self._tokens[(start + i) % self.n_tokens] for i in range(n_tokens)
        ]
        return " ".join(picked)

    @staticmethod
    def count_tokens(text: str) -> int:
        """Token count under the corpus' whitespace tokenizer."""
        return len(text.split())


def default_corpus() -> Corpus:
    return Corpus()
