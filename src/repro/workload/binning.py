"""Equal-frequency binning of request parameters (paper §III-B1).

For each parameter the value range is split into up to 64 bins such that
each bin holds approximately the same number of requests; true values are
replaced by their bin-interval centers. Parameters with cardinality below
the bin budget get one bin per unique value (exact representation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ParameterBinning", "fit_binning", "DEFAULT_N_BINS"]

DEFAULT_N_BINS = 64


@dataclass(frozen=True)
class ParameterBinning:
    """Binning of one request parameter.

    ``edges`` has ``n_bins + 1`` entries; bin *i* covers
    ``[edges[i], edges[i+1])`` (last bin closed). ``centers`` holds the
    representative value of each bin. ``exact`` marks low-cardinality
    parameters whose centers are the unique values themselves.
    """

    name: str
    edges: np.ndarray
    centers: np.ndarray
    exact: bool
    integer: bool

    @property
    def n_bins(self) -> int:
        return len(self.centers)

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Map raw values to bin indices in ``[0, n_bins)``."""
        values = np.asarray(values, dtype=float)
        if self.exact:
            # Exact bins: nearest unique value (robust to float round-trips).
            idx = np.searchsorted(self.centers, values)
            idx = np.clip(idx, 0, self.n_bins - 1)
            left = np.clip(idx - 1, 0, self.n_bins - 1)
            use_left = np.abs(values - self.centers[left]) < np.abs(
                values - self.centers[idx]
            )
            return np.where(use_left, left, idx).astype(np.int64)
        idx = np.searchsorted(self.edges, values, side="right") - 1
        return np.clip(idx, 0, self.n_bins - 1).astype(np.int64)

    def decode(self, bin_indices: np.ndarray) -> np.ndarray:
        """Map bin indices back to representative parameter values."""
        out = self.centers[np.asarray(bin_indices, dtype=np.int64)]
        if self.integer:
            return np.round(out).astype(np.int64)
        return out


def fit_binning(
    name: str, values: np.ndarray, n_bins: int = DEFAULT_N_BINS
) -> ParameterBinning:
    """Fit an equal-frequency binning for one parameter column."""
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError(f"cannot bin empty column {name!r}")
    integer = bool(np.all(values == np.round(values)))
    unique = np.unique(values)

    if unique.size <= n_bins:
        # One bin per unique value: exact representation.
        edges = np.concatenate([unique, [unique[-1]]])
        return ParameterBinning(
            name=name, edges=edges, centers=unique, exact=True, integer=integer
        )

    # Equal-frequency edges via quantiles; duplicate edges (from repeated
    # values) are collapsed, so heavy atoms get their own bins.
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.quantile(values, quantiles)
    edges = np.unique(edges)
    if edges.size < 2:
        edges = np.array([unique[0], unique[-1]])
    # Bin representative: the median of the training values that fall in
    # the bin, not the interval midpoint. With equal-frequency binning a
    # heavy atom (e.g. temperature = 0 for greedy requests) shares a bin
    # with the following continuous range; the midpoint would displace the
    # whole atom, wrecking the marginal CDF, while the median preserves it.
    idx = np.clip(np.searchsorted(edges, values, side="right") - 1, 0, len(edges) - 2)
    midpoints = 0.5 * (edges[:-1] + edges[1:])
    centers = midpoints.copy()
    for b in range(len(centers)):
        in_bin = values[idx == b]
        if in_bin.size:
            centers[b] = np.median(in_bin)
    return ParameterBinning(
        name=name, edges=edges, centers=centers, exact=False, integer=integer
    )
