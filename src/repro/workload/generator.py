"""The workload generator (paper §III-B) and a trace-replay comparator.

``WorkloadGenerator`` wraps the joint :class:`RequestModel` and produces
:class:`InferenceRequest` objects whose parameters follow the empirical
joint distribution of the production traces. ``TraceReplaySampler``
implements the obvious alternative — drawing raw past requests directly
from the trace store — which the paper compares against for storage
footprint and sampling speed (§V-A: the generator is ~35x faster and
<1MB vs 1.6GB).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.inference.request import InferenceRequest
from repro.traces.schema import TraceDataset
from repro.utils.rng import as_rng
from repro.workload.binning import DEFAULT_N_BINS
from repro.workload.corpus import Corpus, default_corpus
from repro.workload.model import RequestModel

__all__ = ["WorkloadGenerator", "TraceReplaySampler"]

_TOKEN_PARAMS = ("input_tokens", "output_tokens", "batch_size")


class WorkloadGenerator:
    """Produces realistic inference requests from a fitted request model."""

    def __init__(
        self,
        model: RequestModel,
        corpus: Corpus | None = None,
        attach_text: bool = False,
        independent: bool = False,
    ) -> None:
        self.model = model
        self.corpus = corpus or default_corpus()
        self.attach_text = attach_text
        #: When True, parameters are sampled from independent marginals —
        #: the §V-A ablation that loses cross-parameter correlation.
        self.independent = independent
        for required in ("input_tokens", "output_tokens"):
            if required not in model.params:
                raise ValueError(f"request model must include {required!r}")

    @classmethod
    def fit(
        cls,
        traces: TraceDataset,
        params: list[str] | None = None,
        n_bins: int = DEFAULT_N_BINS,
        attach_text: bool = False,
        independent: bool = False,
    ) -> "WorkloadGenerator":
        """Fit the internal request model to a trace collection."""
        model = RequestModel.fit(traces, params=params, n_bins=n_bins)
        return cls(model, attach_text=attach_text, independent=independent)

    # ---- batch sampling --------------------------------------------------

    def sample_columns(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> dict[str, np.ndarray]:
        """Vectorized draw of ``n`` requests as a column dict."""
        return self.model.sample(n, rng=rng, independent=self.independent)

    def max_request_weight(self) -> int:
        """Largest request weight this generator can emit in joint mode."""
        return self.model.max_request_weight()

    def sample_requests(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        first_id: int = 0,
        max_weight: int | None = None,
    ) -> list[InferenceRequest]:
        """Draw ``n`` :class:`InferenceRequest` objects.

        ``max_weight`` optionally truncates requests whose weight exceeds
        the server's maximum batch weight (the platform-side truncation a
        real server applies). Joint-mode sampling never needs it when the
        server was tuned against this generator; independent-mode sampling
        can exceed the joint maximum, which is one of its distortions.
        """
        rng = as_rng(rng)
        cols = self.sample_columns(n, rng=rng)
        inp = np.maximum(cols["input_tokens"].astype(int), 1)
        out = np.maximum(cols["output_tokens"].astype(int), 1)
        batch = (
            np.maximum(cols["batch_size"].astype(int), 1)
            if "batch_size" in cols
            else np.ones(n, dtype=int)
        )
        if max_weight is not None:
            # Shrink generation budget first, then the prompt, to fit.
            per_seq = np.maximum(max_weight // batch, 2)
            out = np.minimum(out, np.maximum(per_seq - inp, 1))
            inp = np.minimum(inp, per_seq - out)
            inp = np.maximum(inp, 1)
        extra_params = [p for p in self.model.params if p not in _TOKEN_PARAMS]
        requests = []
        for i in range(n):
            params = {p: float(cols[p][i]) for p in extra_params}
            text = (
                self.corpus.text_for_tokens(int(inp[i]), rng=rng)
                if self.attach_text
                else None
            )
            requests.append(
                InferenceRequest(
                    request_id=first_id + i,
                    input_tokens=int(inp[i]),
                    output_tokens=int(out[i]),
                    batch_size=int(batch[i]),
                    params=params,
                    input_text=text,
                )
            )
        return requests

    def request_stream(
        self, rng: np.random.Generator | int | None = None, chunk: int = 256
    ) -> Iterator[InferenceRequest]:
        """Infinite stream of requests (used by closed-loop user pools)."""
        rng = as_rng(rng)
        next_id = 0
        while True:
            for req in self.sample_requests(chunk, rng=rng, first_id=next_id):
                yield req
            next_id += chunk

    # ---- reporting ---------------------------------------------------------

    def nbytes(self) -> int:
        """Storage footprint of the generator (§V-A size comparison)."""
        return self.model.nbytes()


class TraceReplaySampler:
    """Samples raw past requests directly from the trace collection.

    This is the baseline the paper compares the workload generator
    against: it requires keeping the full trace store and constructs each
    request record row by row, the way a replay harness reading a trace
    database would.
    """

    def __init__(self, traces: TraceDataset) -> None:
        if len(traces) == 0:
            raise ValueError("cannot sample from an empty trace collection")
        self.traces = traces
        self._params = traces.param_names()

    def sample_requests(
        self, n: int, rng: np.random.Generator | int | None = None, first_id: int = 0
    ) -> list[InferenceRequest]:
        rng = as_rng(rng)
        rows = rng.integers(0, len(self.traces), size=n)
        cols = self.traces.columns
        requests = []
        for i, r in enumerate(rows):
            # Row-oriented record construction (deliberately mirrors reading
            # one trace entry at a time from the store).
            record = {p: cols[p][r] for p in self._params}
            requests.append(
                InferenceRequest(
                    request_id=first_id + i,
                    input_tokens=max(int(record["input_tokens"]), 1),
                    output_tokens=max(int(record["output_tokens"]), 1),
                    batch_size=max(int(record.get("batch_size", 1)), 1),
                    params={
                        k: float(v)
                        for k, v in record.items()
                        if k not in _TOKEN_PARAMS
                    },
                )
            )
        return requests

    def nbytes(self) -> int:
        """Footprint of the trace store this sampler must retain."""
        return self.traces.nbytes()
