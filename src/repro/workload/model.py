"""Joint non-parametric request model (paper §III-B).

The model bins every request parameter (64 equal-frequency bins) and
keeps the *joint* histogram over multi-dimensional bins — the distinct
combinations of per-parameter bin assignments observed in the traces.
Because the parameters are strongly correlated, the joint histogram is
extremely sparse, which keeps the model small (<1MB in the paper versus
1.6GB of traces) and makes sampling fast.

Sampling draws a multi-dimensional bin with probability proportional to
its trace count, and emits the bin centers as the request's parameter
values. An *independent* sampling mode (each marginal sampled separately)
is provided for the paper's §V-A ablation showing that ignoring the
correlation distorts measured performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.schema import CORE_PARAMS, TraceDataset
from repro.utils.rng import as_rng
from repro.workload.binning import DEFAULT_N_BINS, ParameterBinning, fit_binning

__all__ = ["RequestModel"]


@dataclass
class RequestModel:
    """Joint binned histogram over request parameters."""

    params: list[str]
    binnings: dict[str, ParameterBinning]
    bin_codes: np.ndarray  # (n_nonempty_bins, n_params) int16 bin indices
    counts: np.ndarray  # (n_nonempty_bins,) trace-request counts
    _probs: np.ndarray = field(init=False, repr=False)
    _cum: np.ndarray = field(init=False, repr=False)
    _marginals: dict[str, tuple[np.ndarray, np.ndarray]] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.bin_codes.shape != (len(self.counts), len(self.params)):
            raise ValueError("bin_codes shape mismatch")
        if np.any(self.counts <= 0):
            raise ValueError("all retained multi-dimensional bins must be non-empty")
        total = float(self.counts.sum())
        self._probs = self.counts / total
        self._cum = np.cumsum(self._probs)
        # Per-parameter marginal histograms (for independent-mode sampling
        # and CDF fidelity analysis).
        for j, p in enumerate(self.params):
            n_bins = self.binnings[p].n_bins
            marg = np.bincount(
                self.bin_codes[:, j], weights=self.counts, minlength=n_bins
            )
            self._marginals[p] = (np.arange(n_bins), marg / marg.sum())

    # ---- construction ------------------------------------------------------

    @classmethod
    def fit(
        cls,
        traces: TraceDataset,
        params: list[str] | None = None,
        n_bins: int = DEFAULT_N_BINS,
    ) -> "RequestModel":
        """Fit the joint model to a trace collection."""
        params = list(params) if params is not None else [
            p for p in CORE_PARAMS if p in traces.columns
        ]
        if not params:
            raise ValueError("no request parameters to model")
        binnings = {
            p: fit_binning(p, traces.columns[p], n_bins=n_bins) for p in params
        }
        code_matrix = np.column_stack(
            [binnings[p].assign(traces.columns[p]) for p in params]
        )
        packed, radices = _pack_codes(code_matrix)
        unique_packed, counts = np.unique(packed, return_counts=True)
        bin_codes = _unpack_codes(unique_packed, radices)
        return cls(
            params=params,
            binnings=binnings,
            bin_codes=bin_codes.astype(np.int16),
            counts=counts.astype(np.int64),
        )

    # ---- introspection -------------------------------------------------------

    @property
    def n_nonempty_bins(self) -> int:
        return len(self.counts)

    @property
    def n_theoretical_bins(self) -> float:
        """Product of per-parameter bin counts (paper: 10.7e9 vs 46.5k)."""
        out = 1.0
        for p in self.params:
            out *= self.binnings[p].n_bins
        return out

    @property
    def sparsity(self) -> float:
        """Fraction of theoretically possible bins that are occupied."""
        return self.n_nonempty_bins / self.n_theoretical_bins

    def nbytes(self) -> int:
        """Storage footprint of the model (codes + counts + bin tables)."""
        total = self.bin_codes.nbytes + self.counts.nbytes
        for b in self.binnings.values():
            total += b.edges.nbytes + b.centers.nbytes
        return int(total)

    def max_request_weight(self) -> int:
        """Largest request weight the joint model can produce.

        The weight of a request is (input + output tokens) x client batch
        size (paper §II-B). Because the model only samples *observed*
        joint bins, this maximum reflects the correlation structure —
        independent marginal sampling can exceed it, which is one of the
        failure modes of correlation-ignoring workload generators.
        """
        def col(name: str, default: float) -> np.ndarray:
            if name not in self.params:
                return np.full(len(self.counts), default)
            j = self.params.index(name)
            return self.binnings[name].decode(self.bin_codes[:, j]).astype(float)

        inp = col("input_tokens", 1.0)
        out = col("output_tokens", 1.0)
        batch = col("batch_size", 1.0)
        return int(np.ceil(np.max((inp + out) * batch)))

    def marginal(self, param: str) -> tuple[np.ndarray, np.ndarray]:
        """(bin centers, probabilities) marginal of one parameter."""
        bins, probs = self._marginals[param]
        return self.binnings[param].decode(bins).astype(float), probs

    # ---- sampling -------------------------------------------------------------

    def sample(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        independent: bool = False,
    ) -> dict[str, np.ndarray]:
        """Draw ``n`` requests; returns a column dict of parameter values.

        ``independent=True`` samples each marginal separately (ablation
        mode); the default samples the joint histogram, preserving all
        cross-parameter correlation.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        rng = as_rng(rng)
        out: dict[str, np.ndarray] = {}
        if independent:
            for j, p in enumerate(self.params):
                bins, probs = self._marginals[p]
                drawn = rng.choice(bins, size=n, p=probs)
                out[p] = self.binnings[p].decode(drawn)
            return out
        # Inverse-CDF draw over the sparse joint histogram.
        u = rng.random(n)
        rows = np.searchsorted(self._cum, u, side="right")
        rows = np.clip(rows, 0, len(self.counts) - 1)
        for j, p in enumerate(self.params):
            out[p] = self.binnings[p].decode(self.bin_codes[rows, j])
        return out


def _pack_codes(code_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-parameter bin indices into single integers (mixed radix)."""
    radices = code_matrix.max(axis=0).astype(np.int64) + 1
    bits = float(np.sum(np.log2(np.maximum(radices, 1))))
    if bits >= 62:
        raise ValueError(
            f"joint bin space too large to pack ({bits:.0f} bits); "
            "reduce the number of modeled parameters or bins"
        )
    packed = np.zeros(len(code_matrix), dtype=np.int64)
    for j in range(code_matrix.shape[1]):
        packed = packed * radices[j] + code_matrix[:, j]
    return packed, radices


def _unpack_codes(packed: np.ndarray, radices: np.ndarray) -> np.ndarray:
    """Invert :func:`_pack_codes`."""
    n_params = len(radices)
    out = np.zeros((len(packed), n_params), dtype=np.int64)
    rest = packed.copy()
    for j in range(n_params - 1, -1, -1):
        out[:, j] = rest % radices[j]
        rest //= radices[j]
    return out
