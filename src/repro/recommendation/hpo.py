"""Hyperparameter tuning for the performance model (paper §IV-B3).

Leave-one-LLM-out cross-validation over the training dataset: for each
candidate configuration, each LLM in turn acts as the validation set;
the score is the weighted MAPE (weights from Eq. 4, computed from the
validation LLM's *true* latencies), averaged over both latency targets
and all splits. The configuration with the lowest average error wins.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import replace

import numpy as np

from repro.characterization.dataset import PerfDataset
from repro.ml.cv import GridSearch
from repro.ml.metrics import weighted_mape
from repro.models.llm import LLMSpec
from repro.recommendation.features import FeatureSpace
from repro.recommendation.perfmodel import (
    DEFAULT_HP_GRID,
    PerfModelHyperparams,
    PerformanceModel,
)
from repro.recommendation.weights import (
    LatencyConstraints,
    constraint_proximity_weights,
)

__all__ = ["tune_performance_model"]


def _subset(dataset: PerfDataset, idx: np.ndarray) -> PerfDataset:
    return PerfDataset(records=[dataset.records[i] for i in idx])


def tune_performance_model(
    train: PerfDataset,
    llm_lookup: dict[str, LLMSpec],
    constraints: LatencyConstraints,
    grid: Mapping[str, Sequence[object]] | None = None,
    use_sample_weights: bool = True,
    use_monotone_constraint: bool = True,
    random_state: int = 0,
) -> tuple[PerfModelHyperparams, float]:
    """Grid-search hyperparameters; returns (best HPs, best CV score)."""
    grid = dict(grid if grid is not None else DEFAULT_HP_GRID)
    groups = [r.llm for r in train.records]
    feature_space = FeatureSpace.fit(
        [llm_lookup[name] for name in dict.fromkeys(groups)]
    )

    def evaluate(params: dict, train_idx: np.ndarray, val_idx: np.ndarray) -> float:
        hp = replace(PerfModelHyperparams(), **params)
        model = PerformanceModel(
            feature_space=feature_space,
            constraints=constraints,
            hyperparams=hp,
            use_sample_weights=use_sample_weights,
            use_monotone_constraint=use_monotone_constraint,
            random_state=random_state,
        )
        fold_train = _subset(train, train_idx)
        fold_val = _subset(train, val_idx)
        try:
            model.fit(fold_train, llm_lookup)
        except ValueError:
            return float("inf")
        rows = [
            (llm_lookup[r.llm], r.profile, r.concurrent_users)
            for r in fold_val.records
        ]
        X = model.feature_space.transform(rows)
        y1 = fold_val.column("nttft_median_s")
        y2 = fold_val.column("itl_median_s")
        w = constraint_proximity_weights(fold_val, constraints)
        ok = np.isfinite(y1) & np.isfinite(y2) & (w > 0)
        if not np.any(ok):
            return float("inf")
        p1 = model._model_nttft.predict(X[ok])
        p2 = model._model_itl.predict(X[ok])
        return 0.5 * (
            weighted_mape(y1[ok], p1, w[ok]) + weighted_mape(y2[ok], p2, w[ok])
        )

    search = GridSearch(grid, evaluate)
    best = search.run(groups)
    return replace(PerfModelHyperparams(), **best), search.best_score_
