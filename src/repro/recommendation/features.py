"""Feature engineering for the performance model (paper §IV-B1).

Rows are (LLM, GPU profile, concurrent users); features concatenate the
LLM architecture card, the GPU profile datasheet and the user count.
The categorical LLM type is label-encoded against the training
vocabulary (tree models split on the code; unseen types map to -1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.profile import GPUProfile, parse_profile
from repro.models.llm import LLMSpec

__all__ = ["FeatureSpace"]


@dataclass
class FeatureSpace:
    """Builds numeric feature vectors for (LLM, profile, users) triples.

    ``include_derived`` adds interaction features (memory headroom,
    weights-per-bandwidth, FLOPs-per-TFLOPS) that are *not* part of the
    paper's feature list; they nearly encode the roofline cost model and
    make the prediction task artificially easy, so they default to off
    and exist only for ablation studies.
    """

    model_type_vocab: list[str] = field(default_factory=list)
    include_derived: bool = False
    _names: list[str] = field(default_factory=list)
    _profile_cache: dict[str, GPUProfile] = field(default_factory=dict)

    @classmethod
    def fit(cls, llms: list[LLMSpec], include_derived: bool = False) -> "FeatureSpace":
        """Learn the categorical vocabulary from the training LLMs."""
        if not llms:
            raise ValueError("need at least one training LLM")
        vocab = sorted({llm.model_type for llm in llms})
        space = cls(model_type_vocab=vocab, include_derived=include_derived)
        # Fix feature order once from an arbitrary probe.
        probe_llm = llms[0]
        probe_profile = parse_profile("1xT4-16GB")
        probe = space._feature_dict(probe_llm, probe_profile, 1)
        space._names = list(probe)
        return space

    # ---- encoding ------------------------------------------------------------

    def _profile(self, profile: GPUProfile | str) -> GPUProfile:
        if isinstance(profile, GPUProfile):
            return profile
        if profile not in self._profile_cache:
            self._profile_cache[profile] = parse_profile(profile)
        return self._profile_cache[profile]

    def _feature_dict(
        self, llm: LLMSpec, profile: GPUProfile, users: int
    ) -> dict[str, float]:
        feats: dict[str, float] = {}
        feats["llm_type_code"] = float(
            self.model_type_vocab.index(llm.model_type)
            if llm.model_type in self.model_type_vocab
            else -1
        )
        feats.update(llm.feature_dict())
        feats.update(profile.feature_dict())
        feats["concurrent_users"] = float(users)
        if self.include_derived:
            # Ablation-only interaction features: how tight the profile is
            # for this LLM (still pure datasheet math, no measurements).
            weights_gb = llm.weights_bytes / 1e9
            feats["memory_headroom_gb"] = profile.total_memory_gb - weights_gb
            feats["weights_per_bandwidth_ms"] = (
                llm.weights_bytes / (profile.total_memory_bandwidth_gbps * 1e9) * 1e3
            )
            feats["flops_per_tflops_us"] = (
                llm.flops_per_token / (profile.total_fp16_tflops * 1e12) * 1e6
            )
        return feats

    def transform_one(
        self, llm: LLMSpec, profile: GPUProfile | str, users: int
    ) -> np.ndarray:
        feats = self._feature_dict(llm, self._profile(profile), users)
        if not self._names:
            raise RuntimeError("FeatureSpace must be fit before transform")
        return np.array([feats[n] for n in self._names])

    def transform(
        self, rows: list[tuple[LLMSpec, GPUProfile | str, int]]
    ) -> np.ndarray:
        if not rows:
            return np.empty((0, len(self._names)))
        return np.vstack([self.transform_one(*row) for row in rows])

    # ---- metadata --------------------------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        return list(self._names)

    @property
    def n_features(self) -> int:
        return len(self._names)

    @property
    def users_feature_index(self) -> int:
        """Index of the concurrent-users feature (the monotone one)."""
        return self._names.index("concurrent_users")
