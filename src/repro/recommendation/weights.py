"""Constraint-proximity sample weights (paper Eq. 4).

Each training row's weight is inversely proportional to how far its true
latency lies from the latency constraint, normalized per (LLM, GPU
profile) group over the user-count ladder:

    w1(M,G,u) = 1 - |l1(M,G,u) - L1| / max_v |l1(M,G,v) - L1|

and analogously w2 from the ITL constraint; the two are combined by
arithmetic mean. The regressor therefore concentrates accuracy exactly
where the umax decision (Eq. 3) is made.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.dataset import PerfDataset

__all__ = ["LatencyConstraints", "constraint_proximity_weights"]

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyConstraints:
    """SLA constraints: L1 on nTTFT, L2 on ITL (seconds)."""

    nttft_s: float
    itl_s: float

    def __post_init__(self) -> None:
        if self.nttft_s <= 0 or self.itl_s <= 0:
            raise ValueError("latency constraints must be positive")


def _group_weights(values: np.ndarray, constraint: float) -> np.ndarray:
    """Eq. (4) for one metric within one (M, G) group."""
    dist = np.abs(values - constraint)
    max_dist = np.nanmax(dist)
    if not np.isfinite(max_dist) or max_dist <= 0:
        # Every point sits exactly on the constraint (or the group is
        # degenerate): all points matter equally.
        return np.ones_like(values)
    w = 1.0 - dist / max_dist
    return np.where(np.isfinite(w), w, 0.0)


def constraint_proximity_weights(
    dataset: PerfDataset, constraints: LatencyConstraints
) -> np.ndarray:
    """Per-row combined sample weights, aligned with ``dataset.records``."""
    n = len(dataset)
    weights = np.ones(n)
    groups: dict[tuple[str, str], list[int]] = {}
    for i, r in enumerate(dataset.records):
        groups.setdefault((r.llm, r.profile), []).append(i)
    nttft = dataset.column("nttft_median_s")
    itl = dataset.column("itl_median_s")
    for idx in groups.values():
        idx_arr = np.array(idx)
        w1 = _group_weights(nttft[idx_arr], constraints.nttft_s)
        w2 = _group_weights(itl[idx_arr], constraints.itl_s)
        weights[idx_arr] = 0.5 * (w1 + w2)
    return weights
