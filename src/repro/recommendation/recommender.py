"""GPU recommendation per the paper's Eqs. (1)-(3).

Given latency predictions for an unseen LLM across GPU profiles and user
counts, the recommender computes for each profile the maximum per-pod
user count umax under the SLA constraints (Eq. 3 — latencies must hold
for *all* user counts up to umax), the pod count n = ceil(U / umax)
(Eq. 2), and picks the profile minimizing n * c(G) (Eq. 1).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.characterization.feasibility import check_feasibility
from repro.characterization.loadtest import DEFAULT_USER_COUNTS
from repro.hardware.pricing import PricingTable
from repro.hardware.profile import GPUProfile
from repro.models.llm import LLMSpec
from repro.recommendation.weights import LatencyConstraints

if TYPE_CHECKING:
    from repro.recommendation.elastic import ElasticOptions, ElasticRecommendation

__all__ = [
    "Recommendation",
    "ProfileAssessment",
    "umax_from_latencies",
    "recommend_from_predictions",
    "GPURecommendationTool",
]

#: Signature of a latency predictor: (llm, profile_name, user_counts) ->
#: (nTTFT array, ITL array).
LatencyPredictor = Callable[
    [LLMSpec, str, Sequence[int]], tuple[np.ndarray, np.ndarray]
]


@dataclass(frozen=True)
class ProfileAssessment:
    """Per-profile intermediate results of a recommendation."""

    profile: str
    umax: int
    n_pods: int
    pod_cost: float
    total_cost: float


@dataclass
class Recommendation:
    """Final output of the recommendation tool."""

    profile: str | None
    n_pods: int
    total_cost: float
    assessments: list[ProfileAssessment] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.profile is not None


def umax_from_latencies(
    user_counts: Sequence[int],
    nttft: np.ndarray,
    itl: np.ndarray,
    constraints: LatencyConstraints,
) -> int:
    """Eq. (3): the largest u such that BOTH constraints hold for every
    u' <= u. Returns 0 when even the smallest user count violates."""
    order = np.argsort(user_counts)
    umax = 0
    for k in order:
        l1, l2 = nttft[k], itl[k]
        if not (np.isfinite(l1) and np.isfinite(l2)):
            break
        if l1 <= constraints.nttft_s and l2 <= constraints.itl_s:
            umax = int(user_counts[k])
        else:
            break
    return umax


def recommend_from_predictions(
    predictor: LatencyPredictor,
    llm: LLMSpec,
    profiles: Sequence[str],
    pricing: PricingTable,
    constraints: LatencyConstraints,
    total_users: int,
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
) -> Recommendation:
    """Apply Eqs. (1)-(3) on top of any latency predictor."""
    if total_users < 1:
        raise ValueError("total_users must be >= 1")
    from repro.hardware.profile import parse_profile

    assessments = []
    best: ProfileAssessment | None = None
    for name in profiles:
        nttft, itl = predictor(llm, name, list(user_counts))
        umax = umax_from_latencies(list(user_counts), nttft, itl, constraints)
        pod_cost = pricing.pod_cost(parse_profile(name))
        if umax < 1:
            assessments.append(
                ProfileAssessment(
                    profile=name,
                    umax=0,
                    n_pods=0,
                    pod_cost=pod_cost,
                    total_cost=float("inf"),
                )
            )
            continue
        n_pods = int(np.ceil(total_users / umax))
        total_cost = n_pods * pod_cost
        a = ProfileAssessment(
            profile=name,
            umax=umax,
            n_pods=n_pods,
            pod_cost=pod_cost,
            total_cost=total_cost,
        )
        assessments.append(a)
        if best is None or a.total_cost < best.total_cost or (
            a.total_cost == best.total_cost and a.n_pods < best.n_pods
        ):
            best = a
    if best is None:
        return Recommendation(
            profile=None, n_pods=0, total_cost=float("inf"), assessments=assessments
        )
    return Recommendation(
        profile=best.profile,
        n_pods=best.n_pods,
        total_cost=best.total_cost,
        assessments=assessments,
    )


class GPURecommendationTool:
    """LLM-Pilot's online recommendation front end (paper Fig 5).

    Combines a fitted :class:`PerformanceModel` with static feasibility
    screening (profiles whose memory cannot host the LLM are never
    recommended — a pure datasheet computation, no measurements of the
    unseen LLM) and the pricing table.
    """

    def __init__(
        self,
        perf_model,
        pricing: PricingTable,
        constraints: LatencyConstraints,
        max_request_weight: int,
        user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    ) -> None:
        self.perf_model = perf_model
        self.pricing = pricing
        self.constraints = constraints
        self.max_request_weight = max_request_weight
        self.user_counts = list(user_counts)

    def feasible_profiles(
        self, llm: LLMSpec, profiles: Sequence[GPUProfile]
    ) -> list[str]:
        """Datasheet-level screening of the candidate profiles."""
        return [
            p.name
            for p in profiles
            if check_feasibility(llm, p, self.max_request_weight).feasible
        ]

    def recommend(
        self,
        llm: LLMSpec,
        profiles: Sequence[GPUProfile],
        total_users: int,
        elastic: "ElasticOptions | None" = None,
    ):
        """Recommend hardware; with ``elastic``, also how to run it.

        The static path (Eqs. 1-3) returns a :class:`Recommendation` —
        one profile and a fixed pod count sized for ``total_users``.
        With ``elastic`` set (an
        :class:`~repro.recommendation.elastic.ElasticOptions`), that
        fixed count becomes the peak-sized baseline of an
        autoscaler-in-the-loop sweep on the recommended profile, and an
        :class:`~repro.recommendation.elastic.ElasticRecommendation` is
        returned instead — carrying the (policy, min_pods, max_pods)
        choice, the full trade curve and the savings vs the static
        answer. An infeasible static recommendation is returned as-is
        (there is no profile to simulate on).
        """
        names = self.feasible_profiles(llm, profiles)
        rec = recommend_from_predictions(
            predictor=self.perf_model.predict,
            llm=llm,
            profiles=names,
            pricing=self.pricing,
            constraints=self.constraints,
            total_users=total_users,
            user_counts=self.user_counts,
        )
        if elastic is None or not rec.feasible:
            return rec
        return self._recommend_elastic(llm, rec, elastic)

    def _recommend_elastic(
        self, llm: LLMSpec, rec: Recommendation, opts: "ElasticOptions"
    ) -> "ElasticRecommendation":
        # Deployment pulls in the engine/cluster stack; keep the static
        # recommendation path importable without it.
        from repro.characterization import BatchWeightTuner
        from repro.cluster.deployment import Deployment
        from repro.hardware.profile import parse_profile
        from repro.recommendation.elastic import ElasticRecommender

        profile = parse_profile(rec.profile)
        weight = opts.max_batch_weight
        if weight is None:
            weight = BatchWeightTuner(llm, profile).tune().max_batch_weight
        deployment = Deployment(
            llm=llm,
            profile=profile,
            n_pods=rec.n_pods,
            max_batch_weight=weight,
            generator=opts.generator,
            seed=opts.seed,
        )
        recommender = ElasticRecommender(
            deployment,
            opts.traffic_factory,
            opts.objective,
            slo_p95_ttft_s=opts.slo_p95_ttft_s,
            duration_s=opts.duration_s,
            warmup_s=opts.warmup_s,
            decision_interval_s=opts.decision_interval_s,
            cold_start_s=opts.cold_start_s,
            metrics_window_s=opts.metrics_window_s,
            router_factory=opts.router_factory,
        )
        out = recommender.recommend(
            candidates=opts.candidates,
            static_pods=rec.n_pods,
            headroom=opts.headroom,
        )
        out.static_recommendation = rec
        return out
