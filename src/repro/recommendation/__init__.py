"""GPU recommendation tool (paper §IV): feature engineering, Eq. (4)
sample weights, the monotone performance model, Eqs. (1)-(3) and HP tuning."""

from repro.recommendation.features import FeatureSpace
from repro.recommendation.weights import (
    LatencyConstraints,
    constraint_proximity_weights,
)
from repro.recommendation.perfmodel import (
    PerfModelHyperparams,
    PerformanceModel,
    DEFAULT_HP_GRID,
)
from repro.recommendation.recommender import (
    Recommendation,
    ProfileAssessment,
    umax_from_latencies,
    recommend_from_predictions,
    GPURecommendationTool,
)
from repro.recommendation.hpo import tune_performance_model
from repro.recommendation.elastic import (
    CostObjective,
    ElasticCandidate,
    ElasticOptions,
    ElasticRecommendation,
    ElasticRecommender,
    LinearSLOPenalty,
    StepSLOPenalty,
    TradePoint,
    default_candidates,
)

__all__ = [
    "CostObjective",
    "ElasticCandidate",
    "ElasticOptions",
    "ElasticRecommendation",
    "ElasticRecommender",
    "LinearSLOPenalty",
    "StepSLOPenalty",
    "TradePoint",
    "default_candidates",
    "FeatureSpace",
    "LatencyConstraints",
    "constraint_proximity_weights",
    "PerfModelHyperparams",
    "PerformanceModel",
    "DEFAULT_HP_GRID",
    "Recommendation",
    "ProfileAssessment",
    "umax_from_latencies",
    "recommend_from_predictions",
    "GPURecommendationTool",
    "tune_performance_model",
]
